//! Nearby-copy object location: the introduction's motivating application.
//! Content is replicated at a few hosts; every client lookup must find a
//! *nearby* copy at cost proportional to the distance of the nearest one
//! — without any per-object state at clients.
//!
//! Run with: `cargo run --example replica_location`

use compact_routing::nameind::ObjectDirectory;
use compact_routing::{gen, Eps, MetricSpace, Naming, SimpleNameIndependent};

fn main() {
    let graph = gen::grid(12, 12);
    let metric = MetricSpace::new(&graph);
    let naming = Naming::random(metric.n(), 11);
    let scheme = SimpleNameIndependent::new(&metric, Eps::one_over(8), naming).expect("ε ≤ 1/2");

    // One object ("the video"), three replicas spread over the grid.
    let replicas = vec![(42u32, vec![0u32, 77, 143])];
    let mut dir = ObjectDirectory::new(&metric, &scheme, &replicas);
    println!("object 42 replicated at nodes 0, 77, 143 on a 12×12 grid\n");

    println!(
        "{:<8} {:>12} {:>12} {:>10} {:>9}",
        "client", "found-copy", "nearest-d", "paid-cost", "ratio"
    );
    let mut worst: f64 = 1.0;
    for client in (0..metric.n() as u32).step_by(13) {
        let (route, replica) = dir.locate(&metric, client, 42).expect("object exists");
        let d_near = [0u32, 77, 143].iter().map(|&h| metric.dist(client, h)).min().unwrap();
        let ratio = if d_near == 0 { 1.0 } else { route.cost as f64 / d_near as f64 };
        worst = worst.max(ratio);
        println!("{client:<8} {replica:>12} {d_near:>12} {:>10} {ratio:>9.2}", route.cost);
    }
    println!("\nworst locality ratio {worst:.2} — every client pays O(1)× the");
    println!("distance to its *nearest* copy, as the search-ball hierarchy promises.");

    // Act two: the object is mobile. Move the corner replica along the top
    // row; clients keep finding it with no global re-registration.
    println!("\nmoving replica 0 -> 1 -> 2 (mobile-object tracking):");
    for step in [(0u32, 1u32), (1, 2)] {
        let updated = dir.move_object(42, step.0, step.1);
        let (route, found) = dir.locate(&metric, 13, 42).expect("still locatable");
        println!(
            "  after {} -> {}: {updated} trees updated; client 13 finds copy at {found} (cost {})",
            step.0, step.1, route.cost
        );
    }
}
