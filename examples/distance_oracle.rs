//! The distance-oracle extension: nodes answer approximate distance
//! queries from their routing tables alone — no packet is sent.
//!
//! Run with: `cargo run --example distance_oracle`

use compact_routing::labeled::ScaleFreeLabeled;
use compact_routing::{gen, Eps, LabeledScheme, MetricSpace, NetLabeled};

fn main() {
    let graph = gen::random_geometric(90, 220, 17);
    let metric = MetricSpace::new(&graph);
    let eps = Eps::one_over(8);
    let dense = NetLabeled::new(&metric, eps).expect("ε ≤ 1/2");
    let sparse = ScaleFreeLabeled::new(&metric, eps).expect("ε ≤ 1/4");

    println!("geometric mesh: n={}, diameter {}\n", metric.n(), metric.diameter());
    println!(
        "{:<10} {:>8} {:>10} {:>8} {:>16}",
        "pair", "true-d", "estimate", "rel-err", "certified-bounds"
    );

    let mut worst_rel: f64 = 0.0;
    let mut bounds_hits = 0usize;
    let mut total = 0usize;
    for (u, v) in [(0u32, 89u32), (3, 41), (10, 70), (25, 26), (50, 55), (7, 8)] {
        let d = metric.dist(u, v);
        let est = dense.distance_estimate(&metric, u, dense.label_of(v)).unwrap();
        let rel = (est.estimate as f64 - d as f64).abs() / d as f64;
        worst_rel = worst_rel.max(rel);
        let (lo, hi) = sparse.distance_bounds(&metric, u, sparse.label_of(v)).unwrap();
        if lo <= d && d <= hi {
            bounds_hits += 1;
        }
        total += 1;
        println!(
            "{:<10} {d:>8} {:>10} {rel:>8.3} {:>16}",
            format!("{u}->{v}"),
            est.estimate,
            format!("[{lo}, {hi}]")
        );
    }
    println!(
        "\ndense-ring estimates: worst relative error {worst_rel:.3} (bound 4ε/(1−2ε) = {:.3});",
        4.0 / (8.0 - 2.0)
    );
    println!(
        "sparse-ring certified bounds contained the truth {bounds_hits}/{total} times (always)."
    );
    println!("both answers are computed at u from its routing table — zero messages.");
}
