//! A tour of the Theorem 1.3 lower bound: build the Figure-3 tree, verify
//! its claimed geometry, play the search game, and watch a real scheme
//! route on it.
//!
//! Run with: `cargo run --example lower_bound_tour`

use compact_routing::lowerbound::{counting, game, LbParams, LowerBoundTree};
use compact_routing::metric::doubling;
use compact_routing::{Eps, MetricSpace, NameIndependentScheme, Naming, SimpleNameIndependent};

fn main() {
    let eps = 4u64; // Theorem 1.3's ε ∈ (0, 8)
    let params = LbParams::from_eps(eps, 1);
    println!(
        "construction for ε={eps}: p={}, q={}, c=pq={} subtrees (< (60/ε)² = {})",
        params.p,
        params.q,
        params.c(),
        (60 / eps) * (60 / eps)
    );

    // 1. Geometry of the big tree.
    let tree = LowerBoundTree::new(params, 1 << 16);
    println!(
        "tree: {} nodes, log2(Δ) = {:.1} (envelope {:.1}) — Δ = O(2^(1/ε)·n)",
        tree.total_nodes(),
        (tree.normalized_diameter() as f64).log2(),
        (tree.delta_envelope() as f64).log2()
    );

    // 2. Doubling dimension on a small materialization (Lemma 5.8).
    let small = LowerBoundTree::new(params, 256);
    let m = MetricSpace::new(&small.to_graph());
    let est = doubling::estimate(&m, Some(24));
    println!(
        "doubling dimension estimate {:.2} (Lemma 5.8 bound: 6 − log ε = {:.2})",
        est.dimension,
        6.0 - (eps as f64).log2()
    );

    // 3. The search game: every visit order pays ≥ 9 − ε somewhere.
    let oblivious = game::worst_case_stretch(&tree, &game::increasing_weight_order(&tree)).0;
    let optimized = game::worst_case_stretch(&tree, &game::optimize_order(&tree, 4000, 7)).0;
    println!(
        "search game: oblivious sweep {:.2}, optimized order {:.2}, theorem floor {:.2}",
        oblivious,
        optimized,
        9.0 - eps as f64
    );
    for beta in [0u32, 2, 4, 8] {
        println!(
            "  with {beta} advice bits: worst stretch {:.2}",
            game::advice_stretch(&tree, &game::increasing_weight_order(&tree), beta)
        );
    }

    // 4. The counting lemma at paper scale.
    let n = 1u64 << 20;
    let beta = (n as f64).powf((eps as f64 / 60.0).powi(2));
    println!(
        "counting (Lemma 5.4): with β = n^((ε/60)²) ≈ {beta:.2} bits/node at n = 2^20,\n  log2 of the congruent-naming family ≥ {:.0} (out of log2(n!) = {:.0})",
        counting::log2_congruent_lower_bound(n, beta, (params.c() - 1) as u32, params.c() as u32),
        counting::log2_factorial(n)
    );

    // 5. An actual compact scheme routing on (a small instance of) the tree.
    let naming = Naming::random(m.n(), 13);
    let scheme = SimpleNameIndependent::new(&m, Eps::one_over(8), naming.clone()).expect("eps ok");
    let mut worst: f64 = 1.0;
    for v in 1..m.n() as u32 {
        let r = scheme.route(&m, 0, naming.name_of(v)).expect("delivers");
        worst = worst.max(r.stretch(&m));
    }
    println!(
        "\nour Theorem-1.4 scheme on this tree: worst stretch from the root {:.2}\n(the upper bound 9+O(ε) and the lower bound 9−ε meet around 9 — optimal).",
        worst
    );
}
