//! Overlay lookup: the DHT-style workload the paper's introduction
//! motivates — nodes carry application-assigned identifiers (keys), and
//! lookups must reach a key's holder without any central directory,
//! paying only a constant factor over the direct path.
//!
//! We place nodes in the plane (a wireless-mesh-like random geometric
//! graph), hash keys to node names, and issue lookups from random
//! sources. The name-independent scheme resolves each lookup with
//! bounded stretch; a full-table baseline shows the optimum.
//!
//! Run with: `cargo run --example overlay_lookup`

use compact_routing::netsim::baseline::FullTable;
use compact_routing::{gen, Eps, MetricSpace, Naming};
use compact_routing::{NameIndependentScheme, SimpleNameIndependent};

fn main() {
    let n = 120;
    let graph = gen::random_geometric(n, 180, 7);
    let metric = MetricSpace::new(&graph);
    println!(
        "mesh: {} nodes, {} links, diameter {}",
        graph.node_count(),
        graph.edge_count(),
        metric.diameter()
    );

    // Keys are hashed to names uniformly — the scheme has no say.
    let naming = Naming::random(metric.n(), 99);
    let eps = Eps::one_over(8);
    let overlay = SimpleNameIndependent::new(&metric, eps, naming.clone()).expect("ε ≤ 1/2");
    let oracle = FullTable::with_naming(&metric, naming.clone());

    // Issue lookups: every 7th node queries 5 keys.
    let mut histogram = [0usize; 10]; // stretch buckets [1,2), [2,3), ...
    let mut total = 0usize;
    let mut worst: f64 = 1.0;
    let mut sum = 0.0;
    for src in (0..metric.n() as u32).step_by(7) {
        for k in 0..5u32 {
            let key = (src * 31 + k * 17 + 3) % metric.n() as u32;
            let route = overlay.route(&metric, src, key).expect("lookup resolves");
            let opt =
                NameIndependentScheme::route(&oracle, &metric, src, key).expect("oracle resolves");
            assert_eq!(route.dst, opt.dst, "both must reach the key holder");
            let stretch = route.stretch(&metric);
            worst = worst.max(stretch);
            sum += stretch;
            let bucket = ((stretch - 1.0).floor() as usize).min(9);
            histogram[bucket] += 1;
            total += 1;
        }
    }

    println!(
        "\n{total} lookups resolved; avg stretch {:.2}, worst {:.2}",
        sum / total as f64,
        worst
    );
    println!("stretch histogram:");
    for (b, &count) in histogram.iter().enumerate() {
        if count > 0 {
            println!("  [{},{}): {}", b + 1, b + 2, "#".repeat(count * 60 / total));
        }
    }
    println!("\nthe 9+O(eps) guarantee holds for the worst key placement; typical");
    println!("lookups resolve much closer to the optimum.");
}
