//! Side-by-side comparison of all four schemes plus the full-table
//! baseline on two contrasting networks: a polynomial-diameter grid and
//! an exponential-diameter weighted path (the scale-free regime).
//!
//! Run with: `cargo run --example scheme_comparison`

use compact_routing::netsim::baseline::FullTable;
use compact_routing::netsim::stats::{eval_labeled, eval_name_independent, sample_pairs};
use compact_routing::{gen, Eps, MetricSpace, Naming};
use compact_routing::{
    NetLabeled, ScaleFreeLabeled, ScaleFreeNameIndependent, SimpleNameIndependent,
};

fn main() {
    let eps = Eps::one_over(8);
    for (name, graph) in [
        ("grid 12x12 (Δ = poly n)", gen::grid(12, 12)),
        ("exp-path 40 (Δ = 2^n)", gen::exp_weight_path(40)),
    ] {
        let metric = MetricSpace::new(&graph);
        let naming = Naming::random(metric.n(), 5);
        let pairs = sample_pairs(metric.n(), 300, 11);
        println!(
            "\n=== {name}: n={}, log2(Δ)≈{:.0} ===",
            metric.n(),
            (metric.diameter() as f64 / metric.min_dist() as f64).log2()
        );
        println!(
            "{:<28} {:>11} {:>11} {:>14} {:>10}",
            "scheme", "max-stretch", "avg-stretch", "max-table(b)", "header(b)"
        );

        let show = |scheme: &str, max_s: f64, avg_s: f64, table: u64, header: u64| {
            println!("{scheme:<28} {max_s:>11.2} {avg_s:>11.2} {table:>14} {header:>10}");
        };

        let nl = NetLabeled::new(&metric, eps).unwrap();
        let r = eval_labeled(&nl, &metric, &pairs);
        show(r.scheme, r.max_stretch, r.avg_stretch, r.max_table_bits, r.max_header_bits);

        let sfl = ScaleFreeLabeled::new(&metric, eps).unwrap();
        let r = eval_labeled(&sfl, &metric, &pairs);
        show(r.scheme, r.max_stretch, r.avg_stretch, r.max_table_bits, r.max_header_bits);

        let sni = SimpleNameIndependent::new(&metric, eps, naming.clone()).unwrap();
        let r = eval_name_independent(&sni, &metric, &naming, &pairs);
        show(r.scheme, r.max_stretch, r.avg_stretch, r.max_table_bits, r.max_header_bits);

        let sfni = ScaleFreeNameIndependent::new(&metric, eps, naming.clone()).unwrap();
        let r = eval_name_independent(&sfni, &metric, &naming, &pairs);
        show(r.scheme, r.max_stretch, r.avg_stretch, r.max_table_bits, r.max_header_bits);

        let full = FullTable::with_naming(&metric, naming.clone());
        let r = eval_name_independent(&full, &metric, &naming, &pairs);
        show(
            "full-table (baseline)",
            r.max_stretch,
            r.avg_stretch,
            r.max_table_bits,
            r.max_header_bits,
        );
    }

    println!("\nreading guide: labeled schemes hit 1+O(eps); name-independent hit");
    println!("9+O(eps) (optimal, Theorem 1.3); on the exp-path the scale-free");
    println!("schemes' tables stay flat while the log Δ schemes blow up.");
}
