//! Quickstart: build a network, preprocess the optimal-stretch
//! name-independent scheme, and route a few packets.
//!
//! Run with: `cargo run --example quickstart`

use compact_routing::{gen, Eps, MetricSpace, Naming};
use compact_routing::{NameIndependentScheme, ScaleFreeNameIndependent};

fn main() {
    // A 10×10 grid with unit weights: the canonical doubling network.
    let graph = gen::grid(10, 10);
    let metric = MetricSpace::new(&graph);
    println!(
        "network: {} nodes, {} edges, diameter {}, {} hierarchy levels",
        graph.node_count(),
        graph.edge_count(),
        metric.diameter(),
        metric.num_scales()
    );

    // Names are *not* ours to choose — model an adversarial assignment.
    let naming = Naming::random(metric.n(), 2024);

    // Preprocess Theorem 1.1's scale-free scheme with ε = 1/8.
    let eps = Eps::one_over(8);
    let scheme =
        ScaleFreeNameIndependent::new(&metric, eps, naming.clone()).expect("ε ≤ 1/4 is required");

    let table_bits: Vec<u64> = (0..metric.n() as u32).map(|u| scheme.table_bits(u)).collect();
    println!(
        "tables: max {} bits/node, avg {:.0} bits/node (full tables would need {} bits)",
        table_bits.iter().max().unwrap(),
        table_bits.iter().sum::<u64>() as f64 / table_bits.len() as f64,
        metric.n() as u64 * 7,
    );

    // Route from the corner to a few names.
    for name in [5u32, 42, 99] {
        let route = scheme.route(&metric, 0, name).expect("scheme always delivers");
        println!(
            "route 0 -> name {name} (node {}): cost {}, optimal {}, stretch {:.2}, {} hops, header {} bits",
            route.dst,
            route.cost,
            metric.dist(0, route.dst),
            route.stretch(&metric),
            route.hop_count(),
            route.max_header_bits,
        );
        route.verify(&metric).expect("trace verifies");
    }

    println!("\nevery route is executed hop-by-hop over real edges and verified;");
    println!("stretch is guaranteed to be 9 + O(eps) — optimal by Theorem 1.3.");
}
