//! Bit-packed forwarding planes.
//!
//! The paper's whole point is that the routing tables are *compact* —
//! `(1/ε)^{O(α)} log²Δ` bits per node. Everything upstream of this module
//! audits those bit counts ([`crate::bits`], the conform crate); this
//! module is where the counts become an artifact you can *serve from*: an
//! immutable, contiguous `u64`-backed [`BitArena`] holding every node's
//! table fields back to back, plus the [`ForwardingPlane`] trait that
//! routes against the packed state.
//!
//! Conventions shared by every plane compiler:
//!
//! * Fields are written with [`BitArena::push`] in a fixed, documented
//!   order, using the [`crate::bits::FieldWidths`] vocabulary (node ids,
//!   labels, names and next hops at `node` width; distances at `dist`
//!   width; counts at `bits_for_count(n + 1)`).
//! * Structural counts (ring lengths, tree sizes, pair counts) are packed
//!   **in the arena**, so a decoder can walk the complete layout from bit
//!   0 without any side tables. The differential test layer round-trips
//!   `decode(encode(tables))` byte-exactly through [`BitArena::from_fields`].
//! * Planes keep in-memory *offset indices* (where node `u`'s section
//!   starts) for O(1) addressing — derived data, reconstructible from the
//!   arena alone.
//! * Planes are immutable after compilation and are stamped with the
//!   [`crate::maintain::Maintainer`] epoch they were compiled at; serving
//!   a stale plane after churn is a structured error
//!   ([`crate::maintain::MaintainError::StalePlane`]).
//!
//! The metric space itself (adjacency, edge weights, shortest paths) is
//! the *environment* a forwarding plane executes in, not part of its
//! table state — route methods take `&MetricSpace` exactly like the
//! reference schemes do, and every hop is validated by the same
//! [`crate::route::RouteRecorder`].

use doubling_metric::graph::NodeId;
use doubling_metric::space::MetricSpace;

use crate::route::{Route, RouteError};
use crate::scheme::{Label, Name};

/// A contiguous, immutable bit arena backed by `u64` words.
///
/// Fields are appended with [`BitArena::push`] and read back with
/// [`BitArena::read`] at arbitrary bit offsets. Bits are stored LSB-first
/// within each word, so offset `o` maps to word `o / 64`, bit `o % 64`.
///
/// # Examples
///
/// ```rust
/// use netsim::plane::BitArena;
///
/// let mut a = BitArena::new();
/// a.push(5, 3);
/// a.push(0x1ff, 9);
/// assert_eq!(a.read(0, 3), 5);
/// assert_eq!(a.read(3, 9), 0x1ff);
/// assert_eq!(a.len_bits(), 12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitArena {
    words: Vec<u64>,
    len_bits: u64,
}

impl BitArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bits written so far (also the offset the next [`Self::push`] lands
    /// at).
    #[inline]
    pub fn len_bits(&self) -> u64 {
        self.len_bits
    }

    /// The backing words (the last word's unused high bits are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Total packed size in bytes (rounded up to whole words).
    pub fn size_bytes(&self) -> u64 {
        self.words.len() as u64 * 8
    }

    /// Appends `value` as a `width`-bit field.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 64, or if `value` does not fit in
    /// `width` bits — a plane compiler packing an out-of-range field is a
    /// bug, not a recoverable condition.
    pub fn push(&mut self, value: u64, width: u64) {
        assert!((1..=64).contains(&width), "field width {width} out of range");
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value} does not fit in {width} bits"
        );
        let word = (self.len_bits / 64) as usize;
        let bit = self.len_bits % 64;
        if word >= self.words.len() {
            self.words.push(0);
        }
        self.words[word] |= value << bit;
        if bit + width > 64 {
            // Spills into the next word.
            self.words.push(value >> (64 - bit));
        }
        self.len_bits += width;
    }

    /// Reads a `width`-bit field at bit offset `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the field extends past the written length.
    #[inline]
    pub fn read(&self, offset: u64, width: u64) -> u64 {
        debug_assert!((1..=64).contains(&width));
        assert!(offset + width <= self.len_bits, "read past end of arena");
        let word = (offset / 64) as usize;
        let bit = offset % 64;
        let lo = self.words[word] >> bit;
        let val = if bit + width > 64 { lo | (self.words[word + 1] << (64 - bit)) } else { lo };
        if width == 64 {
            val
        } else {
            val & ((1u64 << width) - 1)
        }
    }

    /// Builds an arena from a `(value, width)` field stream — the inverse
    /// of a plane's structural decode. Used by the differential tests to
    /// prove `decode(encode(tables))` reproduces the arena byte-exactly.
    pub fn from_fields(fields: &[(u64, u64)]) -> Self {
        let mut a = BitArena::new();
        for &(v, w) in fields {
            a.push(v, w);
        }
        a
    }
}

/// A sequential reader over a [`BitArena`].
#[derive(Debug, Clone)]
pub struct BitCursor<'a> {
    arena: &'a BitArena,
    pos: u64,
}

impl<'a> BitCursor<'a> {
    /// A cursor starting at bit offset `pos`.
    pub fn new(arena: &'a BitArena, pos: u64) -> Self {
        BitCursor { arena, pos }
    }

    /// Current bit offset.
    #[inline]
    pub fn pos(&self) -> u64 {
        self.pos
    }

    /// Reads the next `width`-bit field and advances.
    #[inline]
    pub fn take(&mut self, width: u64) -> u64 {
        let v = self.arena.read(self.pos, width);
        self.pos += width;
        v
    }

    /// Reads the next `width`-bit field, records it into `out`, and
    /// advances — the structural-decode primitive behind the byte-exact
    /// round-trip tests.
    #[inline]
    pub fn take_recorded(&mut self, width: u64, out: &mut Vec<(u64, u64)>) -> u64 {
        let v = self.take(width);
        out.push((v, width));
        v
    }
}

/// An immutable, bit-packed forwarding plane compiled from one built
/// scheme.
///
/// The trait is object-safe and `Send + Sync` so one compiled plane can be
/// shared `Arc`-style across serving threads. The two query entry points
/// mirror the paper's two regimes: [`Self::route`] forwards toward a
/// *label* (the labeled schemes' native query; name-independent planes
/// delegate to their packed underlying scheme), and [`Self::route_named`]
/// forwards toward a *name* (native for name-independent planes; labeled
/// planes resolve the name through their compiled ingress directory).
///
/// Hop-identity contract: for every `(source, target)` the returned
/// [`Route`] is **equal** (`PartialEq`, i.e. hops, cost, segments, and
/// header bits all match) to the reference scheme's route — the packed
/// plane replays the exact decision procedure against packed state. The
/// differential layer in `crates/netsim/tests/proptest_plane.rs` enforces
/// this on random connected graphs.
pub trait ForwardingPlane: Send + Sync {
    /// Compiled scheme's name (e.g. `"net-labeled"`).
    fn plane_name(&self) -> &'static str;

    /// The maintainer epoch the plane was compiled at (0 when compiled
    /// outside any maintainer).
    fn epoch(&self) -> u64;

    /// Number of nodes the plane serves.
    fn n(&self) -> usize;

    /// Total packed table size in bits (the arena length; name-independent
    /// planes include their packed underlying plane).
    fn packed_bits(&self) -> u64;

    /// Routes from `src` toward the node labeled `target`, producing the
    /// same verified trace as the reference scheme.
    ///
    /// # Errors
    ///
    /// Exactly the reference scheme's errors (a lookup miss on a broken
    /// hierarchy, a hop-budget loop).
    fn route(&self, m: &MetricSpace, src: NodeId, target: Label) -> Result<Route, RouteError>;

    /// Routes from `src` toward the node named `name`.
    ///
    /// # Errors
    ///
    /// As [`Self::route`]; labeled planes compiled without a name
    /// directory report a [`RouteError::LookupFailed`] at the source.
    fn route_named(&self, m: &MetricSpace, src: NodeId, name: Name) -> Result<Route, RouteError>;

    /// First hop from `at` toward the node labeled `target` (`None` when
    /// already there) — the per-message forwarding decision.
    ///
    /// # Errors
    ///
    /// As [`Self::route`].
    fn next_hop(
        &self,
        m: &MetricSpace,
        at: NodeId,
        target: Label,
    ) -> Result<Option<NodeId>, RouteError> {
        Ok(self.route(m, at, target)?.hops.get(1).copied())
    }

    /// First hop from `at` toward the node named `name` (`None` when
    /// already there).
    ///
    /// # Errors
    ///
    /// As [`Self::route_named`].
    fn next_hop_named(
        &self,
        m: &MetricSpace,
        at: NodeId,
        name: Name,
    ) -> Result<Option<NodeId>, RouteError> {
        Ok(self.route_named(m, at, name)?.hops.get(1).copied())
    }
}

/// Widths every plane compiler packs into its arena header, so a decoder
/// can walk the layout from bit 0: the four [`crate::bits::FieldWidths`]
/// plus the structural-count width `bits_for_count(n + 1)`. Each width is
/// itself stored as a 7-bit field (widths never exceed 64).
pub const WIDTH_FIELD_BITS: u64 = 7;

/// Packs the five-width header (node, dist, level, size_exp, count) used
/// by every plane layout.
pub fn push_width_header(arena: &mut BitArena, w: &crate::bits::FieldWidths, count_width: u64) {
    for v in [w.node, w.dist, w.level, w.size_exp, count_width] {
        arena.push(v, WIDTH_FIELD_BITS);
    }
}

/// Reads back the five-width header, recording the fields into `out`.
/// Returns `(widths, count_width)`.
pub fn take_width_header(
    cur: &mut BitCursor<'_>,
    out: &mut Vec<(u64, u64)>,
) -> (crate::bits::FieldWidths, u64) {
    let node = cur.take_recorded(WIDTH_FIELD_BITS, out);
    let dist = cur.take_recorded(WIDTH_FIELD_BITS, out);
    let level = cur.take_recorded(WIDTH_FIELD_BITS, out);
    let size_exp = cur.take_recorded(WIDTH_FIELD_BITS, out);
    let count = cur.take_recorded(WIDTH_FIELD_BITS, out);
    (crate::bits::FieldWidths { node, dist, level, size_exp }, count)
}

/// Whether re-encoding `fields` reproduces `arena` exactly — word-for-word
/// and length-for-length. The shared assertion of every plane's
/// encode/decode round-trip test.
pub fn roundtrip_ok(arena: &BitArena, fields: &[(u64, u64)]) -> bool {
    let rebuilt = BitArena::from_fields(fields);
    rebuilt.words() == arena.words() && rebuilt.len_bits() == arena.len_bits()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_read_roundtrip_across_word_boundaries() {
        let mut a = BitArena::new();
        let fields: Vec<(u64, u64)> = vec![
            (1, 1),
            (0x7f, 7),
            (0xdead_beef, 32),
            (u64::MAX, 64),
            (0, 5),
            (0x3ff, 10),
            (42, 13),
        ];
        for &(v, w) in &fields {
            a.push(v, w);
        }
        let mut off = 0;
        for &(v, w) in &fields {
            assert_eq!(a.read(off, w), v, "field at offset {off} width {w}");
            off += w;
        }
        assert_eq!(a.len_bits(), off);
        assert!(roundtrip_ok(&a, &fields));
    }

    #[test]
    fn cursor_walks_sequentially_and_records() {
        let mut a = BitArena::new();
        a.push(3, 2);
        a.push(77, 50);
        a.push(1, 64);
        let mut out = Vec::new();
        let mut cur = BitCursor::new(&a, 0);
        assert_eq!(cur.take_recorded(2, &mut out), 3);
        assert_eq!(cur.take_recorded(50, &mut out), 77);
        assert_eq!(cur.take_recorded(64, &mut out), 1);
        assert_eq!(cur.pos(), a.len_bits());
        assert!(roundtrip_ok(&a, &out));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_panics() {
        BitArena::new().push(8, 3);
    }

    #[test]
    fn width_header_roundtrips() {
        let w = crate::bits::FieldWidths { node: 9, dist: 13, level: 3, size_exp: 4 };
        let mut a = BitArena::new();
        push_width_header(&mut a, &w, 10);
        let mut out = Vec::new();
        let (got, cnt) = take_width_header(&mut BitCursor::new(&a, 0), &mut out);
        assert_eq!(got, w);
        assert_eq!(cnt, 10);
        assert!(roundtrip_ok(&a, &out));
    }
}
