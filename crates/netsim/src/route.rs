//! Verified route traces.
//!
//! A [`Route`] is the full record of one packet delivery: the sequence of
//! nodes visited (over real graph edges), the exact total cost, the maximum
//! header size observed, and a segment decomposition used to regenerate the
//! paper's Figure 1 / Figure 2 route anatomies.
//!
//! Schemes build routes through a [`RouteRecorder`], which *enforces* that
//! consecutive hops are graph edges and charges their exact weights — a
//! scheme cannot accidentally teleport or undercount cost.

use std::fmt;

use doubling_metric::graph::{Dist, NodeId};
use doubling_metric::space::MetricSpace;

use crate::faults::FaultPlan;

/// Why a route failed. Without fault injection, any failure is a bug in a
/// scheme (the paper's schemes always deliver); surfacing them as errors
/// rather than panics lets the test suite assert their absence over large
/// samples. Under a [`FaultPlan`], the `NodeFailed` / `EdgeFailed`
/// variants are expected outcomes — a packet lost to churn — and are
/// counted by the reachability statistics rather than treated as bugs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// The destination's label/name was not found where the scheme expected
    /// it (e.g. a search-tree lookup failed).
    LookupFailed {
        /// Node at which the lookup failed.
        at: NodeId,
        /// Human-readable description of what was missing.
        detail: String,
    },
    /// The scheme exceeded its hop budget — a routing loop.
    HopBudgetExceeded {
        /// The budget that was exhausted.
        budget: usize,
    },
    /// The packet tried to enter (or originate at) a failed node.
    NodeFailed {
        /// The dead node.
        node: NodeId,
    },
    /// The packet tried to cross a failed edge.
    EdgeFailed {
        /// One endpoint of the dead edge.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
    /// Internal invariant violation.
    Internal(String),
}

impl RouteError {
    /// Whether this error is an expected fault-injection loss (as opposed
    /// to a scheme bug).
    pub fn is_fault(&self) -> bool {
        matches!(self, RouteError::NodeFailed { .. } | RouteError::EdgeFailed { .. })
    }
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::LookupFailed { at, detail } => {
                write!(f, "lookup failed at node {at}: {detail}")
            }
            RouteError::HopBudgetExceeded { budget } => {
                write!(f, "hop budget of {budget} exceeded (routing loop?)")
            }
            RouteError::NodeFailed { node } => write!(f, "node {node} has failed"),
            RouteError::EdgeFailed { u, v } => write!(f, "edge ({u}, {v}) has failed"),
            RouteError::Internal(s) => write!(f, "internal routing invariant violated: {s}"),
        }
    }
}

impl std::error::Error for RouteError {}

/// One phase of a route, for figure-style decompositions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Phase tag, e.g. `"zoom"`, `"search"`, `"final"`, `"ring-walk"`.
    pub label: &'static str,
    /// The hierarchy level the phase operated at, if meaningful.
    pub level: Option<u32>,
    /// Exact cost incurred during the phase.
    pub cost: Dist,
    /// Edge traversals during the phase. Edge weights are positive, so
    /// segment hop counts partition [`Route::hop_count`] exactly as
    /// segment costs partition [`Route::cost`].
    pub hops: usize,
}

/// A completed, verified route.
///
/// # Examples
///
/// ```rust
/// use doubling_metric::{gen, MetricSpace};
/// use netsim::RouteRecorder;
///
/// let m = MetricSpace::new(&gen::path(4));
/// let mut rec = RouteRecorder::new(&m, 0);
/// rec.walk_shortest(3).unwrap();
/// let route = rec.finish();
/// assert_eq!(route.cost, 3);
/// assert_eq!(route.stretch(&m), 1.0);
/// route.verify(&m).unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Source node.
    pub src: NodeId,
    /// Destination node actually reached.
    pub dst: NodeId,
    /// Every node visited, in order (`hops[0] == src`,
    /// `hops.last() == dst`; nodes may repeat).
    pub hops: Vec<NodeId>,
    /// Exact total cost (sum of traversed edge weights).
    pub cost: Dist,
    /// Maximum header size (bits) over all hops.
    pub max_header_bits: u64,
    /// Phase decomposition; segment costs sum to `cost`.
    pub segments: Vec<Segment>,
}

impl Route {
    /// `cost / d(src, dst)` — the stretch of this route. Returns 1.0 for
    /// `src == dst`.
    pub fn stretch(&self, m: &MetricSpace) -> f64 {
        if self.src == self.dst {
            return 1.0;
        }
        self.cost as f64 / m.dist(self.src, self.dst) as f64
    }

    /// [`Route::stretch`] against any distance backend: the denominator is
    /// [`doubling_metric::DistanceProvider::dist`], so exact backends reproduce
    /// [`Route::stretch`] bit for bit and estimated backends yield a
    /// *lower bound* on the true stretch (their `dist` is an upper bound
    /// on the true distance). The denominator is clamped to ≥ 1 so a
    /// degenerate estimate cannot divide by zero.
    pub fn stretch_with(&self, provider: &dyn doubling_metric::DistanceProvider) -> f64 {
        if self.src == self.dst {
            return 1.0;
        }
        self.cost as f64 / provider.dist(self.src, self.dst).max(1) as f64
    }

    /// Number of edge traversals.
    pub fn hop_count(&self) -> usize {
        self.hops.len().saturating_sub(1)
    }

    /// The `(segment label, level)` governing each edge traversal, in
    /// travel order — length [`Route::hop_count`]. Segment hop counts
    /// partition the route's hops exactly (the recorder invariant), but
    /// routes built without a recorder may carry no segments; any
    /// uncovered tail is labeled `"route"` with no level. Flight
    /// recorders use this to attribute each hop to its Figure-1/2 phase.
    pub fn hop_labels(&self) -> Vec<(&'static str, Option<u32>)> {
        let mut out = Vec::with_capacity(self.hop_count());
        for s in &self.segments {
            for _ in 0..s.hops {
                out.push((s.label, s.level));
            }
        }
        while out.len() < self.hop_count() {
            out.push(("route", None));
        }
        out
    }

    /// A human-readable one-route summary: endpoints, cost vs optimum,
    /// and the segment decomposition — used by examples and debugging
    /// sessions.
    pub fn describe(&self, m: &MetricSpace) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "route {} -> {}: cost {} (optimal {}), stretch {:.2}, {} hops, header {} b",
            self.src,
            self.dst,
            self.cost,
            m.dist(self.src, self.dst),
            self.stretch(m),
            self.hop_count(),
            self.max_header_bits
        );
        for s in &self.segments {
            match s.level {
                Some(l) => {
                    let _ = write!(out, "\n  {:>12}[{l}] cost {}", s.label, s.cost);
                }
                None => {
                    let _ = write!(out, "\n  {:>12}    cost {}", s.label, s.cost);
                }
            }
        }
        out
    }

    /// Re-verifies the trace against the graph: consecutive hops must be
    /// edges, the cost must equal the sum of weights, and segment costs
    /// must sum to the total.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation.
    pub fn verify(&self, m: &MetricSpace) -> Result<(), String> {
        if self.hops.first() != Some(&self.src) {
            return Err("route does not start at src".into());
        }
        if self.hops.last() != Some(&self.dst) {
            return Err("route does not end at dst".into());
        }
        let mut total: Dist = 0;
        for w in self.hops.windows(2) {
            if w[0] == w[1] {
                continue; // zero-cost stay (allowed for bookkeeping)
            }
            match m.graph().edge_weight(w[0], w[1]) {
                Some(wt) => total += wt,
                None => return Err(format!("hop {} -> {} is not an edge", w[0], w[1])),
            }
        }
        if total != self.cost {
            return Err(format!("cost mismatch: recorded {} actual {}", self.cost, total));
        }
        let seg_total: Dist = self.segments.iter().map(|s| s.cost).sum();
        if !self.segments.is_empty() && seg_total != self.cost {
            return Err(format!("segment costs sum to {seg_total}, route cost is {}", self.cost));
        }
        let seg_hops: usize = self.segments.iter().map(|s| s.hops).sum();
        if !self.segments.is_empty() && seg_hops != self.hop_count() {
            return Err(format!(
                "segment hops sum to {seg_hops}, route has {} hops",
                self.hop_count()
            ));
        }
        Ok(())
    }
}

/// Incremental builder for [`Route`], used inside scheme implementations.
///
/// The recorder borrows the metric so that every movement is validated and
/// exactly costed as it happens.
pub struct RouteRecorder<'m> {
    m: &'m MetricSpace,
    faults: Option<&'m FaultPlan>,
    hops: Vec<NodeId>,
    cost: Dist,
    max_header_bits: u64,
    segments: Vec<Segment>,
    seg_start_cost: Dist,
    seg_start_hops: usize,
    seg_label: &'static str,
    seg_level: Option<u32>,
    hop_budget: usize,
}

impl<'m> RouteRecorder<'m> {
    /// Starts a route at `src`. The default hop budget is `64·n + 64`,
    /// far above any compact scheme's worst case; exceeding it means a loop.
    pub fn new(m: &'m MetricSpace, src: NodeId) -> Self {
        RouteRecorder {
            m,
            faults: None,
            hops: vec![src],
            cost: 0,
            max_header_bits: 0,
            segments: Vec::new(),
            seg_start_cost: 0,
            seg_start_hops: 0,
            seg_label: "route",
            seg_level: None,
            hop_budget: 64 * m.n() + 64,
        }
    }

    /// Starts a fault-aware route at `src`: every subsequent hop is
    /// rejected if it enters a dead node or crosses a dead edge of
    /// `faults`.
    ///
    /// # Errors
    ///
    /// [`RouteError::NodeFailed`] immediately if the source itself is dead
    /// — a failed node cannot originate traffic.
    pub fn with_faults(
        m: &'m MetricSpace,
        src: NodeId,
        faults: &'m FaultPlan,
    ) -> Result<Self, RouteError> {
        if faults.is_node_dead(src) {
            return Err(RouteError::NodeFailed { node: src });
        }
        let mut rec = Self::new(m, src);
        rec.faults = Some(faults);
        Ok(rec)
    }

    /// The node the packet currently sits at.
    #[inline]
    pub fn current(&self) -> NodeId {
        *self.hops.last().expect("recorder always has at least the source")
    }

    /// Exact cost so far.
    #[inline]
    pub fn cost(&self) -> Dist {
        self.cost
    }

    /// Declares the serialized header size (bits) carried from now on; the
    /// route records the maximum.
    pub fn note_header_bits(&mut self, bits: u64) {
        self.max_header_bits = self.max_header_bits.max(bits);
    }

    /// Closes the current segment (if it accrued cost) and opens a new one.
    pub fn begin_segment(&mut self, label: &'static str, level: Option<u32>) {
        self.flush_segment();
        self.seg_label = label;
        self.seg_level = level;
    }

    fn flush_segment(&mut self) {
        let spent = self.cost - self.seg_start_cost;
        // Zero-cost phases are dropped (keeps single-phase zero-cost
        // routes clean); edge weights are positive, so a dropped phase
        // also made no hops.
        if spent > 0 {
            self.segments.push(Segment {
                label: self.seg_label,
                level: self.seg_level,
                cost: spent,
                hops: self.hops.len() - 1 - self.seg_start_hops,
            });
        }
        self.seg_start_cost = self.cost;
        self.seg_start_hops = self.hops.len() - 1;
    }

    /// Moves one hop to an adjacent node, charging the edge weight.
    ///
    /// # Errors
    ///
    /// Returns an error if `next` is not adjacent or the hop budget is
    /// exhausted.
    pub fn hop(&mut self, next: NodeId) -> Result<(), RouteError> {
        let cur = self.current();
        if cur == next {
            return Ok(());
        }
        let w = self.m.graph().edge_weight(cur, next).ok_or_else(|| {
            RouteError::Internal(format!("scheme attempted non-edge hop {cur} -> {next}"))
        })?;
        if let Some(faults) = self.faults {
            if faults.is_node_dead(next) {
                return Err(RouteError::NodeFailed { node: next });
            }
            if faults.is_edge_dead(cur, next) {
                return Err(RouteError::EdgeFailed { u: cur, v: next });
            }
        }
        if self.hops.len() > self.hop_budget {
            return Err(RouteError::HopBudgetExceeded { budget: self.hop_budget });
        }
        self.hops.push(next);
        self.cost += w;
        Ok(())
    }

    /// Walks the deterministic shortest path from the current node to
    /// `target`, charging `d(current, target)`.
    ///
    /// This is the primitive used to realize a stored "next hop toward x"
    /// chain or a search-tree virtual edge whose endpoints hold each other's
    /// underlying labels: the paper charges exactly the metric distance for
    /// such traversals (times the underlying scheme's `1+ε`, which callers
    /// model explicitly when they route via an underlying scheme instead).
    ///
    /// # Errors
    ///
    /// Propagates hop-budget exhaustion.
    pub fn walk_shortest(&mut self, target: NodeId) -> Result<(), RouteError> {
        let cur = self.current();
        if cur == target {
            return Ok(());
        }
        let path = self.m.path(cur, target);
        for &x in &path[1..] {
            self.hop(x)?;
        }
        Ok(())
    }

    /// Appends an already-executed sub-route (e.g. from an underlying
    /// labeled scheme). The sub-route must start at the current node; its
    /// hops are replayed and re-validated, and its header requirement is
    /// folded into this route's maximum.
    ///
    /// # Errors
    ///
    /// Returns an error if the sub-route does not start here or replay
    /// fails.
    pub fn absorb(&mut self, sub: &Route) -> Result<(), RouteError> {
        if sub.src != self.current() {
            return Err(RouteError::Internal(format!(
                "sub-route starts at {} but packet is at {}",
                sub.src,
                self.current()
            )));
        }
        for &x in &sub.hops[1..] {
            self.hop(x)?;
        }
        self.note_header_bits(sub.max_header_bits);
        Ok(())
    }

    /// Finishes the route at the current node.
    pub fn finish(mut self) -> Route {
        self.flush_segment();
        Route {
            src: self.hops[0],
            dst: self.current(),
            hops: self.hops,
            cost: self.cost,
            max_header_bits: self.max_header_bits,
            segments: self.segments,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doubling_metric::gen;

    #[test]
    fn recorder_walks_and_verifies() {
        let m = MetricSpace::new(&gen::grid(4, 4));
        let mut r = RouteRecorder::new(&m, 0);
        r.begin_segment("out", Some(1));
        r.walk_shortest(15).unwrap();
        r.begin_segment("back", None);
        r.walk_shortest(3).unwrap();
        r.note_header_bits(12);
        let route = r.finish();
        assert_eq!(route.src, 0);
        assert_eq!(route.dst, 3);
        assert_eq!(route.cost, m.dist(0, 15) + m.dist(15, 3));
        assert_eq!(route.max_header_bits, 12);
        route.verify(&m).unwrap();
        assert_eq!(route.segments.len(), 2);
        assert_eq!(route.segments[0].cost, m.dist(0, 15));
        // Segment hop counts partition the route's hops, like costs do.
        let seg_hops: usize = route.segments.iter().map(|s| s.hops).sum();
        assert_eq!(seg_hops, route.hop_count());
        assert!(route.segments.iter().all(|s| s.hops > 0));
    }

    #[test]
    fn non_edge_hop_rejected() {
        let m = MetricSpace::new(&gen::grid(4, 4));
        let mut r = RouteRecorder::new(&m, 0);
        assert!(matches!(r.hop(15), Err(RouteError::Internal(_))));
    }

    #[test]
    fn self_hop_is_free() {
        let m = MetricSpace::new(&gen::grid(3, 3));
        let mut r = RouteRecorder::new(&m, 4);
        r.hop(4).unwrap();
        let route = r.finish();
        assert_eq!(route.cost, 0);
        assert_eq!(route.hop_count(), 0);
        assert_eq!(route.stretch(&m), 1.0);
    }

    #[test]
    fn absorb_validates_start() {
        let m = MetricSpace::new(&gen::path(5));
        let mut a = RouteRecorder::new(&m, 0);
        a.walk_shortest(2).unwrap();
        let sub = a.finish();

        let mut b = RouteRecorder::new(&m, 0);
        b.walk_shortest(1).unwrap();
        // sub starts at 0 but packet is at 1.
        assert!(b.absorb(&sub).is_err());

        let mut c = RouteRecorder::new(&m, 0);
        c.absorb(&sub).unwrap();
        assert_eq!(c.current(), 2);
        assert_eq!(c.cost(), 2);
    }

    #[test]
    fn verify_catches_cost_mismatch() {
        let m = MetricSpace::new(&gen::path(4));
        let mut r = RouteRecorder::new(&m, 0);
        r.walk_shortest(3).unwrap();
        let mut route = r.finish();
        route.cost += 1;
        assert!(route.verify(&m).is_err());
    }

    #[test]
    fn stretch_of_detour() {
        let m = MetricSpace::new(&gen::ring(8));
        let mut r = RouteRecorder::new(&m, 0);
        // Go the long way around to node 1: 7 hops instead of 1.
        for x in [7, 6, 5, 4, 3, 2, 1] {
            r.hop(x).unwrap();
        }
        let route = r.finish();
        assert_eq!(route.cost, 7);
        assert!((route.stretch(&m) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn hop_budget_catches_loops() {
        let m = MetricSpace::new(&gen::path(3));
        let mut r = RouteRecorder::new(&m, 0);
        let result = (0..10_000).try_for_each(|_| {
            r.hop(1)?;
            r.hop(0)
        });
        assert!(matches!(result, Err(RouteError::HopBudgetExceeded { .. })));
    }
}
