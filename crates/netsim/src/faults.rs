//! Fault injection: failure plans, adversarial removal strategies, and the
//! surviving subnetwork used to measure rebuild cost.
//!
//! The paper proves its guarantees on *static* networks; a deployed
//! routing scheme meets churn. This module supplies the vocabulary the
//! churn experiments need:
//!
//! * A [`FaultPlan`] is a set of dead nodes and dead edges. Plans are built
//!   by removal strategies — uniformly random ([`FaultPlan::random_nodes`],
//!   [`FaultPlan::random_edges`]), targeted at high-degree nodes
//!   ([`FaultPlan::targeted_by_degree`]), or targeted at the net centers of
//!   the paper's hierarchies ([`FaultPlan::targeted_net_centers`]) — the
//!   natural adversarial target, since a level-`i` net center carries the
//!   search-tree and zoom traffic of its whole level-`i` cell.
//! * **Stale-table routing**: [`crate::route::RouteRecorder::with_faults`]
//!   rejects any hop into a dead node or over a dead edge, so a route
//!   computed from pre-failure tables is delivered only if its realized
//!   path avoids every casualty. [`FaultPlan::check_route`] replays a
//!   finished route under this rule.
//! * **Rebuild**: [`SurvivingNetwork`] extracts the largest connected
//!   component of the post-failure graph with a fresh [`MetricSpace`], so
//!   callers can re-run preprocessing and measure its wall-clock cost and
//!   the recovered reachability.
//! * **Dynamic faults**: a [`FaultTimeline`] strings cumulative plans into
//!   epochs that advance with the packet's hop count, so failures can land
//!   *mid-route*; the [`crate::recovery`] runtime drives deliveries
//!   against it. Plans and timelines serialize via
//!   [`FaultPlan::to_json`] / [`FaultTimeline::to_json`], which is how the
//!   chaos campaign's worst-case fault sets stay reproducible from
//!   `results/recovery.json`.
//!
//! # Example
//!
//! ```rust
//! use doubling_metric::{gen, MetricSpace};
//! use netsim::baseline::FullTable;
//! use netsim::faults::FaultPlan;
//! use netsim::scheme::LabeledScheme;
//!
//! let m = MetricSpace::new(&gen::grid(4, 4));
//! let scheme = FullTable::new(&m);
//! let mut plan = FaultPlan::none(m.n());
//! plan.kill_node(5); // on the shortest 0 → 15 route's path? replay decides
//! let stale = scheme.route_with_faults(&m, 0, scheme.label_of(15), &plan);
//! // Either the packet got through on a survivor path, or it was lost at a
//! // dead element — never silently misdelivered.
//! if let Ok(route) = &stale {
//!     assert!(route.hops.iter().all(|&h| !plan.is_node_dead(h)));
//! }
//! ```

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use doubling_metric::graph::{Graph, GraphBuilder, NodeId};
use doubling_metric::nets::NetHierarchy;
use doubling_metric::space::MetricSpace;

use crate::json::Value;
use crate::route::{Route, RouteError, RouteRecorder};

/// Why a [`FaultTimeline`] schedule is invalid.
///
/// Produced by [`FaultTimeline::new`]; [`FaultTimeline::from_json`] wraps
/// it in [`FaultJsonError::InvalidTimeline`] when a decoded document
/// parses but fails these semantic checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimelineError {
    /// The epoch list is empty — a timeline needs at least one plan.
    NoEpochs,
    /// More than one epoch was given with `hops_per_epoch == 0`, so the
    /// later epochs could never activate.
    ZeroHopsPerEpoch,
    /// Consecutive epochs cover different node counts.
    NodeCountMismatch {
        /// Node count of the earlier epoch in the offending pair.
        prev: usize,
        /// Node count of the later epoch.
        next: usize,
    },
    /// A casualty of an earlier epoch is alive again in a later one;
    /// failures must accumulate, nothing resurrects.
    NotCumulative {
        /// Index of the later epoch that dropped a casualty.
        epoch: usize,
    },
}

impl std::fmt::Display for TimelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimelineError::NoEpochs => write!(f, "timeline needs at least one epoch"),
            TimelineError::ZeroHopsPerEpoch => {
                write!(f, "multi-epoch timeline needs hops_per_epoch >= 1")
            }
            TimelineError::NodeCountMismatch { prev, next } => {
                write!(f, "timeline epochs cover different node counts ({prev} then {next})")
            }
            TimelineError::NotCumulative { epoch } => {
                write!(
                    f,
                    "timeline epoch {epoch} resurrects a casualty of the epoch before it \
                     (failures must be cumulative)"
                )
            }
        }
    }
}

impl std::error::Error for TimelineError {}

/// Why a fault JSON document failed to decode.
///
/// Produced by [`FaultPlan::from_json`] and [`FaultTimeline::from_json`].
/// Structural problems (missing fields, wrong shapes, out-of-range ids)
/// get their own variants; a document that parses but encodes an invalid
/// schedule surfaces as [`FaultJsonError::InvalidTimeline`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultJsonError {
    /// A required field is missing or has the wrong JSON type.
    MissingField {
        /// Name of the absent or mistyped field.
        field: &'static str,
    },
    /// An entry of `dead_nodes` is not a non-negative integer.
    NodeNotIntegral,
    /// A dead node id is outside `0..n`.
    NodeOutOfRange {
        /// The offending node id as written in the document.
        node: u64,
        /// The plan's node count.
        n: usize,
    },
    /// An entry of `dead_edges` is not a two-element `[u, v]` array of
    /// non-negative integers.
    MalformedEdge,
    /// A dead edge names an endpoint outside `0..n`.
    EdgeOutOfRange {
        /// First endpoint as written in the document.
        u: u64,
        /// Second endpoint.
        v: u64,
        /// The plan's node count.
        n: usize,
    },
    /// The decoded epochs do not form a valid [`FaultTimeline`].
    InvalidTimeline(TimelineError),
}

impl std::fmt::Display for FaultJsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultJsonError::MissingField { field } => {
                write!(f, "fault JSON missing or mistyped field `{field}`")
            }
            FaultJsonError::NodeNotIntegral => write!(f, "dead node is not integral"),
            FaultJsonError::NodeOutOfRange { node, n } => {
                write!(f, "dead node {node} out of range (n = {n})")
            }
            FaultJsonError::MalformedEdge => write!(f, "dead edge is not a [u, v] pair"),
            FaultJsonError::EdgeOutOfRange { u, v, n } => {
                write!(f, "dead edge ({u}, {v}) out of range (n = {n})")
            }
            FaultJsonError::InvalidTimeline(e) => write!(f, "decoded timeline is invalid: {e}"),
        }
    }
}

impl std::error::Error for FaultJsonError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FaultJsonError::InvalidTimeline(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TimelineError> for FaultJsonError {
    fn from(e: TimelineError) -> Self {
        FaultJsonError::InvalidTimeline(e)
    }
}

/// A set of failed nodes and edges to inject into routing.
///
/// The plan is independent of any scheme: the same plan can be applied to
/// every scheme under test, which is what makes per-scheme degradation
/// curves comparable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// `dead[v]` — node `v` has failed.
    dead_nodes: Vec<bool>,
    /// Dead edges in canonical `(min, max)` form. Edges incident to dead
    /// nodes are implicitly dead and not stored here.
    dead_edges: HashSet<(NodeId, NodeId)>,
    dead_node_count: usize,
}

impl FaultPlan {
    /// The empty plan on `n` nodes: nothing fails, and fault-aware routing
    /// is byte-identical to plain routing.
    pub fn none(n: usize) -> Self {
        FaultPlan { dead_nodes: vec![false; n], dead_edges: HashSet::new(), dead_node_count: 0 }
    }

    /// Number of nodes the plan covers.
    pub fn n(&self) -> usize {
        self.dead_nodes.len()
    }

    /// `true` if nothing fails under this plan.
    pub fn is_empty(&self) -> bool {
        self.dead_node_count == 0 && self.dead_edges.is_empty()
    }

    /// Marks node `v` failed.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn kill_node(&mut self, v: NodeId) {
        if !self.dead_nodes[v as usize] {
            self.dead_nodes[v as usize] = true;
            self.dead_node_count += 1;
        }
    }

    /// Marks the undirected edge `(u, v)` failed.
    pub fn kill_edge(&mut self, u: NodeId, v: NodeId) {
        self.dead_edges.insert((u.min(v), u.max(v)));
    }

    /// Whether node `v` has failed.
    #[inline]
    pub fn is_node_dead(&self, v: NodeId) -> bool {
        self.dead_nodes[v as usize]
    }

    /// Whether the edge `(u, v)` has failed — directly, or because an
    /// endpoint is dead.
    #[inline]
    pub fn is_edge_dead(&self, u: NodeId, v: NodeId) -> bool {
        self.is_node_dead(u)
            || self.is_node_dead(v)
            || self.dead_edges.contains(&(u.min(v), u.max(v)))
    }

    /// Number of failed nodes.
    pub fn dead_node_count(&self) -> usize {
        self.dead_node_count
    }

    /// Number of directly failed edges (not counting edges lost to dead
    /// endpoints).
    pub fn dead_edge_count(&self) -> usize {
        self.dead_edges.len()
    }

    /// The surviving node ids, ascending.
    pub fn alive_nodes(&self) -> Vec<NodeId> {
        (0..self.n() as NodeId).filter(|&v| !self.is_node_dead(v)).collect()
    }

    /// How many nodes a `fraction` in `[0, 1]` removes from `n` (rounded,
    /// capped at `n`).
    fn removal_count(n: usize, fraction: f64) -> usize {
        assert!((0.0..=1.0).contains(&fraction), "removal fraction out of [0, 1]");
        ((n as f64 * fraction).round() as usize).min(n)
    }

    /// Kills a uniformly random `fraction` of the `n` nodes (deterministic
    /// in `seed`).
    pub fn random_nodes(n: usize, fraction: f64, seed: u64) -> Self {
        let mut order: Vec<NodeId> = (0..n as NodeId).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        Self::targeted_by_order(&order, n, fraction)
    }

    /// Kills a uniformly random `fraction` of the edges (deterministic in
    /// `seed`). Nodes all survive; only links fail.
    pub fn random_edges(g: &Graph, fraction: f64, seed: u64) -> Self {
        let mut edges: Vec<(NodeId, NodeId)> = g.edges().map(|(u, v, _)| (u, v)).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        edges.shuffle(&mut rng);
        let k = Self::removal_count(edges.len(), fraction);
        let mut plan = Self::none(g.node_count());
        for &(u, v) in &edges[..k] {
            plan.kill_edge(u, v);
        }
        plan
    }

    /// Kills the `fraction` of nodes with the highest degree (ties broken
    /// by least id) — the classic "targeted attack" of the scale-free
    /// robustness literature.
    pub fn targeted_by_degree(g: &Graph, fraction: f64) -> Self {
        let mut order: Vec<NodeId> = (0..g.node_count() as NodeId).collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
        Self::targeted_by_order(&order, g.node_count(), fraction)
    }

    /// Kills the `fraction` of nodes that appear in the highest net levels
    /// (ties broken by least id). Net centers are where the paper's
    /// hierarchies concentrate responsibility, so this is the adversarial
    /// strategy tailored to these schemes.
    pub fn targeted_net_centers(nets: &NetHierarchy, n: usize, fraction: f64) -> Self {
        let mut order: Vec<NodeId> = (0..n as NodeId).collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(nets.max_level_of(v)), v));
        Self::targeted_by_order(&order, n, fraction)
    }

    /// Kills the first `fraction · n` nodes of an explicit priority order.
    /// The building block behind the targeted strategies; exposed so
    /// experiments can plug in their own orderings.
    ///
    /// # Panics
    ///
    /// Panics if `order` has fewer entries than the number to remove.
    pub fn targeted_by_order(order: &[NodeId], n: usize, fraction: f64) -> Self {
        let k = Self::removal_count(n, fraction);
        assert!(order.len() >= k, "priority order shorter than removal count");
        let mut plan = Self::none(n);
        for &v in &order[..k] {
            plan.kill_node(v);
        }
        plan
    }

    /// Replays a finished route under this plan through a fault-aware
    /// [`RouteRecorder`]: delivery stands only if no hop enters a dead node
    /// or crosses a dead edge.
    ///
    /// # Errors
    ///
    /// [`RouteError::NodeFailed`] / [`RouteError::EdgeFailed`] at the first
    /// casualty on the path (including a dead source).
    pub fn check_route(&self, m: &MetricSpace, route: &Route) -> Result<(), RouteError> {
        let mut rec = RouteRecorder::with_faults(m, route.src, self)?;
        for &x in &route.hops[1..] {
            rec.hop(x)?;
        }
        Ok(())
    }

    /// Whether every casualty of `self` is also a casualty of `other`.
    /// This is the invariant [`FaultTimeline::new`] enforces between
    /// consecutive epochs: failures accumulate, nothing resurrects.
    pub fn is_subset_of(&self, other: &FaultPlan) -> bool {
        self.n() == other.n()
            && (0..self.n() as NodeId).all(|v| !self.is_node_dead(v) || other.is_node_dead(v))
            && self.dead_edges.iter().all(|&(u, v)| other.is_edge_dead(u, v))
    }

    /// The directly-killed edges in canonical `(min, max)` form, ascending.
    pub fn dead_edges_sorted(&self) -> Vec<(NodeId, NodeId)> {
        let mut es: Vec<(NodeId, NodeId)> = self.dead_edges.iter().copied().collect();
        es.sort_unstable();
        es
    }

    /// Encodes the plan as
    /// `{"n": …, "dead_nodes": […], "dead_edges": [[u, v], …]}` (both
    /// lists ascending, so equal plans encode identically).
    pub fn to_json(&self) -> Value {
        let nodes: Vec<Value> =
            (0..self.n() as NodeId).filter(|&v| self.is_node_dead(v)).map(Value::from).collect();
        let edges: Vec<Value> = self
            .dead_edges_sorted()
            .into_iter()
            .map(|(u, v)| Value::Array(vec![u.into(), v.into()]))
            .collect();
        Value::Object(vec![
            ("n".into(), self.n().into()),
            ("dead_nodes".into(), Value::Array(nodes)),
            ("dead_edges".into(), Value::Array(edges)),
        ])
    }

    /// Decodes a plan written by [`FaultPlan::to_json`].
    ///
    /// # Errors
    ///
    /// A [`FaultJsonError`] naming the structural problem: a missing or
    /// mistyped field, a malformed edge pair, or an id outside `0..n`.
    pub fn from_json(v: &Value) -> Result<Self, FaultJsonError> {
        let n =
            v.get("n").and_then(Value::as_u64).ok_or(FaultJsonError::MissingField { field: "n" })?
                as usize;
        let mut plan = FaultPlan::none(n);
        let nodes = v
            .get("dead_nodes")
            .and_then(Value::as_array)
            .ok_or(FaultJsonError::MissingField { field: "dead_nodes" })?;
        for x in nodes {
            let node = x.as_u64().ok_or(FaultJsonError::NodeNotIntegral)?;
            if node as usize >= n {
                return Err(FaultJsonError::NodeOutOfRange { node, n });
            }
            plan.kill_node(node as NodeId);
        }
        let edges = v
            .get("dead_edges")
            .and_then(Value::as_array)
            .ok_or(FaultJsonError::MissingField { field: "dead_edges" })?;
        for e in edges {
            let pair = e.as_array().ok_or(FaultJsonError::MalformedEdge)?;
            if pair.len() != 2 {
                return Err(FaultJsonError::MalformedEdge);
            }
            let u = pair[0].as_u64().ok_or(FaultJsonError::MalformedEdge)?;
            let w = pair[1].as_u64().ok_or(FaultJsonError::MalformedEdge)?;
            if u as usize >= n || w as usize >= n {
                return Err(FaultJsonError::EdgeOutOfRange { u, v: w, n });
            }
            plan.kill_edge(u as NodeId, w as NodeId);
        }
        Ok(plan)
    }
}

/// A dynamic fault schedule: *cumulative* [`FaultPlan`] epochs that
/// advance with a packet's hop count, so failures land mid-route.
///
/// Epoch `k` is active while the packet has taken `k·hops_per_epoch ..
/// (k+1)·hops_per_epoch` hops; the last epoch stays active forever. Every
/// epoch must contain all casualties of the one before it (checked by
/// [`FaultTimeline::new`] via [`FaultPlan::is_subset_of`]): failures
/// accumulate, nothing resurrects.
///
/// The single-epoch form ([`FaultTimeline::from_plan`], with
/// `hops_per_epoch == 0`) reproduces static [`FaultPlan`] semantics
/// exactly — the equivalence the recovery test-suite pins down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultTimeline {
    epochs: Vec<FaultPlan>,
    hops_per_epoch: usize,
}

impl FaultTimeline {
    /// The static timeline: one epoch, active for the whole delivery.
    pub fn from_plan(plan: FaultPlan) -> Self {
        FaultTimeline { epochs: vec![plan], hops_per_epoch: 0 }
    }

    /// A timeline from explicit epochs, each active for `hops_per_epoch`
    /// hops (the last one indefinitely).
    ///
    /// # Errors
    ///
    /// Rejects an empty epoch list, a multi-epoch schedule with
    /// `hops_per_epoch == 0`, epochs covering different node counts, and
    /// non-cumulative epochs (a casualty that resurrects).
    pub fn new(epochs: Vec<FaultPlan>, hops_per_epoch: usize) -> Result<Self, TimelineError> {
        if epochs.is_empty() {
            return Err(TimelineError::NoEpochs);
        }
        if epochs.len() > 1 && hops_per_epoch == 0 {
            return Err(TimelineError::ZeroHopsPerEpoch);
        }
        for (i, w) in epochs.windows(2).enumerate() {
            if w[0].n() != w[1].n() {
                return Err(TimelineError::NodeCountMismatch { prev: w[0].n(), next: w[1].n() });
            }
            if !w[0].is_subset_of(&w[1]) {
                return Err(TimelineError::NotCumulative { epoch: i + 1 });
            }
        }
        Ok(FaultTimeline { epochs, hops_per_epoch })
    }

    /// Number of nodes every epoch covers.
    pub fn n(&self) -> usize {
        self.epochs[0].n()
    }

    /// Number of epochs.
    pub fn num_epochs(&self) -> usize {
        self.epochs.len()
    }

    /// Hops per epoch (0 = static single epoch).
    pub fn hops_per_epoch(&self) -> usize {
        self.hops_per_epoch
    }

    /// The epochs, in activation order.
    pub fn epochs(&self) -> &[FaultPlan] {
        &self.epochs
    }

    /// The epoch index active after `hops_taken` hops.
    pub fn epoch_at(&self, hops_taken: usize) -> usize {
        match hops_taken.checked_div(self.hops_per_epoch) {
            Some(epoch) => epoch.min(self.epochs.len() - 1),
            None => 0,
        }
    }

    /// The plan active after `hops_taken` hops.
    pub fn active(&self, hops_taken: usize) -> &FaultPlan {
        &self.epochs[self.epoch_at(hops_taken)]
    }

    /// The plan active when a packet departs (epoch 0).
    pub fn initial(&self) -> &FaultPlan {
        &self.epochs[0]
    }

    /// The last epoch's plan — the full accumulated damage.
    pub fn final_plan(&self) -> &FaultPlan {
        self.epochs.last().expect("timeline has at least one epoch")
    }

    /// Replays a finished route epoch-aware: hop number `i` (0-based) is
    /// checked against [`FaultTimeline::active`]`(i)`. Zero-cost stays
    /// (`hops[i] == hops[i+1]`) advance no epoch, matching the recovery
    /// runtime's hop accounting. Adjacency and cost are [`Route::verify`]'s
    /// job, not this one's.
    ///
    /// # Errors
    ///
    /// [`RouteError::NodeFailed`] / [`RouteError::EdgeFailed`] at the first
    /// hop that enters a dead node or crosses a dead edge of its epoch
    /// (including a source dead at departure).
    pub fn check_route(&self, route: &Route) -> Result<(), RouteError> {
        if self.initial().is_node_dead(route.src) {
            return Err(RouteError::NodeFailed { node: route.src });
        }
        let mut hops_taken = 0usize;
        for w in route.hops.windows(2) {
            let (cur, next) = (w[0], w[1]);
            if cur == next {
                continue;
            }
            let plan = self.active(hops_taken);
            if plan.is_node_dead(next) {
                return Err(RouteError::NodeFailed { node: next });
            }
            if plan.is_edge_dead(cur, next) {
                return Err(RouteError::EdgeFailed { u: cur, v: next });
            }
            hops_taken += 1;
        }
        Ok(())
    }

    /// Encodes the timeline as
    /// `{"hops_per_epoch": …, "epochs": [plan, …]}`.
    pub fn to_json(&self) -> Value {
        Value::Object(vec![
            ("hops_per_epoch".into(), self.hops_per_epoch.into()),
            ("epochs".into(), Value::Array(self.epochs.iter().map(FaultPlan::to_json).collect())),
        ])
    }

    /// Decodes a timeline written by [`FaultTimeline::to_json`].
    ///
    /// # Errors
    ///
    /// As [`FaultPlan::from_json`] for each epoch, plus
    /// [`FaultJsonError::InvalidTimeline`] when the decoded epochs fail
    /// the [`FaultTimeline::new`] validity checks.
    pub fn from_json(v: &Value) -> Result<Self, FaultJsonError> {
        let hops_per_epoch = v
            .get("hops_per_epoch")
            .and_then(Value::as_u64)
            .ok_or(FaultJsonError::MissingField { field: "hops_per_epoch" })?
            as usize;
        let epochs = v
            .get("epochs")
            .and_then(Value::as_array)
            .ok_or(FaultJsonError::MissingField { field: "epochs" })?
            .iter()
            .map(FaultPlan::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FaultTimeline::new(epochs, hops_per_epoch)?)
    }
}

/// The largest connected component of the graph that survives a
/// [`FaultPlan`], with id mappings between the original and rebuilt
/// networks.
///
/// Rebuilding a scheme means re-running its preprocessing on
/// [`SurvivingNetwork::metric`]; the churn experiment times exactly that.
pub struct SurvivingNetwork {
    /// Metric of the surviving component (node ids are re-compacted).
    pub metric: MetricSpace,
    to_new: Vec<Option<NodeId>>,
    to_old: Vec<NodeId>,
}

impl SurvivingNetwork {
    /// Extracts the largest surviving component (ties broken toward the
    /// component containing the smallest node id). Returns `None` if every
    /// node failed.
    pub fn build(g: &Graph, plan: &FaultPlan) -> Option<Self> {
        let n = g.node_count();
        assert_eq!(plan.n(), n, "plan covers a different node count than the graph");
        // Connected components over surviving nodes and edges.
        let mut comp = vec![usize::MAX; n];
        let mut comp_sizes: Vec<usize> = Vec::new();
        for start in 0..n as NodeId {
            if plan.is_node_dead(start) || comp[start as usize] != usize::MAX {
                continue;
            }
            let id = comp_sizes.len();
            let mut size = 0usize;
            let mut stack = vec![start];
            comp[start as usize] = id;
            while let Some(u) = stack.pop() {
                size += 1;
                for nb in g.neighbors(u) {
                    if comp[nb.node as usize] == usize::MAX && !plan.is_edge_dead(u, nb.node) {
                        comp[nb.node as usize] = id;
                        stack.push(nb.node);
                    }
                }
            }
            comp_sizes.push(size);
        }
        let best =
            comp_sizes.iter().enumerate().max_by_key(|&(i, &s)| (s, std::cmp::Reverse(i)))?.0;
        let to_old: Vec<NodeId> = (0..n as NodeId).filter(|&v| comp[v as usize] == best).collect();
        let mut to_new = vec![None; n];
        for (new, &old) in to_old.iter().enumerate() {
            to_new[old as usize] = Some(new as NodeId);
        }
        let mut b = GraphBuilder::new(to_old.len());
        for (u, v, w) in g.edges() {
            if let (Some(nu), Some(nv)) = (to_new[u as usize], to_new[v as usize]) {
                if !plan.is_edge_dead(u, v) {
                    b.edge(nu, nv, w).expect("surviving edge is valid");
                }
            }
        }
        let graph = b.build().expect("largest surviving component is connected");
        Some(SurvivingNetwork { metric: MetricSpace::from_graph(graph), to_new, to_old })
    }

    /// Nodes in the surviving component.
    pub fn n(&self) -> usize {
        self.to_old.len()
    }

    /// The rebuilt id of original node `old`, if it survived into the
    /// largest component.
    pub fn new_id(&self, old: NodeId) -> Option<NodeId> {
        self.to_new[old as usize]
    }

    /// The original id of rebuilt node `new`.
    ///
    /// # Panics
    ///
    /// Panics if `new` is out of range.
    pub fn old_id(&self, new: NodeId) -> NodeId {
        self.to_old[new as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doubling_metric::gen;

    #[test]
    fn empty_plan_is_empty() {
        let plan = FaultPlan::none(10);
        assert!(plan.is_empty());
        assert_eq!(plan.dead_node_count(), 0);
        assert_eq!(plan.alive_nodes().len(), 10);
        assert!(!plan.is_edge_dead(0, 1));
    }

    #[test]
    fn node_kill_implies_incident_edges_dead() {
        let mut plan = FaultPlan::none(4);
        plan.kill_node(2);
        plan.kill_node(2); // idempotent
        assert_eq!(plan.dead_node_count(), 1);
        assert!(plan.is_node_dead(2));
        assert!(plan.is_edge_dead(2, 3));
        assert!(plan.is_edge_dead(1, 2));
        assert!(!plan.is_edge_dead(0, 1));
    }

    #[test]
    fn edge_kill_is_undirected() {
        let mut plan = FaultPlan::none(4);
        plan.kill_edge(3, 1);
        assert!(plan.is_edge_dead(1, 3));
        assert!(plan.is_edge_dead(3, 1));
        assert!(!plan.is_node_dead(1));
        assert_eq!(plan.dead_edge_count(), 1);
    }

    #[test]
    fn random_removal_hits_requested_fraction() {
        let plan = FaultPlan::random_nodes(100, 0.2, 7);
        assert_eq!(plan.dead_node_count(), 20);
        // Deterministic in the seed.
        assert_eq!(plan, FaultPlan::random_nodes(100, 0.2, 7));
        assert_ne!(plan, FaultPlan::random_nodes(100, 0.2, 8));
    }

    #[test]
    fn degree_targeting_kills_hubs_first() {
        // A star: node 0 has degree 5, everyone else degree 1.
        let mut b = doubling_metric::graph::GraphBuilder::new(6);
        for v in 1..6 {
            b.edge(0, v, 1).unwrap();
        }
        let g = b.build().unwrap();
        let plan = FaultPlan::targeted_by_degree(&g, 0.2); // 1 node
        assert!(plan.is_node_dead(0));
        assert_eq!(plan.dead_node_count(), 1);
    }

    #[test]
    fn surviving_network_takes_largest_component() {
        // Path 0-1-2-3-4; killing 1 leaves {0} and {2,3,4}.
        let m = MetricSpace::new(&gen::path(5));
        let mut plan = FaultPlan::none(5);
        plan.kill_node(1);
        let s = SurvivingNetwork::build(m.graph(), &plan).unwrap();
        assert_eq!(s.n(), 3);
        assert_eq!(s.new_id(0), None);
        assert_eq!(s.new_id(1), None);
        assert_eq!(s.new_id(2), Some(0));
        assert_eq!(s.old_id(2), 4);
        assert_eq!(s.metric.dist(0, 2), 2);
    }

    #[test]
    fn surviving_network_respects_dead_edges() {
        // Ring of 6; killing edges (0,1) and (3,4) splits it into two arcs.
        let m = MetricSpace::new(&gen::ring(6));
        let mut plan = FaultPlan::none(6);
        plan.kill_edge(0, 1);
        plan.kill_edge(3, 4);
        let s = SurvivingNetwork::build(m.graph(), &plan).unwrap();
        assert_eq!(s.n(), 3); // arcs {1,2,3} and {4,5,0}: tie → smaller id
        assert!(s.new_id(0).is_some());
    }

    #[test]
    fn total_failure_yields_none() {
        let m = MetricSpace::new(&gen::path(3));
        let plan = FaultPlan::targeted_by_order(&[0, 1, 2], 3, 1.0);
        assert!(SurvivingNetwork::build(m.graph(), &plan).is_none());
    }

    #[test]
    fn plan_json_round_trips() {
        let mut plan = FaultPlan::none(8);
        plan.kill_node(3);
        plan.kill_node(6);
        plan.kill_edge(5, 1);
        let v = plan.to_json();
        assert_eq!(FaultPlan::from_json(&v).unwrap(), plan);
        // Equal plans encode identically (lists are sorted).
        let text = v.to_string_pretty();
        assert_eq!(text, plan.clone().to_json().to_string_pretty());
        assert_eq!(FaultPlan::from_json(&Value::parse(&text).unwrap()).unwrap(), plan);
        // Out-of-range nodes are rejected, not silently dropped.
        let bad = Value::parse(r#"{"n": 2, "dead_nodes": [5], "dead_edges": []}"#).unwrap();
        assert!(FaultPlan::from_json(&bad).is_err());
    }

    #[test]
    fn plan_json_errors_are_structured() {
        let parse = |s: &str| FaultPlan::from_json(&Value::parse(s).unwrap());
        assert_eq!(
            parse(r#"{"dead_nodes": [], "dead_edges": []}"#),
            Err(FaultJsonError::MissingField { field: "n" })
        );
        assert_eq!(
            parse(r#"{"n": 3, "dead_edges": []}"#),
            Err(FaultJsonError::MissingField { field: "dead_nodes" })
        );
        assert_eq!(
            parse(r#"{"n": 3, "dead_nodes": [], "dead_edges": 7}"#),
            Err(FaultJsonError::MissingField { field: "dead_edges" })
        );
        assert_eq!(
            parse(r#"{"n": 3, "dead_nodes": ["x"], "dead_edges": []}"#),
            Err(FaultJsonError::NodeNotIntegral)
        );
        assert_eq!(
            parse(r#"{"n": 2, "dead_nodes": [5], "dead_edges": []}"#),
            Err(FaultJsonError::NodeOutOfRange { node: 5, n: 2 })
        );
        assert_eq!(
            parse(r#"{"n": 3, "dead_nodes": [], "dead_edges": [[0, 1, 2]]}"#),
            Err(FaultJsonError::MalformedEdge)
        );
        assert_eq!(
            parse(r#"{"n": 3, "dead_nodes": [], "dead_edges": [[0, 9]]}"#),
            Err(FaultJsonError::EdgeOutOfRange { u: 0, v: 9, n: 3 })
        );
        // Every variant renders a human-readable message.
        let e = FaultJsonError::EdgeOutOfRange { u: 0, v: 9, n: 3 };
        assert!(e.to_string().contains("out of range"));
    }

    #[test]
    fn timeline_json_errors_are_structured() {
        let parse = |s: &str| FaultTimeline::from_json(&Value::parse(s).unwrap());
        assert_eq!(
            parse(r#"{"epochs": []}"#),
            Err(FaultJsonError::MissingField { field: "hops_per_epoch" })
        );
        assert_eq!(
            parse(r#"{"hops_per_epoch": 2}"#),
            Err(FaultJsonError::MissingField { field: "epochs" })
        );
        // Structural plan errors surface from the inner decode...
        assert_eq!(
            parse(r#"{"hops_per_epoch": 2, "epochs": [{"n": 1}]}"#),
            Err(FaultJsonError::MissingField { field: "dead_nodes" })
        );
        // ...and a well-formed but semantically invalid schedule wraps the
        // TimelineError, reachable through Error::source.
        let bad = parse(
            r#"{"hops_per_epoch": 2, "epochs": [
                {"n": 3, "dead_nodes": [1], "dead_edges": []},
                {"n": 3, "dead_nodes": [], "dead_edges": []}]}"#,
        );
        assert_eq!(
            bad,
            Err(FaultJsonError::InvalidTimeline(TimelineError::NotCumulative { epoch: 1 }))
        );
        let err = bad.unwrap_err();
        assert!(std::error::Error::source(&err).is_some());
        assert_eq!(
            parse(r#"{"hops_per_epoch": 2, "epochs": []}"#),
            Err(FaultJsonError::InvalidTimeline(TimelineError::NoEpochs))
        );
    }

    #[test]
    fn timeline_construction_errors_are_structured() {
        let a = FaultPlan::none(4);
        let mut b = FaultPlan::none(4);
        b.kill_node(1);
        assert_eq!(FaultTimeline::new(vec![], 2), Err(TimelineError::NoEpochs));
        assert_eq!(
            FaultTimeline::new(vec![a.clone(), b.clone()], 0),
            Err(TimelineError::ZeroHopsPerEpoch)
        );
        assert_eq!(
            FaultTimeline::new(vec![FaultPlan::none(3), a.clone()], 1),
            Err(TimelineError::NodeCountMismatch { prev: 3, next: 4 })
        );
        assert_eq!(
            FaultTimeline::new(vec![b, a], 2),
            Err(TimelineError::NotCumulative { epoch: 1 })
        );
    }

    #[test]
    fn timeline_validation_catches_bad_schedules() {
        let a = FaultPlan::none(4);
        let mut b = FaultPlan::none(4);
        b.kill_node(1);
        // Cumulative ordering holds a ⊆ b, fails b ⊆ a.
        assert!(FaultTimeline::new(vec![a.clone(), b.clone()], 2).is_ok());
        assert!(FaultTimeline::new(vec![b.clone(), a.clone()], 2).is_err());
        assert!(FaultTimeline::new(vec![], 2).is_err());
        assert!(FaultTimeline::new(vec![a.clone(), b.clone()], 0).is_err());
        assert!(FaultTimeline::new(vec![FaultPlan::none(3), a.clone()], 1).is_err());
        // Dead edges must persist too, including when an endpoint dies
        // later (the edge stays dead implicitly).
        let mut e1 = FaultPlan::none(4);
        e1.kill_edge(0, 1);
        let mut e2 = FaultPlan::none(4);
        e2.kill_node(0);
        assert!(FaultTimeline::new(vec![e1.clone(), e2], 3).is_ok());
        assert!(FaultTimeline::new(vec![e1, FaultPlan::none(4)], 3).is_err());
    }

    #[test]
    fn timeline_epochs_advance_with_hops() {
        let mut late = FaultPlan::none(6);
        late.kill_node(4);
        let tl = FaultTimeline::new(vec![FaultPlan::none(6), late], 3).unwrap();
        assert_eq!(tl.epoch_at(0), 0);
        assert_eq!(tl.epoch_at(2), 0);
        assert_eq!(tl.epoch_at(3), 1);
        assert_eq!(tl.epoch_at(1000), 1); // last epoch persists
        assert!(!tl.active(0).is_node_dead(4));
        assert!(tl.active(3).is_node_dead(4));
        // Static plans never advance.
        let st = FaultTimeline::from_plan(FaultPlan::none(6));
        assert_eq!(st.epoch_at(1000), 0);
        assert_eq!(st.hops_per_epoch(), 0);
    }

    #[test]
    fn timeline_check_route_is_epoch_aware() {
        // Path 0-1-2-3-4-5: node 4 dies after 3 hops. Walking 0 → 5 takes
        // its 4th hop (index 3) into node 4, which by then is dead; walking
        // only 0 → 3 stays inside epoch 0 and survives.
        let m = MetricSpace::new(&gen::path(6));
        let mut late = FaultPlan::none(6);
        late.kill_node(4);
        let tl = FaultTimeline::new(vec![FaultPlan::none(6), late.clone()], 3).unwrap();

        let mut rec = RouteRecorder::new(&m, 0);
        rec.walk_shortest(5).unwrap();
        let long = rec.finish();
        assert_eq!(tl.check_route(&long), Err(RouteError::NodeFailed { node: 4 }));
        // The same plan applied statically kills the route as well, but a
        // static *initial* plan (no faults yet) lets it through.
        assert!(FaultTimeline::from_plan(late).check_route(&long).is_err());

        let mut rec = RouteRecorder::new(&m, 0);
        rec.walk_shortest(3).unwrap();
        let short = rec.finish();
        assert_eq!(tl.check_route(&short), Ok(()));
    }

    #[test]
    fn timeline_json_round_trips() {
        let mut a = FaultPlan::none(5);
        a.kill_node(2);
        let mut b = a.clone();
        b.kill_edge(0, 1);
        let tl = FaultTimeline::new(vec![a, b], 4).unwrap();
        let v = tl.to_json();
        assert_eq!(FaultTimeline::from_json(&v).unwrap(), tl);
        let reparsed = Value::parse(&v.to_string_pretty()).unwrap();
        assert_eq!(FaultTimeline::from_json(&reparsed).unwrap(), tl);
        // A tampered document that breaks cumulativity is rejected.
        let bad = Value::parse(
            r#"{"hops_per_epoch": 2, "epochs": [
                {"n": 3, "dead_nodes": [1], "dead_edges": []},
                {"n": 3, "dead_nodes": [], "dead_edges": []}]}"#,
        )
        .unwrap();
        assert!(FaultTimeline::from_json(&bad).is_err());
    }
}
