//! Storage and header bit-accounting conventions.
//!
//! The paper states table/header/label sizes in bits; to *measure* them we
//! fix a serialization convention and have every scheme report its tables
//! through it:
//!
//! * node ids, labels, names, next-hop "ports": `⌈log₂ n⌉` bits (at least
//!   1 — following the convention that a field always occupies at least one
//!   bit);
//! * distances: `⌈log₂(diameter + 1)⌉` bits;
//! * level indices: `⌈log₂(L + 1)⌉` bits where `L + 1` is the number of
//!   scales (`Θ(log Δ)`);
//! * size exponents `j`: `⌈log₂(⌈log₂ n⌉ + 1)⌉` bits.
//!
//! Next hops are charged as full node ids rather than local port numbers;
//! this is (slightly) conservative and uniform across schemes, so
//! comparisons remain fair.

use doubling_metric::ceil_log2;
use doubling_metric::space::MetricSpace;

/// Bits needed to distinguish `count` values (minimum 1).
#[inline]
pub fn bits_for_count(count: u64) -> u64 {
    if count <= 1 {
        1
    } else {
        ceil_log2(count) as u64
    }
}

/// Field widths for one metric space, fixed at preprocessing time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldWidths {
    /// Bits per node id / label / name / next-hop.
    pub node: u64,
    /// Bits per distance value.
    pub dist: u64,
    /// Bits per hierarchy level index.
    pub level: u64,
    /// Bits per ball-size exponent `j`.
    pub size_exp: u64,
}

impl FieldWidths {
    /// Derives the widths from a metric space.
    pub fn new(m: &MetricSpace) -> Self {
        FieldWidths {
            node: bits_for_count(m.n() as u64),
            dist: bits_for_count(m.diameter() + 1),
            level: bits_for_count(m.num_scales() as u64),
            size_exp: bits_for_count(m.log2_n() as u64 + 1),
        }
    }
}

/// A per-node storage tally. Schemes create one per node at preprocessing
/// time and add fields as they populate tables; `total()` is then reported
/// by `table_bits`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BitTally {
    total: u64,
}

impl BitTally {
    /// An empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `count` node-id-sized fields.
    pub fn nodes(&mut self, w: &FieldWidths, count: u64) -> &mut Self {
        self.total += w.node * count;
        self
    }

    /// Adds `count` distance fields.
    pub fn dists(&mut self, w: &FieldWidths, count: u64) -> &mut Self {
        self.total += w.dist * count;
        self
    }

    /// Adds `count` level-index fields.
    pub fn levels(&mut self, w: &FieldWidths, count: u64) -> &mut Self {
        self.total += w.level * count;
        self
    }

    /// Adds `count` size-exponent fields.
    pub fn size_exps(&mut self, w: &FieldWidths, count: u64) -> &mut Self {
        self.total += w.size_exp * count;
        self
    }

    /// Adds raw bits (e.g. a sub-scheme's reported table).
    pub fn raw(&mut self, bits: u64) -> &mut Self {
        self.total += bits;
        self
    }

    /// The tallied total in bits.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// One typed component of a node's routing table, as enumerated by a
/// [`crate::scheme::Certifiable`] scheme: field *counts* in the vocabulary
/// above, so an auditor can re-price the table through [`FieldWidths`] and
/// cross-check the scheme's own `table_bits` claim. The enumeration and
/// the claim are produced by independent code paths — double-entry
/// bookkeeping, which is what makes a table audit non-vacuous.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableComponent {
    /// What the component stores (e.g. `"ring"`, `"search-share"`).
    pub part: &'static str,
    /// Hierarchy level / round / packing index, when meaningful (0
    /// otherwise).
    pub index: u32,
    /// Node-id-sized fields (ids, labels, names, next hops).
    pub nodes: u64,
    /// Distance fields.
    pub dists: u64,
    /// Level-index fields.
    pub levels: u64,
    /// Size-exponent fields.
    pub size_exps: u64,
    /// Raw, already-priced bits (sub-scheme shares such as tree-router
    /// tables or search-tree allocations).
    pub raw: u64,
}

impl TableComponent {
    /// An empty component tagged `part` at `index`.
    pub fn new(part: &'static str, index: u32) -> Self {
        TableComponent { part, index, ..Default::default() }
    }

    /// The component priced under `w`, in bits.
    pub fn bits(&self, w: &FieldWidths) -> u64 {
        self.nodes * w.node
            + self.dists * w.dist
            + self.levels * w.level
            + self.size_exps * w.size_exp
            + self.raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doubling_metric::gen;

    #[test]
    fn bits_for_count_floor_cases() {
        assert_eq!(bits_for_count(0), 1);
        assert_eq!(bits_for_count(1), 1);
        assert_eq!(bits_for_count(2), 1);
        assert_eq!(bits_for_count(3), 2);
        assert_eq!(bits_for_count(256), 8);
        assert_eq!(bits_for_count(257), 9);
    }

    #[test]
    fn widths_from_grid() {
        let m = MetricSpace::new(&gen::grid(4, 4)); // n=16, diam=6
        let w = FieldWidths::new(&m);
        assert_eq!(w.node, 4);
        assert_eq!(w.dist, 3); // ceil_log2(7) = 3
        assert_eq!(w.level, 2); // 4 scales
    }

    #[test]
    fn tally_accumulates() {
        let m = MetricSpace::new(&gen::grid(4, 4));
        let w = FieldWidths::new(&m);
        let mut t = BitTally::new();
        t.nodes(&w, 3).dists(&w, 2).raw(10);
        assert_eq!(t.total(), 3 * 4 + 2 * 3 + 10);
    }
}
