//! Evaluation harness: run a scheme over a sample of source–destination
//! pairs and aggregate the quantities the paper's tables report.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use doubling_metric::graph::NodeId;
use doubling_metric::provider::DistanceProvider;
use doubling_metric::space::MetricSpace;

use crate::faults::{FaultPlan, FaultTimeline};
use crate::naming::Naming;
use crate::recovery::{DeliveryOutcome, LossReason, RecoveryEvent, ResilientRouter};
use crate::route::{Route, RouteError};
use crate::scheme::{LabeledScheme, NameIndependentScheme};

/// Aggregated measurements for one scheme on one graph.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalResult {
    /// Scheme display name.
    pub scheme: &'static str,
    /// Worst stretch over all routed pairs.
    pub max_stretch: f64,
    /// Mean stretch.
    pub avg_stretch: f64,
    /// Number of routed pairs.
    pub routes: usize,
    /// Number of failed routes (must be 0 for correct schemes).
    pub failures: usize,
    /// Largest per-node table, in bits.
    pub max_table_bits: u64,
    /// Mean per-node table, in bits.
    pub avg_table_bits: f64,
    /// Largest header observed on any hop of any route, in bits.
    pub max_header_bits: u64,
    /// Routed pairs whose measured stretch fell below 1 (beyond float
    /// tolerance). A correct simulator never under-charges a route, so any
    /// nonzero value flags an accounting bug; it is surfaced here instead
    /// of being silently clamped away.
    pub understretch: usize,
}

/// Float tolerance below which a stretch value counts as an under-stretch
/// accounting violation rather than rounding noise. Public so external
/// auditors (the `conform` crate) apply the same tolerance when they
/// cross-check route costs against [`doubling_metric::shortest_paths::Apsp`].
pub const UNDERSTRETCH_TOL: f64 = 1e-9;

/// Counts stretch values strictly below `1 - UNDERSTRETCH_TOL`.
fn count_understretch(stretches: &[f64]) -> usize {
    stretches.iter().filter(|&&s| s < 1.0 - UNDERSTRETCH_TOL).count()
}

impl EvalResult {
    fn from_parts(
        scheme: &'static str,
        stretches: &[f64],
        failures: usize,
        tables: &[u64],
        max_header_bits: u64,
    ) -> Self {
        // No clamping: an observed max below 1.0 is a real signal and is
        // reported as-is, with the violation count in `understretch`.
        let max_stretch = if stretches.is_empty() {
            1.0
        } else {
            stretches.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        };
        let avg_stretch = if stretches.is_empty() {
            1.0
        } else {
            stretches.iter().sum::<f64>() / stretches.len() as f64
        };
        let max_table_bits = tables.iter().cloned().max().unwrap_or(0);
        let avg_table_bits = if tables.is_empty() {
            0.0
        } else {
            tables.iter().sum::<u64>() as f64 / tables.len() as f64
        };
        EvalResult {
            scheme,
            max_stretch,
            avg_stretch,
            routes: stretches.len(),
            failures,
            max_table_bits,
            avg_table_bits,
            max_header_bits,
            understretch: count_understretch(stretches),
        }
    }
}

/// Deterministic sample of `count` ordered pairs of distinct nodes.
pub fn sample_pairs(n: usize, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    assert!(n >= 2, "need at least two nodes to sample pairs");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let u = rng.gen_range(0..n) as NodeId;
            let mut v = rng.gen_range(0..n - 1) as NodeId;
            if v >= u {
                v += 1;
            }
            (u, v)
        })
        .collect()
}

/// All ordered pairs of distinct nodes (use only for small `n`).
pub fn all_pairs(n: usize) -> Vec<(NodeId, NodeId)> {
    let mut out = Vec::with_capacity(n * (n - 1));
    for u in 0..n as NodeId {
        for v in 0..n as NodeId {
            if u != v {
                out.push((u, v));
            }
        }
    }
    out
}

/// Evaluates a labeled scheme over the given pairs, verifying every route.
///
/// # Panics
///
/// Panics if a delivered route fails trace verification or ends at the
/// wrong node — those are simulator-level invariants, not measurements.
pub fn eval_labeled<S: LabeledScheme>(
    scheme: &S,
    m: &MetricSpace,
    pairs: &[(NodeId, NodeId)],
) -> EvalResult {
    eval_labeled_observed(scheme, m, pairs, |_, _, _| {})
}

/// [`eval_labeled`] with a per-pair observer hook: `observe(u, v, outcome)`
/// is called once per pair with the already-verified route (or the error).
/// The aggregation is identical to [`eval_labeled`]; the hook exists so an
/// observability layer can attach without `netsim` depending on it.
///
/// # Panics
///
/// As [`eval_labeled`].
pub fn eval_labeled_observed<S, F>(
    scheme: &S,
    m: &MetricSpace,
    pairs: &[(NodeId, NodeId)],
    mut observe: F,
) -> EvalResult
where
    S: LabeledScheme,
    F: FnMut(NodeId, NodeId, &Result<Route, RouteError>),
{
    let mut stretches = Vec::with_capacity(pairs.len());
    let mut failures = 0usize;
    let mut max_header = 0u64;
    for &(u, v) in pairs {
        let res = scheme.route(m, u, scheme.label_of(v));
        match &res {
            Ok(r) => {
                assert_eq!(r.dst, v, "labeled route delivered to the wrong node");
                r.verify(m).expect("route must verify");
                max_header = max_header.max(r.max_header_bits);
                stretches.push(r.stretch(m));
            }
            Err(_) => failures += 1,
        }
        observe(u, v, &res);
    }
    let tables: Vec<u64> = (0..m.n() as NodeId).map(|u| scheme.table_bits(u)).collect();
    EvalResult::from_parts(scheme.scheme_name(), &stretches, failures, &tables, max_header)
}

/// Evaluates a name-independent scheme over the given pairs under `naming`.
///
/// # Panics
///
/// Panics if a delivered route fails verification or ends at the wrong
/// node.
pub fn eval_name_independent<S: NameIndependentScheme>(
    scheme: &S,
    m: &MetricSpace,
    naming: &Naming,
    pairs: &[(NodeId, NodeId)],
) -> EvalResult {
    eval_name_independent_observed(scheme, m, naming, pairs, |_, _, _| {})
}

/// [`eval_name_independent`] with a per-pair observer hook; see
/// [`eval_labeled_observed`].
///
/// # Panics
///
/// As [`eval_name_independent`].
pub fn eval_name_independent_observed<S, F>(
    scheme: &S,
    m: &MetricSpace,
    naming: &Naming,
    pairs: &[(NodeId, NodeId)],
    mut observe: F,
) -> EvalResult
where
    S: NameIndependentScheme,
    F: FnMut(NodeId, NodeId, &Result<Route, RouteError>),
{
    let mut stretches = Vec::with_capacity(pairs.len());
    let mut failures = 0usize;
    let mut max_header = 0u64;
    for &(u, v) in pairs {
        let res = scheme.route(m, u, naming.name_of(v));
        match &res {
            Ok(r) => {
                assert_eq!(r.dst, v, "name-independent route delivered to the wrong node");
                r.verify(m).expect("route must verify");
                max_header = max_header.max(r.max_header_bits);
                stretches.push(r.stretch(m));
            }
            Err(_) => failures += 1,
        }
        observe(u, v, &res);
    }
    let tables: Vec<u64> = (0..m.n() as NodeId).map(|u| scheme.table_bits(u)).collect();
    EvalResult::from_parts(scheme.scheme_name(), &stretches, failures, &tables, max_header)
}

/// Sampled-pair stretch statistics with a 95% confidence interval on the
/// mean, produced by [`sampled_stretch_labeled`] /
/// [`sampled_stretch_name_independent`].
///
/// The point statistics (`mean`, `p99`, `max`) use the backend's
/// [`DistanceProvider::dist`] as denominator. With an exact backend they
/// equal the exhaustive statistics restricted to the sampled pairs and
/// `mean_upper == mean`; with an estimated backend the true per-pair
/// stretch lies in `[point, upper]` (the provider's `dist` is an upper
/// bound on the true distance), so the true sampled mean lies in
/// `[mean, mean_upper]`. `ci_half_width` is the *sampling* error only:
/// `1.96 · s / √k` over the point values (normal approximation), so with
/// an exact backend and seeded pairs the exhaustive mean is expected
/// inside `mean ± ci_half_width` on ≈95% of sample seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledStretch {
    /// Pairs routed.
    pub pairs: usize,
    /// Routes that returned an error (excluded from the statistics).
    pub failures: usize,
    /// Mean point stretch over delivered routes (1.0 when none).
    pub mean: f64,
    /// 95% CI half-width on `mean` (sampling error; 0.0 for < 2 routes).
    pub ci_half_width: f64,
    /// 99th-percentile point stretch ([`StretchQuantiles`] convention).
    pub p99: f64,
    /// Worst point stretch.
    pub max: f64,
    /// Mean stretch using the provider's *lower* distance bounds as
    /// denominators — equals `mean` for exact backends, an upper bound on
    /// the true sampled mean otherwise.
    pub mean_upper: f64,
    /// Whether the backend was exact ([`DistanceProvider::is_exact`]).
    pub exact: bool,
}

impl SampledStretch {
    /// Aggregates `(cost, bounds)` observations in pair order (the order
    /// fixes the floating-point summation, keeping documents
    /// byte-identical for a given pair sample).
    fn from_observations(
        obs: &[(u64, doubling_metric::DistBounds)],
        failures: usize,
        exact: bool,
    ) -> Self {
        let points: Vec<f64> = obs.iter().map(|&(c, b)| c as f64 / b.upper.max(1) as f64).collect();
        let uppers: Vec<f64> = obs.iter().map(|&(c, b)| c as f64 / b.lower.max(1) as f64).collect();
        if points.is_empty() {
            return SampledStretch {
                pairs: failures,
                failures,
                mean: 1.0,
                ci_half_width: 0.0,
                p99: 1.0,
                max: 1.0,
                mean_upper: 1.0,
                exact,
            };
        }
        let k = points.len() as f64;
        let mean = points.iter().sum::<f64>() / k;
        let mean_upper = uppers.iter().sum::<f64>() / k;
        let ci_half_width = if points.len() >= 2 {
            let var = points.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (k - 1.0);
            1.96 * (var / k).sqrt()
        } else {
            0.0
        };
        let q = StretchQuantiles::from_stretches(&points);
        SampledStretch {
            pairs: obs.len() + failures,
            failures,
            mean,
            ci_half_width,
            p99: q.p99,
            max: q.max,
            mean_upper,
            exact,
        }
    }
}

/// Evaluates a labeled scheme over sampled pairs, taking stretch
/// denominators from `provider` instead of the dense matrix — the
/// scalable evaluation path. Routing still simulates over `m` (schemes
/// walk real shortest-path trees); only the *measurement* denominator
/// goes through the backend, which is what lets certification-grade
/// exactness be traded for `O(k·n)` memory at large `n`.
///
/// # Panics
///
/// Panics if a delivered route fails verification or ends at the wrong
/// node, or if `provider` covers a different node count than `m`.
pub fn sampled_stretch_labeled<S: LabeledScheme>(
    scheme: &S,
    m: &MetricSpace,
    provider: &dyn DistanceProvider,
    pairs: &[(NodeId, NodeId)],
) -> SampledStretch {
    sampled_stretch_labeled_observed(scheme, m, provider, pairs, |_, _, _| {})
}

/// [`sampled_stretch_labeled`] with a per-pair observer hook, called with
/// the endpoints and the routing outcome before the pair is folded into
/// the statistics — the seam telemetry layers (flight recorders, metrics
/// registries) attach to without this crate depending on them. The
/// returned document is identical to the unobserved variant's.
///
/// # Panics
///
/// As [`sampled_stretch_labeled`].
pub fn sampled_stretch_labeled_observed<S, F>(
    scheme: &S,
    m: &MetricSpace,
    provider: &dyn DistanceProvider,
    pairs: &[(NodeId, NodeId)],
    mut observe: F,
) -> SampledStretch
where
    S: LabeledScheme,
    F: FnMut(NodeId, NodeId, &Result<Route, RouteError>),
{
    assert_eq!(provider.n(), m.n(), "provider covers a different node count");
    let mut obs = Vec::with_capacity(pairs.len());
    let mut failures = 0usize;
    for &(u, v) in pairs {
        let res = scheme.route(m, u, scheme.label_of(v));
        observe(u, v, &res);
        match res {
            Ok(r) => {
                assert_eq!(r.dst, v, "labeled route delivered to the wrong node");
                r.verify(m).expect("route must verify");
                obs.push((r.cost, provider.dist_bounds(u, v)));
            }
            Err(_) => failures += 1,
        }
    }
    SampledStretch::from_observations(&obs, failures, provider.is_exact())
}

/// Name-independent variant of [`sampled_stretch_labeled`].
///
/// # Panics
///
/// As [`sampled_stretch_labeled`].
pub fn sampled_stretch_name_independent<S: NameIndependentScheme>(
    scheme: &S,
    m: &MetricSpace,
    naming: &Naming,
    provider: &dyn DistanceProvider,
    pairs: &[(NodeId, NodeId)],
) -> SampledStretch {
    sampled_stretch_name_independent_observed(scheme, m, naming, provider, pairs, |_, _, _| {})
}

/// Name-independent variant of [`sampled_stretch_labeled_observed`].
///
/// # Panics
///
/// As [`sampled_stretch_labeled`].
pub fn sampled_stretch_name_independent_observed<S, F>(
    scheme: &S,
    m: &MetricSpace,
    naming: &Naming,
    provider: &dyn DistanceProvider,
    pairs: &[(NodeId, NodeId)],
    mut observe: F,
) -> SampledStretch
where
    S: NameIndependentScheme,
    F: FnMut(NodeId, NodeId, &Result<Route, RouteError>),
{
    assert_eq!(provider.n(), m.n(), "provider covers a different node count");
    let mut obs = Vec::with_capacity(pairs.len());
    let mut failures = 0usize;
    for &(u, v) in pairs {
        let res = scheme.route(m, u, naming.name_of(v));
        observe(u, v, &res);
        match res {
            Ok(r) => {
                assert_eq!(r.dst, v, "name-independent route delivered to the wrong node");
                r.verify(m).expect("route must verify");
                obs.push((r.cost, provider.dist_bounds(u, v)));
            }
            Err(_) => failures += 1,
        }
    }
    SampledStretch::from_observations(&obs, failures, provider.is_exact())
}

/// Aggregated measurements for one scheme routing under a [`FaultPlan`].
///
/// Reachability follows the DRFE-R convention: the denominator is the set
/// of sampled pairs whose *endpoints* both survive (a dead endpoint is a
/// lost customer, not a routing failure), and a pair counts as delivered
/// only if the scheme's path avoided every casualty.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvalResult {
    /// Scheme display name.
    pub scheme: &'static str,
    /// Pairs attempted (both endpoints alive).
    pub attempted: usize,
    /// Pairs delivered (path avoided all dead nodes/edges).
    pub delivered: usize,
    /// `delivered / attempted` (1.0 when nothing was attempted).
    pub reachability: f64,
    /// Mean stretch over delivered routes.
    pub avg_stretch: f64,
    /// Worst stretch over delivered routes.
    pub max_stretch: f64,
    /// Routes lost entering a dead node.
    pub lost_to_node: usize,
    /// Routes lost crossing a dead edge.
    pub lost_to_edge: usize,
    /// Routes lost to non-fault scheme errors (must stay 0 for correct
    /// schemes).
    pub lost_other: usize,
    /// Delivered routes whose measured stretch fell below 1 (see
    /// [`EvalResult::understretch`]).
    pub understretch: usize,
}

impl FaultEvalResult {
    fn from_outcomes(
        scheme: &'static str,
        attempted: usize,
        stretches: &[f64],
        lost_to_node: usize,
        lost_to_edge: usize,
        lost_other: usize,
    ) -> Self {
        let delivered = stretches.len();
        let reachability = if attempted == 0 { 1.0 } else { delivered as f64 / attempted as f64 };
        // As in `EvalResult::from_parts`: no clamp, under-stretch counted.
        let max_stretch = if stretches.is_empty() {
            1.0
        } else {
            stretches.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        };
        let avg_stretch = if stretches.is_empty() {
            1.0
        } else {
            stretches.iter().sum::<f64>() / stretches.len() as f64
        };
        FaultEvalResult {
            scheme,
            attempted,
            delivered,
            reachability,
            avg_stretch,
            max_stretch,
            lost_to_node,
            lost_to_edge,
            lost_other,
            understretch: count_understretch(stretches),
        }
    }
}

/// Shared fault-eval accumulation over per-pair route outcomes.
fn eval_under_faults_impl<F, O>(
    scheme_name: &'static str,
    m: &MetricSpace,
    faults: &FaultPlan,
    pairs: &[(NodeId, NodeId)],
    mut route_pair: F,
    mut observe: O,
) -> FaultEvalResult
where
    F: FnMut(NodeId, NodeId) -> Result<Route, RouteError>,
    O: FnMut(NodeId, NodeId, &Result<Route, RouteError>),
{
    let mut stretches = Vec::new();
    let mut attempted = 0usize;
    let (mut lost_node, mut lost_edge, mut lost_other) = (0usize, 0usize, 0usize);
    for &(u, v) in pairs {
        if faults.is_node_dead(u) || faults.is_node_dead(v) {
            continue; // dead endpoint: out of the denominator entirely
        }
        attempted += 1;
        let res = route_pair(u, v);
        match &res {
            Ok(r) => {
                assert_eq!(r.dst, v, "fault-free delivery must reach the destination");
                r.verify(m).expect("route must verify");
                stretches.push(r.stretch(m));
            }
            Err(RouteError::NodeFailed { .. }) => lost_node += 1,
            Err(RouteError::EdgeFailed { .. }) => lost_edge += 1,
            Err(_) => lost_other += 1,
        }
        observe(u, v, &res);
    }
    FaultEvalResult::from_outcomes(
        scheme_name,
        attempted,
        &stretches,
        lost_node,
        lost_edge,
        lost_other,
    )
}

/// Evaluates a labeled scheme routing with *stale tables* under `faults`:
/// reachability, surviving-route stretch, and loss breakdown.
pub fn eval_labeled_under_faults<S: LabeledScheme>(
    scheme: &S,
    m: &MetricSpace,
    faults: &FaultPlan,
    pairs: &[(NodeId, NodeId)],
) -> FaultEvalResult {
    eval_labeled_under_faults_observed(scheme, m, faults, pairs, |_, _, _| {})
}

/// [`eval_labeled_under_faults`] with a per-pair observer hook, so each
/// individual loss (node kill, edge kill) is attributable; see
/// [`eval_labeled_observed`]. Pairs skipped for dead endpoints are not
/// observed.
pub fn eval_labeled_under_faults_observed<S, O>(
    scheme: &S,
    m: &MetricSpace,
    faults: &FaultPlan,
    pairs: &[(NodeId, NodeId)],
    observe: O,
) -> FaultEvalResult
where
    S: LabeledScheme,
    O: FnMut(NodeId, NodeId, &Result<Route, RouteError>),
{
    eval_under_faults_impl(
        scheme.scheme_name(),
        m,
        faults,
        pairs,
        |u, v| scheme.route_with_faults(m, u, scheme.label_of(v), faults),
        observe,
    )
}

/// Evaluates a name-independent scheme routing with *stale tables* under
/// `faults`.
pub fn eval_name_independent_under_faults<S: NameIndependentScheme>(
    scheme: &S,
    m: &MetricSpace,
    naming: &Naming,
    faults: &FaultPlan,
    pairs: &[(NodeId, NodeId)],
) -> FaultEvalResult {
    eval_name_independent_under_faults_observed(scheme, m, naming, faults, pairs, |_, _, _| {})
}

/// [`eval_name_independent_under_faults`] with a per-pair observer hook;
/// see [`eval_labeled_under_faults_observed`].
pub fn eval_name_independent_under_faults_observed<S, O>(
    scheme: &S,
    m: &MetricSpace,
    naming: &Naming,
    faults: &FaultPlan,
    pairs: &[(NodeId, NodeId)],
    observe: O,
) -> FaultEvalResult
where
    S: NameIndependentScheme,
    O: FnMut(NodeId, NodeId, &Result<Route, RouteError>),
{
    eval_under_faults_impl(
        scheme.scheme_name(),
        m,
        faults,
        pairs,
        |u, v| scheme.route_with_faults(m, u, naming.name_of(v), faults),
        observe,
    )
}

/// Aggregated measurements for one scheme delivering under a
/// [`FaultTimeline`] with a recovery policy (see
/// [`crate::recovery::ResilientRouter`]).
///
/// The denominator convention matches [`FaultEvalResult`]: pairs with an
/// endpoint dead in the timeline's *initial* epoch are out of the
/// denominator (a dead customer, not a routing failure); with the `Drop`
/// policy and a single-epoch timeline the delivered/lost split is
/// identical to [`eval_labeled_under_faults`].
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryEvalResult {
    /// Scheme display name.
    pub scheme: &'static str,
    /// The recovery policy, in its canonical `Display` spelling (parse it
    /// back with [`crate::recovery::RecoveryPolicy::parse`]).
    pub policy: String,
    /// Pairs attempted (both endpoints alive initially).
    pub attempted: usize,
    /// Pairs delivered (possibly after recoveries).
    pub delivered: usize,
    /// `delivered / attempted` (1.0 when nothing was attempted).
    pub delivered_fraction: f64,
    /// Mean stretch over delivered routes (detours included in the cost).
    pub avg_stretch: f64,
    /// Worst stretch over delivered routes.
    pub max_stretch: f64,
    /// Total successful recovery interventions across delivered *and*
    /// lost packets.
    pub recoveries: usize,
    /// Total extra hops spent inside detours, over delivered packets.
    pub detour_hops: usize,
    /// Losses where the final casualty was a dead node and the policy
    /// offered no way out.
    pub lost_to_node: usize,
    /// Losses where the final casualty was a dead edge.
    pub lost_to_edge: usize,
    /// Losses where the destination was unreachable in the surviving
    /// graph (no policy could have delivered; includes dead sources).
    pub lost_unreachable: usize,
    /// Losses where the destination was still reachable but the recovery
    /// budget (TTL / climbs) ran out first.
    pub lost_exhausted: usize,
    /// Losses to anything else — hop-budget trips and scheme errors
    /// (must stay 0 for correct schemes).
    pub lost_other: usize,
    /// Delivered routes whose measured stretch fell below 1 (see
    /// [`EvalResult::understretch`]).
    pub understretch: usize,
}

/// Shared resilient-eval accumulation over per-pair delivery outcomes.
fn eval_resilient_impl<D, O>(
    scheme_name: &'static str,
    policy: String,
    m: &MetricSpace,
    timeline: &FaultTimeline,
    pairs: &[(NodeId, NodeId)],
    mut deliver_pair: D,
    mut observe: O,
) -> RecoveryEvalResult
where
    D: FnMut(NodeId, NodeId) -> DeliveryOutcome,
    O: FnMut(NodeId, NodeId, &DeliveryOutcome),
{
    let initial = timeline.initial();
    let mut stretches = Vec::new();
    let mut attempted = 0usize;
    let mut recoveries_total = 0usize;
    let mut detour_hops_total = 0usize;
    let (mut lost_node, mut lost_edge) = (0usize, 0usize);
    let (mut lost_unreachable, mut lost_exhausted, mut lost_other) = (0usize, 0usize, 0usize);
    for &(u, v) in pairs {
        if initial.is_node_dead(u) || initial.is_node_dead(v) {
            continue; // dead endpoint: out of the denominator entirely
        }
        attempted += 1;
        let outcome = deliver_pair(u, v);
        match &outcome {
            DeliveryOutcome::Delivered { stretch, detour_hops, recoveries, route } => {
                assert_eq!(route.dst, v, "resilient delivery must reach the destination");
                route.verify(m).expect("delivered route must verify");
                timeline
                    .check_route(route)
                    .expect("delivered route must replay cleanly under the timeline");
                stretches.push(*stretch);
                detour_hops_total += detour_hops;
                recoveries_total += recoveries;
            }
            DeliveryOutcome::Lost { reason, progress } => {
                recoveries_total += progress.recoveries;
                match reason {
                    LossReason::Casualty { error: RouteError::NodeFailed { .. } } => lost_node += 1,
                    LossReason::Casualty { error: RouteError::EdgeFailed { .. } } => lost_edge += 1,
                    LossReason::Casualty { .. } => lost_other += 1,
                    // A dead source never happens here (endpoints are
                    // pre-filtered on the initial epoch), but classify it
                    // with unreachability for robustness.
                    LossReason::SourceDead | LossReason::Unreachable => lost_unreachable += 1,
                    LossReason::RecoveryExhausted => lost_exhausted += 1,
                    LossReason::HopBudget | LossReason::SchemeError { .. } => lost_other += 1,
                }
            }
        }
        observe(u, v, &outcome);
    }
    let delivered = stretches.len();
    let delivered_fraction = if attempted == 0 { 1.0 } else { delivered as f64 / attempted as f64 };
    let max_stretch = if stretches.is_empty() {
        1.0
    } else {
        stretches.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
    };
    let avg_stretch = if stretches.is_empty() {
        1.0
    } else {
        stretches.iter().sum::<f64>() / stretches.len() as f64
    };
    RecoveryEvalResult {
        scheme: scheme_name,
        policy,
        attempted,
        delivered,
        delivered_fraction,
        avg_stretch,
        max_stretch,
        recoveries: recoveries_total,
        detour_hops: detour_hops_total,
        lost_to_node: lost_node,
        lost_to_edge: lost_edge,
        lost_unreachable,
        lost_exhausted,
        lost_other,
        understretch: count_understretch(&stretches),
    }
}

/// Evaluates a labeled scheme delivering under `timeline` with the
/// router's recovery policy: delivered fraction, stretch of survivors
/// (detours included), recovery/detour totals, and a loss taxonomy.
///
/// # Panics
///
/// Panics if a delivered route misdelivers, fails [`Route::verify`], or
/// does not replay cleanly under [`FaultTimeline::check_route`] — those
/// are simulator invariants, not measurements.
pub fn eval_labeled_resilient<S: LabeledScheme>(
    router: &ResilientRouter<'_, S>,
    timeline: &FaultTimeline,
    pairs: &[(NodeId, NodeId)],
) -> RecoveryEvalResult {
    eval_labeled_resilient_observed(router, timeline, pairs, |_, _, _| {}, |_, _, _| {})
}

/// [`eval_labeled_resilient`] with observer hooks: `on_event(u, v, ev)`
/// fires for every recovery decision mid-delivery, and
/// `observe(u, v, outcome)` once per attempted pair — the seams the `obs`
/// tracing layer attaches to. Pairs skipped for dead endpoints see
/// neither hook.
///
/// # Panics
///
/// As [`eval_labeled_resilient`].
pub fn eval_labeled_resilient_observed<S, E, O>(
    router: &ResilientRouter<'_, S>,
    timeline: &FaultTimeline,
    pairs: &[(NodeId, NodeId)],
    mut on_event: E,
    observe: O,
) -> RecoveryEvalResult
where
    S: LabeledScheme,
    E: FnMut(NodeId, NodeId, &RecoveryEvent),
    O: FnMut(NodeId, NodeId, &DeliveryOutcome),
{
    eval_resilient_impl(
        LabeledScheme::scheme_name(router.scheme()),
        router.policy().to_string(),
        router.metric(),
        timeline,
        pairs,
        |u, v| router.deliver(u, v, timeline, &mut |ev| on_event(u, v, ev)),
        observe,
    )
}

/// Evaluates a name-independent scheme delivering under `timeline` with
/// the router's recovery policy; see [`eval_labeled_resilient`].
///
/// # Panics
///
/// As [`eval_labeled_resilient`].
pub fn eval_name_independent_resilient<S: NameIndependentScheme>(
    router: &ResilientRouter<'_, S>,
    naming: &Naming,
    timeline: &FaultTimeline,
    pairs: &[(NodeId, NodeId)],
) -> RecoveryEvalResult {
    eval_name_independent_resilient_observed(
        router,
        naming,
        timeline,
        pairs,
        |_, _, _| {},
        |_, _, _| {},
    )
}

/// [`eval_name_independent_resilient`] with observer hooks; see
/// [`eval_labeled_resilient_observed`].
///
/// # Panics
///
/// As [`eval_labeled_resilient`].
pub fn eval_name_independent_resilient_observed<S, E, O>(
    router: &ResilientRouter<'_, S>,
    naming: &Naming,
    timeline: &FaultTimeline,
    pairs: &[(NodeId, NodeId)],
    mut on_event: E,
    observe: O,
) -> RecoveryEvalResult
where
    S: NameIndependentScheme,
    E: FnMut(NodeId, NodeId, &RecoveryEvent),
    O: FnMut(NodeId, NodeId, &DeliveryOutcome),
{
    eval_resilient_impl(
        NameIndependentScheme::scheme_name(router.scheme()),
        router.policy().to_string(),
        router.metric(),
        timeline,
        pairs,
        |u, v| router.deliver_named(naming, u, v, timeline, &mut |ev| on_event(u, v, ev)),
        observe,
    )
}

/// Stretch quantiles over a set of routed pairs — the measurement behind
/// the paper's concluding open question (can relaxing the guarantee for a
/// small fraction of pairs buy better stretch?): the distribution shows
/// how far below the worst case typical routes sit.
#[derive(Debug, Clone, PartialEq)]
pub struct StretchQuantiles {
    /// Median stretch.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl StretchQuantiles {
    /// Computes quantiles from raw stretch values (empty input yields all
    /// 1.0).
    pub fn from_stretches(stretches: &[f64]) -> Self {
        if stretches.is_empty() {
            return StretchQuantiles { p50: 1.0, p90: 1.0, p99: 1.0, max: 1.0 };
        }
        let mut s = stretches.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).expect("stretches are finite"));
        let at = |q: f64| s[((s.len() - 1) as f64 * q).round() as usize];
        StretchQuantiles { p50: at(0.50), p90: at(0.90), p99: at(0.99), max: *s.last().unwrap() }
    }
}

/// Routes all pairs with a name-independent scheme and returns the raw
/// stretch values (for quantile analysis).
///
/// # Panics
///
/// Panics if any route fails, misdelivers, or does not verify.
pub fn stretch_samples_ni<S: NameIndependentScheme>(
    scheme: &S,
    m: &MetricSpace,
    naming: &Naming,
    pairs: &[(NodeId, NodeId)],
) -> Vec<f64> {
    pairs
        .iter()
        .map(|&(u, v)| {
            let r = scheme.route(m, u, naming.name_of(v)).expect("route must deliver");
            assert_eq!(r.dst, v);
            r.stretch(m)
        })
        .collect()
}

/// Parallel variant of [`eval_labeled`]: splits the pairs across
/// `threads` OS threads (schemes route through `&self`, so any `Sync`
/// scheme works). Results are identical to the serial version.
pub fn eval_labeled_par<S: LabeledScheme + Sync>(
    scheme: &S,
    m: &MetricSpace,
    pairs: &[(NodeId, NodeId)],
    threads: usize,
) -> EvalResult {
    let threads = threads.max(1).min(pairs.len().max(1));
    let chunk = pairs.len().div_ceil(threads);
    let partials: Vec<(Vec<f64>, usize, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = pairs
            .chunks(chunk.max(1))
            .map(|slice| {
                s.spawn(move || {
                    let mut stretches = Vec::with_capacity(slice.len());
                    let mut failures = 0usize;
                    let mut max_header = 0u64;
                    for &(u, v) in slice {
                        match scheme.route(m, u, scheme.label_of(v)) {
                            Ok(r) => {
                                assert_eq!(r.dst, v);
                                r.verify(m).expect("route must verify");
                                max_header = max_header.max(r.max_header_bits);
                                stretches.push(r.stretch(m));
                            }
                            Err(_) => failures += 1,
                        }
                    }
                    (stretches, failures, max_header)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    let mut stretches = Vec::with_capacity(pairs.len());
    let mut failures = 0;
    let mut max_header = 0;
    for (s, f, h) in partials {
        stretches.extend(s);
        failures += f;
        max_header = max_header.max(h);
    }
    let tables: Vec<u64> = (0..m.n() as NodeId).map(|u| scheme.table_bits(u)).collect();
    EvalResult::from_parts(scheme.scheme_name(), &stretches, failures, &tables, max_header)
}

/// Parallel variant of [`eval_name_independent`].
pub fn eval_name_independent_par<S: NameIndependentScheme + Sync>(
    scheme: &S,
    m: &MetricSpace,
    naming: &Naming,
    pairs: &[(NodeId, NodeId)],
    threads: usize,
) -> EvalResult {
    let threads = threads.max(1).min(pairs.len().max(1));
    let chunk = pairs.len().div_ceil(threads);
    let partials: Vec<(Vec<f64>, usize, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = pairs
            .chunks(chunk.max(1))
            .map(|slice| {
                s.spawn(move || {
                    let mut stretches = Vec::with_capacity(slice.len());
                    let mut failures = 0usize;
                    let mut max_header = 0u64;
                    for &(u, v) in slice {
                        match scheme.route(m, u, naming.name_of(v)) {
                            Ok(r) => {
                                assert_eq!(r.dst, v);
                                r.verify(m).expect("route must verify");
                                max_header = max_header.max(r.max_header_bits);
                                stretches.push(r.stretch(m));
                            }
                            Err(_) => failures += 1,
                        }
                    }
                    (stretches, failures, max_header)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    let mut stretches = Vec::with_capacity(pairs.len());
    let mut failures = 0;
    let mut max_header = 0;
    for (s, f, h) in partials {
        stretches.extend(s);
        failures += f;
        max_header = max_header.max(h);
    }
    let tables: Vec<u64> = (0..m.n() as NodeId).map(|u| scheme.table_bits(u)).collect();
    EvalResult::from_parts(scheme.scheme_name(), &stretches, failures, &tables, max_header)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::FullTable;
    use doubling_metric::gen;

    use crate::route::RouteRecorder;
    use doubling_metric::{LandmarkEstimator, OnDemandDijkstra};
    use std::sync::Arc;

    /// Test-only labeled scheme that routes every packet through node 0 —
    /// cheap to build and its stretch actually *varies* across pairs,
    /// unlike [`FullTable`], so sampling statistics are non-degenerate.
    struct HubScheme;

    impl LabeledScheme for HubScheme {
        fn scheme_name(&self) -> &'static str {
            "hub"
        }
        fn label_of(&self, v: NodeId) -> crate::scheme::Label {
            v
        }
        fn label_bits(&self) -> u64 {
            32
        }
        fn table_bits(&self, _u: NodeId) -> u64 {
            64
        }
        fn route(
            &self,
            m: &MetricSpace,
            src: NodeId,
            target: crate::scheme::Label,
        ) -> Result<Route, RouteError> {
            let mut rec = RouteRecorder::new(m, src);
            rec.walk_shortest(0)?;
            rec.walk_shortest(target)?;
            Ok(rec.finish())
        }
    }

    #[test]
    fn sampled_stretch_with_exact_backends_is_identical() {
        let g = Arc::new(gen::grid(6, 6));
        let m = MetricSpace::from_shared(Arc::clone(&g), 1);
        let pairs = sample_pairs(m.n(), 150, 9);
        let via_matrix = sampled_stretch_labeled(&HubScheme, &m, &m, &pairs);
        let lazy = OnDemandDijkstra::new(Arc::clone(&g), 4);
        let via_lazy = sampled_stretch_labeled(&HubScheme, &m, &lazy, &pairs);
        assert_eq!(via_matrix, via_lazy);
        assert!(via_matrix.exact);
        assert_eq!(via_matrix.mean, via_matrix.mean_upper);
        assert!(via_matrix.mean > 1.0, "hub routing must have stretch variance");
        assert!(via_matrix.ci_half_width > 0.0);
        assert!(via_matrix.p99 <= via_matrix.max);
    }

    #[test]
    fn sampled_stretch_landmark_bracket_contains_exact_mean() {
        let g = Arc::new(gen::grid(7, 6));
        let m = MetricSpace::from_shared(Arc::clone(&g), 1);
        let pairs = sample_pairs(m.n(), 200, 4);
        let exact = sampled_stretch_labeled(&HubScheme, &m, &m, &pairs);
        let lm = LandmarkEstimator::new(&g, 6);
        let est = sampled_stretch_labeled(&HubScheme, &m, &lm, &pairs);
        assert!(!est.exact);
        assert!(
            est.mean <= exact.mean + 1e-12 && exact.mean <= est.mean_upper + 1e-12,
            "true mean {} outside landmark bracket [{}, {}]",
            exact.mean,
            est.mean,
            est.mean_upper
        );
    }

    #[test]
    fn sampled_ci_covers_exhaustive_mean_on_at_least_90_percent_of_seeds() {
        let m = MetricSpace::new(&gen::grid(10, 10));
        // Exhaustive oracle value: mean stretch over every ordered pair.
        let truth = sampled_stretch_labeled(&HubScheme, &m, &m, &all_pairs(m.n())).mean;
        let trials = 40usize;
        let covered = (0..trials)
            .filter(|&seed| {
                let pairs = sample_pairs(m.n(), 400, seed as u64);
                let s = sampled_stretch_labeled(&HubScheme, &m, &m, &pairs);
                (s.mean - truth).abs() <= s.ci_half_width
            })
            .count();
        assert!(
            covered * 10 >= trials * 9,
            "CI covered the true mean on only {covered}/{trials} seeds"
        );
    }

    #[test]
    fn sampled_stretch_name_independent_matches_labeled_on_identity_naming() {
        let m = MetricSpace::new(&gen::grid(4, 4));
        let nm = Naming::random(16, 5);
        let s = FullTable::with_naming(&m, nm.clone());
        let pairs = sample_pairs(16, 60, 2);
        let res = sampled_stretch_name_independent(&s, &m, &nm, &m, &pairs);
        assert_eq!(res.failures, 0);
        assert!((res.mean - 1.0).abs() < 1e-12);
        assert_eq!(res.ci_half_width, 0.0);
        assert!(res.exact);
    }

    #[test]
    fn sample_pairs_distinct_and_reproducible() {
        let a = sample_pairs(10, 50, 3);
        let b = sample_pairs(10, 50, 3);
        assert_eq!(a, b);
        for &(u, v) in &a {
            assert_ne!(u, v);
            assert!((u as usize) < 10 && (v as usize) < 10);
        }
    }

    #[test]
    fn all_pairs_count() {
        assert_eq!(all_pairs(5).len(), 20);
    }

    #[test]
    fn baseline_eval_has_unit_stretch() {
        let m = MetricSpace::new(&gen::grid(5, 5));
        let s = FullTable::new(&m);
        let res = eval_labeled(&s, &m, &all_pairs(25));
        assert_eq!(res.failures, 0);
        assert_eq!(res.routes, 600);
        assert!((res.max_stretch - 1.0).abs() < 1e-12);
        assert!((res.avg_stretch - 1.0).abs() < 1e-12);
        assert!(res.max_table_bits > 0);
    }

    #[test]
    fn baseline_eval_name_independent() {
        let m = MetricSpace::new(&gen::grid(4, 4));
        let nm = Naming::random(16, 5);
        let s = FullTable::with_naming(&m, nm.clone());
        let res = eval_name_independent(&s, &m, &nm, &sample_pairs(16, 40, 1));
        assert_eq!(res.failures, 0);
        assert!((res.max_stretch - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_eval_matches_serial() {
        let m = MetricSpace::new(&gen::grid(6, 6));
        let s = FullTable::new(&m);
        let pairs = sample_pairs(36, 120, 2);
        let serial = eval_labeled(&s, &m, &pairs);
        for threads in [1usize, 2, 4, 7] {
            let par = eval_labeled_par(&s, &m, &pairs, threads);
            assert_eq!(par.routes, serial.routes);
            assert!((par.max_stretch - serial.max_stretch).abs() < 1e-12);
            assert!((par.avg_stretch - serial.avg_stretch).abs() < 1e-9);
            assert_eq!(par.max_table_bits, serial.max_table_bits);
            assert_eq!(par.max_header_bits, serial.max_header_bits);
        }
    }

    #[test]
    fn parallel_ni_eval_matches_serial() {
        let m = MetricSpace::new(&gen::grid(5, 5));
        let nm = Naming::random(25, 3);
        let s = FullTable::with_naming(&m, nm.clone());
        let pairs = sample_pairs(25, 80, 4);
        let serial = eval_name_independent(&s, &m, &nm, &pairs);
        let par = eval_name_independent_par(&s, &m, &nm, &pairs, 3);
        assert_eq!(par.routes, serial.routes);
        assert!((par.avg_stretch - serial.avg_stretch).abs() < 1e-9);
    }

    #[test]
    fn parallel_eval_handles_more_threads_than_pairs() {
        let m = MetricSpace::new(&gen::grid(3, 3));
        let s = FullTable::new(&m);
        let pairs = sample_pairs(9, 3, 5);
        let par = eval_labeled_par(&s, &m, &pairs, 64);
        assert_eq!(par.routes, 3);
    }

    #[test]
    fn quantiles_of_known_distribution() {
        let stretches: Vec<f64> = (1..=100).map(|k| k as f64).collect();
        let q = StretchQuantiles::from_stretches(&stretches);
        assert_eq!(q.p50, 51.0);
        assert_eq!(q.p90, 90.0);
        assert_eq!(q.p99, 99.0);
        assert_eq!(q.max, 100.0);
        let empty = StretchQuantiles::from_stretches(&[]);
        assert_eq!(empty.max, 1.0);
    }

    #[test]
    fn understretch_is_surfaced_not_clamped() {
        // A (bogus) stretch below 1.0 must show up both in max_stretch
        // (unclamped) and in the violation counter.
        let res = EvalResult::from_parts("bogus", &[0.5, 0.9, 1.2], 0, &[8], 4);
        assert_eq!(res.understretch, 2);
        assert!((res.max_stretch - 1.2).abs() < 1e-12);
        // Rounding noise just below 1.0 is not a violation.
        let ok = EvalResult::from_parts("ok", &[1.0 - 1e-12, 1.0], 0, &[8], 4);
        assert_eq!(ok.understretch, 0);
        // Empty input keeps the neutral 1.0 convention.
        let empty = EvalResult::from_parts("empty", &[], 3, &[8], 0);
        assert_eq!(empty.max_stretch, 1.0);
        assert_eq!(empty.understretch, 0);
    }

    #[test]
    fn fault_understretch_is_surfaced_not_clamped() {
        let res = FaultEvalResult::from_outcomes("bogus", 4, &[0.8, 1.1], 1, 1, 0);
        assert_eq!(res.understretch, 1);
        assert!((res.max_stretch - 1.1).abs() < 1e-12);
        let empty = FaultEvalResult::from_outcomes("empty", 0, &[], 0, 0, 0);
        assert_eq!(empty.max_stretch, 1.0);
        assert_eq!(empty.understretch, 0);
    }

    #[test]
    fn observed_eval_sees_every_pair_and_matches_plain() {
        let m = MetricSpace::new(&gen::grid(4, 4));
        let s = FullTable::new(&m);
        let pairs = sample_pairs(16, 25, 9);
        let mut seen = Vec::new();
        let observed = eval_labeled_observed(&s, &m, &pairs, |u, v, res| {
            assert!(res.is_ok());
            seen.push((u, v));
        });
        assert_eq!(seen, pairs);
        assert_eq!(observed, eval_labeled(&s, &m, &pairs));
    }

    #[test]
    fn observed_ni_eval_matches_plain() {
        let m = MetricSpace::new(&gen::grid(4, 4));
        let nm = Naming::random(16, 5);
        let s = FullTable::with_naming(&m, nm.clone());
        let pairs = sample_pairs(16, 25, 9);
        let mut count = 0usize;
        let observed = eval_name_independent_observed(&s, &m, &nm, &pairs, |_, _, _| count += 1);
        assert_eq!(count, pairs.len());
        assert_eq!(observed, eval_name_independent(&s, &m, &nm, &pairs));
    }

    #[test]
    fn resilient_drop_single_epoch_matches_legacy_fault_eval() {
        use crate::recovery::{RecoveryPolicy, ResilientRouter};
        let m = MetricSpace::new(&gen::grid(5, 5));
        let s = FullTable::new(&m);
        let pairs = sample_pairs(25, 80, 7);
        let faults = FaultPlan::random_nodes(25, 0.2, 11);
        let legacy = eval_labeled_under_faults(&s, &m, &faults, &pairs);
        let timeline = FaultTimeline::from_plan(faults);
        let router = ResilientRouter::without_hierarchy(&m, &s, RecoveryPolicy::Drop);
        let res = eval_labeled_resilient(&router, &timeline, &pairs);
        assert_eq!(res.attempted, legacy.attempted);
        assert_eq!(res.delivered, legacy.delivered);
        assert_eq!(res.lost_to_node, legacy.lost_to_node);
        assert_eq!(res.lost_to_edge, legacy.lost_to_edge);
        assert_eq!(res.lost_other + res.lost_unreachable + res.lost_exhausted, legacy.lost_other);
        assert!((res.delivered_fraction - legacy.reachability).abs() < 1e-12);
        assert!((res.avg_stretch - legacy.avg_stretch).abs() < 1e-12);
        assert!((res.max_stretch - legacy.max_stretch).abs() < 1e-12);
        assert_eq!(res.recoveries, 0);
        assert_eq!(res.detour_hops, 0);
        assert_eq!(res.policy, "drop");
    }

    #[test]
    fn resilient_detour_delivers_at_least_as_much_as_drop() {
        use crate::recovery::{RecoveryPolicy, ResilientRouter};
        let m = MetricSpace::new(&gen::grid(6, 6));
        let s = FullTable::new(&m);
        let pairs = sample_pairs(36, 120, 3);
        let faults = FaultPlan::random_nodes(36, 0.15, 5);
        let timeline = FaultTimeline::from_plan(faults);
        let drop = eval_labeled_resilient(
            &ResilientRouter::without_hierarchy(&m, &s, RecoveryPolicy::Drop),
            &timeline,
            &pairs,
        );
        let mut events = 0usize;
        let detour = eval_labeled_resilient_observed(
            &ResilientRouter::without_hierarchy(&m, &s, RecoveryPolicy::LocalDetour { ttl: 8 }),
            &timeline,
            &pairs,
            |_, _, _| events += 1,
            |_, _, _| {},
        );
        assert_eq!(drop.attempted, detour.attempted);
        assert!(detour.delivered >= drop.delivered);
        assert!(detour.recoveries > 0, "a 15% kill rate must force some detours");
        assert_eq!(events, detour.recoveries + detour.lost_exhausted + detour.lost_unreachable);
    }

    #[test]
    fn resilient_ni_eval_delivers_under_faults() {
        use crate::recovery::{RecoveryPolicy, ResilientRouter};
        let m = MetricSpace::new(&gen::grid(5, 5));
        let nm = Naming::random(25, 5);
        let s = FullTable::with_naming(&m, nm.clone());
        let pairs = sample_pairs(25, 60, 13);
        let faults = FaultPlan::random_nodes(25, 0.2, 17);
        let legacy = eval_name_independent_under_faults(&s, &m, &nm, &faults, &pairs);
        let timeline = FaultTimeline::from_plan(faults);
        let drop = eval_name_independent_resilient(
            &ResilientRouter::without_hierarchy(&m, &s, RecoveryPolicy::Drop),
            &nm,
            &timeline,
            &pairs,
        );
        assert_eq!(drop.delivered, legacy.delivered);
        assert_eq!(drop.attempted, legacy.attempted);
        let detour = eval_name_independent_resilient(
            &ResilientRouter::without_hierarchy(&m, &s, RecoveryPolicy::LocalDetour { ttl: 8 }),
            &nm,
            &timeline,
            &pairs,
        );
        assert!(detour.delivered >= drop.delivered);
    }

    #[test]
    fn stretch_samples_match_eval() {
        let m = MetricSpace::new(&gen::grid(4, 4));
        let nm = Naming::random(16, 5);
        let s = FullTable::with_naming(&m, nm.clone());
        let pairs = sample_pairs(16, 30, 1);
        let samples = stretch_samples_ni(&s, &m, &nm, &pairs);
        assert_eq!(samples.len(), 30);
        assert!(samples.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }
}
