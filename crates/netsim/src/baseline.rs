//! The full-table shortest-path baseline.
//!
//! Every node stores the next hop toward every destination: `Θ(n log n)`
//! bits per node, stretch exactly 1. This is the non-compact reference
//! point in Table 1 / Table 2 — the "what you pay for optimal paths"
//! column against which the compact schemes' polylogarithmic tables are
//! compared.

use doubling_metric::graph::NodeId;
use doubling_metric::space::MetricSpace;

use crate::bits::{BitTally, FieldWidths};
use crate::naming::Naming;
use crate::route::{Route, RouteError, RouteRecorder};
use crate::scheme::{Label, LabeledScheme, Name, NameIndependentScheme};

/// Full shortest-path routing tables (stretch 1, linear storage).
///
/// As a labeled scheme its labels are node ids; as a name-independent
/// scheme it stores a name→next-hop row (the name table costs the same as
/// the id table since names are a permutation).
#[derive(Debug, Clone)]
pub struct FullTable {
    widths: FieldWidths,
    n: usize,
    naming: Naming,
}

impl FullTable {
    /// Builds the baseline over the metric with the identity naming.
    pub fn new(m: &MetricSpace) -> Self {
        Self::with_naming(m, Naming::identity(m.n()))
    }

    /// Builds the baseline resolving the given naming.
    pub fn with_naming(m: &MetricSpace, naming: Naming) -> Self {
        assert_eq!(naming.n(), m.n(), "naming size must match the graph");
        FullTable { widths: FieldWidths::new(m), n: m.n(), naming }
    }

    fn table(&self) -> u64 {
        // One next-hop entry per destination.
        let mut t = BitTally::new();
        t.nodes(&self.widths, self.n as u64);
        t.total()
    }

    fn run(&self, m: &MetricSpace, src: NodeId, dst: NodeId) -> Result<Route, RouteError> {
        let mut r = RouteRecorder::new(m, src);
        // Header: just the destination id.
        r.note_header_bits(self.widths.node);
        r.begin_segment("shortest", None);
        // Hop-by-hop next-hop lookups (each node consults only its row).
        while r.current() != dst {
            let nh = m.next_hop(r.current(), dst).expect("distinct nodes have a next hop");
            r.hop(nh)?;
        }
        Ok(r.finish())
    }
}

impl LabeledScheme for FullTable {
    fn scheme_name(&self) -> &'static str {
        "full-table"
    }

    fn label_of(&self, v: NodeId) -> Label {
        v
    }

    fn label_bits(&self) -> u64 {
        self.widths.node
    }

    fn table_bits(&self, _u: NodeId) -> u64 {
        self.table()
    }

    fn route(&self, m: &MetricSpace, src: NodeId, target: Label) -> Result<Route, RouteError> {
        self.run(m, src, target as NodeId)
    }
}

impl NameIndependentScheme for FullTable {
    fn scheme_name(&self) -> &'static str {
        "full-table"
    }

    fn table_bits(&self, _u: NodeId) -> u64 {
        // Name-indexed next-hop table.
        self.table()
    }

    fn route(&self, m: &MetricSpace, src: NodeId, name: Name) -> Result<Route, RouteError> {
        self.run(m, src, self.naming.node_of(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doubling_metric::gen;

    #[test]
    fn stretch_is_exactly_one() {
        let m = MetricSpace::new(&gen::random_geometric(40, 260, 2));
        let s = FullTable::new(&m);
        for u in 0..m.n() as NodeId {
            for v in 0..m.n() as NodeId {
                let r = LabeledScheme::route(&s, &m, u, v).unwrap();
                assert_eq!(r.cost, m.dist(u, v));
                assert_eq!(r.dst, v);
                r.verify(&m).unwrap();
            }
        }
    }

    #[test]
    fn name_independent_resolves_names() {
        let m = MetricSpace::new(&gen::grid(4, 4));
        let nm = Naming::random(16, 9);
        let s = FullTable::with_naming(&m, nm.clone());
        for v in 0..16u32 {
            let r = NameIndependentScheme::route(&s, &m, 0, nm.name_of(v)).unwrap();
            assert_eq!(r.dst, v);
            assert_eq!(r.cost, m.dist(0, v));
        }
    }

    #[test]
    fn table_is_linear() {
        let m = MetricSpace::new(&gen::grid(8, 8)); // n = 64
        let s = FullTable::new(&m);
        assert_eq!(LabeledScheme::table_bits(&s, 0), 64 * 6);
    }
}
