//! Arbitrary original node names.
//!
//! Name-independent routing works on top of names the designer does not
//! control (Definition 5.1 of the paper: a naming is a bijection
//! `ℓ : V → [n]`). For experiments we use seeded random permutations —
//! the adversary of Section 5 is modelled separately in the `lowerbound`
//! crate.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use doubling_metric::graph::NodeId;

use crate::scheme::Name;

/// A bijection between nodes and names.
///
/// # Examples
///
/// ```rust
/// use netsim::Naming;
///
/// let nm = Naming::random(8, 42);
/// for v in 0..8 {
///     assert_eq!(nm.node_of(nm.name_of(v)), v);
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Naming {
    name_of: Vec<Name>,
    node_of: Vec<NodeId>,
}

impl Naming {
    /// The identity naming (`name(v) = v`).
    pub fn identity(n: usize) -> Self {
        Naming { name_of: (0..n as Name).collect(), node_of: (0..n as NodeId).collect() }
    }

    /// A seeded uniformly-random naming.
    pub fn random(n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut name_of: Vec<Name> = (0..n as Name).collect();
        name_of.shuffle(&mut rng);
        Self::from_names(name_of).expect("shuffled identity is a bijection")
    }

    /// Builds a naming from an explicit `name_of` vector.
    ///
    /// # Errors
    ///
    /// Returns `Err` if the vector is not a permutation of `0..n`.
    pub fn from_names(name_of: Vec<Name>) -> Result<Self, NamingError> {
        let n = name_of.len();
        let mut node_of = vec![NodeId::MAX; n];
        for (v, &nm) in name_of.iter().enumerate() {
            if nm as usize >= n {
                return Err(NamingError::OutOfRange { name: nm, n });
            }
            if node_of[nm as usize] != NodeId::MAX {
                return Err(NamingError::Duplicate { name: nm });
            }
            node_of[nm as usize] = v as NodeId;
        }
        Ok(Naming { name_of, node_of })
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.name_of.len()
    }

    /// The name of node `v`.
    #[inline]
    pub fn name_of(&self, v: NodeId) -> Name {
        self.name_of[v as usize]
    }

    /// The node carrying `name`.
    #[inline]
    pub fn node_of(&self, name: Name) -> NodeId {
        self.node_of[name as usize]
    }

    /// Iterate `(node, name)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Name)> + '_ {
        self.name_of.iter().enumerate().map(|(v, &nm)| (v as NodeId, nm))
    }
}

/// Errors from [`Naming::from_names`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NamingError {
    /// A name was `≥ n`.
    OutOfRange {
        /// The offending name.
        name: Name,
        /// Number of nodes.
        n: usize,
    },
    /// A name appeared twice.
    Duplicate {
        /// The duplicated name.
        name: Name,
    },
}

impl std::fmt::Display for NamingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NamingError::OutOfRange { name, n } => {
                write!(f, "name {name} out of range for {n} nodes")
            }
            NamingError::Duplicate { name } => write!(f, "duplicate name {name}"),
        }
    }
}

impl std::error::Error for NamingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrip() {
        let nm = Naming::identity(5);
        for v in 0..5 {
            assert_eq!(nm.name_of(v), v);
            assert_eq!(nm.node_of(v), v);
        }
    }

    #[test]
    fn random_is_bijective_and_reproducible() {
        let a = Naming::random(100, 7);
        let b = Naming::random(100, 7);
        assert_eq!(a, b);
        let mut seen = [false; 100];
        for v in 0..100 {
            let nm = a.name_of(v);
            assert!(!seen[nm as usize]);
            seen[nm as usize] = true;
            assert_eq!(a.node_of(nm), v);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Naming::random(50, 1);
        let b = Naming::random(50, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn from_names_validates() {
        assert!(Naming::from_names(vec![1, 0, 2]).is_ok());
        assert_eq!(
            Naming::from_names(vec![0, 0, 2]).unwrap_err(),
            NamingError::Duplicate { name: 0 }
        );
        assert_eq!(
            Naming::from_names(vec![0, 3, 1]).unwrap_err(),
            NamingError::OutOfRange { name: 3, n: 3 }
        );
    }

    #[test]
    fn iter_yields_all_pairs() {
        let nm = Naming::random(10, 3);
        let pairs: Vec<_> = nm.iter().collect();
        assert_eq!(pairs.len(), 10);
        for (v, name) in pairs {
            assert_eq!(nm.node_of(name), v);
        }
    }
}
