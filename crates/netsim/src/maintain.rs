//! Incremental table maintenance under overlay churn.
//!
//! The metric space is immutable; churn mutates the *active overlay set*
//! `A ⊆ V` a scheme serves. Every scheme that can self-heal implements
//! [`Maintainable`]: an incremental [`Maintainable::repair`] that patches
//! only the structures a [`ChurnBatch`] touches, and a from-scratch
//! [`Maintainable::rebuild`] fallback. The [`Maintainer`] drives the
//! degradation ladder the robustness contract demands:
//!
//! 1. **Dirty-set repair** — the scheme re-seats affected net points,
//!    rings and subtrees locally (per-level eval budgets inside
//!    [`NetRepairBudget`] already degrade single levels to scoped greedy
//!    rebuilds).
//! 2. **Whole-scheme rebuild** — if the batch's blast radius exceeds the
//!    configured fraction, or the post-repair conform spot-audit fails,
//!    the maintainer discards the repair and rebuilds from scratch.
//!
//! Each committed batch is *epoch-stamped*: [`Maintainer::epoch`] advances
//! only after the repair (or fallback rebuild) has passed its audit, so
//! readers keyed on the epoch never observe a half-repaired table.

use doubling_metric::graph::NodeId;
use doubling_metric::nets::{ChurnBatch, ChurnBatchError, NetRepair, NetRepairBudget};
use doubling_metric::space::MetricSpace;

/// Counters for search-tree repair work: how many trees were rebuilt
/// (their metric ball touched the change set) vs pair-refreshed over an
/// untouched skeleton.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeRepair {
    /// Trees rebuilt from scratch over the new active ball.
    pub rebuilt: u64,
    /// Trees whose skeleton was provably untouched (pairs redistributed).
    pub refreshed: u64,
}

impl TreeRepair {
    /// Merges another pass's counters into this one.
    pub fn merge(&mut self, other: TreeRepair) {
        self.rebuilt += other.rebuilt;
        self.refreshed += other.refreshed;
    }
}

/// What one [`Maintainable::repair`] call did, structure by structure.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// The net-hierarchy repair report (level deltas, scoped rebuilds,
    /// distance evaluations).
    pub net: NetRepair,
    /// Rings rebuilt because a nearby net member churned.
    pub rings_rebuilt: u64,
    /// Rings with provably unchanged membership (ranges refreshed).
    pub rings_refreshed: u64,
    /// Search trees rebuilt over a changed ball.
    pub trees_rebuilt: u64,
    /// Search trees pair-refreshed over an untouched skeleton.
    pub trees_refreshed: u64,
}

impl RepairStats {
    /// Fraction of per-structure work that required a full rebuild of the
    /// structure (rings + trees), in `[0, 1]`. This is the repair's *blast
    /// radius*: 0 means pure refresh, 1 means everything was rebuilt.
    pub fn blast_fraction(&self) -> f64 {
        let rebuilt = self.rings_rebuilt + self.trees_rebuilt;
        let total = rebuilt + self.rings_refreshed + self.trees_refreshed;
        if total == 0 {
            0.0
        } else {
            rebuilt as f64 / total as f64
        }
    }

    /// Number of net levels that degraded to a scoped greedy rebuild.
    pub fn scoped_rebuilds(&self) -> usize {
        self.net.scoped_rebuilds.len()
    }
}

/// Why a maintenance batch was rejected outright.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaintainError {
    /// The batch is inconsistent with the maintainer's active set.
    InvalidBatch(ChurnBatchError),
    /// The conform spot-audit failed even after the whole-scheme rebuild —
    /// the scheme or the audit itself is broken; the epoch did not advance.
    AuditFailedAfterRebuild,
    /// A compiled forwarding plane is older than the maintainer's last
    /// committed batch: serving from it would forward on pre-churn tables.
    /// The downstream consumer must recompile the plane from the repaired
    /// scheme (see [`Maintainer::check_plane`]).
    StalePlane {
        /// Epoch the plane was compiled at.
        plane_epoch: u64,
        /// The maintainer's current epoch.
        current_epoch: u64,
    },
}

impl std::fmt::Display for MaintainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MaintainError::InvalidBatch(e) => write!(f, "invalid churn batch: {e}"),
            MaintainError::AuditFailedAfterRebuild => {
                write!(f, "spot-audit failed after whole-scheme rebuild")
            }
            MaintainError::StalePlane { plane_epoch, current_epoch } => write!(
                f,
                "forwarding plane compiled at epoch {plane_epoch} is stale \
                 (maintainer is at epoch {current_epoch}); recompile before serving"
            ),
        }
    }
}

impl std::error::Error for MaintainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MaintainError::InvalidBatch(e) => Some(e),
            MaintainError::AuditFailedAfterRebuild | MaintainError::StalePlane { .. } => None,
        }
    }
}

impl From<ChurnBatchError> for MaintainError {
    fn from(e: ChurnBatchError) -> Self {
        MaintainError::InvalidBatch(e)
    }
}

/// A routing scheme whose tables can heal incrementally under overlay
/// churn.
///
/// The contract every implementation upholds (and the repair-vs-rebuild
/// proptests verify): after `repair(batch)`, the scheme is **identical**
/// — byte for byte under `PartialEq` — to a from-scratch build over the
/// post-batch active set. `repair` may panic on a batch that fails
/// [`ChurnBatch::validate`]; drive it through a [`Maintainer`], which
/// validates first.
pub trait Maintainable {
    /// Scheme name for reports (matches the scheme-trait name).
    fn maintain_name(&self) -> &'static str;

    /// The current active overlay set, sorted by id.
    fn active_nodes(&self) -> Vec<NodeId>;

    /// Incrementally repairs the tables for `batch`, re-seating only
    /// affected net points, rings and subtrees.
    fn repair(
        &mut self,
        m: &MetricSpace,
        batch: &ChurnBatch,
        budget: &NetRepairBudget,
    ) -> RepairStats;

    /// From-scratch rebuild over `active` — the graceful-degradation
    /// fallback.
    fn rebuild(&mut self, m: &MetricSpace, active: &[NodeId]);

    /// Total routing-table bits across all physical nodes (the per-batch
    /// re-price).
    fn total_table_bits(&self) -> u64;
}

/// Fallback thresholds for the [`Maintainer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaintainerConfig {
    /// Per-level eval budget handed to the scheme's net repair.
    pub budget: NetRepairBudget,
    /// If a repair's [`RepairStats::blast_fraction`] exceeds this, the
    /// repair result is discarded and the scheme rebuilt from scratch
    /// (`1.0` disables the ladder rung).
    pub max_blast_fraction: f64,
    /// If more than this many net levels degraded to scoped rebuilds, the
    /// whole scheme is rebuilt.
    pub max_scoped_rebuilds: usize,
}

impl Default for MaintainerConfig {
    fn default() -> Self {
        MaintainerConfig {
            budget: NetRepairBudget::unbounded(),
            max_blast_fraction: 1.0,
            max_scoped_rebuilds: usize::MAX,
        }
    }
}

/// How a batch was ultimately absorbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchAction {
    /// Incremental repair, no fallback.
    Repaired,
    /// Incremental repair, with one or more scoped net-level rebuilds.
    RepairedScoped,
    /// Blast radius exceeded the budget — whole-scheme rebuild.
    RebuiltBlast,
    /// Too many scoped level rebuilds — whole-scheme rebuild.
    RebuiltScoped,
    /// Post-repair audit failed — whole-scheme rebuild recovered.
    RebuiltAudit,
}

impl BatchAction {
    /// Whether the batch fell back to a whole-scheme rebuild.
    pub fn is_fallback(&self) -> bool {
        matches!(
            self,
            BatchAction::RebuiltBlast | BatchAction::RebuiltScoped | BatchAction::RebuiltAudit
        )
    }

    /// Stable lowercase tag for JSON reports.
    pub fn tag(&self) -> &'static str {
        match self {
            BatchAction::Repaired => "repaired",
            BatchAction::RepairedScoped => "repaired-scoped",
            BatchAction::RebuiltBlast => "rebuilt-blast",
            BatchAction::RebuiltScoped => "rebuilt-scoped",
            BatchAction::RebuiltAudit => "rebuilt-audit",
        }
    }
}

/// The certified outcome of one committed batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Epoch stamped on the committed tables (strictly increasing).
    pub epoch: u64,
    /// How the batch was absorbed.
    pub action: BatchAction,
    /// Stats of the incremental repair attempt (kept even when the result
    /// was discarded for a rebuild, for blast-radius accounting).
    pub stats: RepairStats,
    /// Whether the committed tables passed the conform spot-audit.
    pub audit_ok: bool,
    /// Total table bits after the batch (the re-price).
    pub table_bits: u64,
    /// Active node count after the batch.
    pub active: usize,
}

/// Drives [`Maintainable`] schemes through churn batches with validation,
/// certification and the rebuild ladder. See the module docs.
#[derive(Debug)]
pub struct Maintainer<S> {
    scheme: S,
    active: Vec<bool>,
    epoch: u64,
    fallbacks: u64,
    config: MaintainerConfig,
}

impl<S: Maintainable> Maintainer<S> {
    /// Wraps `scheme` (serving `n` physical nodes) for maintenance.
    pub fn new(n: usize, scheme: S, config: MaintainerConfig) -> Self {
        let mut active = vec![false; n];
        for v in scheme.active_nodes() {
            active[v as usize] = true;
        }
        Maintainer { scheme, active, epoch: 0, fallbacks: 0, config }
    }

    /// The maintained scheme (read-only — mutate only through batches).
    pub fn scheme(&self) -> &S {
        &self.scheme
    }

    /// Epoch of the last committed batch (0 before any batch).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whole-scheme rebuild fallbacks so far.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks
    }

    /// Current number of active nodes.
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Certifies that a compiled forwarding plane is current: its stamped
    /// epoch must equal the maintainer's. Epoch-stamped batches invalidate
    /// every previously compiled plane — a serving layer must call this
    /// (or recompile) after each committed batch, otherwise it would
    /// silently forward on pre-churn tables.
    ///
    /// # Errors
    ///
    /// [`MaintainError::StalePlane`] when the plane predates (or, equally
    /// suspicious, postdates) the last committed batch.
    pub fn check_plane(
        &self,
        plane: &dyn crate::plane::ForwardingPlane,
    ) -> Result<(), MaintainError> {
        self.check_plane_epoch(plane.epoch())
    }

    /// [`Self::check_plane`] for a bare epoch stamp, for consumers that
    /// track epochs without holding the plane itself.
    ///
    /// # Errors
    ///
    /// [`MaintainError::StalePlane`] on any epoch mismatch.
    pub fn check_plane_epoch(&self, plane_epoch: u64) -> Result<(), MaintainError> {
        if plane_epoch != self.epoch {
            return Err(MaintainError::StalePlane { plane_epoch, current_epoch: self.epoch });
        }
        Ok(())
    }

    /// Applies one churn batch end to end: validate → incremental repair →
    /// blast-radius check → conform spot-audit (`audit` must sample-check
    /// the scheme, e.g. via `conform::audit` oracles) → epoch stamp.
    /// Degrades to a whole-scheme rebuild when a ladder rung fails.
    ///
    /// # Errors
    ///
    /// [`MaintainError::InvalidBatch`] if the batch does not fit the
    /// current active set (nothing is modified), or
    /// [`MaintainError::AuditFailedAfterRebuild`] if even the rebuilt
    /// scheme fails the audit (the epoch does not advance).
    pub fn apply_batch(
        &mut self,
        m: &MetricSpace,
        batch: &ChurnBatch,
        audit: impl Fn(&S) -> bool,
    ) -> Result<BatchReport, MaintainError> {
        batch.validate(&self.active)?;
        let mut new_active = self.active.clone();
        for &v in &batch.leaves {
            new_active[v as usize] = false;
        }
        for &v in &batch.joins {
            new_active[v as usize] = true;
        }
        let ids: Vec<NodeId> =
            (0..new_active.len() as NodeId).filter(|&v| new_active[v as usize]).collect();

        let stats = self.scheme.repair(m, batch, &self.config.budget);
        let mut action = if stats.net.scoped_rebuilds.is_empty() {
            BatchAction::Repaired
        } else {
            BatchAction::RepairedScoped
        };
        if stats.blast_fraction() > self.config.max_blast_fraction {
            self.scheme.rebuild(m, &ids);
            self.fallbacks += 1;
            action = BatchAction::RebuiltBlast;
        } else if stats.scoped_rebuilds() > self.config.max_scoped_rebuilds {
            self.scheme.rebuild(m, &ids);
            self.fallbacks += 1;
            action = BatchAction::RebuiltScoped;
        }

        let mut audit_ok = audit(&self.scheme);
        if !audit_ok && !action.is_fallback() {
            self.scheme.rebuild(m, &ids);
            self.fallbacks += 1;
            action = BatchAction::RebuiltAudit;
            audit_ok = audit(&self.scheme);
        }
        if !audit_ok {
            return Err(MaintainError::AuditFailedAfterRebuild);
        }

        self.active = new_active;
        self.epoch += 1;
        Ok(BatchReport {
            epoch: self.epoch,
            action,
            stats,
            audit_ok,
            table_bits: self.scheme.total_table_bits(),
            active: ids.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repair_stats_blast_fraction() {
        let mut s = RepairStats::default();
        assert_eq!(s.blast_fraction(), 0.0);
        s.rings_rebuilt = 1;
        s.rings_refreshed = 3;
        assert!((s.blast_fraction() - 0.25).abs() < 1e-12);
        s.trees_rebuilt = 4;
        s.trees_refreshed = 0;
        assert!((s.blast_fraction() - 0.625).abs() < 1e-12);
    }

    #[test]
    fn batch_action_tags_are_stable() {
        assert_eq!(BatchAction::Repaired.tag(), "repaired");
        assert!(BatchAction::RebuiltAudit.is_fallback());
        assert!(!BatchAction::RepairedScoped.is_fallback());
    }

    #[test]
    fn maintain_error_display_chains_batch_error() {
        let e = MaintainError::from(ChurnBatchError::NotActive(3));
        assert!(e.to_string().contains("leave target 3"));
    }
}
