//! Routing-scheme simulator for the compact-routing workspace.
//!
//! The paper's claims are about three quantities: the **stretch** of the
//! delivered path, the **routing-table bits** per node, and the **packet
//! header bits**. This crate pins down how each is measured:
//!
//! * A scheme executes a route as a sequence of *hops over real graph
//!   edges*, captured by a [`route::RouteRecorder`] that validates adjacency
//!   of consecutive hops and charges the exact edge weights. Upper layers
//!   never teleport: a "virtual edge" of a search tree is traversed by
//!   walking the underlying shortest path (or the underlying labeled
//!   scheme's route), and its true cost is charged.
//! * Table bits are reported per node by the scheme itself, using the
//!   [`bits`] conventions (node ids, labels and ports cost `⌈log₂ n⌉` bits,
//!   distances `⌈log₂ diameter⌉ + 1`, levels `⌈log₂(L+1)⌉`).
//! * Header bits are the maximum, over all hops of a route, of the
//!   serialized header size the scheme declares via
//!   [`route::RouteRecorder::note_header_bits`].
//!
//! Two scheme flavours mirror the paper's two models:
//! [`scheme::LabeledScheme`] (the designer assigns labels; the source knows
//! the destination's label) and [`scheme::NameIndependentScheme`] (the
//! source knows only the adversarially-assigned original [`scheme::Name`]).
//!
//! # Example
//!
//! ```rust
//! use doubling_metric::{gen, MetricSpace};
//! use netsim::baseline::FullTable;
//! use netsim::scheme::LabeledScheme;
//!
//! let m = MetricSpace::new(&gen::grid(4, 4));
//! let scheme = FullTable::new(&m);
//! let route = scheme.route(&m, 0, scheme.label_of(15)).unwrap();
//! assert_eq!(route.cost, m.dist(0, 15)); // stretch 1
//! ```

#![warn(missing_docs)]

pub mod baseline;
pub mod bits;
pub mod faults;
pub mod json;
pub mod maintain;
pub mod naming;
pub mod plane;
pub mod recovery;
pub mod route;
pub mod scheme;
pub mod stats;

pub use bits::{FieldWidths, TableComponent};
pub use maintain::{
    BatchAction, BatchReport, MaintainError, Maintainable, Maintainer, MaintainerConfig,
    RepairStats,
};
pub use naming::Naming;
pub use plane::{BitArena, BitCursor, ForwardingPlane};
pub use recovery::{
    DeliveryOutcome, FallbackHierarchy, LossReason, RecoveryEvent, RecoveryPolicy, ResilientRouter,
};
pub use route::{Route, RouteError, RouteRecorder, Segment};
pub use scheme::{Certifiable, Label, LabeledScheme, Name, NameIndependentScheme};
