//! Dependency-free JSON: a small document model with a writer and parser.
//!
//! The workspace previously relied on optional `serde`/`serde_json`
//! dependencies for persistence; the build environment has no crates.io
//! access, so the experiment binaries and tests use this module instead.
//! It covers the whole JSON grammar except exotic number forms, escapes
//! strings correctly, and writes floats so that integral values keep a
//! trailing `.0` (matching what `serde_json` produced, which the
//! round-trip tests assert on).
//!
//! Conversions for the workspace's own types live here too:
//! [`graph_to_json`] / [`graph_from_json`], [`naming_to_json`] /
//! [`naming_from_json`], and `to_json` helpers for measurement structs.
//!
//! # Example
//!
//! ```rust
//! use netsim::json::Value;
//!
//! let doc = Value::Object(vec![
//!     ("name".into(), Value::from("grid")),
//!     ("n".into(), Value::from(16u64)),
//! ]);
//! let text = doc.to_string();
//! assert_eq!(text, r#"{"name":"grid","n":16}"#);
//! assert_eq!(Value::parse(&text).unwrap(), doc);
//! ```

use std::fmt;

use doubling_metric::graph::{Graph, GraphBuilder};

use crate::naming::Naming;
use crate::route::Route;
use crate::stats::{EvalResult, FaultEvalResult, RecoveryEvalResult, StretchQuantiles};

/// A JSON document: the usual six shapes.
///
/// Objects preserve insertion order (they are association lists, not maps),
/// so emitted documents are deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (written without a decimal point). Ids, counters, bit
    /// totals and distances use this form.
    Int(i64),
    /// A non-integral number. Integral `f64`s written through this variant
    /// keep a trailing `.0`, matching what `serde_json` produced.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as ordered `(key, value)` pairs.
    Object(Vec<(String, Value)>),
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Num(x)
    }
}

impl From<u64> for Value {
    fn from(x: u64) -> Self {
        i64::try_from(x).map(Value::Int).unwrap_or(Value::Num(x as f64))
    }
}

impl From<u32> for Value {
    fn from(x: u32) -> Self {
        Value::Int(x as i64)
    }
}

impl From<usize> for Value {
    fn from(x: usize) -> Self {
        i64::try_from(x).map(Value::Int).unwrap_or(Value::Num(x as f64))
    }
}

impl From<bool> for Value {
    fn from(x: bool) -> Self {
        Value::Bool(x)
    }
}

impl Value {
    /// The value under `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number as `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            Value::Int(x) => Some(*x as f64),
            _ => None,
        }
    }

    /// The number as an exact `u64`, if this is a nonnegative integer (or
    /// an integral float within exact range).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(x) => u64::try_from(*x).ok(),
            Value::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Parses a JSON document (the full input must be one value).
    ///
    /// # Errors
    ///
    /// Returns a message with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    /// Pretty-printed variant of [`fmt::Display`] with two-space indents.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Value::Object(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
            other => out.push_str(&other.to_string()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(x) => write!(f, "{x}"),
            Value::Num(x) => {
                if !x.is_finite() {
                    // JSON has no NaN/Inf; emit null like serde_json's
                    // arbitrary-precision mode refuses to.
                    f.write_str("null")
                } else if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => {
                let mut buf = String::new();
                write_escaped(&mut buf, s);
                f.write_str(&buf)
            }
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut buf = String::new();
                    write_escaped(&mut buf, k);
                    write!(f, "{buf}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, pos, "null").map(|_| Value::Null),
        Some(b't') => expect(bytes, pos, "true").map(|_| Value::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|_| Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let val = parse_value(bytes, pos)?;
                pairs.push((key, val));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).ok_or("surrogate \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (input is a &str, so this is
                // always on a boundary).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    // Plain integer forms stay integers; anything with a point or exponent
    // parses as a float, so `1.0` survives a round trip as `1.0`.
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Int(i));
        }
    }
    text.parse::<f64>().map(Value::Num).map_err(|_| format!("bad number at byte {start}"))
}

/// Encodes a graph as `{"n": …, "edges": [[u, v, w], …]}`.
pub fn graph_to_json(g: &Graph) -> Value {
    let edges: Vec<Value> =
        g.edges().map(|(u, v, w)| Value::Array(vec![u.into(), v.into(), w.into()])).collect();
    Value::Object(vec![("n".into(), g.node_count().into()), ("edges".into(), Value::Array(edges))])
}

/// Decodes a graph written by [`graph_to_json`].
///
/// # Errors
///
/// Returns a message if the document has the wrong shape or the edges do
/// not form a valid connected graph.
pub fn graph_from_json(v: &Value) -> Result<Graph, String> {
    let n = v.get("n").and_then(Value::as_u64).ok_or("graph JSON missing integral `n`")? as usize;
    let edges =
        v.get("edges").and_then(Value::as_array).ok_or("graph JSON missing `edges` array")?;
    let mut b = GraphBuilder::new(n);
    for e in edges {
        let triple = e.as_array().ok_or("edge is not an array")?;
        if triple.len() != 3 {
            return Err("edge is not a [u, v, w] triple".into());
        }
        let u = triple[0].as_u64().ok_or("edge endpoint is not integral")? as u32;
        let vtx = triple[1].as_u64().ok_or("edge endpoint is not integral")? as u32;
        let w = triple[2].as_u64().ok_or("edge weight is not integral")?;
        b.edge(u, vtx, w).map_err(|e| e.to_string())?;
    }
    b.build().map_err(|e| e.to_string())
}

/// Encodes a naming as `{"names": [name_of(0), name_of(1), …]}`.
pub fn naming_to_json(nm: &Naming) -> Value {
    let names: Vec<Value> = (0..nm.n() as u32).map(|v| nm.name_of(v).into()).collect();
    Value::Object(vec![("names".into(), Value::Array(names))])
}

/// Decodes a naming written by [`naming_to_json`].
///
/// # Errors
///
/// Returns a message if the document has the wrong shape or the names are
/// not a bijection on `0..n`.
pub fn naming_from_json(v: &Value) -> Result<Naming, String> {
    let names =
        v.get("names").and_then(Value::as_array).ok_or("naming JSON missing `names` array")?;
    let name_of: Vec<u32> = names
        .iter()
        .map(|x| x.as_u64().map(|n| n as u32).ok_or("name is not integral"))
        .collect::<Result<_, _>>()?;
    Naming::from_names(name_of).map_err(|e| e.to_string())
}

impl EvalResult {
    /// This result as a JSON object (field names match the struct).
    pub fn to_json(&self) -> Value {
        Value::Object(vec![
            ("scheme".into(), self.scheme.into()),
            ("max_stretch".into(), self.max_stretch.into()),
            ("avg_stretch".into(), self.avg_stretch.into()),
            ("routes".into(), self.routes.into()),
            ("failures".into(), self.failures.into()),
            ("max_table_bits".into(), self.max_table_bits.into()),
            ("avg_table_bits".into(), self.avg_table_bits.into()),
            ("max_header_bits".into(), self.max_header_bits.into()),
            ("understretch".into(), self.understretch.into()),
        ])
    }
}

impl StretchQuantiles {
    /// These quantiles as a JSON object.
    pub fn to_json(&self) -> Value {
        Value::Object(vec![
            ("p50".into(), self.p50.into()),
            ("p90".into(), self.p90.into()),
            ("p99".into(), self.p99.into()),
            ("max".into(), self.max.into()),
        ])
    }
}

impl FaultEvalResult {
    /// This churn result as a JSON object (field names match the struct).
    pub fn to_json(&self) -> Value {
        Value::Object(vec![
            ("scheme".into(), self.scheme.into()),
            ("attempted".into(), self.attempted.into()),
            ("delivered".into(), self.delivered.into()),
            ("reachability".into(), self.reachability.into()),
            ("avg_stretch".into(), self.avg_stretch.into()),
            ("max_stretch".into(), self.max_stretch.into()),
            ("lost_to_node".into(), self.lost_to_node.into()),
            ("lost_to_edge".into(), self.lost_to_edge.into()),
            ("lost_other".into(), self.lost_other.into()),
            ("understretch".into(), self.understretch.into()),
        ])
    }
}

impl RecoveryEvalResult {
    /// This resilient-delivery result as a JSON object (field names match
    /// the struct).
    pub fn to_json(&self) -> Value {
        Value::Object(vec![
            ("scheme".into(), self.scheme.into()),
            ("policy".into(), self.policy.as_str().into()),
            ("attempted".into(), self.attempted.into()),
            ("delivered".into(), self.delivered.into()),
            ("delivered_fraction".into(), self.delivered_fraction.into()),
            ("avg_stretch".into(), self.avg_stretch.into()),
            ("max_stretch".into(), self.max_stretch.into()),
            ("recoveries".into(), self.recoveries.into()),
            ("detour_hops".into(), self.detour_hops.into()),
            ("lost_to_node".into(), self.lost_to_node.into()),
            ("lost_to_edge".into(), self.lost_to_edge.into()),
            ("lost_unreachable".into(), self.lost_unreachable.into()),
            ("lost_exhausted".into(), self.lost_exhausted.into()),
            ("lost_other".into(), self.lost_other.into()),
            ("understretch".into(), self.understretch.into()),
        ])
    }
}

impl Route {
    /// This route as a JSON object: endpoints, hops, cost, header bits,
    /// and the segment decomposition.
    pub fn to_json(&self) -> Value {
        let segments: Vec<Value> = self
            .segments
            .iter()
            .map(|s| {
                Value::Object(vec![
                    ("label".into(), s.label.into()),
                    ("level".into(), s.level.map_or(Value::Null, Value::from)),
                    ("cost".into(), s.cost.into()),
                    ("hops".into(), s.hops.into()),
                ])
            })
            .collect();
        Value::Object(vec![
            ("src".into(), self.src.into()),
            ("dst".into(), self.dst.into()),
            ("hops".into(), Value::Array(self.hops.iter().map(|&h| h.into()).collect())),
            ("cost".into(), self.cost.into()),
            ("max_header_bits".into(), self.max_header_bits.into()),
            ("segments".into(), Value::Array(segments)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for text in ["null", "true", "false", "3.5", "\"hi \\\"there\\\"\""] {
            let v = Value::parse(text).unwrap();
            assert_eq!(Value::parse(&v.to_string()).unwrap(), v);
        }
    }

    #[test]
    fn integral_floats_keep_point_zero() {
        assert_eq!(Value::Num(1.0).to_string(), "1.0");
        assert_eq!(Value::Num(1.5).to_string(), "1.5");
        assert_eq!(Value::Num(-2.0).to_string(), "-2.0");
    }

    #[test]
    fn nested_roundtrip() {
        let doc = Value::Object(vec![
            ("a".into(), Value::Array(vec![1u64.into(), Value::Null])),
            ("b".into(), Value::Object(vec![("c".into(), true.into())])),
            ("s".into(), "line\nbreak\ttab".into()),
        ]);
        assert_eq!(Value::parse(&doc.to_string()).unwrap(), doc);
        assert_eq!(Value::parse(&doc.to_string_pretty()).unwrap(), doc);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Value::parse("1 2").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("{\"a\":}").is_err());
    }
}
