//! The two routing-scheme interfaces of the paper.
//!
//! *Labeled* (name-dependent) schemes assign each node a short routing label
//! at preprocessing time; the source must know the destination's label.
//! *Name-independent* schemes must deliver given only the destination's
//! arbitrary original name (see [`crate::naming::Naming`]).
//!
//! Both traits take the [`MetricSpace`] explicitly on `route` so scheme
//! structs own only their *tables* — the `Θ(n²)` metric is shared, and the
//! accounting of per-node storage stays honest.

use doubling_metric::graph::NodeId;
use doubling_metric::space::MetricSpace;

use crate::bits::{FieldWidths, TableComponent};
use crate::faults::{FaultPlan, FaultTimeline};
use crate::route::{Route, RouteError};

/// A routing label assigned by a labeled scheme (`⌈log n⌉` bits for the
/// schemes in this workspace).
pub type Label = u32;

/// An arbitrary original node name (assigned adversarially, `⌈log n⌉` bits).
pub type Name = u32;

/// A scheme whose per-node tables can be *enumerated* component by
/// component for an external audit.
///
/// `table_components(u)` must list everything node `u` stores, as typed
/// field counts ([`TableComponent`]), and is required to be written as an
/// independent code path from the scheme's own `table_bits(u)` claim —
/// double-entry bookkeeping. A conformance checker re-prices the
/// enumeration through [`FieldWidths`] and rejects the scheme if the two
/// totals ever disagree, so a bug in either path (or a deliberately
/// corrupted table) fails the certificate instead of passing vacuously.
pub trait Certifiable {
    /// The field widths the scheme fixed at preprocessing time.
    fn field_widths(&self) -> FieldWidths;

    /// Every component node `u` stores, as typed field counts.
    fn table_components(&self, u: NodeId) -> Vec<TableComponent>;

    /// The enumerated table size at `u`: the sum of
    /// [`TableComponent::bits`] over `table_components(u)`.
    fn enumerated_table_bits(&self, u: NodeId) -> u64 {
        let w = self.field_widths();
        self.table_components(u).iter().map(|c| c.bits(&w)).sum()
    }
}

/// A labeled (name-dependent) routing scheme.
pub trait LabeledScheme {
    /// Human-readable scheme name for tables.
    fn scheme_name(&self) -> &'static str;

    /// The label this scheme assigned to `v`.
    fn label_of(&self, v: NodeId) -> Label;

    /// The size of a routing label in bits.
    fn label_bits(&self) -> u64;

    /// Routing-table size at node `u`, in bits, per the [`crate::bits`]
    /// conventions.
    fn table_bits(&self, u: NodeId) -> u64;

    /// Routes a packet from `src` to the node labeled `target`.
    ///
    /// # Errors
    ///
    /// Any error indicates a scheme bug; the paper's schemes always deliver.
    fn route(&self, m: &MetricSpace, src: NodeId, target: Label) -> Result<Route, RouteError>;

    /// Convenience: route to a node by id (looking up its label first).
    fn route_to_node(
        &self,
        m: &MetricSpace,
        src: NodeId,
        dst: NodeId,
    ) -> Result<Route, RouteError> {
        self.route(m, src, self.label_of(dst))
    }

    /// Routes under *stale tables* with the given faults injected: the
    /// scheme picks its path as if nothing failed (its tables predate the
    /// failures), and the simulator delivers the packet only if that path
    /// avoids every dead node and edge.
    ///
    /// With an empty plan, the returned route is byte-identical to
    /// [`LabeledScheme::route`].
    ///
    /// # Errors
    ///
    /// [`RouteError::NodeFailed`] / [`RouteError::EdgeFailed`] when the
    /// packet is lost to a casualty (including a dead source), plus
    /// whatever scheme errors plain routing can produce.
    fn route_with_faults(
        &self,
        m: &MetricSpace,
        src: NodeId,
        target: Label,
        faults: &FaultPlan,
    ) -> Result<Route, RouteError> {
        if faults.is_node_dead(src) {
            return Err(RouteError::NodeFailed { node: src });
        }
        let route = self.route(m, src, target)?;
        faults.check_route(m, &route)?;
        Ok(route)
    }

    /// Convenience: [`LabeledScheme::route_with_faults`] to a node by id.
    ///
    /// # Errors
    ///
    /// Same as [`LabeledScheme::route_with_faults`].
    fn route_to_node_with_faults(
        &self,
        m: &MetricSpace,
        src: NodeId,
        dst: NodeId,
        faults: &FaultPlan,
    ) -> Result<Route, RouteError> {
        self.route_with_faults(m, src, self.label_of(dst), faults)
    }

    /// Stale-table routing against a *dynamic* fault schedule: the scheme
    /// plans against its pre-failure tables, and the route is replayed
    /// hop-by-hop with [`FaultTimeline::check_route`] so faults that land
    /// mid-flight (in later epochs) can still kill it. No recovery is
    /// attempted — wrap the scheme in a
    /// [`crate::recovery::ResilientRouter`] for that.
    ///
    /// With a single-epoch timeline this matches
    /// [`LabeledScheme::route_with_faults`] on the epoch's plan exactly.
    ///
    /// # Errors
    ///
    /// [`RouteError::NodeFailed`] / [`RouteError::EdgeFailed`] when the
    /// packet is lost to a casualty of the epoch it crossed, plus
    /// whatever scheme errors plain routing can produce.
    fn route_with_timeline(
        &self,
        m: &MetricSpace,
        src: NodeId,
        target: Label,
        timeline: &FaultTimeline,
    ) -> Result<Route, RouteError> {
        if timeline.initial().is_node_dead(src) {
            return Err(RouteError::NodeFailed { node: src });
        }
        let route = self.route(m, src, target)?;
        timeline.check_route(&route)?;
        Ok(route)
    }
}

/// A name-independent routing scheme: must deliver given only the original
/// (adversarial) name of the destination.
pub trait NameIndependentScheme {
    /// Human-readable scheme name for tables.
    fn scheme_name(&self) -> &'static str;

    /// Routing-table size at node `u`, in bits.
    fn table_bits(&self, u: NodeId) -> u64;

    /// Routes a packet from `src` to the node whose original name is
    /// `name`.
    ///
    /// # Errors
    ///
    /// Any error indicates a scheme bug; the paper's schemes always deliver.
    fn route(&self, m: &MetricSpace, src: NodeId, name: Name) -> Result<Route, RouteError>;

    /// Routes under *stale tables* with the given faults injected; see
    /// [`LabeledScheme::route_with_faults`] for the model.
    ///
    /// # Errors
    ///
    /// [`RouteError::NodeFailed`] / [`RouteError::EdgeFailed`] when the
    /// packet is lost to a casualty (including a dead source), plus
    /// whatever scheme errors plain routing can produce.
    fn route_with_faults(
        &self,
        m: &MetricSpace,
        src: NodeId,
        name: Name,
        faults: &FaultPlan,
    ) -> Result<Route, RouteError> {
        if faults.is_node_dead(src) {
            return Err(RouteError::NodeFailed { node: src });
        }
        let route = self.route(m, src, name)?;
        faults.check_route(m, &route)?;
        Ok(route)
    }

    /// Stale-table routing against a *dynamic* fault schedule; see
    /// [`LabeledScheme::route_with_timeline`] for the model.
    ///
    /// # Errors
    ///
    /// [`RouteError::NodeFailed`] / [`RouteError::EdgeFailed`] when the
    /// packet is lost to a casualty of the epoch it crossed, plus
    /// whatever scheme errors plain routing can produce.
    fn route_with_timeline(
        &self,
        m: &MetricSpace,
        src: NodeId,
        name: Name,
        timeline: &FaultTimeline,
    ) -> Result<Route, RouteError> {
        if timeline.initial().is_node_dead(src) {
            return Err(RouteError::NodeFailed { node: src });
        }
        let route = self.route(m, src, name)?;
        timeline.check_route(&route)?;
        Ok(route)
    }
}
