//! Self-healing routing runtime: hop-by-hop delivery with in-flight
//! recovery from failures.
//!
//! The stale-table fault model of [`crate::faults`] is all-or-nothing: a
//! precomputed route either avoids every casualty or the packet is
//! dropped at the first dead element. Real deployments — and the
//! dynamic-doubling line of work the paper cites — *recover* in flight.
//! This module drives any [`LabeledScheme`] / [`NameIndependentScheme`]
//! one hop at a time against a [`FaultTimeline`] and, on hitting a dead
//! node or edge, applies a [`RecoveryPolicy`]:
//!
//! * [`RecoveryPolicy::Drop`] — the baseline: give up at the first
//!   casualty, reproducing `route_with_faults` semantics exactly.
//! * [`RecoveryPolicy::LocalDetour`] — breadth-first search of the
//!   surviving graph around the casualty, bounded by a TTL, re-entering
//!   the scheme's planned route at the furthest reachable planned hop.
//!   With `ttl = 0` this degrades to `Drop` exactly.
//! * [`RecoveryPolicy::LevelFallback`] — re-issue the lookup from the
//!   next-coarser net level: climb the current node's zooming sequence
//!   (the scheme's own hierarchy, via [`FallbackHierarchy`]) to the first
//!   surviving landmark, walk there, and re-plan from it. Each fallback
//!   consumes one climb from the per-delivery budget and climbs one level
//!   higher than the last.
//! * [`RecoveryPolicy::Chained`] — try a list of policies in order at
//!   each casualty; the first that finds a way out wins.
//!
//! Every delivery produces a [`DeliveryOutcome`]: either
//! `Delivered { stretch, detour_hops, recoveries, route }` — with the
//! route re-checkable against the timeline via
//! [`FaultTimeline::check_route`] — or `Lost { reason, progress }`, where
//! [`LossReason::Unreachable`] is distinguished from an exhausted
//! recovery budget by an exact reachability check on the surviving graph
//! (a disconnected destination is reported as such, never spun on).
//!
//! Recovery decisions are surfaced through an observer hook
//! ([`RecoveryEvent`]), which the `obs` crate translates into
//! `recovery-detour` / `recovery-fallback` / `recovery-exhausted` trace
//! events — the same pattern the evaluation observers use, so `netsim`
//! stays free of an `obs` dependency.
//!
//! Finally, [`greedy_chaos`] runs an adversarial campaign: greedily grow
//! a fault set one node at a time, always killing the candidate that
//! maximizes packet loss under a given policy, then prune kills that turn
//! out redundant — a minimal worst-case fault set, serializable via
//! [`FaultPlan::to_json`] for reproduction.
//!
//! # Example
//!
//! ```rust
//! use doubling_metric::{gen, MetricSpace};
//! use netsim::baseline::FullTable;
//! use netsim::faults::{FaultPlan, FaultTimeline};
//! use netsim::recovery::{DeliveryOutcome, RecoveryPolicy, ResilientRouter};
//!
//! let m = MetricSpace::new(&gen::grid(4, 4));
//! let scheme = FullTable::new(&m);
//! let mut plan = FaultPlan::none(m.n());
//! plan.kill_node(5);
//! let timeline = FaultTimeline::from_plan(plan);
//! let router =
//!     ResilientRouter::without_hierarchy(&m, &scheme, RecoveryPolicy::LocalDetour { ttl: 4 });
//! let outcome = router.deliver(0, 10, &timeline, &mut |_| {});
//! assert!(matches!(outcome, DeliveryOutcome::Delivered { .. }));
//! ```

use std::fmt;

use doubling_metric::graph::{Dist, NodeId};
use doubling_metric::nets::NetHierarchy;
use doubling_metric::space::MetricSpace;

use crate::faults::{FaultPlan, FaultTimeline};
use crate::naming::Naming;
use crate::route::{Route, RouteError, RouteRecorder};
use crate::scheme::{LabeledScheme, NameIndependentScheme};

/// What to do when an in-flight packet hits a dead node or edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Give up: the packet is lost at the first casualty (the stale-table
    /// baseline).
    Drop,
    /// Bounded breadth-first search of the surviving graph to bypass the
    /// casualty and re-enter the planned route. `ttl` bounds the BFS
    /// depth; `ttl = 0` degrades to [`RecoveryPolicy::Drop`] exactly.
    LocalDetour {
        /// Maximum BFS depth (hops) a single detour may explore.
        ttl: usize,
    },
    /// Re-issue the lookup from the next-coarser net level: climb the
    /// current node's zooming sequence to a surviving landmark and
    /// re-plan from there. `max_climbs` bounds the climbs per delivery.
    LevelFallback {
        /// Total fallback climbs allowed over one delivery.
        max_climbs: usize,
    },
    /// Try each policy in order at every casualty; the first that finds a
    /// way out wins, and the loss reason of the last is reported if none
    /// does.
    Chained(Vec<RecoveryPolicy>),
}

impl RecoveryPolicy {
    /// The default detour TTL used by [`RecoveryPolicy::parse`] when
    /// `"detour"` is given without a bound.
    pub const DEFAULT_TTL: usize = 8;
    /// The default climb budget used by [`RecoveryPolicy::parse`] when
    /// `"fallback"` is given without a bound.
    pub const DEFAULT_CLIMBS: usize = 4;

    /// Parses the CLI / JSON spelling produced by the `Display` impl:
    /// `"drop"`, `"detour"` / `"detour:TTL"`, `"fallback"` /
    /// `"fallback:CLIMBS"`, or a `+`-joined chain such as
    /// `"detour:8+fallback:4"`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unrecognized component.
    pub fn parse(s: &str) -> Result<Self, String> {
        let parts: Vec<&str> = s.split('+').collect();
        let mut parsed = Vec::with_capacity(parts.len());
        for part in &parts {
            parsed.push(Self::parse_atom(part.trim())?);
        }
        match parsed.len() {
            0 => Err("empty policy".into()),
            1 => Ok(parsed.pop().expect("one element")),
            _ => Ok(RecoveryPolicy::Chained(parsed)),
        }
    }

    fn parse_atom(s: &str) -> Result<Self, String> {
        let (head, arg) = match s.split_once(':') {
            Some((h, a)) => (h, Some(a)),
            None => (s, None),
        };
        let num = |default: usize| -> Result<usize, String> {
            match arg {
                None => Ok(default),
                Some(a) => a.parse().map_err(|_| format!("bad policy bound {a:?} in {s:?}")),
            }
        };
        match head {
            "drop" if arg.is_none() => Ok(RecoveryPolicy::Drop),
            "detour" => Ok(RecoveryPolicy::LocalDetour { ttl: num(Self::DEFAULT_TTL)? }),
            "fallback" => Ok(RecoveryPolicy::LevelFallback { max_climbs: num(Self::DEFAULT_CLIMBS)? }),
            _ => Err(format!(
                "unknown recovery policy {s:?} (expected drop, detour[:TTL], fallback[:CLIMBS], or a +-chain)"
            )),
        }
    }

    /// Whether any component of this policy climbs a net hierarchy.
    pub fn needs_hierarchy(&self) -> bool {
        match self {
            RecoveryPolicy::LevelFallback { .. } => true,
            RecoveryPolicy::Chained(list) => list.iter().any(RecoveryPolicy::needs_hierarchy),
            _ => false,
        }
    }
}

impl fmt::Display for RecoveryPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryPolicy::Drop => write!(f, "drop"),
            RecoveryPolicy::LocalDetour { ttl } => write!(f, "detour:{ttl}"),
            RecoveryPolicy::LevelFallback { max_climbs } => write!(f, "fallback:{max_climbs}"),
            RecoveryPolicy::Chained(list) => {
                for (i, p) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, "+")?;
                    }
                    write!(f, "{p}")?;
                }
                Ok(())
            }
        }
    }
}

/// Why a resilient delivery failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LossReason {
    /// The source was already dead when the packet departed.
    SourceDead,
    /// The packet hit a dead element and the policy provided no way out
    /// (the [`RecoveryPolicy::Drop`] outcome, and `LocalDetour { ttl: 0 }`'s).
    Casualty {
        /// The fault that stopped the packet.
        error: RouteError,
    },
    /// The destination is not reachable from where the packet stands in
    /// the surviving graph of the current epoch — no policy could have
    /// delivered it.
    Unreachable,
    /// The destination is still reachable, but the policy's budget (TTL,
    /// climbs) was spent before a way around was found.
    RecoveryExhausted,
    /// The recorder's hop budget tripped — a recovery loop.
    HopBudget,
    /// The underlying scheme itself errored (a scheme bug, not a fault).
    SchemeError {
        /// The scheme's error.
        error: RouteError,
    },
}

impl LossReason {
    /// Short machine-readable tag (used in trace events and JSON).
    pub fn kind(&self) -> &'static str {
        match self {
            LossReason::SourceDead => "source-dead",
            LossReason::Casualty { .. } => "casualty",
            LossReason::Unreachable => "unreachable",
            LossReason::RecoveryExhausted => "recovery-exhausted",
            LossReason::HopBudget => "hop-budget",
            LossReason::SchemeError { .. } => "scheme-error",
        }
    }
}

/// How far a lost packet got before it died.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Progress {
    /// The node the packet last stood at.
    pub reached: NodeId,
    /// Hops taken (edge traversals).
    pub hops: usize,
    /// Cost accrued.
    pub cost: Dist,
    /// Successful recoveries before the loss.
    pub recoveries: usize,
}

/// The result of one resilient delivery.
#[derive(Debug, Clone, PartialEq)]
pub enum DeliveryOutcome {
    /// The packet arrived.
    Delivered {
        /// `cost / d(src, dst)` of the realized (possibly detoured) path.
        stretch: f64,
        /// Extra hops spent inside detours.
        detour_hops: usize,
        /// Recovery interventions (detours + fallbacks) that succeeded.
        recoveries: usize,
        /// The full realized route; replays cleanly under
        /// [`FaultTimeline::check_route`] and [`Route::verify`].
        route: Route,
    },
    /// The packet was lost.
    Lost {
        /// Why.
        reason: LossReason,
        /// How far it got.
        progress: Progress,
    },
}

impl DeliveryOutcome {
    /// Whether the packet arrived.
    pub fn is_delivered(&self) -> bool {
        matches!(self, DeliveryOutcome::Delivered { .. })
    }
}

/// One recovery decision, surfaced to an observer hook so a tracing layer
/// can attach without `netsim` depending on it (see `obs`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryEvent {
    /// A local detour bypassed a casualty.
    Detour {
        /// Node where the casualty was hit.
        at: NodeId,
        /// Planned-route node the detour re-entered at.
        rejoin: NodeId,
        /// Hops the detour path takes.
        detour_hops: usize,
    },
    /// A fallback climbed to a coarser landmark and re-planned.
    Fallback {
        /// Node where the casualty was hit.
        at: NodeId,
        /// The surviving landmark re-planned from.
        landmark: NodeId,
        /// The net level the landmark was taken from.
        level: usize,
    },
    /// Recovery failed and the packet is about to be reported lost.
    Exhausted {
        /// Node where the final casualty was hit.
        at: NodeId,
        /// [`LossReason::kind`] of the loss being reported.
        reason: &'static str,
    },
}

impl RecoveryEvent {
    /// The trace-event name for this decision.
    pub fn kind(&self) -> &'static str {
        match self {
            RecoveryEvent::Detour { .. } => "recovery-detour",
            RecoveryEvent::Fallback { .. } => "recovery-fallback",
            RecoveryEvent::Exhausted { .. } => "recovery-exhausted",
        }
    }
}

/// Scheme-side hook for [`RecoveryPolicy::LevelFallback`]: the net
/// hierarchy whose zooming sequence the runtime climbs for coarser
/// landmarks. All four of the workspace's hierarchical schemes expose the
/// hierarchy they already own; schemes without one (e.g. the full-table
/// baseline) use [`ResilientRouter::without_hierarchy`] instead.
pub trait FallbackHierarchy {
    /// The hierarchy used to pick fallback landmarks.
    fn fallback_hierarchy(&self) -> &NetHierarchy;
}

/// A successful recovery action, internal to the drive loop.
enum Recovered {
    /// Splice `via` (`cur ..= rejoin`) in front of the planned tail after
    /// position `rejoin_idx`.
    Detour { via: Vec<NodeId>, rejoin_idx: usize },
    /// Walk to `landmark` and continue on `replanned`.
    Fallback { landmark: NodeId, level: usize, replanned: Route },
}

/// Drives a scheme hop-by-hop against a [`FaultTimeline`], applying a
/// [`RecoveryPolicy`] at each casualty. See the [module docs](self) for
/// the policy semantics and the outcome taxonomy.
pub struct ResilientRouter<'a, S> {
    m: &'a MetricSpace,
    scheme: &'a S,
    policy: RecoveryPolicy,
    nets: Option<&'a NetHierarchy>,
    oracle: Option<&'a dyn doubling_metric::DistanceProvider>,
    hop_budget: Option<usize>,
}

impl<'a, S> ResilientRouter<'a, S> {
    /// A router over `scheme`, climbing the scheme's own hierarchy on
    /// fallbacks.
    pub fn new(m: &'a MetricSpace, scheme: &'a S, policy: RecoveryPolicy) -> Self
    where
        S: FallbackHierarchy,
    {
        let nets = Some(scheme.fallback_hierarchy());
        ResilientRouter { m, scheme, policy, nets, oracle: None, hop_budget: None }
    }

    /// A router with no hierarchy: [`RecoveryPolicy::LevelFallback`] has
    /// no landmarks to climb to and fails like an exhausted budget.
    pub fn without_hierarchy(m: &'a MetricSpace, scheme: &'a S, policy: RecoveryPolicy) -> Self {
        ResilientRouter { m, scheme, policy, nets: None, oracle: None, hop_budget: None }
    }

    /// Caps the *total* hops of one delivery, independent of any per-policy
    /// TTL or climb budget: a delivery that takes more than `budget` edge
    /// traversals is reported lost with [`LossReason::HopBudget`]. Without
    /// this cap, only the recorder's generous `64·n + 64` loop guard
    /// terminates a plan that cycles; a deployment-style budget makes the
    /// loss deterministic and cheap. Arriving exactly on the budget still
    /// counts as delivered.
    pub fn with_hop_budget(mut self, budget: usize) -> Self {
        self.hop_budget = Some(budget);
        self
    }

    /// Takes the delivered-stretch denominator from `oracle` instead of
    /// the dense matrix inside `m`. With an exact backend (e.g.
    /// [`doubling_metric::OnDemandDijkstra`]) every
    /// [`DeliveryOutcome`] is bit-identical to the default; an estimated
    /// backend reports a lower bound on the realized stretch. Routing and
    /// detour planning still simulate over `m` either way.
    pub fn with_distance_oracle(
        mut self,
        oracle: &'a dyn doubling_metric::DistanceProvider,
    ) -> Self {
        self.oracle = Some(oracle);
        self
    }

    /// The policy this router applies.
    pub fn policy(&self) -> &RecoveryPolicy {
        &self.policy
    }

    /// The wrapped scheme.
    pub fn scheme(&self) -> &S {
        self.scheme
    }

    /// The metric this router delivers over.
    pub fn metric(&self) -> &MetricSpace {
        self.m
    }

    /// The core drive loop: walk the planned path, re-checking every hop
    /// against the epoch active at that hop count; recover on casualties.
    fn drive(
        &self,
        src: NodeId,
        dst: NodeId,
        timeline: &FaultTimeline,
        plan_from: &mut dyn FnMut(NodeId) -> Result<Route, RouteError>,
        on_event: &mut dyn FnMut(&RecoveryEvent),
    ) -> DeliveryOutcome {
        assert_eq!(timeline.n(), self.m.n(), "timeline covers a different node count");
        let lost = |reason: LossReason, reached: NodeId, hops, cost, recoveries| {
            DeliveryOutcome::Lost { reason, progress: Progress { reached, hops, cost, recoveries } }
        };
        if timeline.initial().is_node_dead(src) {
            return lost(LossReason::SourceDead, src, 0, 0, 0);
        }
        let mut rec = RouteRecorder::new(self.m, src);
        let mut hops_taken = 0usize;
        let mut recoveries = 0usize;
        let mut detour_hops = 0usize;
        let mut climbs = 0usize;
        let mut path = match plan_from(src) {
            Ok(r) => {
                rec.note_header_bits(r.max_header_bits);
                r.hops
            }
            Err(e) => return lost(LossReason::SchemeError { error: e }, src, 0, 0, 0),
        };
        let mut idx = 0usize;

        loop {
            let cur = rec.current();
            if cur == dst {
                let route = rec.finish();
                let stretch = match self.oracle {
                    Some(o) => route.stretch_with(o),
                    None => route.stretch(self.m),
                };
                return DeliveryOutcome::Delivered { stretch, detour_hops, recoveries, route };
            }
            if idx + 1 >= path.len() {
                // The planned route ended short of the destination — a
                // scheme bug (plans always claim to reach dst).
                let e = RouteError::Internal(format!(
                    "planned route ended at {cur}, short of destination {dst}"
                ));
                return lost(
                    LossReason::SchemeError { error: e },
                    cur,
                    hops_taken,
                    rec.cost(),
                    recoveries,
                );
            }
            let next = path[idx + 1];
            if next == cur {
                idx += 1;
                continue;
            }
            let plan = timeline.active(hops_taken);
            let blocker = if plan.is_node_dead(next) {
                Some(RouteError::NodeFailed { node: next })
            } else if plan.is_edge_dead(cur, next) {
                Some(RouteError::EdgeFailed { u: cur, v: next })
            } else {
                None
            };
            let Some(original) = blocker else {
                match rec.hop(next) {
                    Ok(()) => {
                        hops_taken += 1;
                        if self.hop_budget.is_some_and(|b| hops_taken >= b) && rec.current() != dst
                        {
                            return lost(
                                LossReason::HopBudget,
                                rec.current(),
                                hops_taken,
                                rec.cost(),
                                recoveries,
                            );
                        }
                        idx += 1;
                        continue;
                    }
                    Err(RouteError::HopBudgetExceeded { .. }) => {
                        return lost(
                            LossReason::HopBudget,
                            cur,
                            hops_taken,
                            rec.cost(),
                            recoveries,
                        );
                    }
                    Err(e) => {
                        // A non-edge hop in the plan: a scheme bug.
                        return lost(
                            LossReason::SchemeError { error: e },
                            cur,
                            hops_taken,
                            rec.cost(),
                            recoveries,
                        );
                    }
                }
            };
            match self.attempt(
                &self.policy,
                cur,
                dst,
                &path,
                idx,
                plan,
                &mut climbs,
                plan_from,
                &original,
            ) {
                Ok(Recovered::Detour { via, rejoin_idx }) => {
                    recoveries += 1;
                    detour_hops += via.len() - 1;
                    on_event(&RecoveryEvent::Detour {
                        at: cur,
                        rejoin: via[via.len() - 1],
                        detour_hops: via.len() - 1,
                    });
                    let mut rebased = via;
                    rebased.extend_from_slice(&path[rejoin_idx + 1..]);
                    path = rebased;
                    idx = 0;
                }
                Ok(Recovered::Fallback { landmark, level, replanned }) => {
                    recoveries += 1;
                    on_event(&RecoveryEvent::Fallback { at: cur, landmark, level });
                    rec.note_header_bits(replanned.max_header_bits);
                    let mut rebased = self.m.path(cur, landmark);
                    rebased.extend_from_slice(&replanned.hops[1..]);
                    path = rebased;
                    idx = 0;
                }
                Err(reason) => {
                    if !matches!(self.policy, RecoveryPolicy::Drop) {
                        on_event(&RecoveryEvent::Exhausted { at: cur, reason: reason.kind() });
                    }
                    return lost(reason, cur, hops_taken, rec.cost(), recoveries);
                }
            }
        }
    }

    /// Tries one policy (recursing through chains) at a casualty. `Ok` is
    /// a way out; `Err` is the loss reason to report if nothing upstream
    /// helps either.
    #[allow(clippy::too_many_arguments)] // one call site, mirrors drive-loop state
    fn attempt(
        &self,
        policy: &RecoveryPolicy,
        cur: NodeId,
        dst: NodeId,
        path: &[NodeId],
        idx: usize,
        plan: &FaultPlan,
        climbs: &mut usize,
        plan_from: &mut dyn FnMut(NodeId) -> Result<Route, RouteError>,
        original: &RouteError,
    ) -> Result<Recovered, LossReason> {
        match policy {
            RecoveryPolicy::Drop => Err(LossReason::Casualty { error: original.clone() }),
            RecoveryPolicy::LocalDetour { ttl } => {
                if *ttl == 0 {
                    // Degrades to Drop exactly: same reason, no
                    // reachability probe.
                    return Err(LossReason::Casualty { error: original.clone() });
                }
                match self.bfs_detour(plan, cur, path, idx, *ttl) {
                    Some((via, rejoin_idx)) => Ok(Recovered::Detour { via, rejoin_idx }),
                    None => Err(self.classify_loss(plan, cur, dst)),
                }
            }
            RecoveryPolicy::LevelFallback { max_climbs } => {
                let Some(nets) = self.nets else {
                    return Err(self.classify_loss(plan, cur, dst));
                };
                if *climbs >= *max_climbs {
                    return Err(self.classify_loss(plan, cur, dst));
                }
                *climbs += 1;
                // Climb k re-plans from level k of the zooming sequence:
                // each consecutive fallback looks one level coarser.
                let top = nets.num_levels() - 1;
                let start = (*climbs).min(top);
                let found = (start..=top)
                    .map(|lvl| (nets.zoom(cur, lvl), lvl))
                    .find(|&(y, _)| !plan.is_node_dead(y));
                match found {
                    Some((landmark, level)) => {
                        let replanned = plan_from(landmark)
                            .map_err(|e| LossReason::SchemeError { error: e })?;
                        Ok(Recovered::Fallback { landmark, level, replanned })
                    }
                    None => Err(self.classify_loss(plan, cur, dst)),
                }
            }
            RecoveryPolicy::Chained(list) => {
                let mut last = None;
                for p in list {
                    match self.attempt(p, cur, dst, path, idx, plan, climbs, plan_from, original) {
                        Ok(r) => return Ok(r),
                        Err(e) => last = Some(e),
                    }
                }
                Err(last.unwrap_or(LossReason::Casualty { error: original.clone() }))
            }
        }
    }

    /// Bounded BFS on the surviving graph from `cur`, looking for planned
    /// nodes strictly ahead of position `idx`. Returns the detour path
    /// `cur ..= rejoin` and the rejoin position: the shallowest BFS layer
    /// wins, and within a layer the target furthest along the plan (then
    /// the smallest node id).
    fn bfs_detour(
        &self,
        plan: &FaultPlan,
        cur: NodeId,
        path: &[NodeId],
        idx: usize,
        ttl: usize,
    ) -> Option<(Vec<NodeId>, usize)> {
        let n = self.m.n();
        // node -> furthest planned position it re-enters at
        let mut target_idx: Vec<Option<usize>> = vec![None; n];
        for (j, &x) in path.iter().enumerate().skip(idx + 1) {
            if !plan.is_node_dead(x) {
                target_idx[x as usize] = Some(j);
            }
        }
        let g = self.m.graph();
        let mut parent: Vec<NodeId> = vec![NodeId::MAX; n];
        let mut visited = vec![false; n];
        visited[cur as usize] = true;
        let mut frontier = vec![cur];
        for _depth in 1..=ttl {
            let mut next_frontier = Vec::new();
            let mut best: Option<(usize, NodeId)> = None;
            for &u in &frontier {
                for nb in g.neighbors(u) {
                    let v = nb.node;
                    if visited[v as usize] || plan.is_node_dead(v) || plan.is_edge_dead(u, v) {
                        continue;
                    }
                    visited[v as usize] = true;
                    parent[v as usize] = u;
                    if let Some(j) = target_idx[v as usize] {
                        best = match best {
                            None => Some((j, v)),
                            Some((bj, bv)) if j > bj || (j == bj && v < bv) => Some((j, v)),
                            keep => keep,
                        };
                    }
                    next_frontier.push(v);
                }
            }
            if let Some((j, node)) = best {
                let mut via = vec![node];
                let mut x = node;
                while x != cur {
                    x = parent[x as usize];
                    via.push(x);
                }
                via.reverse();
                return Some((via, j));
            }
            if next_frontier.is_empty() {
                return None;
            }
            frontier = next_frontier;
        }
        None
    }

    /// Distinguishes a destination that recovery *could not* have reached
    /// from one the budget merely missed, by exact BFS on the surviving
    /// graph of the current epoch.
    fn classify_loss(&self, plan: &FaultPlan, cur: NodeId, dst: NodeId) -> LossReason {
        if self.reachable_surviving(plan, cur, dst) {
            LossReason::RecoveryExhausted
        } else {
            LossReason::Unreachable
        }
    }

    fn reachable_surviving(&self, plan: &FaultPlan, from: NodeId, to: NodeId) -> bool {
        if plan.is_node_dead(from) || plan.is_node_dead(to) {
            return false;
        }
        if from == to {
            return true;
        }
        let g = self.m.graph();
        let mut visited = vec![false; self.m.n()];
        visited[from as usize] = true;
        let mut stack = vec![from];
        while let Some(u) = stack.pop() {
            for nb in g.neighbors(u) {
                let v = nb.node;
                if visited[v as usize] || plan.is_node_dead(v) || plan.is_edge_dead(u, v) {
                    continue;
                }
                if v == to {
                    return true;
                }
                visited[v as usize] = true;
                stack.push(v);
            }
        }
        false
    }
}

impl<'a, S: LabeledScheme> ResilientRouter<'a, S> {
    /// Delivers a packet from `src` to the node the scheme labels
    /// `label_of(dst)`, recovering per the policy. `on_event` observes
    /// every recovery decision.
    pub fn deliver(
        &self,
        src: NodeId,
        dst: NodeId,
        timeline: &FaultTimeline,
        on_event: &mut dyn FnMut(&RecoveryEvent),
    ) -> DeliveryOutcome {
        let target = self.scheme.label_of(dst);
        let scheme = self.scheme;
        let m = self.m;
        self.drive(src, dst, timeline, &mut |from| scheme.route(m, from, target), on_event)
    }
}

impl<'a, S: NameIndependentScheme> ResilientRouter<'a, S> {
    /// Delivers a packet from `src` to the node named `naming.name_of(dst)`
    /// — every re-plan issues a fresh name-independent lookup from
    /// wherever the packet stands.
    pub fn deliver_named(
        &self,
        naming: &Naming,
        src: NodeId,
        dst: NodeId,
        timeline: &FaultTimeline,
        on_event: &mut dyn FnMut(&RecoveryEvent),
    ) -> DeliveryOutcome {
        let name = naming.name_of(dst);
        let scheme = self.scheme;
        let m = self.m;
        self.drive(src, dst, timeline, &mut |from| scheme.route(m, from, name), on_event)
    }
}

/// One greedy step of a chaos campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosStep {
    /// The node killed at this step.
    pub kill: NodeId,
    /// Packet losses after this kill.
    pub lost: usize,
}

/// The result of a [`greedy_chaos`] campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosOutcome {
    /// The final (pruned) fault set — serialize with
    /// [`FaultPlan::to_json`] to make the worst case reproducible.
    pub plan: FaultPlan,
    /// The greedy trajectory, in kill order (pre-pruning).
    pub steps: Vec<ChaosStep>,
    /// Losses under the final plan.
    pub lost: usize,
}

/// Adversarial chaos campaign: greedily grow a fault set that maximizes
/// packet loss, then prune it to a minimal set.
///
/// At each of up to `budget` steps, every still-alive candidate is
/// trial-killed and `lost_under` (the caller's loss oracle — typically a
/// resilient evaluation over a pair sample under one policy) scores the
/// result; the candidate with the highest loss is killed for real (first
/// candidate wins ties, so the search is deterministic). The campaign
/// stops early once no candidate strictly increases the loss. A final
/// backward pass removes kills whose absence does not reduce the loss,
/// leaving a minimal fault set with the same damage.
pub fn greedy_chaos(
    n: usize,
    candidates: &[NodeId],
    budget: usize,
    mut lost_under: impl FnMut(&FaultPlan) -> usize,
) -> ChaosOutcome {
    let mut plan = FaultPlan::none(n);
    let mut steps = Vec::new();
    let mut current = lost_under(&plan);
    for _ in 0..budget {
        let mut best: Option<(usize, NodeId)> = None;
        for &c in candidates {
            if plan.is_node_dead(c) {
                continue;
            }
            let mut trial = plan.clone();
            trial.kill_node(c);
            let l = lost_under(&trial);
            if best.is_none_or(|(bl, _)| l > bl) {
                best = Some((l, c));
            }
        }
        let Some((l, c)) = best else { break };
        if l <= current {
            break;
        }
        plan.kill_node(c);
        steps.push(ChaosStep { kill: c, lost: l });
        current = l;
    }
    // Minimality prune, oldest kills first: a kill whose removal keeps
    // the loss is redundant given the later ones.
    let kills: Vec<NodeId> = steps.iter().map(|s| s.kill).collect();
    let mut kept = kills.clone();
    for &c in &kills {
        if kept.len() <= 1 {
            break;
        }
        let mut trial = FaultPlan::none(n);
        for &k in kept.iter().filter(|&&k| k != c) {
            trial.kill_node(k);
        }
        if lost_under(&trial) >= current {
            kept.retain(|&k| k != c);
        }
    }
    if kept.len() < kills.len() {
        let mut pruned = FaultPlan::none(n);
        for &k in &kept {
            pruned.kill_node(k);
        }
        current = lost_under(&pruned);
        plan = pruned;
    }
    ChaosOutcome { plan, steps, lost: current }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::FullTable;
    use doubling_metric::gen;

    fn deliver_on_grid(
        policy: RecoveryPolicy,
        kill: &[NodeId],
        src: NodeId,
        dst: NodeId,
    ) -> DeliveryOutcome {
        let m = MetricSpace::new(&gen::grid(4, 4));
        let scheme = FullTable::new(&m);
        let mut plan = FaultPlan::none(m.n());
        for &k in kill {
            plan.kill_node(k);
        }
        let timeline = FaultTimeline::from_plan(plan);
        let router = ResilientRouter::without_hierarchy(&m, &scheme, policy);
        router.deliver(src, dst, &timeline, &mut |_| {})
    }

    #[test]
    fn exact_distance_oracle_preserves_outcomes_bit_for_bit() {
        let g = std::sync::Arc::new(gen::grid(4, 4));
        let m = MetricSpace::from_shared(std::sync::Arc::clone(&g), 1);
        let scheme = FullTable::new(&m);
        let mut plan = FaultPlan::none(m.n());
        plan.kill_node(1);
        let timeline = FaultTimeline::from_plan(plan);
        let policy = RecoveryPolicy::LocalDetour { ttl: 8 };
        let lazy = doubling_metric::OnDemandDijkstra::new(g, 2);
        for (src, dst) in [(0, 3), (0, 15), (4, 7)] {
            let plain = ResilientRouter::without_hierarchy(&m, &scheme, policy.clone()).deliver(
                src,
                dst,
                &timeline,
                &mut |_| {},
            );
            let via_oracle = ResilientRouter::without_hierarchy(&m, &scheme, policy.clone())
                .with_distance_oracle(&lazy)
                .deliver(src, dst, &timeline, &mut |_| {});
            assert_eq!(plain, via_oracle, "oracle changed the outcome for {src} -> {dst}");
        }
    }

    #[test]
    fn empty_timeline_delivers_at_scheme_stretch() {
        let out = deliver_on_grid(RecoveryPolicy::Drop, &[], 0, 15);
        match out {
            DeliveryOutcome::Delivered { stretch, detour_hops, recoveries, route } => {
                assert!((stretch - 1.0).abs() < 1e-12);
                assert_eq!(detour_hops, 0);
                assert_eq!(recoveries, 0);
                assert_eq!(route.dst, 15);
            }
            other => panic!("expected delivery, got {other:?}"),
        }
    }

    #[test]
    fn drop_loses_where_detour_recovers() {
        // Grid 4×4: FullTable's 0 → 3 shortest path runs along the top
        // row through 1 and 2; killing 1 forces a detour through row 1.
        let dropped = deliver_on_grid(RecoveryPolicy::Drop, &[1], 0, 3);
        match &dropped {
            DeliveryOutcome::Lost { reason, progress } => {
                assert!(matches!(
                    reason,
                    LossReason::Casualty { error: RouteError::NodeFailed { node: 1 } }
                ));
                assert_eq!(progress.reached, 0);
                assert_eq!(progress.recoveries, 0);
            }
            other => panic!("expected loss, got {other:?}"),
        }
        let mut events = Vec::new();
        let m = MetricSpace::new(&gen::grid(4, 4));
        let scheme = FullTable::new(&m);
        let mut plan = FaultPlan::none(16);
        plan.kill_node(1);
        let timeline = FaultTimeline::from_plan(plan);
        let router =
            ResilientRouter::without_hierarchy(&m, &scheme, RecoveryPolicy::LocalDetour { ttl: 4 });
        let out = router.deliver(0, 3, &timeline, &mut |e| events.push(e.clone()));
        match out {
            DeliveryOutcome::Delivered { stretch, detour_hops, recoveries, route } => {
                assert_eq!(recoveries, 1);
                assert!(detour_hops > 0);
                assert!(stretch > 1.0);
                route.verify(&m).unwrap();
                timeline.check_route(&route).unwrap();
            }
            other => panic!("expected recovered delivery, got {other:?}"),
        }
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], RecoveryEvent::Detour { at: 0, .. }));
    }

    #[test]
    fn ttl_zero_detour_equals_drop() {
        for dst in [3, 5, 15] {
            let a = deliver_on_grid(RecoveryPolicy::Drop, &[1, 4], 0, dst);
            let b = deliver_on_grid(RecoveryPolicy::LocalDetour { ttl: 0 }, &[1, 4], 0, dst);
            assert_eq!(a, b, "ttl=0 must degrade to Drop for dst {dst}");
        }
    }

    #[test]
    fn disconnected_target_is_unreachable_not_spun_on() {
        // Kill 1 and 4: node 0 is cut off from the rest of the 4×4 grid.
        let out = deliver_on_grid(RecoveryPolicy::LocalDetour { ttl: 1000 }, &[1, 4], 0, 15);
        match out {
            DeliveryOutcome::Lost { reason: LossReason::Unreachable, progress } => {
                assert_eq!(progress.reached, 0);
            }
            other => panic!("expected Unreachable, got {other:?}"),
        }
        // A dead destination is unreachable too.
        let out = deliver_on_grid(RecoveryPolicy::LocalDetour { ttl: 1000 }, &[15], 0, 15);
        assert!(matches!(out, DeliveryOutcome::Lost { reason: LossReason::Unreachable, .. }));
    }

    #[test]
    fn exhausted_is_distinguished_from_unreachable() {
        // Killing the whole second column except the bottom row forces a
        // long way around; ttl 1 cannot find it, but it exists.
        let out = deliver_on_grid(RecoveryPolicy::LocalDetour { ttl: 1 }, &[1, 5, 9], 0, 3);
        assert!(matches!(out, DeliveryOutcome::Lost { reason: LossReason::RecoveryExhausted, .. }));
    }

    #[test]
    fn dead_source_is_reported() {
        let out = deliver_on_grid(RecoveryPolicy::Drop, &[0], 0, 3);
        assert!(matches!(out, DeliveryOutcome::Lost { reason: LossReason::SourceDead, .. }));
    }

    #[test]
    fn policy_parsing_round_trips() {
        for s in ["drop", "detour:8", "fallback:4", "detour:2+fallback:1", "detour:0"] {
            let p = RecoveryPolicy::parse(s).unwrap();
            assert_eq!(p.to_string(), s);
        }
        assert_eq!(
            RecoveryPolicy::parse("detour").unwrap(),
            RecoveryPolicy::LocalDetour { ttl: RecoveryPolicy::DEFAULT_TTL }
        );
        assert_eq!(
            RecoveryPolicy::parse("fallback").unwrap(),
            RecoveryPolicy::LevelFallback { max_climbs: RecoveryPolicy::DEFAULT_CLIMBS }
        );
        assert!(RecoveryPolicy::parse("teleport").is_err());
        assert!(RecoveryPolicy::parse("drop:3").is_err());
        assert!(RecoveryPolicy::parse("detour:x").is_err());
        assert!(RecoveryPolicy::Chained(vec![
            RecoveryPolicy::Drop,
            RecoveryPolicy::LevelFallback { max_climbs: 1 }
        ])
        .needs_hierarchy());
        assert!(!RecoveryPolicy::parse("detour:8").unwrap().needs_hierarchy());
    }

    #[test]
    fn mid_route_fault_triggers_recovery() {
        // Path 0..7: node 5 dies after 3 hops. Drop loses the packet at
        // 4→5; a detour cannot exist on a path graph (Unreachable).
        let m = MetricSpace::new(&gen::path(8));
        let scheme = FullTable::new(&m);
        let mut late = FaultPlan::none(8);
        late.kill_node(5);
        let tl = FaultTimeline::new(vec![FaultPlan::none(8), late], 3).unwrap();
        let router = ResilientRouter::without_hierarchy(&m, &scheme, RecoveryPolicy::Drop);
        let out = router.deliver(0, 7, &tl, &mut |_| {});
        match out {
            DeliveryOutcome::Lost { reason, progress } => {
                assert!(matches!(
                    reason,
                    LossReason::Casualty { error: RouteError::NodeFailed { node: 5 } }
                ));
                assert_eq!(progress.reached, 4);
                assert_eq!(progress.hops, 4);
            }
            other => panic!("expected mid-route loss, got {other:?}"),
        }
        // The same delivery departing later (shorter remaining route)
        // still dies; but a destination on the near side of the casualty
        // is fine.
        let ok = router.deliver(0, 4, &tl, &mut |_| {});
        assert!(ok.is_delivered());
    }

    #[test]
    fn global_hop_budget_stops_a_crafted_cycle() {
        // A scheme whose plan circles the 6-cycle three times before
        // heading to the destination: legal hop-by-hop (every hop is a
        // real edge), so only a *global* budget can call it a loop — the
        // per-policy TTLs never fire (policy is Drop, no faults at all).
        struct CyclingScheme;
        impl LabeledScheme for CyclingScheme {
            fn scheme_name(&self) -> &'static str {
                "crafted-cycle"
            }
            fn label_of(&self, v: NodeId) -> crate::scheme::Label {
                v
            }
            fn label_bits(&self) -> u64 {
                8
            }
            fn table_bits(&self, _u: NodeId) -> u64 {
                0
            }
            fn route(
                &self,
                m: &MetricSpace,
                src: NodeId,
                target: crate::scheme::Label,
            ) -> Result<Route, RouteError> {
                let n = m.n() as NodeId;
                let mut rec = RouteRecorder::new(m, src);
                // Bounce on the src—(src+1) edge, never touching the
                // destination, before finally walking the ring to it.
                for _ in 0..3 * n {
                    let cur = rec.current();
                    rec.hop(if cur == src { (src + 1) % n } else { src })?;
                }
                while rec.current() != target {
                    rec.hop((rec.current() + 1) % n)?;
                }
                Ok(rec.finish())
            }
        }

        let m = MetricSpace::new(&gen::ring(6));
        let scheme = CyclingScheme;
        let timeline = FaultTimeline::from_plan(FaultPlan::none(6));
        // Without a budget the 18-lap prelude stays under the recorder's
        // 64·n + 64 guard and the packet arrives (at absurd stretch).
        let free = ResilientRouter::without_hierarchy(&m, &scheme, RecoveryPolicy::Drop).deliver(
            0,
            3,
            &timeline,
            &mut |_| {},
        );
        assert!(free.is_delivered(), "got {free:?}");
        // A deployment-style budget cuts the loop off deterministically.
        let capped = ResilientRouter::without_hierarchy(&m, &scheme, RecoveryPolicy::Drop)
            .with_hop_budget(6)
            .deliver(0, 3, &timeline, &mut |_| {});
        match capped {
            DeliveryOutcome::Lost { reason: LossReason::HopBudget, progress } => {
                assert_eq!(progress.hops, 6);
            }
            other => panic!("expected HopBudget loss, got {other:?}"),
        }
        // Arriving exactly on the budget still delivers: 0 → 3 on the
        // cycle is 3 hops for the full-table baseline.
        let exact = {
            let ft = FullTable::new(&m);
            ResilientRouter::without_hierarchy(&m, &ft, RecoveryPolicy::Drop)
                .with_hop_budget(3)
                .deliver(0, 3, &timeline, &mut |_| {})
        };
        assert!(exact.is_delivered(), "got {exact:?}");
    }

    #[test]
    fn greedy_chaos_finds_the_cut_vertex() {
        // Two 4-cliques joined through node 3 (a bridge vertex): killing 3
        // disconnects every cross pair. The campaign must find exactly it.
        let mut b = doubling_metric::graph::GraphBuilder::new(7);
        for u in 0..3u32 {
            for v in (u + 1)..4 {
                b.edge(u, v, 1).unwrap();
            }
        }
        for u in 3..6u32 {
            for v in (u + 1)..7 {
                b.edge(u, v, 1).unwrap();
            }
        }
        let m = MetricSpace::new(&b.build().unwrap());
        let scheme = FullTable::new(&m);
        let pairs = [(0u32, 6u32), (1, 5), (2, 4), (6, 0), (5, 2)];
        let candidates: Vec<NodeId> = (0..7).collect();
        let outcome = greedy_chaos(7, &candidates, 3, |plan| {
            let tl = FaultTimeline::from_plan(plan.clone());
            let router = ResilientRouter::without_hierarchy(
                &m,
                &scheme,
                RecoveryPolicy::LocalDetour { ttl: 8 },
            );
            pairs
                .iter()
                .filter(|&&(u, v)| !plan.is_node_dead(u) && !plan.is_node_dead(v))
                .filter(|&&(u, v)| !router.deliver(u, v, &tl, &mut |_| {}).is_delivered())
                .count()
        });
        assert!(outcome.plan.is_node_dead(3), "chaos must kill the bridge vertex");
        assert_eq!(outcome.lost, 5);
        // Minimality: node 3 alone already loses all 5 pairs, so the
        // pruned plan is exactly {3}.
        assert_eq!(outcome.plan.dead_node_count(), 1);
        assert!(!outcome.steps.is_empty());
        // Deterministic: same inputs, same campaign.
        let again = greedy_chaos(7, &candidates, 3, |plan| {
            let tl = FaultTimeline::from_plan(plan.clone());
            let router = ResilientRouter::without_hierarchy(
                &m,
                &scheme,
                RecoveryPolicy::LocalDetour { ttl: 8 },
            );
            pairs
                .iter()
                .filter(|&&(u, v)| !plan.is_node_dead(u) && !plan.is_node_dead(v))
                .filter(|&&(u, v)| !router.deliver(u, v, &tl, &mut |_| {}).is_delivered())
                .count()
        });
        assert_eq!(outcome, again);
    }
}
