//! Differential tests: the parallel evaluators must be *field-for-field*
//! identical to their sequential counterparts at every thread count.
//!
//! The parallel implementations merge per-chunk partials in chunk order,
//! so floating-point accumulation happens in exactly the sequential
//! order — `assert_eq!` on the whole [`EvalResult`] (which derives
//! `PartialEq`, including the `f64` stretch fields) is therefore exact,
//! not approximate.

use doubling_metric::gen;
use doubling_metric::space::MetricSpace;
use doubling_metric::Eps;
use labeled_routing::{NetLabeled, ScaleFreeLabeled};
use name_independent::{ScaleFreeNameIndependent, SimpleNameIndependent};
use netsim::naming::Naming;
use netsim::stats::{
    all_pairs, eval_labeled, eval_labeled_par, eval_name_independent, eval_name_independent_par,
};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

#[test]
fn labeled_par_eval_matches_sequential_exactly() {
    for graph in [gen::grid(6, 6), gen::random_geometric(40, 420, 9)] {
        let m = MetricSpace::new(&graph);
        let eps = Eps::one_over(8);
        let pairs = all_pairs(m.n());

        let nl = NetLabeled::new(&m, eps).expect("eps within range");
        let seq = eval_labeled(&nl, &m, &pairs);
        for t in THREAD_COUNTS {
            assert_eq!(seq, eval_labeled_par(&nl, &m, &pairs, t), "net-labeled, {t} threads");
        }

        let sfl = ScaleFreeLabeled::new(&m, eps).expect("eps within range");
        let seq = eval_labeled(&sfl, &m, &pairs);
        for t in THREAD_COUNTS {
            assert_eq!(
                seq,
                eval_labeled_par(&sfl, &m, &pairs, t),
                "scale-free labeled, {t} threads"
            );
        }
    }
}

#[test]
fn name_independent_par_eval_matches_sequential_exactly() {
    for graph in [gen::grid(6, 6), gen::random_geometric(40, 420, 9)] {
        let m = MetricSpace::new(&graph);
        let eps = Eps::one_over(8);
        let naming = Naming::random(m.n(), 17);
        let pairs = all_pairs(m.n());

        let sni = SimpleNameIndependent::new(&m, eps, naming.clone()).expect("eps within range");
        let seq = eval_name_independent(&sni, &m, &naming, &pairs);
        for t in THREAD_COUNTS {
            assert_eq!(
                seq,
                eval_name_independent_par(&sni, &m, &naming, &pairs, t),
                "simple name-independent, {t} threads"
            );
        }

        let sfni =
            ScaleFreeNameIndependent::new(&m, eps, naming.clone()).expect("eps within range");
        let seq = eval_name_independent(&sfni, &m, &naming, &pairs);
        for t in THREAD_COUNTS {
            assert_eq!(
                seq,
                eval_name_independent_par(&sfni, &m, &naming, &pairs, t),
                "scale-free name-independent, {t} threads"
            );
        }
    }
}

/// Degenerate inputs: an empty pair list and a single pair must also agree
/// (they exercise the `threads > pairs` clamping path).
#[test]
fn par_eval_matches_on_degenerate_pair_lists() {
    let m = MetricSpace::new(&gen::grid(3, 3));
    let eps = Eps::one_over(8);
    let nl = NetLabeled::new(&m, eps).expect("eps within range");
    for pairs in [Vec::new(), vec![(0u32, 8u32)]] {
        let seq = eval_labeled(&nl, &m, &pairs);
        for t in THREAD_COUNTS {
            assert_eq!(
                seq,
                eval_labeled_par(&nl, &m, &pairs, t),
                "{} pairs, {t} threads",
                pairs.len()
            );
        }
    }
}
