//! Persistence: graphs, namings, routes and results serialize through the
//! dependency-free [`netsim::json`] module, enabling experiment inputs and
//! outputs to be saved and reloaded without crates.io access.

use doubling_metric::{gen, MetricSpace};
use netsim::baseline::FullTable;
use netsim::json::{graph_from_json, graph_to_json, naming_from_json, naming_to_json, Value};
use netsim::scheme::LabeledScheme;
use netsim::stats::{eval_labeled, sample_pairs, StretchQuantiles};
use netsim::Naming;

#[test]
fn graph_roundtrips_through_json() {
    let g = gen::random_geometric(30, 300, 5);
    let json = graph_to_json(&g).to_string();
    let back = graph_from_json(&Value::parse(&json).unwrap()).unwrap();
    assert_eq!(back.node_count(), g.node_count());
    assert_eq!(back.edge_count(), g.edge_count());
    let e1: Vec<_> = g.edges().collect();
    let e2: Vec<_> = back.edges().collect();
    assert_eq!(e1, e2);
    // The reloaded graph produces the identical metric.
    let m1 = MetricSpace::new(&g);
    let m2 = MetricSpace::new(&back);
    for u in 0..30u32 {
        for v in 0..30u32 {
            assert_eq!(m1.dist(u, v), m2.dist(u, v));
        }
    }
}

#[test]
fn naming_roundtrips_through_json() {
    let nm = Naming::random(40, 9);
    let json = naming_to_json(&nm).to_string();
    let back = naming_from_json(&Value::parse(&json).unwrap()).unwrap();
    assert_eq!(back, nm);
}

#[test]
fn results_serialize() {
    let m = MetricSpace::new(&gen::grid(4, 4));
    let s = FullTable::new(&m);
    let res = eval_labeled(&s, &m, &sample_pairs(16, 20, 1));
    let json = res.to_json().to_string();
    assert!(json.contains("\"max_stretch\":1.0"), "json was: {json}");
    let q = StretchQuantiles::from_stretches(&[1.0, 2.0, 3.0]);
    let json = q.to_json().to_string();
    assert!(json.contains("\"p50\":2.0"), "json was: {json}");
}

#[test]
fn routes_serialize() {
    let m = MetricSpace::new(&gen::path(4));
    let s = FullTable::new(&m);
    let r = s.route(&m, 0, 3).unwrap();
    let json = r.to_json().to_string();
    assert!(
        json.contains("\"hops\":[0.0,1.0,2.0,3.0]") || json.contains("\"hops\":[0,1,2,3]"),
        "json was: {json}"
    );
}
