//! Differential property tests of the bit-packed forwarding planes: on
//! random connected graphs with random adversarial namings, every plane
//! must route **hop-identically** to its reference scheme — equal `Route`
//! values, i.e. the same hops, segments, header bits, and stretch — for
//! both labeled and named ingress, and every arena must survive a
//! decode → re-encode round trip byte-exactly.

use proptest::prelude::*;

use doubling_metric::graph::{Graph, GraphBuilder};
use doubling_metric::space::MetricSpace;
use doubling_metric::Eps;
use labeled_routing::{NetLabeled, NetLabeledPlane, ScaleFreeLabeled, ScaleFreeLabeledPlane};
use name_independent::{
    ScaleFreeNameIndependent, ScaleFreeNiPlane, SimpleNameIndependent, SimpleNiPlane,
};
use netsim::naming::Naming;
use netsim::plane::{roundtrip_ok, ForwardingPlane};
use netsim::scheme::{LabeledScheme, NameIndependentScheme};

fn arb_connected_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (4usize..=max_n).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0usize..usize::MAX, 1u64..20), n - 1),
            proptest::collection::vec((0u32..n as u32, 0u32..n as u32, 1u64..20), 0..2 * n),
        )
            .prop_map(|(n, tree, extra)| {
                let mut b = GraphBuilder::new(n);
                for (c, (praw, w)) in tree.into_iter().enumerate() {
                    let child = c + 1;
                    b.edge(child as u32, (praw % child) as u32, w).unwrap();
                }
                for (u, v, w) in extra {
                    if u != v {
                        b.edge(u, v, w).unwrap();
                    }
                }
                b.build().expect("connected by construction")
            })
    })
}

proptest! {
    // Scheme preprocessing dominates; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Both labeled planes are hop-identical to their reference schemes
    /// on every (source, target) pair — via the label ingress and via the
    /// packed name directory — and round-trip byte-exactly.
    #[test]
    fn labeled_planes_are_hop_identical(
        g in arb_connected_graph(12),
        eps_pick in 0u64..2,
        name_seed in 0u64..1000,
        epoch in 0u64..100,
    ) {
        let m = MetricSpace::new(&g);
        let eps = Eps::one_over(if eps_pick == 0 { 4 } else { 8 });
        let naming = Naming::random(m.n(), name_seed);

        let nl = NetLabeled::new(&m, eps).expect("eps within range");
        let nlp = NetLabeledPlane::compile(&m, &nl, Some(&naming), epoch);
        let sfl = ScaleFreeLabeled::new(&m, eps).expect("eps within range");
        let sflp = ScaleFreeLabeledPlane::compile(&m, &sfl, Some(&naming), epoch);
        prop_assert_eq!(nlp.epoch(), epoch);
        prop_assert_eq!(sflp.epoch(), epoch);

        for u in 0..m.n() as u32 {
            for v in 0..m.n() as u32 {
                let want = nl.route(&m, u, nl.label_of(v)).expect("reference routes");
                prop_assert_eq!(
                    &nlp.route(&m, u, nl.label_of(v)).expect("plane routes"), &want,
                    "net-labeled {}->{}", u, v
                );
                prop_assert_eq!(
                    &nlp.route_named(&m, u, naming.name_of(v)).expect("named ingress"), &want,
                    "net-labeled {}->name({})", u, v
                );

                let want = sfl.route(&m, u, sfl.label_of(v)).expect("reference routes");
                prop_assert_eq!(
                    &sflp.route(&m, u, sfl.label_of(v)).expect("plane routes"), &want,
                    "scale-free {}->{}", u, v
                );
                prop_assert_eq!(
                    &sflp.route_named(&m, u, naming.name_of(v)).expect("named ingress"), &want,
                    "scale-free {}->name({})", u, v
                );
            }
        }

        let (nld, fields) = NetLabeledPlane::decode(nlp.arena().clone());
        prop_assert!(roundtrip_ok(nlp.arena(), &fields), "net-labeled arena round-trip");
        prop_assert_eq!(nld.epoch(), epoch);
        let (sfld, fields) = ScaleFreeLabeledPlane::decode(sflp.arena().clone());
        prop_assert!(roundtrip_ok(sflp.arena(), &fields), "scale-free arena round-trip");
        prop_assert_eq!(sfld.epoch(), epoch);

        // The decoded planes still route identically (index rebuild is
        // faithful, not just byte-preserving).
        let v = (m.n() - 1) as u32;
        prop_assert_eq!(
            nld.route(&m, 0, nl.label_of(v)).expect("decoded plane routes"),
            nl.route(&m, 0, nl.label_of(v)).expect("reference routes")
        );
        prop_assert_eq!(
            sfld.route(&m, 0, sfl.label_of(v)).expect("decoded plane routes"),
            sfl.route(&m, 0, sfl.label_of(v)).expect("reference routes")
        );
    }

    /// Both name-independent planes are hop-identical to their reference
    /// schemes on every (source, name) pair, their label ingress matches
    /// the underlying labeled scheme, and their arenas round-trip
    /// byte-exactly.
    #[test]
    fn name_independent_planes_are_hop_identical(
        g in arb_connected_graph(10),
        eps_pick in 0u64..2,
        name_seed in 0u64..1000,
        epoch in 0u64..100,
    ) {
        let m = MetricSpace::new(&g);
        let eps = Eps::one_over(if eps_pick == 0 { 4 } else { 8 });
        let naming = Naming::random(m.n(), name_seed);

        let sni = SimpleNameIndependent::new(&m, eps, naming.clone()).expect("eps within range");
        let snip = SimpleNiPlane::compile(&m, &sni, epoch);
        let sfni =
            ScaleFreeNameIndependent::new(&m, eps, naming.clone()).expect("eps within range");
        let sfnip = ScaleFreeNiPlane::compile(&m, &sfni, epoch);

        for u in 0..m.n() as u32 {
            for name in 0..m.n() as u32 {
                prop_assert_eq!(
                    &snip.route_named(&m, u, name).expect("plane routes"),
                    &sni.route(&m, u, name).expect("reference routes"),
                    "simple-ni {}->{}", u, name
                );
                prop_assert_eq!(
                    &sfnip.route_named(&m, u, name).expect("plane routes"),
                    &sfni.route(&m, u, name).expect("reference routes"),
                    "scale-free-ni {}->{}", u, name
                );
            }
            // Label ingress delegates to the underlying labeled plane.
            let label = sni.underlying().label_of(u);
            prop_assert_eq!(
                snip.route(&m, 0, label).expect("label ingress"),
                sni.underlying().route(&m, 0, label).expect("reference routes")
            );
            let label = sfni.underlying().label_of(u);
            prop_assert_eq!(
                sfnip.route(&m, 0, label).expect("label ingress"),
                sfni.underlying().route(&m, 0, label).expect("reference routes")
            );
        }

        let (u_dec, fields) = NetLabeledPlane::decode(snip.underlying().arena().clone());
        prop_assert!(roundtrip_ok(snip.underlying().arena(), &fields));
        let (snid, fields) = SimpleNiPlane::decode(snip.arena().clone(), u_dec);
        prop_assert!(roundtrip_ok(snip.arena(), &fields), "simple-ni arena round-trip");
        prop_assert_eq!(snid.epoch(), epoch);
        prop_assert_eq!(
            snid.route_named(&m, 0, (m.n() - 1) as u32).expect("decoded plane routes"),
            sni.route(&m, 0, (m.n() - 1) as u32).expect("reference routes")
        );

        let (u_dec, fields) = ScaleFreeLabeledPlane::decode(sfnip.underlying().arena().clone());
        prop_assert!(roundtrip_ok(sfnip.underlying().arena(), &fields));
        let (sfnid, fields) = ScaleFreeNiPlane::decode(sfnip.arena().clone(), u_dec);
        prop_assert!(roundtrip_ok(sfnip.arena(), &fields), "scale-free-ni arena round-trip");
        prop_assert_eq!(sfnid.epoch(), epoch);
        prop_assert_eq!(
            sfnid.route_named(&m, 0, (m.n() - 1) as u32).expect("decoded plane routes"),
            sfni.route(&m, 0, (m.n() - 1) as u32).expect("reference routes")
        );
    }
}
