//! Property-based repair-vs-rebuild equivalence: on random connected
//! graphs under random join/leave churn, every scheme repaired in place
//! through a [`Maintainer`] must be **byte-identical** (`PartialEq`) to a
//! from-scratch build over the same post-batch active set — and, since
//! the schemes claim byte-identity, the repaired and rebuilt copies must
//! agree on every sampled route and on total table bits after every
//! batch.

// The vendored proptest macro expands deeply for multi-property blocks.
#![recursion_limit = "1024"]

use proptest::prelude::*;

use doubling_metric::graph::{Graph, GraphBuilder, NodeId};
use doubling_metric::nets::ChurnBatch;
use doubling_metric::space::MetricSpace;
use doubling_metric::Eps;
use labeled_routing::{NetLabeled, ScaleFreeLabeled};
use name_independent::{ScaleFreeNameIndependent, SimpleNameIndependent};
use netsim::maintain::{Maintainable, Maintainer, MaintainerConfig};
use netsim::naming::Naming;
use netsim::scheme::{LabeledScheme, NameIndependentScheme};
use netsim::stats::sample_pairs;

fn arb_connected_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (6usize..=max_n).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0usize..usize::MAX, 1u64..20), n - 1),
            proptest::collection::vec((0u32..n as u32, 0u32..n as u32, 1u64..20), 0..2 * n),
        )
            .prop_map(|(n, tree, extra)| {
                let mut b = GraphBuilder::new(n);
                for (c, (praw, w)) in tree.into_iter().enumerate() {
                    let child = c + 1;
                    b.edge(child as u32, (praw % child) as u32, w).unwrap();
                }
                for (u, v, w) in extra {
                    if u != v {
                        b.edge(u, v, w).unwrap();
                    }
                }
                b.build().expect("connected by construction")
            })
    })
}

/// Turns a raw index list into a churn script: two leave batches over
/// distinct nodes (always keeping ≥ 2 active), then one rejoin batch
/// bringing everyone back.
fn churn_script(n: usize, raw: &[usize]) -> Vec<ChurnBatch> {
    let mut leavers: Vec<NodeId> = Vec::new();
    for &r in raw {
        let v = (r % n) as NodeId;
        if !leavers.contains(&v) && leavers.len() + 2 < n {
            leavers.push(v);
        }
    }
    let mid = leavers.len() / 2;
    let (a, b) = leavers.split_at(mid);
    let mut script = vec![
        ChurnBatch::new(Vec::new(), a.to_vec()),
        ChurnBatch::new(Vec::new(), b.to_vec()),
        ChurnBatch::new(leavers.clone(), Vec::new()),
    ];
    script.retain(|batch| !batch.is_empty());
    script
}

/// Drives `scheme` through `script`, asserting after every batch that the
/// repaired copy equals a from-scratch rebuild over the post-batch active
/// set, that both price their tables identically, and that both produce
/// identical routes on `pairs_per_batch` sampled active pairs.
fn assert_repair_equals_rebuild<S, R>(
    m: &MetricSpace,
    scheme: S,
    script: &[ChurnBatch],
    pairs_per_batch: usize,
    route: R,
) where
    S: Maintainable + Clone + PartialEq + std::fmt::Debug,
    R: Fn(&S, NodeId, NodeId) -> netsim::route::Route,
{
    let mut baseline = scheme.clone();
    let mut mt = Maintainer::new(m.n(), scheme, MaintainerConfig::default());
    for (i, batch) in script.iter().enumerate() {
        let report = mt.apply_batch(m, batch, |_| true).expect("script batches are valid");
        prop_assert!(report.audit_ok);

        let active = mt.scheme().active_nodes();
        baseline.rebuild(m, &active);
        prop_assert_eq!(mt.scheme(), &baseline, "repair != rebuild after batch {}", i);
        prop_assert_eq!(
            mt.scheme().total_table_bits(),
            baseline.total_table_bits(),
            "table re-price diverged after batch {}",
            i
        );
        for (a, b) in sample_pairs(active.len(), pairs_per_batch, 0xC0FFEE ^ i as u64) {
            let (u, v) = (active[a as usize], active[b as usize]);
            prop_assert_eq!(
                route(mt.scheme(), u, v),
                route(&baseline, u, v),
                "route {} -> {} diverged after batch {}",
                u,
                v,
                i
            );
        }
    }
}

proptest! {
    // Four schemes × per-batch rebuilds dominate; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Labeled schemes: repair ≡ rebuild on routes, bits, and bytes.
    #[test]
    fn labeled_repair_equals_rebuild(
        g in arb_connected_graph(12),
        raw in proptest::collection::vec(0usize..usize::MAX, 1..8),
    ) {
        let m = MetricSpace::new(&g);
        let eps = Eps::one_over(8);
        let script = churn_script(m.n(), &raw);
        assert_repair_equals_rebuild(
            &m,
            NetLabeled::new(&m, eps).unwrap(),
            &script,
            6,
            |s: &NetLabeled, u, v| s.route_to_node(&m, u, v).expect("active pair routes"),
        );
        assert_repair_equals_rebuild(
            &m,
            ScaleFreeLabeled::new(&m, eps).unwrap(),
            &script,
            6,
            |s: &ScaleFreeLabeled, u, v| s.route_to_node(&m, u, v).expect("active pair routes"),
        );
    }

    /// Name-independent schemes: repair ≡ rebuild on routes, bits, bytes.
    #[test]
    fn name_independent_repair_equals_rebuild(
        g in arb_connected_graph(10),
        raw in proptest::collection::vec(0usize..usize::MAX, 1..6),
        name_seed in 0u64..1000,
    ) {
        let m = MetricSpace::new(&g);
        let eps = Eps::one_over(8);
        let naming = Naming::random(m.n(), name_seed);
        let script = churn_script(m.n(), &raw);
        assert_repair_equals_rebuild(
            &m,
            SimpleNameIndependent::new(&m, eps, naming.clone()).unwrap(),
            &script,
            4,
            |s: &SimpleNameIndependent, u, v| {
                s.route(&m, u, naming.name_of(v)).expect("active pair routes")
            },
        );
        assert_repair_equals_rebuild(
            &m,
            ScaleFreeNameIndependent::new(&m, eps, naming.clone()).unwrap(),
            &script,
            4,
            |s: &ScaleFreeNameIndependent, u, v| {
                s.route(&m, u, naming.name_of(v)).expect("active pair routes")
            },
        );
    }
}
