//! Regression test for epoch-stamped plane invalidation: a forwarding
//! plane compiled before a churn batch must be rejected by the maintainer
//! with a structured [`MaintainError::StalePlane`] — serving a pre-churn
//! plane would silently route through departed nodes. Recompiling at the
//! maintainer's current epoch clears the error.

use doubling_metric::nets::ChurnBatch;
use doubling_metric::{gen, Eps, MetricSpace};
use labeled_routing::{NetLabeled, NetLabeledPlane};
use netsim::maintain::{MaintainError, Maintainer, MaintainerConfig};
use netsim::plane::ForwardingPlane;

#[test]
fn stale_plane_is_rejected_after_churn() {
    let m = MetricSpace::new(&gen::grid(4, 4));
    let scheme = NetLabeled::new(&m, Eps::one_over(4)).unwrap();
    let mut mt = Maintainer::new(m.n(), scheme, MaintainerConfig::default());

    // A plane compiled at the current epoch serves.
    let plane = NetLabeledPlane::compile(&m, mt.scheme(), None, mt.epoch());
    assert!(mt.check_plane(&plane).is_ok());

    // Churn advances the epoch; the old plane must now be refused.
    let batch = ChurnBatch::new(Vec::new(), vec![5, 10]);
    mt.apply_batch(&m, &batch, |_| true).expect("valid batch");
    let pre_churn_epoch = plane.epoch();
    match mt.check_plane(&plane) {
        Err(MaintainError::StalePlane { plane_epoch, current_epoch }) => {
            assert_eq!(plane_epoch, pre_churn_epoch);
            assert_eq!(current_epoch, mt.epoch());
            assert!(plane_epoch < current_epoch);
        }
        other => panic!("expected StalePlane, got {other:?}"),
    }

    // The error carries a useful message for operators.
    let err = mt.check_plane_epoch(pre_churn_epoch).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("stale"), "unhelpful error: {msg}");
    assert!(msg.contains("recompile"), "unhelpful error: {msg}");

    // Recompiling against the repaired scheme at the new epoch serves.
    let fresh = NetLabeledPlane::compile(&m, mt.scheme(), None, mt.epoch());
    assert!(mt.check_plane(&fresh).is_ok());

    // A plane from the *future* (e.g. another maintainer replica) is
    // equally refused — any mismatch is structural, not just "older".
    assert!(matches!(mt.check_plane_epoch(mt.epoch() + 1), Err(MaintainError::StalePlane { .. })));
}
