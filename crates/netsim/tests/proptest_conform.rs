//! Property-based tests of the conformance engine: on random connected
//! graphs with random adversarial namings, the theorem certificates must
//! *pass* for honestly-built schemes — and, crucially, the checker must
//! not be vacuous: a scheme whose claimed table bits are widened by a
//! single entry, or whose route for one pair has its final next-hop
//! swapped out, must *fail* its certificate.

// The vendored proptest macro expands deeply for multi-property blocks.
#![recursion_limit = "1024"]

use proptest::prelude::*;

use conform::{
    certify_labeled, certify_name_independent, BitWiden, Guarantee, NextHopSwap, Params,
};
use doubling_metric::graph::{Graph, GraphBuilder};
use doubling_metric::space::MetricSpace;
use doubling_metric::Eps;
use labeled_routing::{NetLabeled, ScaleFreeLabeled};
use name_independent::{ScaleFreeNameIndependent, SimpleNameIndependent};
use netsim::naming::Naming;
use netsim::stats::all_pairs;

fn arb_connected_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (4usize..=max_n).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0usize..usize::MAX, 1u64..20), n - 1),
            proptest::collection::vec((0u32..n as u32, 0u32..n as u32, 1u64..20), 0..2 * n),
        )
            .prop_map(|(n, tree, extra)| {
                let mut b = GraphBuilder::new(n);
                for (c, (praw, w)) in tree.into_iter().enumerate() {
                    let child = c + 1;
                    b.edge(child as u32, (praw % child) as u32, w).unwrap();
                }
                for (u, v, w) in extra {
                    if u != v {
                        b.edge(u, v, w).unwrap();
                    }
                }
                b.build().expect("connected by construction")
            })
    })
}

proptest! {
    // Scheme preprocessing dominates; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// All four theorem certificates hold on arbitrary connected graphs,
    /// arbitrary ε ∈ {1/4, 1/8}, and arbitrary adversarial namings.
    #[test]
    fn certificates_hold_on_random_graphs(
        g in arb_connected_graph(14),
        eps_pick in 0u64..2,
        name_seed in 0u64..1000,
    ) {
        let m = MetricSpace::new(&g);
        let eps = Eps::one_over(if eps_pick == 0 { 4 } else { 8 });
        let naming = Naming::random(m.n(), name_seed);
        let pairs = all_pairs(m.n());
        let p = Params::measure(&m, eps);

        let nl = NetLabeled::new(&m, eps).expect("eps within range");
        let cert = certify_labeled(&m, &nl, &Guarantee::lemma_3_1(), &p, &pairs, 2);
        prop_assert!(cert.pass(), "lemma-3.1 failed: {:?}", cert.violations);

        let sfl = ScaleFreeLabeled::new(&m, eps).expect("eps within range");
        let cert = certify_labeled(&m, &sfl, &Guarantee::theorem_1_2(), &p, &pairs, 2);
        prop_assert!(cert.pass(), "theorem 1.2 failed: {:?}", cert.violations);

        let sni = SimpleNameIndependent::new(&m, eps, naming.clone()).expect("eps within range");
        let cert =
            certify_name_independent(&m, &sni, &naming, &Guarantee::theorem_1_4(), &p, &pairs, 2);
        prop_assert!(cert.pass(), "theorem 1.4 failed: {:?}", cert.violations);

        let sfni =
            ScaleFreeNameIndependent::new(&m, eps, naming.clone()).expect("eps within range");
        let cert =
            certify_name_independent(&m, &sfni, &naming, &Guarantee::theorem_1_1(), &p, &pairs, 2);
        prop_assert!(cert.pass(), "theorem 1.1 failed: {:?}", cert.violations);
    }

    /// Non-vacuity, property form: widening any single node's claimed
    /// table bits must break the double-entry `table-consistency` clause.
    #[test]
    fn widened_claim_fails_table_consistency(
        g in arb_connected_graph(12),
        node_pick in 0usize..usize::MAX,
        extra in 1u64..64,
    ) {
        let m = MetricSpace::new(&g);
        let eps = Eps::one_over(8);
        let nl = NetLabeled::new(&m, eps).expect("eps within range");
        let bad = BitWiden { inner: &nl, node: (node_pick % m.n()) as u32, extra_bits: extra };
        let cert = certify_labeled(
            &m,
            &bad,
            &Guarantee::lemma_3_1(),
            &Params::measure(&m, eps),
            &all_pairs(m.n()),
            1,
        );
        prop_assert!(!cert.pass(), "widened table claim must not certify");
        let clause = cert
            .clauses
            .iter()
            .find(|c| c.name == "table-consistency")
            .expect("table-consistency clause present");
        prop_assert!(!clause.pass(), "the table-consistency clause specifically must fail");
        prop_assert!(cert.violation_count > 0);
    }
}

/// Non-vacuity for the differential route oracle: swapping out the final
/// next-hop for one multi-hop pair (the packet silently never arrives)
/// must be flagged by the hop-by-hop replay, for both scheme kinds.
#[test]
fn swapped_next_hop_fails_route_oracle() {
    // A 4×4 grid: opposite corners are guaranteed multi-hop.
    let m = MetricSpace::new(&doubling_metric::gen::grid(4, 4));
    let eps = Eps::one_over(8);
    let pairs = all_pairs(m.n());
    let p = Params::measure(&m, eps);
    let pair = (0u32, (m.n() - 1) as u32);

    let nl = NetLabeled::new(&m, eps).expect("eps within range");
    let bad = NextHopSwap { inner: &nl, pair };
    let cert = certify_labeled(&m, &bad, &Guarantee::lemma_3_1(), &p, &pairs, 2);
    assert!(!cert.pass(), "corrupted labeled route must not certify");
    assert!(
        cert.violations.iter().any(|v| v.contains("replay") || v.contains("end")),
        "expected a replay violation, got {:?}",
        cert.violations
    );

    let naming = Naming::random(m.n(), 3);
    let sni = SimpleNameIndependent::new(&m, eps, naming.clone()).expect("eps within range");
    let bad = NextHopSwap { inner: &sni, pair };
    let cert =
        certify_name_independent(&m, &bad, &naming, &Guarantee::theorem_1_4(), &p, &pairs, 2);
    assert!(!cert.pass(), "corrupted name-independent route must not certify");
    assert!(cert.violation_count > 0);
}

/// The honest schemes on the same grid do certify — the negative tests
/// above fail because of the sabotage, not the configuration.
#[test]
fn honest_grid_baseline_certifies() {
    let m = MetricSpace::new(&doubling_metric::gen::grid(4, 4));
    let eps = Eps::one_over(8);
    let pairs = all_pairs(m.n());
    let p = Params::measure(&m, eps);

    let nl = NetLabeled::new(&m, eps).expect("eps within range");
    assert!(certify_labeled(&m, &nl, &Guarantee::lemma_3_1(), &p, &pairs, 2).pass());

    let naming = Naming::random(m.n(), 3);
    let sni = SimpleNameIndependent::new(&m, eps, naming.clone()).expect("eps within range");
    assert!(certify_name_independent(&m, &sni, &naming, &Guarantee::theorem_1_4(), &p, &pairs, 2)
        .pass());
}
