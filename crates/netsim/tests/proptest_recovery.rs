//! Property-based tests of the self-healing runtime: on random connected
//! graphs under random fault schedules, a `Delivered` outcome must be a
//! real route — it never traverses a node or edge that was dead in the
//! epoch it crossed it, its recorded cost is the sum of its segment
//! costs (via `Route::verify`), and the `Drop` baseline agrees exactly
//! with the legacy stale-table path.

// The vendored proptest macro expands deeply for three-property blocks.
#![recursion_limit = "1024"]

use proptest::prelude::*;

use doubling_metric::graph::{Graph, GraphBuilder, NodeId};
use doubling_metric::space::MetricSpace;
use netsim::baseline::FullTable;
use netsim::faults::{FaultPlan, FaultTimeline};
use netsim::recovery::{DeliveryOutcome, LossReason, RecoveryPolicy, ResilientRouter};
use netsim::route::RouteError;
use netsim::scheme::LabeledScheme;

fn arb_connected_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (3usize..=max_n).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0usize..usize::MAX, 1u64..20), n - 1),
            proptest::collection::vec((0u32..n as u32, 0u32..n as u32, 1u64..20), 0..2 * n),
        )
            .prop_map(|(n, tree, extra)| {
                let mut b = GraphBuilder::new(n);
                for (c, (praw, w)) in tree.into_iter().enumerate() {
                    let child = c + 1;
                    b.edge(child as u32, (praw % child) as u32, w).unwrap();
                }
                for (u, v, w) in extra {
                    if u != v {
                        b.edge(u, v, w).unwrap();
                    }
                }
                b.build().expect("connected by construction")
            })
    })
}

fn arb_policy() -> impl Strategy<Value = RecoveryPolicy> {
    (0usize..4, 0usize..12, 0usize..6).prop_map(|(kind, ttl, climbs)| match kind {
        0 => RecoveryPolicy::Drop,
        1 => RecoveryPolicy::LocalDetour { ttl },
        2 => RecoveryPolicy::LevelFallback { max_climbs: climbs },
        _ => RecoveryPolicy::Chained(vec![
            RecoveryPolicy::LocalDetour { ttl },
            RecoveryPolicy::LevelFallback { max_climbs: climbs },
        ]),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline safety property: whatever the policy and however many
    /// recoveries happened, a `Delivered` route replays cleanly under the
    /// timeline (no hop crosses a node/edge dead in that hop's epoch) and
    /// verifies on the metric (adjacency + cost = Σ segment costs).
    #[test]
    fn delivered_routes_survive_replay_and_verify(
        g in arb_connected_graph(16),
        policy in arb_policy(),
        seed_pairs in 0u64..1000,
        tl_seed in 0u64..1000,
    ) {
        let m = MetricSpace::new(&g);
        let n = m.n();
        let timeline = {
            // Reuse arb_timeline's construction deterministically from
            // tl_seed so the timeline matches this graph's n.
            let epochs = (tl_seed % 3) as usize + 1;
            let max_fraction = (tl_seed % 40) as f64 / 100.0;
            let plans: Vec<FaultPlan> = (1..=epochs)
                .map(|e| FaultPlan::random_nodes(n, max_fraction * e as f64 / epochs as f64, tl_seed))
                .collect();
            let hpe = if epochs == 1 { 0 } else { (tl_seed % 4) as usize + 1 };
            FaultTimeline::new(plans, hpe).expect("cumulative")
        };
        let scheme = FullTable::new(&m);
        let router = ResilientRouter::without_hierarchy(&m, &scheme, policy);
        let pairs = netsim::stats::sample_pairs(n, 20, seed_pairs);
        for (u, v) in pairs {
            match router.deliver(u, v, &timeline, &mut |_| {}) {
                DeliveryOutcome::Delivered { route, stretch, .. } => {
                    prop_assert_eq!(route.src, u);
                    prop_assert_eq!(route.dst, v);
                    // Cost accounting: adjacency, cost = Σ segment costs.
                    route.verify(&m).expect("delivered route must verify");
                    // Fault safety: no hop crosses a casualty of its epoch.
                    timeline.check_route(&route).expect("must replay under the timeline");
                    prop_assert!(stretch >= 1.0 - 1e-9);
                }
                DeliveryOutcome::Lost { reason, progress } => {
                    // A lost packet still reports honest progress.
                    prop_assert!((progress.reached as usize) < n);
                    if matches!(reason, LossReason::SourceDead) {
                        prop_assert!(timeline.initial().is_node_dead(u));
                    }
                }
            }
        }
    }

    /// `Drop` through the resilient runtime is the legacy stale-table
    /// path, outcome for outcome, on single-epoch timelines.
    #[test]
    fn drop_policy_matches_route_with_faults(
        g in arb_connected_graph(14),
        frac_pct in 0u64..50,
        seed in 0u64..1000,
    ) {
        let m = MetricSpace::new(&g);
        let n = m.n();
        let plan = FaultPlan::random_nodes(n, frac_pct as f64 / 100.0, seed);
        let timeline = FaultTimeline::from_plan(plan.clone());
        let scheme = FullTable::new(&m);
        let router = ResilientRouter::without_hierarchy(&m, &scheme, RecoveryPolicy::Drop);
        for u in 0..n as NodeId {
            for v in 0..n as NodeId {
                if u == v {
                    continue;
                }
                let legacy = scheme.route_with_faults(&m, u, scheme.label_of(v), &plan);
                let resilient = router.deliver(u, v, &timeline, &mut |_| {});
                match (&legacy, &resilient) {
                    (Ok(r), DeliveryOutcome::Delivered { route, .. }) => {
                        prop_assert_eq!(&r.hops, &route.hops);
                        prop_assert_eq!(r.cost, route.cost);
                    }
                    (Err(RouteError::NodeFailed { node }), DeliveryOutcome::Lost { reason, .. }) => {
                        match reason {
                            LossReason::SourceDead => prop_assert_eq!(*node, u),
                            LossReason::Casualty { error: RouteError::NodeFailed { node: n2 } } => {
                                prop_assert_eq!(node, n2)
                            }
                            other => prop_assert!(false, "mismatched loss {:?}", other),
                        }
                    }
                    (Err(RouteError::EdgeFailed { u: eu, v: ev }), DeliveryOutcome::Lost { reason, .. }) => {
                        prop_assert!(matches!(
                            reason,
                            LossReason::Casualty { error: RouteError::EdgeFailed { u: u2, v: v2 } }
                                if u2 == eu && v2 == ev
                        ));
                    }
                    (l, r) => prop_assert!(false, "legacy {:?} vs resilient {:?}", l, r),
                }
            }
        }
    }

    /// Monotonicity: more TTL never delivers fewer packets, and every
    /// policy delivers at least as much as `Drop`.
    #[test]
    fn recovery_budget_is_monotone(
        g in arb_connected_graph(14),
        frac_pct in 0u64..40,
        seed in 0u64..1000,
    ) {
        let m = MetricSpace::new(&g);
        let n = m.n();
        let timeline =
            FaultTimeline::from_plan(FaultPlan::random_nodes(n, frac_pct as f64 / 100.0, seed));
        let scheme = FullTable::new(&m);
        let pairs = netsim::stats::sample_pairs(n, 30, seed ^ 0x99);
        let delivered = |policy: RecoveryPolicy| {
            let router = ResilientRouter::without_hierarchy(&m, &scheme, policy);
            pairs
                .iter()
                .filter(|&&(u, v)| router.deliver(u, v, &timeline, &mut |_| {}).is_delivered())
                .count()
        };
        let base = delivered(RecoveryPolicy::Drop);
        let mut last = base;
        for ttl in [0usize, 1, 2, 4, 8] {
            let d = delivered(RecoveryPolicy::LocalDetour { ttl });
            prop_assert!(d >= base, "detour:{} delivered {} < drop {}", ttl, d, base);
            prop_assert!(d >= last, "ttl {} delivered {} < smaller ttl {}", ttl, d, last);
            last = d;
        }
    }
}
