//! Failure injection: the simulator must *catch* misbehaving schemes —
//! teleporting, looping, misdelivering, or lying about cost — rather than
//! silently producing good-looking numbers.

use doubling_metric::graph::NodeId;
use doubling_metric::{gen, MetricSpace};
use netsim::route::{Route, RouteError, RouteRecorder};
use netsim::scheme::{Label, LabeledScheme};
use netsim::stats::eval_labeled;

/// A scheme with selectable misbehaviour.
struct Buggy {
    mode: Mode,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Attempts a non-edge hop straight to the destination.
    Teleport,
    /// Bounces between two nodes forever.
    Loop,
    /// Delivers to the wrong node.
    Misdeliver,
}

impl LabeledScheme for Buggy {
    fn scheme_name(&self) -> &'static str {
        "buggy"
    }
    fn label_of(&self, v: NodeId) -> Label {
        v
    }
    fn label_bits(&self) -> u64 {
        8
    }
    fn table_bits(&self, _u: NodeId) -> u64 {
        0
    }
    fn route(&self, m: &MetricSpace, src: NodeId, target: Label) -> Result<Route, RouteError> {
        let mut rec = RouteRecorder::new(m, src);
        match self.mode {
            Mode::Teleport => {
                // Hop directly to the target even when it is not adjacent.
                rec.hop(target as NodeId)?;
                Ok(rec.finish())
            }
            Mode::Loop => {
                let nb = m.graph().neighbors(src)[0].node;
                loop {
                    rec.hop(nb)?;
                    rec.hop(src)?;
                }
            }
            Mode::Misdeliver => {
                // Walk to some node that is not the target.
                let wrong = if target == 0 { 1 } else { 0 };
                rec.walk_shortest(wrong)?;
                Ok(rec.finish())
            }
        }
    }
}

#[test]
fn teleporting_is_rejected() {
    let m = MetricSpace::new(&gen::grid(4, 4));
    let s = Buggy { mode: Mode::Teleport };
    // 0 -> 15 is not an edge: the recorder refuses the hop.
    match s.route(&m, 0, 15) {
        Err(RouteError::Internal(msg)) => assert!(msg.contains("non-edge")),
        other => panic!("teleport must be caught, got {other:?}"),
    }
    // eval counts it as a failure rather than crediting the route.
    let res = eval_labeled(&s, &m, &[(0, 15)]);
    assert_eq!(res.failures, 1);
    assert_eq!(res.routes, 0);
}

#[test]
fn loops_hit_the_hop_budget() {
    let m = MetricSpace::new(&gen::grid(4, 4));
    let s = Buggy { mode: Mode::Loop };
    match s.route(&m, 0, 15) {
        Err(RouteError::HopBudgetExceeded { .. }) => {}
        other => panic!("loop must exhaust the budget, got {other:?}"),
    }
}

#[test]
fn misdelivery_is_caught_by_eval() {
    let m = MetricSpace::new(&gen::grid(4, 4));
    let s = Buggy { mode: Mode::Misdeliver };
    let result = std::panic::catch_unwind(|| eval_labeled(&s, &m, &[(5, 15)]));
    assert!(result.is_err(), "eval must panic on misdelivery");
}

#[test]
fn cost_tampering_is_caught_by_verify() {
    let m = MetricSpace::new(&gen::grid(4, 4));
    let mut rec = RouteRecorder::new(&m, 0);
    rec.walk_shortest(15).unwrap();
    let mut route = rec.finish();
    route.verify(&m).unwrap();
    // A scheme cannot understate its cost after the fact.
    route.cost -= 1;
    assert!(route.verify(&m).is_err());
    route.cost += 1;
    // Nor inject phantom hops.
    route.hops.push(3);
    assert!(route.verify(&m).is_err());
}

#[test]
fn segment_tampering_is_caught_by_verify() {
    let m = MetricSpace::new(&gen::grid(4, 4));
    let mut rec = RouteRecorder::new(&m, 0);
    rec.begin_segment("a", None);
    rec.walk_shortest(5).unwrap();
    let mut route = rec.finish();
    route.verify(&m).unwrap();
    route.segments[0].cost += 1;
    assert!(route.verify(&m).is_err(), "segment sums must match total cost");
}
