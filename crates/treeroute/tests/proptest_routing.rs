//! Property-based tests: both tree routers must route along the exact
//! tree path for arbitrary random trees, and their compactness invariants
//! must hold.

use proptest::prelude::*;
use treeroute::{CompactTreeRouter, IntervalRouter, Tree};

/// Strategy: a random rooted tree on `2..=max_n` nodes with random parent
/// choices and weights.
fn arb_tree(max_n: usize) -> impl Strategy<Value = Tree> {
    (2usize..=max_n).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec(0usize..usize::MAX, n - 1),
            proptest::collection::vec(1u64..100, n - 1),
        )
            .prop_map(|(n, parents, weights)| {
                let edges = (1..n).map(|c| {
                    let p = (parents[c - 1] % c) as u32;
                    (c as u32, p, weights[c - 1])
                });
                Tree::new(0, edges).expect("parent structure is a tree")
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn interval_router_routes_exact_tree_paths(t in arb_tree(40)) {
        let n = t.len();
        let r = IntervalRouter::new(t);
        for a in 0..n as u32 {
            for b in 0..n as u32 {
                let route = r.route(a, r.label_of(b));
                prop_assert_eq!(&route, &r.tree().path(a, b));
            }
        }
    }

    #[test]
    fn compact_router_routes_exact_tree_paths(t in arb_tree(40)) {
        let n = t.len();
        let r = CompactTreeRouter::new(t);
        for a in 0..n as u32 {
            for b in 0..n as u32 {
                let route = r.route(a, r.label_of(b));
                prop_assert_eq!(&route, &r.tree().path(a, b));
            }
        }
    }

    #[test]
    fn routers_agree_with_each_other(t in arb_tree(30)) {
        let n = t.len();
        let ri = IntervalRouter::new(t.clone());
        let rc = CompactTreeRouter::new(t);
        for a in 0..n as u32 {
            for b in 0..n as u32 {
                prop_assert_eq!(
                    ri.route(a, ri.label_of(b)),
                    rc.route(a, rc.label_of(b))
                );
            }
        }
    }

    #[test]
    fn light_trails_stay_logarithmic(t in arb_tree(64)) {
        let n = t.len() as u64;
        let r = CompactTreeRouter::new(t);
        let bound = (64 - (n.max(2) - 1).leading_zeros()) as usize; // ⌈log2 n⌉
        for v in 0..n as u32 {
            prop_assert!(r.label_of(v).lights.len() <= bound);
        }
    }

    #[test]
    fn interval_labels_are_bijective(t in arb_tree(40)) {
        let n = t.len();
        let r = IntervalRouter::new(t);
        let mut seen = vec![false; n];
        for v in 0..n as u32 {
            let l = r.label_of(v) as usize;
            prop_assert!(!seen[l]);
            seen[l] = true;
            prop_assert_eq!(r.node_of_label(l as u32), v);
        }
    }
}
