//! DFS interval routing on trees.
//!
//! Labels are DFS numbers (`⌈log n⌉` bits). Each node stores its own DFS
//! interval, its parent, and the interval of each child; the next hop is
//! found by a range test. Storage is `O(deg · log n)` bits per node, which
//! is compact exactly when degrees are bounded — the situation inside the
//! paper's search trees, whose degrees are `(1/ε)^{O(α)}` by Lemma 2.2.

use doubling_metric::graph::NodeId;

use crate::tree::Tree;

/// Interval routing tables over a [`Tree`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalRouter {
    tree: Tree,
    /// DFS entry number per local index.
    dfs: Vec<u32>,
    /// Inclusive DFS interval (entry, max-descendant-entry) per local index.
    interval: Vec<(u32, u32)>,
    /// Local index in DFS-number order (inverse of `dfs`).
    by_dfs: Vec<u32>,
}

impl IntervalRouter {
    /// Builds the router (children visited in graph-id order).
    pub fn new(tree: Tree) -> Self {
        let n = tree.len();
        let mut dfs = vec![0u32; n];
        let mut interval = vec![(0u32, 0u32); n];
        let mut by_dfs = vec![0u32; n];
        let mut counter = 0u32;
        // Iterative DFS with post-processing for intervals.
        enum Frame {
            Enter(u32),
            Exit(u32),
        }
        let mut stack = vec![Frame::Enter(0)];
        while let Some(f) = stack.pop() {
            match f {
                Frame::Enter(u) => {
                    dfs[u as usize] = counter;
                    by_dfs[counter as usize] = u;
                    counter += 1;
                    stack.push(Frame::Exit(u));
                    for &c in tree.children(u).iter().rev() {
                        stack.push(Frame::Enter(c));
                    }
                }
                Frame::Exit(u) => {
                    let mut hi = dfs[u as usize];
                    for &c in tree.children(u) {
                        hi = hi.max(interval[c as usize].1);
                    }
                    interval[u as usize] = (dfs[u as usize], hi);
                }
            }
        }
        IntervalRouter { tree, dfs, interval, by_dfs }
    }

    /// The underlying tree.
    #[inline]
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// The routing label (DFS number) of graph node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not in the tree.
    pub fn label_of(&self, v: NodeId) -> u32 {
        self.dfs[self.tree.local(v).expect("node in tree") as usize]
    }

    /// The graph node with DFS number `l`.
    pub fn node_of_label(&self, l: u32) -> NodeId {
        self.tree.node(self.by_dfs[l as usize])
    }

    /// Next hop (as a graph node) from `from` toward the node labeled
    /// `target`, or `None` if `from` is the target.
    ///
    /// The decision uses only `from`'s stored intervals — this is the
    /// per-hop forwarding function.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not in the tree or `target` is out of range.
    pub fn next_hop(&self, from: NodeId, target: u32) -> Option<NodeId> {
        let u = self.tree.local(from).expect("node in tree");
        if self.dfs[u as usize] == target {
            return None;
        }
        let (lo, hi) = self.interval[u as usize];
        if target < lo || target > hi {
            return Some(self.tree.node(self.tree.parent(u)));
        }
        // Child whose interval contains the target: children's intervals
        // are disjoint; scan (bounded degree) — a binary search would also
        // work since DFS-order children have sorted intervals.
        for &c in self.tree.children(u) {
            let (clo, chi) = self.interval[c as usize];
            if clo <= target && target <= chi {
                return Some(self.tree.node(c));
            }
        }
        unreachable!("target inside own interval must be in some child subtree")
    }

    /// Full hop-by-hop route from `from` to the node labeled `target`,
    /// as a sequence of graph nodes (inclusive).
    pub fn route(&self, from: NodeId, target: u32) -> Vec<NodeId> {
        let mut path = vec![from];
        let mut cur = from;
        while let Some(next) = self.next_hop(cur, target) {
            path.push(next);
            cur = next;
        }
        path
    }

    /// Table bits at graph node `v`: own interval + parent + per-child
    /// `(child, interval)` entries, fields of `node_bits` each.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not in the tree.
    pub fn table_bits(&self, v: NodeId, node_bits: u64) -> u64 {
        let u = self.tree.local(v).expect("node in tree");
        let deg = self.tree.children(u).len() as u64;
        // own (lo, hi) + parent id + children: id + (lo, hi) each.
        (2 + 1) * node_bits + deg * 3 * node_bits
    }

    /// Label size in bits.
    pub fn label_bits(&self, node_bits: u64) -> u64 {
        node_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Tree;

    fn sample() -> IntervalRouter {
        IntervalRouter::new(
            Tree::new(10, vec![(20, 10, 1), (30, 10, 2), (40, 20, 3), (50, 20, 4), (60, 30, 5)])
                .unwrap(),
        )
    }

    #[test]
    fn labels_are_dfs_numbers() {
        let r = sample();
        assert_eq!(r.label_of(10), 0);
        // Children in id order: 20 before 30.
        assert_eq!(r.label_of(20), 1);
        assert_eq!(r.label_of(40), 2);
        assert_eq!(r.label_of(50), 3);
        assert_eq!(r.label_of(30), 4);
        assert_eq!(r.label_of(60), 5);
        for v in [10, 20, 30, 40, 50, 60] {
            assert_eq!(r.node_of_label(r.label_of(v)), v);
        }
    }

    #[test]
    fn routes_match_tree_paths() {
        let r = sample();
        let nodes = [10, 20, 30, 40, 50, 60];
        for &a in &nodes {
            for &b in &nodes {
                let route = r.route(a, r.label_of(b));
                assert_eq!(route, r.tree().path(a, b), "route {a} -> {b}");
            }
        }
    }

    #[test]
    fn next_hop_none_at_target() {
        let r = sample();
        assert_eq!(r.next_hop(40, r.label_of(40)), None);
    }

    #[test]
    fn table_bits_scale_with_degree() {
        let r = sample();
        assert!(r.table_bits(10, 8) > r.table_bits(60, 8));
        assert_eq!(r.label_bits(8), 8);
    }

    #[test]
    fn random_tree_routing_is_optimal() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..20 {
            let n = rng.gen_range(2..60);
            let mut edges = Vec::new();
            for c in 1..n {
                let p = rng.gen_range(0..c);
                edges.push((c as NodeId, p as NodeId, rng.gen_range(1..10u64)));
            }
            let tree = Tree::new(0, edges).unwrap();
            let r = IntervalRouter::new(tree);
            for a in 0..n as NodeId {
                for b in 0..n as NodeId {
                    let route = r.route(a, r.label_of(b));
                    assert_eq!(route, r.tree().path(a, b), "trial {trial}: {a}->{b}");
                }
            }
        }
    }
}
