//! Heavy-path compact tree routing (Fraigniaud–Gavoille style).
//!
//! Every node has a *heavy* child (largest subtree, ties by least graph
//! id); edges to other children are *light*. Any root-to-node path crosses
//! at most `⌊log₂ n⌋` light edges, so a label consisting of the node's DFS
//! number plus one `(dfs(x), child-of-x)` pair per light edge on its root
//! path is `O(log² n)` bits. Per-node storage is constant-many fields
//! (`O(log n)` bits) *independent of degree*:
//!
//! * own DFS number and interval,
//! * parent,
//! * heavy child and its interval.
//!
//! Forwarding at `u` toward label `L`:
//!
//! 1. `dfs(u) == L.dfs` → deliver;
//! 2. `L.dfs ∉ interval(u)` → forward to parent;
//! 3. `L.dfs ∈ interval(heavy(u))` → forward to heavy child;
//! 4. otherwise the edge taken is light, so `L.lights` contains a pair
//!    `(dfs(u), c)` → forward to `c`.
//!
//! This matches the bounds of Lemma 4.1 up to the `log log n` encoding
//! factor we deliberately do not implement (see crate docs).

use doubling_metric::graph::NodeId;

use crate::tree::Tree;

/// A compact routing label: DFS number plus the light-edge trail from the
/// root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactLabel {
    /// DFS number of the labeled node.
    pub dfs: u32,
    /// For each light edge `(x → y)` on the root path, the pair
    /// `(dfs(x), y)` with `y` a graph node id, in root-to-node order.
    pub lights: Vec<(u32, NodeId)>,
}

impl CompactLabel {
    /// Serialized size in bits: one DFS number plus two fields per light
    /// edge.
    pub fn bits(&self, node_bits: u64) -> u64 {
        node_bits + self.lights.len() as u64 * 2 * node_bits
    }
}

/// Heavy-path compact routing tables over a [`Tree`].
///
/// # Examples
///
/// ```rust
/// use treeroute::{CompactTreeRouter, Tree};
///
/// let t = Tree::new(0, (1..20).map(|c| (c, (c - 1) / 2, 1))).unwrap();
/// let r = CompactTreeRouter::new(t);
/// // Routing follows the exact tree path, degree-independent tables.
/// assert_eq!(r.route(13, r.label_of(9)), r.tree().path(13, 9));
/// assert_eq!(r.table_bits(0, 5), 7 * 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactTreeRouter {
    tree: Tree,
    dfs: Vec<u32>,
    interval: Vec<(u32, u32)>,
    /// Heavy child per local index (`u32::MAX` for leaves).
    heavy: Vec<u32>,
    labels: Vec<CompactLabel>,
}

const NO_CHILD: u32 = u32::MAX;

impl CompactTreeRouter {
    /// Builds the router: heavy children, DFS numbering (heavy child first,
    /// then light children in graph-id order), and all labels.
    pub fn new(tree: Tree) -> Self {
        let n = tree.len();
        let mut heavy = vec![NO_CHILD; n];
        for u in 0..n as u32 {
            let mut best: Option<(u32, NodeId, u32)> = None; // (size desc, id asc, child)
            for &c in tree.children(u) {
                let sz = tree.subtree_size(c);
                let id = tree.node(c);
                let better = match best {
                    None => true,
                    Some((bs, bid, _)) => sz > bs || (sz == bs && id < bid),
                };
                if better {
                    best = Some((sz, id, c));
                }
            }
            if let Some((_, _, c)) = best {
                heavy[u as usize] = c;
            }
        }

        let mut dfs = vec![0u32; n];
        let mut interval = vec![(0u32, 0u32); n];
        let mut counter = 0u32;
        enum Frame {
            Enter(u32),
            Exit(u32),
        }
        let mut stack = vec![Frame::Enter(0)];
        while let Some(f) = stack.pop() {
            match f {
                Frame::Enter(u) => {
                    dfs[u as usize] = counter;
                    counter += 1;
                    stack.push(Frame::Exit(u));
                    // Visit heavy child first: push light children (reverse
                    // id order), then the heavy child so it pops first.
                    let h = heavy[u as usize];
                    for &c in tree.children(u).iter().rev() {
                        if c != h {
                            stack.push(Frame::Enter(c));
                        }
                    }
                    if h != NO_CHILD {
                        stack.push(Frame::Enter(h));
                    }
                }
                Frame::Exit(u) => {
                    let mut hi = dfs[u as usize];
                    for &c in tree.children(u) {
                        hi = hi.max(interval[c as usize].1);
                    }
                    interval[u as usize] = (dfs[u as usize], hi);
                }
            }
        }

        // Labels: walk the tree once, carrying the light trail.
        let mut labels: Vec<CompactLabel> = vec![CompactLabel { dfs: 0, lights: Vec::new() }; n];
        let mut stack: Vec<(u32, Vec<(u32, NodeId)>)> = vec![(0, Vec::new())];
        while let Some((u, trail)) = stack.pop() {
            labels[u as usize] = CompactLabel { dfs: dfs[u as usize], lights: trail.clone() };
            for &c in tree.children(u) {
                let mut t = trail.clone();
                if c != heavy[u as usize] {
                    t.push((dfs[u as usize], tree.node(c)));
                }
                stack.push((c, t));
            }
        }

        CompactTreeRouter { tree, dfs, interval, heavy, labels }
    }

    /// The underlying tree.
    #[inline]
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// The label of graph node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not in the tree.
    pub fn label_of(&self, v: NodeId) -> &CompactLabel {
        &self.labels[self.tree.local(v).expect("node in tree") as usize]
    }

    /// Next hop (graph node) from `from` toward `target`, or `None` on
    /// arrival. The decision uses only `from`'s constant-size table plus
    /// the label in the header.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not in the tree.
    pub fn next_hop(&self, from: NodeId, target: &CompactLabel) -> Option<NodeId> {
        let u = self.tree.local(from).expect("node in tree");
        let my = self.dfs[u as usize];
        if my == target.dfs {
            return None;
        }
        let (lo, hi) = self.interval[u as usize];
        if target.dfs < lo || target.dfs > hi {
            return Some(self.tree.node(self.tree.parent(u)));
        }
        let h = self.heavy[u as usize];
        if h != NO_CHILD {
            let (hlo, hhi) = self.interval[h as usize];
            if hlo <= target.dfs && target.dfs <= hhi {
                return Some(self.tree.node(h));
            }
        }
        // Light edge out of u: look up our DFS number in the trail.
        for &(x_dfs, child) in &target.lights {
            if x_dfs == my {
                return Some(child);
            }
        }
        unreachable!(
            "target inside interval but not under heavy child: trail must name the light edge"
        )
    }

    /// Full hop-by-hop route from `from` to the labeled node, as graph
    /// nodes (inclusive).
    pub fn route(&self, from: NodeId, target: &CompactLabel) -> Vec<NodeId> {
        let mut path = vec![from];
        let mut cur = from;
        while let Some(next) = self.next_hop(cur, target) {
            path.push(next);
            cur = next;
        }
        path
    }

    /// Table bits at any node: own dfs + interval + parent + heavy child +
    /// heavy interval — seven node-sized fields, degree-independent.
    pub fn table_bits(&self, _v: NodeId, node_bits: u64) -> u64 {
        7 * node_bits
    }

    /// The largest label in the tree, in bits.
    pub fn max_label_bits(&self, node_bits: u64) -> u64 {
        self.labels.iter().map(|l| l.bits(node_bits)).max().unwrap_or(node_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Tree;
    use doubling_metric::ceil_log2;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_tree(n: usize, seed: u64) -> Tree {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for c in 1..n {
            let p = rng.gen_range(0..c);
            edges.push((c as NodeId, p as NodeId, rng.gen_range(1..10u64)));
        }
        Tree::new(0, edges).unwrap()
    }

    #[test]
    fn routes_match_tree_paths_on_random_trees() {
        for seed in 0..15 {
            let n = 40 + seed as usize * 3;
            let r = CompactTreeRouter::new(random_tree(n, seed));
            for a in 0..n as NodeId {
                for b in 0..n as NodeId {
                    let route = r.route(a, r.label_of(b));
                    assert_eq!(route, r.tree().path(a, b), "seed {seed}: {a}->{b}");
                }
            }
        }
    }

    #[test]
    fn light_trail_is_logarithmically_short() {
        for seed in 0..10 {
            let n = 200;
            let r = CompactTreeRouter::new(random_tree(n, seed));
            let bound = ceil_log2(n as u64) as usize;
            for v in 0..n as NodeId {
                assert!(r.label_of(v).lights.len() <= bound, "light trail too long at {v}");
            }
        }
    }

    #[test]
    fn star_has_degree_independent_tables() {
        // A star: root 0 with 50 leaves. Interval routing would need
        // Θ(deg·log n) at the hub; the compact router stays at 7 fields.
        let edges: Vec<_> = (1..=50).map(|c| (c as NodeId, 0, 1u64)).collect();
        let r = CompactTreeRouter::new(Tree::new(0, edges).unwrap());
        assert_eq!(r.table_bits(0, 6), 42);
        // Leaf labels on a star have at most one light pair.
        for v in 1..=50 {
            assert!(r.label_of(v).lights.len() <= 1);
        }
        for v in 1..=50u32 {
            assert_eq!(r.route(v, r.label_of(0)), vec![v, 0]);
            assert_eq!(r.route(0, r.label_of(v)), vec![0, v]);
            assert_eq!(r.route(v, r.label_of((v % 50) + 1)).len(), 3);
        }
    }

    #[test]
    fn caterpillar_routes() {
        // Path 0-1-2-3-4 with a leaf hanging off each path node.
        let mut edges = Vec::new();
        for i in 1..5 {
            edges.push((i as NodeId, i as NodeId - 1, 2u64));
        }
        for i in 0..5 {
            edges.push((5 + i as NodeId, i as NodeId, 1u64));
        }
        let r = CompactTreeRouter::new(Tree::new(0, edges).unwrap());
        for a in 0..10 as NodeId {
            for b in 0..10 as NodeId {
                assert_eq!(r.route(a, r.label_of(b)), r.tree().path(a, b));
            }
        }
    }

    #[test]
    fn singleton_routes_to_itself() {
        let r = CompactTreeRouter::new(Tree::singleton(3));
        assert_eq!(r.route(3, r.label_of(3)), vec![3]);
        assert_eq!(r.label_of(3).bits(5), 5);
    }

    #[test]
    fn label_bits_bound() {
        let n = 256;
        let r = CompactTreeRouter::new(random_tree(n, 7));
        let node_bits = ceil_log2(n as u64) as u64;
        // O(log² n): at most (1 + 2·log n)·log n bits.
        let bound = node_bits + 2 * ceil_log2(n as u64) as u64 * node_bits;
        assert!(r.max_label_bits(node_bits) <= bound);
    }
}
