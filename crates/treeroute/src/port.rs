//! Port-based heavy-path tree routing — the Fraigniaud–Gavoille port
//! model.
//!
//! [`crate::compact::CompactTreeRouter`] stores a full node id per light
//! edge in the label. The original tree-routing schemes instead name the
//! *output port*: the index of the link at the branching node. A node
//! knows its own physical links for free (they are its network
//! interfaces, not routing state), so ports cost `⌈log₂ Δ_G⌉` bits
//! instead of `⌈log₂ n⌉` — the step toward Lemma 4.1's tighter label
//! sizes.
//!
//! Ports are physical-link indices, so this router applies to trees whose
//! edges are graph edges — exactly the Voronoi shortest-path trees
//! `T_c(j)` of Section 4. [`PortTreeRouter::new`] verifies the property.

use std::fmt;

use doubling_metric::graph::{Graph, NodeId};

use crate::tree::Tree;

/// Errors from [`PortTreeRouter::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PortError {
    /// A tree edge is not a graph edge, so it has no port.
    NotAGraphEdge {
        /// Child endpoint.
        child: NodeId,
        /// Parent endpoint.
        parent: NodeId,
    },
}

impl fmt::Display for PortError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortError::NotAGraphEdge { child, parent } => {
                write!(f, "tree edge ({child}, {parent}) is not a physical link")
            }
        }
    }
}

impl std::error::Error for PortError {}

/// A port-based compact routing label: DFS number plus one
/// `(dfs(x), port)` pair per light edge on the root path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortLabel {
    /// DFS number of the labeled node.
    pub dfs: u32,
    /// `(dfs of branching node, output port at that node)` per light edge,
    /// root-to-node order.
    pub lights: Vec<(u32, u32)>,
}

impl PortLabel {
    /// Serialized size: one node-sized field plus `(node + port)` per
    /// light edge.
    pub fn bits(&self, node_bits: u64, port_bits: u64) -> u64 {
        node_bits + self.lights.len() as u64 * (node_bits + port_bits)
    }
}

/// Port-based heavy-path router over a tree embedded in a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortTreeRouter {
    tree: Tree,
    dfs: Vec<u32>,
    interval: Vec<(u32, u32)>,
    heavy: Vec<u32>,
    labels: Vec<PortLabel>,
    /// `⌈log₂ max-degree⌉`, the port field width.
    port_bits: u64,
}

const NO_CHILD: u32 = u32::MAX;

impl PortTreeRouter {
    /// Builds the router, verifying every tree edge is a graph edge and
    /// computing ports as adjacency-list indices.
    ///
    /// # Errors
    ///
    /// Returns [`PortError::NotAGraphEdge`] if some tree edge is virtual.
    pub fn new(tree: Tree, g: &Graph) -> Result<Self, PortError> {
        let n = tree.len();
        // Verify embedding and precompute the port of each tree edge
        // (from parent towards child).
        let mut port_down = vec![0u32; n]; // port at parent(i) toward i
        for i in 0..n as u32 {
            let p = tree.parent(i);
            if p == i {
                continue;
            }
            let (pu, cu) = (tree.node(p), tree.node(i));
            let port = g
                .neighbors(pu)
                .binary_search_by_key(&cu, |nb| nb.node)
                .map_err(|_| PortError::NotAGraphEdge { child: cu, parent: pu })?;
            port_down[i as usize] = port as u32;
        }

        let mut heavy = vec![NO_CHILD; n];
        for u in 0..n as u32 {
            let mut best: Option<(u32, NodeId, u32)> = None;
            for &c in tree.children(u) {
                let sz = tree.subtree_size(c);
                let id = tree.node(c);
                let better = match best {
                    None => true,
                    Some((bs, bid, _)) => sz > bs || (sz == bs && id < bid),
                };
                if better {
                    best = Some((sz, id, c));
                }
            }
            if let Some((_, _, c)) = best {
                heavy[u as usize] = c;
            }
        }

        let mut dfs = vec![0u32; n];
        let mut interval = vec![(0u32, 0u32); n];
        let mut counter = 0u32;
        enum Frame {
            Enter(u32),
            Exit(u32),
        }
        let mut stack = vec![Frame::Enter(0)];
        while let Some(f) = stack.pop() {
            match f {
                Frame::Enter(u) => {
                    dfs[u as usize] = counter;
                    counter += 1;
                    stack.push(Frame::Exit(u));
                    let h = heavy[u as usize];
                    for &c in tree.children(u).iter().rev() {
                        if c != h {
                            stack.push(Frame::Enter(c));
                        }
                    }
                    if h != NO_CHILD {
                        stack.push(Frame::Enter(h));
                    }
                }
                Frame::Exit(u) => {
                    let mut hi = dfs[u as usize];
                    for &c in tree.children(u) {
                        hi = hi.max(interval[c as usize].1);
                    }
                    interval[u as usize] = (dfs[u as usize], hi);
                }
            }
        }

        let mut labels: Vec<PortLabel> = vec![PortLabel { dfs: 0, lights: Vec::new() }; n];
        let mut stack: Vec<(u32, Vec<(u32, u32)>)> = vec![(0, Vec::new())];
        while let Some((u, trail)) = stack.pop() {
            labels[u as usize] = PortLabel { dfs: dfs[u as usize], lights: trail.clone() };
            for &c in tree.children(u) {
                let mut t = trail.clone();
                if c != heavy[u as usize] {
                    t.push((dfs[u as usize], port_down[c as usize]));
                }
                stack.push((c, t));
            }
        }

        let max_deg = (0..n as u32).map(|i| g.degree(tree.node(i)) as u64).max().unwrap_or(1);
        let port_bits = netsim_bits(max_deg);

        Ok(PortTreeRouter { tree, dfs, interval, heavy, labels, port_bits })
    }

    /// The underlying tree.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// The port field width in bits (`⌈log₂ max-degree⌉`).
    pub fn port_bits(&self) -> u64 {
        self.port_bits
    }

    /// The label of graph node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not in the tree.
    pub fn label_of(&self, v: NodeId) -> &PortLabel {
        &self.labels[self.tree.local(v).expect("node in tree") as usize]
    }

    /// DFS number of local index `i` — the per-node field a plane compiler
    /// packs.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn dfs_of(&self, i: u32) -> u32 {
        self.dfs[i as usize]
    }

    /// DFS interval `[lo, hi]` of the subtree at local index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn interval_of(&self, i: u32) -> (u32, u32) {
        self.interval[i as usize]
    }

    /// Heavy child (local index) of local index `i`, or `None` for a leaf.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn heavy_of(&self, i: u32) -> Option<u32> {
        let h = self.heavy[i as usize];
        (h != NO_CHILD).then_some(h)
    }

    /// Next hop from `from` toward `target`, or `None` on arrival. The
    /// decision uses the node's constant-size table, the label in the
    /// header, and the node's own physical link list (free).
    ///
    /// # Panics
    ///
    /// Panics if `from` is not in the tree or a port is out of range.
    pub fn next_hop(&self, g: &Graph, from: NodeId, target: &PortLabel) -> Option<NodeId> {
        let u = self.tree.local(from).expect("node in tree");
        let my = self.dfs[u as usize];
        if my == target.dfs {
            return None;
        }
        let (lo, hi) = self.interval[u as usize];
        if target.dfs < lo || target.dfs > hi {
            return Some(self.tree.node(self.tree.parent(u)));
        }
        let h = self.heavy[u as usize];
        if h != NO_CHILD {
            let (hlo, hhi) = self.interval[h as usize];
            if hlo <= target.dfs && target.dfs <= hhi {
                return Some(self.tree.node(h));
            }
        }
        for &(x_dfs, port) in &target.lights {
            if x_dfs == my {
                return Some(g.neighbors(from)[port as usize].node);
            }
        }
        unreachable!("light trail must name the branching port")
    }

    /// Full route from `from` to the labeled node (graph nodes,
    /// inclusive).
    pub fn route(&self, g: &Graph, from: NodeId, target: &PortLabel) -> Vec<NodeId> {
        let mut path = vec![from];
        let mut cur = from;
        while let Some(next) = self.next_hop(g, cur, target) {
            path.push(next);
            cur = next;
        }
        path
    }

    /// Table bits per node: same seven node-sized fields as the id-based
    /// router (the port tables are the node's physical links, free).
    pub fn table_bits(&self, _v: NodeId, node_bits: u64) -> u64 {
        7 * node_bits
    }

    /// The largest label in bits.
    pub fn max_label_bits(&self, node_bits: u64) -> u64 {
        self.labels.iter().map(|l| l.bits(node_bits, self.port_bits)).max().unwrap_or(node_bits)
    }
}

fn netsim_bits(count: u64) -> u64 {
    if count <= 1 {
        1
    } else {
        doubling_metric::ceil_log2(count) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compact::CompactTreeRouter;
    use doubling_metric::{gen, MetricSpace};

    /// A shortest-path tree of the whole graph rooted at `root` — every
    /// edge is a graph edge by construction.
    fn spt(m: &MetricSpace, root: NodeId) -> Tree {
        let edges = (0..m.n() as NodeId).filter(|&v| v != root).map(|v| {
            let p = m.apsp().parent(root, v);
            let w = m.graph().edge_weight(p, v).expect("tree edge is a graph edge");
            (v, p, w)
        });
        Tree::new(root, edges).expect("SPT is a tree")
    }

    #[test]
    fn routes_match_id_based_router() {
        let m = MetricSpace::new(&gen::grid(6, 6));
        let tree = spt(&m, 14);
        let pr = PortTreeRouter::new(tree.clone(), m.graph()).unwrap();
        let cr = CompactTreeRouter::new(tree);
        for a in 0..36u32 {
            for b in 0..36u32 {
                assert_eq!(
                    pr.route(m.graph(), a, pr.label_of(b)),
                    cr.route(a, cr.label_of(b)),
                    "{a}->{b}"
                );
            }
        }
    }

    #[test]
    fn port_labels_are_smaller() {
        // On a bounded-degree graph, ports are much narrower than ids.
        let m = MetricSpace::new(&gen::grid(10, 10));
        let tree = spt(&m, 0);
        let pr = PortTreeRouter::new(tree.clone(), m.graph()).unwrap();
        let cr = CompactTreeRouter::new(tree);
        let node_bits = 7; // ⌈log2 100⌉
        assert_eq!(pr.port_bits(), 2); // max degree 4
        assert!(
            pr.max_label_bits(node_bits) <= cr.max_label_bits(node_bits),
            "port labels {} vs id labels {}",
            pr.max_label_bits(node_bits),
            cr.max_label_bits(node_bits)
        );
    }

    #[test]
    fn rejects_virtual_trees() {
        let m = MetricSpace::new(&gen::path(5));
        // Tree edge (0, 4) is not a graph edge on a path.
        let t = Tree::new(4, vec![(0, 4, 4)]).unwrap();
        assert!(matches!(PortTreeRouter::new(t, m.graph()), Err(PortError::NotAGraphEdge { .. })));
    }

    #[test]
    fn routes_on_random_geometric_spt() {
        let m = MetricSpace::new(&gen::random_geometric(40, 260, 8));
        let tree = spt(&m, 3);
        let pr = PortTreeRouter::new(tree, m.graph()).unwrap();
        for a in 0..40u32 {
            for b in 0..40u32 {
                let route = pr.route(m.graph(), a, pr.label_of(b));
                assert_eq!(route, pr.tree().path(a, b));
            }
        }
    }

    #[test]
    fn table_bits_are_degree_independent() {
        let m = MetricSpace::new(&gen::spider(8, 3));
        let tree = spt(&m, 0);
        let pr = PortTreeRouter::new(tree, m.graph()).unwrap();
        assert_eq!(pr.table_bits(0, 5), pr.table_bits(7, 5));
    }
}
