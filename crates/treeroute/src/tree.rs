//! Rooted weighted trees over graph node ids.
//!
//! The trees the routing schemes build (Voronoi shortest-path trees
//! `T_c(j)`, search trees, local tail trees) live over subsets of the
//! graph's nodes; [`Tree`] maps between graph ids and dense local indices
//! and validates tree-ness on construction.

use std::collections::HashMap;
use std::fmt;

use doubling_metric::graph::{Dist, NodeId};

/// Errors from [`Tree::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// A node had two parent edges.
    DuplicateChild {
        /// The node with two parents.
        child: NodeId,
    },
    /// The root appeared as a child.
    RootHasParent,
    /// Some node is not reachable from the root (cycle or disconnection).
    NotATree {
        /// Nodes reachable from the root.
        reachable: usize,
        /// Total nodes mentioned.
        total: usize,
    },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::DuplicateChild { child } => {
                write!(f, "node {child} has more than one parent edge")
            }
            TreeError::RootHasParent => write!(f, "the root appears as a child"),
            TreeError::NotATree { reachable, total } => {
                write!(f, "edges do not form a tree: {reachable}/{total} nodes reachable")
            }
        }
    }
}

impl std::error::Error for TreeError {}

/// A rooted weighted tree over graph node ids.
///
/// # Examples
///
/// ```rust
/// use treeroute::Tree;
///
/// // child, parent, weight triples rooted at 10.
/// let t = Tree::new(10, vec![(20, 10, 1), (30, 10, 2), (40, 20, 3)]).unwrap();
/// assert_eq!(t.root(), 10);
/// assert_eq!(t.path(40, 30), vec![40, 20, 10, 30]);
/// assert_eq!(t.path_weight(40, 30), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tree {
    /// Local index → graph node id. Index 0 is the root.
    nodes: Vec<NodeId>,
    local: HashMap<NodeId, u32>,
    parent: Vec<u32>,
    children: Vec<Vec<u32>>,
    weight_up: Vec<Dist>,
    subtree_size: Vec<u32>,
}

impl Tree {
    /// Builds a tree from `(child, parent, weight)` edges rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns an error if a node has two parents, the root has a parent,
    /// or the edges do not form a single tree containing every mentioned
    /// node.
    pub fn new(
        root: NodeId,
        edges: impl IntoIterator<Item = (NodeId, NodeId, Dist)>,
    ) -> Result<Self, TreeError> {
        let mut parent_of: HashMap<NodeId, (NodeId, Dist)> = HashMap::new();
        let mut mentioned: Vec<NodeId> = vec![root];
        for (c, p, w) in edges {
            if c == root {
                return Err(TreeError::RootHasParent);
            }
            if parent_of.insert(c, (p, w)).is_some() {
                return Err(TreeError::DuplicateChild { child: c });
            }
            mentioned.push(c);
            mentioned.push(p);
        }
        mentioned.sort_unstable();
        mentioned.dedup();

        // Local indexing: root first, then remaining nodes in id order (the
        // deterministic convention used throughout the workspace).
        let mut nodes = Vec::with_capacity(mentioned.len());
        nodes.push(root);
        for &x in &mentioned {
            if x != root {
                nodes.push(x);
            }
        }
        let local: HashMap<NodeId, u32> =
            nodes.iter().enumerate().map(|(i, &x)| (x, i as u32)).collect();

        let mut parent = vec![0u32; nodes.len()];
        let mut weight_up = vec![0 as Dist; nodes.len()];
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); nodes.len()];
        for (&c, &(p, w)) in &parent_of {
            let cl = local[&c];
            let pl = *local.get(&p).expect("parent mentioned");
            parent[cl as usize] = pl;
            weight_up[cl as usize] = w;
            children[pl as usize].push(cl);
        }
        for ch in &mut children {
            ch.sort_unstable_by_key(|&c| nodes[c as usize]);
        }

        // Verify reachability (tree-ness) and compute subtree sizes.
        let mut size = vec![0u32; nodes.len()];
        let mut order = Vec::with_capacity(nodes.len());
        let mut stack = vec![0u32];
        let mut seen = vec![false; nodes.len()];
        seen[0] = true;
        while let Some(u) = stack.pop() {
            order.push(u);
            for &c in &children[u as usize] {
                if seen[c as usize] {
                    return Err(TreeError::NotATree { reachable: order.len(), total: nodes.len() });
                }
                seen[c as usize] = true;
                stack.push(c);
            }
        }
        if order.len() != nodes.len() {
            return Err(TreeError::NotATree { reachable: order.len(), total: nodes.len() });
        }
        for &u in order.iter().rev() {
            size[u as usize] =
                1 + children[u as usize].iter().map(|&c| size[c as usize]).sum::<u32>();
        }

        Ok(Tree { nodes, local, parent, children, weight_up, subtree_size: size })
    }

    /// A single-node tree.
    pub fn singleton(root: NodeId) -> Self {
        Tree::new(root, std::iter::empty()).expect("singleton is a tree")
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is a single node. Trees are never empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The root's graph id.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.nodes[0]
    }

    /// Graph id of local index `i`.
    #[inline]
    pub fn node(&self, i: u32) -> NodeId {
        self.nodes[i as usize]
    }

    /// Local index of graph node `x`, if present.
    #[inline]
    pub fn local(&self, x: NodeId) -> Option<u32> {
        self.local.get(&x).copied()
    }

    /// Whether graph node `x` belongs to the tree.
    #[inline]
    pub fn contains(&self, x: NodeId) -> bool {
        self.local.contains_key(&x)
    }

    /// Parent local index (root maps to itself).
    #[inline]
    pub fn parent(&self, i: u32) -> u32 {
        self.parent[i as usize]
    }

    /// Children local indices, sorted by graph id.
    #[inline]
    pub fn children(&self, i: u32) -> &[u32] {
        &self.children[i as usize]
    }

    /// Weight of the edge from `i` to its parent (0 for the root).
    #[inline]
    pub fn weight_up(&self, i: u32) -> Dist {
        self.weight_up[i as usize]
    }

    /// Subtree size of `i`.
    #[inline]
    pub fn subtree_size(&self, i: u32) -> u32 {
        self.subtree_size[i as usize]
    }

    /// All graph ids in the tree (root first, then ascending).
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The tree path between two members, as graph ids (inclusive).
    ///
    /// Used by tests as the ground truth the routers must match.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is not in the tree.
    pub fn path(&self, a: NodeId, b: NodeId) -> Vec<NodeId> {
        let mut ai = self.local(a).expect("a in tree");
        let mut bi = self.local(b).expect("b in tree");
        let depth = |mut x: u32| {
            let mut d = 0;
            while self.parent(x) != x {
                x = self.parent(x);
                d += 1;
            }
            d
        };
        let (mut da, mut db) = (depth(ai), depth(bi));
        let mut up_a = vec![ai];
        let mut up_b = vec![bi];
        while da > db {
            ai = self.parent(ai);
            up_a.push(ai);
            da -= 1;
        }
        while db > da {
            bi = self.parent(bi);
            up_b.push(bi);
            db -= 1;
        }
        while ai != bi {
            ai = self.parent(ai);
            bi = self.parent(bi);
            up_a.push(ai);
            up_b.push(bi);
        }
        up_b.pop();
        up_b.reverse();
        up_a.extend(up_b);
        up_a.into_iter().map(|i| self.node(i)).collect()
    }

    /// Total weight of the tree path between two members.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is not in the tree.
    pub fn path_weight(&self, a: NodeId, b: NodeId) -> Dist {
        let p = self.path(a, b);
        let mut total = 0;
        for w in p.windows(2) {
            let (x, y) = (self.local(w[0]).unwrap(), self.local(w[1]).unwrap());
            total += if self.parent(x) == y { self.weight_up(x) } else { self.weight_up(y) };
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small tree:        10
    ///                     /  \
    ///                    20    30
    ///                   /  \     \
    ///                  40   50    60
    fn sample() -> Tree {
        Tree::new(10, vec![(20, 10, 1), (30, 10, 2), (40, 20, 3), (50, 20, 4), (60, 30, 5)])
            .unwrap()
    }

    #[test]
    fn construction_and_queries() {
        let t = sample();
        assert_eq!(t.len(), 6);
        assert_eq!(t.root(), 10);
        assert!(t.contains(40));
        assert!(!t.contains(99));
        let l20 = t.local(20).unwrap();
        assert_eq!(t.node(t.parent(l20)), 10);
        assert_eq!(t.weight_up(l20), 1);
        assert_eq!(t.subtree_size(0), 6);
        assert_eq!(t.subtree_size(l20), 3);
    }

    #[test]
    fn children_sorted_by_graph_id() {
        let t = sample();
        let ch: Vec<NodeId> = t.children(0).iter().map(|&c| t.node(c)).collect();
        assert_eq!(ch, vec![20, 30]);
    }

    #[test]
    fn paths_and_weights() {
        let t = sample();
        assert_eq!(t.path(40, 60), vec![40, 20, 10, 30, 60]);
        assert_eq!(t.path_weight(40, 60), 3 + 1 + 2 + 5);
        assert_eq!(t.path(40, 50), vec![40, 20, 50]);
        assert_eq!(t.path(10, 10), vec![10]);
        assert_eq!(t.path_weight(10, 10), 0);
    }

    #[test]
    fn rejects_duplicate_parent() {
        let err = Tree::new(0, vec![(1, 0, 1), (1, 2, 1), (2, 0, 1)]).unwrap_err();
        assert_eq!(err, TreeError::DuplicateChild { child: 1 });
    }

    #[test]
    fn rejects_root_as_child() {
        let err = Tree::new(0, vec![(0, 1, 1)]).unwrap_err();
        assert_eq!(err, TreeError::RootHasParent);
    }

    #[test]
    fn rejects_cycle() {
        // 1 -> 2 -> 3 -> 1 plus root 0 disconnected from the cycle.
        let err = Tree::new(0, vec![(1, 2, 1), (2, 3, 1), (3, 1, 1)]).unwrap_err();
        assert!(matches!(err, TreeError::NotATree { .. }));
    }

    #[test]
    fn singleton_tree() {
        let t = Tree::singleton(7);
        assert_eq!(t.len(), 1);
        assert_eq!(t.root(), 7);
        assert_eq!(t.path(7, 7), vec![7]);
        assert!(!t.is_empty());
    }
}
