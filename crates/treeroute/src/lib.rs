//! Compact routing on trees — the Lemma 4.1 substrate.
//!
//! The paper uses, as a black box, the tree-routing schemes of Fraigniaud &
//! Gavoille and Thorup & Zwick: *"For every weighted tree `T` on `n` nodes,
//! there exists a labeled routing scheme that, given any destination label,
//! routes optimally on `T` from any source to the destination. The storage
//! per node, the label size, and header size are `O(log²n / log log n)`
//! bits."* (Lemma 4.1.)
//!
//! This crate provides two implementations over an explicit rooted
//! weighted [`tree::Tree`]:
//!
//! * [`interval::IntervalRouter`] — classic DFS interval routing: label =
//!   DFS number (`⌈log n⌉` bits), each node stores the DFS interval of each
//!   child. Storage is `O(deg · log n)` per node — exactly the structure
//!   the paper itself uses inside its search trees, where degrees are
//!   bounded by `(1/ε)^{O(α)}`.
//! * [`compact::CompactTreeRouter`] — heavy-path routing in the style of
//!   Fraigniaud–Gavoille: label = DFS number plus one `(dfs, port)` pair per
//!   light edge on the root path (`O(log² n)` bits since there are at most
//!   `⌊log n⌋` light edges), and `O(log n)`-bit tables at every node
//!   regardless of degree. This is the router used for the Voronoi trees
//!   `T_c(j)` of Section 4, whose degrees are unbounded.
//!
//! Both routers route *optimally* (along the unique tree path). We do not
//! implement the final `log log n`-factor label compression of Thorup–Zwick
//! (a pure re-encoding); measured label sizes are reported honestly as
//! `O(log² n)` (see DESIGN.md).

#![warn(missing_docs)]

pub mod compact;
pub mod interval;
pub mod port;
pub mod tree;

pub use compact::{CompactLabel, CompactTreeRouter};
pub use interval::IntervalRouter;
pub use port::{PortLabel, PortTreeRouter};
pub use tree::{Tree, TreeError};
