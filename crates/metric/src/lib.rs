//! Exact-arithmetic metric substrate for compact routing in networks of low
//! doubling dimension.
//!
//! This crate implements every geometric/combinatorial structure the routing
//! schemes of Konjevod, Richa and Xia (PODC 2006 / SODA 2007) are built on:
//!
//! * [`graph::Graph`] — weighted undirected graphs with `u64` weights;
//! * [`shortest_paths`] — deterministic Dijkstra, all-pairs tables and
//!   next-hop queries;
//! * [`space::MetricSpace`] — the shortest-path metric with exact ball
//!   queries and the `r_u(j)` radii (radius of the smallest ball around `u`
//!   containing `2^j` nodes);
//! * [`eps::Eps`] — rational `ε` with exact cross-multiplied comparisons, so
//!   every threshold in the paper (`d ≤ 2^i/ε`, `(ε/6)·r_u(j) ≤ 2^i`, …) is
//!   evaluated without floating point;
//! * [`nets::NetHierarchy`] — the nested `2^i`-net hierarchy `Y_i`, zooming
//!   sequences, and the netting tree `T({Y_i})` with its DFS leaf enumeration
//!   (Section 2 of the paper);
//! * [`packing::BallPacking`] — the ball packings `ℬ_j` of Lemma 2.3 and
//!   their Voronoi assignment;
//! * [`provider::DistanceProvider`] — pluggable distance backends (dense
//!   APSP, on-demand Dijkstra with an LRU of source rows, landmark
//!   lower/upper bracket) so evaluation can scale past the `Θ(n²)` wall;
//! * [`doubling`] — an empirical doubling-dimension estimator;
//! * [`gen`] — reproducible generators for the graph families used by the
//!   benchmark harness.
//!
//! All distances are `u64` and all comparisons are exact; tie-breaking is
//! always `(distance, least node id)`, the globally consistent rule the paper
//! requires for zooming sequences.
//!
//! # Example
//!
//! ```rust
//! use doubling_metric::gen;
//! use doubling_metric::space::MetricSpace;
//! use doubling_metric::nets::NetHierarchy;
//!
//! let g = gen::grid(8, 8);
//! let m = MetricSpace::new(&g);
//! let nets = NetHierarchy::new(&m);
//! // Every node appears in the bottom net Y_0.
//! assert_eq!(nets.level(0).len(), g.node_count());
//! // The top net is a single root.
//! assert_eq!(nets.level(nets.num_levels() - 1).len(), 1);
//! ```

#![warn(missing_docs)]

pub mod build;
pub mod doubling;
pub mod eps;
pub mod gen;
pub mod graph;
pub mod nets;
pub mod packing;
pub mod provider;
pub mod shortest_paths;
pub mod space;
pub mod viz;

pub use eps::Eps;
pub use graph::{Dist, Graph, NodeId};
pub use provider::{DistBounds, DistanceProvider, LandmarkEstimator, OnDemandDijkstra};
pub use space::MetricSpace;

/// Ceiling of `log2(x)` for `x ≥ 1`; `ceil_log2(1) == 0`.
///
/// # Panics
///
/// Panics if `x == 0`.
#[inline]
pub fn ceil_log2(x: u64) -> u32 {
    assert!(x > 0, "ceil_log2 of zero");
    64 - (x - 1).leading_zeros().min(64)
}

/// Floor of `log2(x)` for `x ≥ 1`.
///
/// # Panics
///
/// Panics if `x == 0`.
#[inline]
pub fn floor_log2(x: u64) -> u32 {
    assert!(x > 0, "floor_log2 of zero");
    63 - x.leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_basics() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn floor_log2_basics() {
        assert_eq!(floor_log2(1), 0);
        assert_eq!(floor_log2(2), 1);
        assert_eq!(floor_log2(3), 1);
        assert_eq!(floor_log2(4), 2);
        assert_eq!(floor_log2(u64::MAX), 63);
    }

    #[test]
    fn ceil_floor_relation() {
        for x in 1..2000u64 {
            let c = ceil_log2(x);
            let f = floor_log2(x);
            assert!(c == f || c == f + 1);
            assert!(1u64 << f <= x);
            assert!(x <= 1u64.checked_shl(c).unwrap_or(u64::MAX));
        }
    }

    #[test]
    #[should_panic]
    fn ceil_log2_zero_panics() {
        ceil_log2(0);
    }
}
