//! Deterministic Dijkstra shortest paths and all-pairs tables.
//!
//! Routing schemes in this workspace need three primitives from the metric:
//! exact distances `d(u, v)`, shortest-path *trees* (for "which neighbour of
//! `u` is on the shortest path to `x`" table entries), and next-hop queries.
//!
//! Determinism matters: the paper's zooming sequences require a globally
//! consistent tie-breaking rule. Our Dijkstra settles nodes in
//! `(distance, node id)` order and, among equal-length paths, prefers the
//! predecessor with the least node id, so shortest-path trees — and hence
//! every structure built on them — are unique functions of the input graph.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::graph::{Dist, Graph, NodeId, INFINITY};

/// The shortest-path tree rooted at a single source.
#[derive(Debug, Clone)]
pub struct ShortestPathTree {
    source: NodeId,
    dist: Vec<Dist>,
    parent: Vec<NodeId>,
}

impl ShortestPathTree {
    /// Runs Dijkstra from `source`.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn new(g: &Graph, source: NodeId) -> Self {
        let n = g.node_count();
        assert!((source as usize) < n, "source out of range");
        let mut dist = vec![INFINITY; n];
        let mut parent = vec![source; n];
        let mut settled = vec![false; n];
        let mut heap: BinaryHeap<Reverse<(Dist, NodeId)>> = BinaryHeap::new();
        dist[source as usize] = 0;
        heap.push(Reverse((0, source)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if settled[u as usize] {
                continue;
            }
            settled[u as usize] = true;
            debug_assert_eq!(d, dist[u as usize]);
            for nb in g.neighbors(u) {
                let v = nb.node as usize;
                if settled[v] {
                    continue;
                }
                let nd = d.saturating_add(nb.weight);
                if nd < dist[v] {
                    dist[v] = nd;
                    parent[v] = u;
                    heap.push(Reverse((nd, nb.node)));
                } else if nd == dist[v] && u < parent[v] {
                    // Equal-length path through a smaller-id predecessor:
                    // deterministic tie-break.
                    parent[v] = u;
                }
            }
        }
        ShortestPathTree { source, dist, parent }
    }

    /// The source node of this tree.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Distance from the source to `v`.
    #[inline]
    pub fn dist(&self, v: NodeId) -> Dist {
        self.dist[v as usize]
    }

    /// Predecessor of `v` on the shortest path from the source (the source
    /// is its own predecessor).
    #[inline]
    pub fn parent(&self, v: NodeId) -> NodeId {
        self.parent[v as usize]
    }

    /// The full shortest path from the source to `v`, inclusive.
    pub fn path_to(&self, v: NodeId) -> Vec<NodeId> {
        let mut path = vec![v];
        let mut cur = v;
        while cur != self.source {
            cur = self.parent(cur);
            path.push(cur);
        }
        path.reverse();
        path
    }

    /// Borrow the raw distance array.
    #[inline]
    pub fn dists(&self) -> &[Dist] {
        &self.dist
    }
}

/// All-pairs shortest-path tables: one deterministic Dijkstra tree per
/// source, stored flat.
///
/// Memory is `Θ(n²)` (`12n²` bytes), which is the honest cost of an exact
/// metric oracle; the workspace keeps `n` in the low thousands.
///
/// # Examples
///
/// ```rust
/// use doubling_metric::gen;
/// use doubling_metric::shortest_paths::Apsp;
///
/// let g = gen::ring(6);
/// let apsp = Apsp::new(&g);
/// assert_eq!(apsp.dist(0, 3), 3);
/// assert_eq!(apsp.path(0, 2), vec![0, 1, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct Apsp {
    n: usize,
    dist: Vec<Dist>,
    parent: Vec<NodeId>,
}

impl Apsp {
    /// Computes all-pairs shortest paths by `n` Dijkstra runs.
    pub fn new(g: &Graph) -> Self {
        let n = g.node_count();
        let mut dist = Vec::with_capacity(n * n);
        let mut parent = Vec::with_capacity(n * n);
        for s in 0..n as NodeId {
            let t = ShortestPathTree::new(g, s);
            dist.extend_from_slice(&t.dist);
            parent.extend_from_slice(&t.parent);
        }
        Apsp { n, dist, parent }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Exact shortest-path distance `d(u, v)`.
    #[inline]
    pub fn dist(&self, u: NodeId, v: NodeId) -> Dist {
        self.dist[u as usize * self.n + v as usize]
    }

    /// Predecessor of `v` on the shortest path from `src` (in the Dijkstra
    /// tree rooted at `src`).
    #[inline]
    pub fn parent(&self, src: NodeId, v: NodeId) -> NodeId {
        self.parent[src as usize * self.n + v as usize]
    }

    /// The neighbour of `src` that lies on the (deterministic) shortest path
    /// from `src` to `dst`; `None` if `src == dst`.
    ///
    /// This is exactly the "next hop" a routing-table entry stores.
    pub fn next_hop(&self, src: NodeId, dst: NodeId) -> Option<NodeId> {
        if src == dst {
            return None;
        }
        let mut cur = dst;
        loop {
            let p = self.parent(src, cur);
            if p == src {
                return Some(cur);
            }
            cur = p;
        }
    }

    /// The full shortest path from `src` to `dst`, inclusive of both.
    pub fn path(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        let mut path = vec![dst];
        let mut cur = dst;
        while cur != src {
            cur = self.parent(src, cur);
            path.push(cur);
        }
        path.reverse();
        path
    }

    /// Row of distances from `u` (indexed by destination).
    #[inline]
    pub fn row(&self, u: NodeId) -> &[Dist] {
        &self.dist[u as usize * self.n..(u as usize + 1) * self.n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// 0 -1- 1 -1- 2
    /// |           |
    /// +----5------+
    fn cycle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.edge(0, 1, 1).unwrap();
        b.edge(1, 2, 1).unwrap();
        b.edge(0, 2, 5).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn dijkstra_prefers_cheap_path() {
        let t = ShortestPathTree::new(&cycle(), 0);
        assert_eq!(t.dist(0), 0);
        assert_eq!(t.dist(1), 1);
        assert_eq!(t.dist(2), 2);
        assert_eq!(t.path_to(2), vec![0, 1, 2]);
    }

    #[test]
    fn tie_break_prefers_smaller_parent() {
        // Two equal-length paths 0->1->3 and 0->2->3; parent of 3 must be 1.
        let mut b = GraphBuilder::new(4);
        b.edge(0, 1, 1).unwrap();
        b.edge(0, 2, 1).unwrap();
        b.edge(1, 3, 1).unwrap();
        b.edge(2, 3, 1).unwrap();
        let g = b.build().unwrap();
        let t = ShortestPathTree::new(&g, 0);
        assert_eq!(t.dist(3), 2);
        assert_eq!(t.parent(3), 1);
    }

    #[test]
    fn apsp_symmetric_and_triangle() {
        let g = crate::gen::grid(4, 3);
        let apsp = Apsp::new(&g);
        let n = apsp.node_count() as NodeId;
        for u in 0..n {
            assert_eq!(apsp.dist(u, u), 0);
            for v in 0..n {
                assert_eq!(apsp.dist(u, v), apsp.dist(v, u), "symmetry {u} {v}");
                for w in 0..n {
                    assert!(
                        apsp.dist(u, w) <= apsp.dist(u, v) + apsp.dist(v, w),
                        "triangle inequality violated at {u},{v},{w}"
                    );
                }
            }
        }
    }

    #[test]
    fn next_hop_walks_shortest_path() {
        let g = crate::gen::grid(5, 5);
        let apsp = Apsp::new(&g);
        let n = apsp.node_count() as NodeId;
        for u in 0..n {
            for v in 0..n {
                if u == v {
                    assert_eq!(apsp.next_hop(u, v), None);
                    continue;
                }
                let h = apsp.next_hop(u, v).unwrap();
                assert!(g.has_edge(u, h));
                // Moving to the next hop makes exact progress.
                assert_eq!(apsp.dist(u, v), g.edge_weight(u, h).unwrap() + apsp.dist(h, v));
            }
        }
    }

    #[test]
    fn path_endpoints_and_cost() {
        let g = crate::gen::grid(6, 2);
        let apsp = Apsp::new(&g);
        let p = apsp.path(0, 11);
        assert_eq!(*p.first().unwrap(), 0);
        assert_eq!(*p.last().unwrap(), 11);
        let mut cost = 0;
        for w in p.windows(2) {
            cost += g.edge_weight(w[0], w[1]).unwrap();
        }
        assert_eq!(cost, apsp.dist(0, 11));
    }

    #[test]
    fn apsp_matches_single_source() {
        let g = crate::gen::random_geometric(40, 260, 7);
        let apsp = Apsp::new(&g);
        for s in [0u32, 5, 17] {
            let t = ShortestPathTree::new(&g, s);
            for v in 0..g.node_count() as NodeId {
                assert_eq!(t.dist(v), apsp.dist(s, v));
            }
        }
    }
}
