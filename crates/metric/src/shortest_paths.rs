//! Deterministic Dijkstra shortest paths and all-pairs tables.
//!
//! Routing schemes in this workspace need three primitives from the metric:
//! exact distances `d(u, v)`, shortest-path *trees* (for "which neighbour of
//! `u` is on the shortest path to `x`" table entries), and next-hop queries.
//!
//! Determinism matters: the paper's zooming sequences require a globally
//! consistent tie-breaking rule. Our Dijkstra settles nodes in
//! `(distance, node id)` order and, among equal-length paths, prefers the
//! predecessor with the least node id, so shortest-path trees — and hence
//! every structure built on them — are unique functions of the input graph.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::build::{run_rows, PhaseProfile};
use crate::graph::{Dist, Graph, NodeId, INFINITY};

/// Runs the deterministic Dijkstra from `source`, writing distances and
/// predecessors into the caller's row buffers (each of length `n`).
///
/// This is the single Dijkstra implementation in the workspace: the
/// sequential [`ShortestPathTree::new`], the parallel
/// [`Apsp::new_parallel`], and the on-demand
/// [`crate::provider::OnDemandDijkstra`] backend all call it, which is
/// what makes every distance source byte-identical by construction.
///
/// # Panics
///
/// Debug-asserts that `dist` and `parent` are both length `n`.
pub fn dijkstra_into(g: &Graph, source: NodeId, dist: &mut [Dist], parent: &mut [NodeId]) {
    let n = g.node_count();
    debug_assert_eq!(dist.len(), n);
    debug_assert_eq!(parent.len(), n);
    dist.fill(INFINITY);
    parent.fill(source);
    let mut settled = vec![false; n];
    let mut heap: BinaryHeap<Reverse<(Dist, NodeId)>> = BinaryHeap::new();
    dist[source as usize] = 0;
    heap.push(Reverse((0, source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if settled[u as usize] {
            continue;
        }
        settled[u as usize] = true;
        debug_assert_eq!(d, dist[u as usize]);
        for nb in g.neighbors(u) {
            let v = nb.node as usize;
            if settled[v] {
                continue;
            }
            let nd = d.saturating_add(nb.weight);
            if nd < dist[v] {
                dist[v] = nd;
                parent[v] = u;
                heap.push(Reverse((nd, nb.node)));
            } else if nd == dist[v] && u < parent[v] {
                // Equal-length path through a smaller-id predecessor:
                // deterministic tie-break.
                parent[v] = u;
            }
        }
    }
}

/// The shortest-path tree rooted at a single source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShortestPathTree {
    source: NodeId,
    dist: Vec<Dist>,
    parent: Vec<NodeId>,
}

impl ShortestPathTree {
    /// Runs Dijkstra from `source`.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn new(g: &Graph, source: NodeId) -> Self {
        let n = g.node_count();
        assert!((source as usize) < n, "source out of range");
        let mut dist = vec![INFINITY; n];
        let mut parent = vec![source; n];
        dijkstra_into(g, source, &mut dist, &mut parent);
        ShortestPathTree { source, dist, parent }
    }

    /// The source node of this tree.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Distance from the source to `v`.
    #[inline]
    pub fn dist(&self, v: NodeId) -> Dist {
        self.dist[v as usize]
    }

    /// Predecessor of `v` on the shortest path from the source (the source
    /// is its own predecessor).
    #[inline]
    pub fn parent(&self, v: NodeId) -> NodeId {
        self.parent[v as usize]
    }

    /// The full shortest path from the source to `v`, inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `v` is unreachable from the source (possible only on
    /// graphs built with [`crate::graph::GraphBuilder::build_any`]).
    pub fn path_to(&self, v: NodeId) -> Vec<NodeId> {
        assert_ne!(
            self.dist(v),
            INFINITY,
            "no path from {} to {v}: graph is disconnected",
            self.source
        );
        let mut path = vec![v];
        let mut cur = v;
        while cur != self.source {
            cur = self.parent(cur);
            path.push(cur);
        }
        path.reverse();
        path
    }

    /// Borrow the raw distance array.
    #[inline]
    pub fn dists(&self) -> &[Dist] {
        &self.dist
    }
}

/// All-pairs shortest-path tables: one deterministic Dijkstra tree per
/// source, stored flat.
///
/// Memory is `Θ(n²)` (`12n²` bytes), which is the honest cost of an exact
/// metric oracle; the workspace keeps `n` in the low thousands.
///
/// # Examples
///
/// ```rust
/// use doubling_metric::gen;
/// use doubling_metric::shortest_paths::Apsp;
///
/// let g = gen::ring(6);
/// let apsp = Apsp::new(&g);
/// assert_eq!(apsp.dist(0, 3), 3);
/// assert_eq!(apsp.path(0, 2), vec![0, 1, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Apsp {
    n: usize,
    dist: Vec<Dist>,
    parent: Vec<NodeId>,
}

impl Apsp {
    /// Computes all-pairs shortest paths by `n` Dijkstra runs on the
    /// calling thread. Equivalent to [`Apsp::new_parallel`] with one
    /// thread.
    pub fn new(g: &Graph) -> Self {
        Self::new_parallel(g, 1)
    }

    /// Computes all-pairs shortest paths with up to `threads` worker
    /// threads (`std::thread::scope`; no thread pool, no external deps).
    ///
    /// Each source's Dijkstra writes into a disjoint row slice of the flat
    /// `dist`/`parent` arrays, so the result is **byte-identical** to the
    /// sequential build for every thread count. `threads == 1` runs inline
    /// on the calling thread (the historical behavior).
    pub fn new_parallel(g: &Graph, threads: usize) -> Self {
        Self::new_profiled(g, threads).0
    }

    /// [`Apsp::new_parallel`] returning the per-worker/per-source timing
    /// profile alongside the tables.
    pub fn new_profiled(g: &Graph, threads: usize) -> (Self, PhaseProfile) {
        let n = g.node_count();
        let mut dist = vec![0 as Dist; n * n];
        let mut parent = vec![0 as NodeId; n * n];
        let profile =
            run_rows(n, n, threads, &mut dist, &mut parent, |source, local, d_chunk, p_chunk| {
                dijkstra_into(
                    g,
                    source as NodeId,
                    &mut d_chunk[local * n..(local + 1) * n],
                    &mut p_chunk[local * n..(local + 1) * n],
                );
            });
        (Apsp { n, dist, parent }, profile)
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Exact shortest-path distance `d(u, v)`.
    #[inline]
    pub fn dist(&self, u: NodeId, v: NodeId) -> Dist {
        self.dist[u as usize * self.n + v as usize]
    }

    /// Predecessor of `v` on the shortest path from `src` (in the Dijkstra
    /// tree rooted at `src`).
    #[inline]
    pub fn parent(&self, src: NodeId, v: NodeId) -> NodeId {
        self.parent[src as usize * self.n + v as usize]
    }

    /// The neighbour of `src` that lies on the (deterministic) shortest path
    /// from `src` to `dst`; `None` if `src == dst` **or `dst` is
    /// unreachable from `src`** (possible only on graphs built with
    /// [`crate::graph::GraphBuilder::build_any`]).
    ///
    /// The unreachable guard matters: `parent` rows are initialized to the
    /// source, so without it an unreachable `dst` would silently decode as
    /// a bogus one-hop neighbour.
    ///
    /// This is exactly the "next hop" a routing-table entry stores.
    pub fn next_hop(&self, src: NodeId, dst: NodeId) -> Option<NodeId> {
        if src == dst || self.dist(src, dst) == INFINITY {
            return None;
        }
        let mut cur = dst;
        loop {
            let p = self.parent(src, cur);
            if p == src {
                return Some(cur);
            }
            cur = p;
        }
    }

    /// The full shortest path from `src` to `dst`, inclusive of both.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is unreachable from `src` (possible only on graphs
    /// built with [`crate::graph::GraphBuilder::build_any`]) — following
    /// the source-initialized `parent` row would otherwise fabricate a
    /// 2-node "path" across the component gap.
    pub fn path(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        assert_ne!(
            self.dist(src, dst),
            INFINITY,
            "no path from {src} to {dst}: graph is disconnected"
        );
        let mut path = vec![dst];
        let mut cur = dst;
        while cur != src {
            cur = self.parent(src, cur);
            path.push(cur);
        }
        path.reverse();
        path
    }

    /// Row of distances from `u` (indexed by destination).
    #[inline]
    pub fn row(&self, u: NodeId) -> &[Dist] {
        &self.dist[u as usize * self.n..(u as usize + 1) * self.n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// 0 -1- 1 -1- 2
    /// |           |
    /// +----5------+
    fn cycle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.edge(0, 1, 1).unwrap();
        b.edge(1, 2, 1).unwrap();
        b.edge(0, 2, 5).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn dijkstra_prefers_cheap_path() {
        let t = ShortestPathTree::new(&cycle(), 0);
        assert_eq!(t.dist(0), 0);
        assert_eq!(t.dist(1), 1);
        assert_eq!(t.dist(2), 2);
        assert_eq!(t.path_to(2), vec![0, 1, 2]);
    }

    #[test]
    fn tie_break_prefers_smaller_parent() {
        // Two equal-length paths 0->1->3 and 0->2->3; parent of 3 must be 1.
        let mut b = GraphBuilder::new(4);
        b.edge(0, 1, 1).unwrap();
        b.edge(0, 2, 1).unwrap();
        b.edge(1, 3, 1).unwrap();
        b.edge(2, 3, 1).unwrap();
        let g = b.build().unwrap();
        let t = ShortestPathTree::new(&g, 0);
        assert_eq!(t.dist(3), 2);
        assert_eq!(t.parent(3), 1);
    }

    #[test]
    fn apsp_symmetric_and_triangle() {
        let g = crate::gen::grid(4, 3);
        let apsp = Apsp::new(&g);
        let n = apsp.node_count() as NodeId;
        for u in 0..n {
            assert_eq!(apsp.dist(u, u), 0);
            for v in 0..n {
                assert_eq!(apsp.dist(u, v), apsp.dist(v, u), "symmetry {u} {v}");
                for w in 0..n {
                    assert!(
                        apsp.dist(u, w) <= apsp.dist(u, v) + apsp.dist(v, w),
                        "triangle inequality violated at {u},{v},{w}"
                    );
                }
            }
        }
    }

    #[test]
    fn next_hop_walks_shortest_path() {
        let g = crate::gen::grid(5, 5);
        let apsp = Apsp::new(&g);
        let n = apsp.node_count() as NodeId;
        for u in 0..n {
            for v in 0..n {
                if u == v {
                    assert_eq!(apsp.next_hop(u, v), None);
                    continue;
                }
                let h = apsp.next_hop(u, v).unwrap();
                assert!(g.has_edge(u, h));
                // Moving to the next hop makes exact progress.
                assert_eq!(apsp.dist(u, v), g.edge_weight(u, h).unwrap() + apsp.dist(h, v));
            }
        }
    }

    #[test]
    fn path_endpoints_and_cost() {
        let g = crate::gen::grid(6, 2);
        let apsp = Apsp::new(&g);
        let p = apsp.path(0, 11);
        assert_eq!(*p.first().unwrap(), 0);
        assert_eq!(*p.last().unwrap(), 11);
        let mut cost = 0;
        for w in p.windows(2) {
            cost += g.edge_weight(w[0], w[1]).unwrap();
        }
        assert_eq!(cost, apsp.dist(0, 11));
    }

    #[test]
    fn parallel_apsp_is_bit_identical_for_threads_1_2_4() {
        // The deterministic-parallelism contract: for every thread count,
        // the flat tables are equal as values (and hence byte-identical —
        // they are plain integer vectors).
        for g in [
            crate::gen::grid(7, 6),
            crate::gen::random_geometric(50, 250, 11),
            crate::gen::exp_weight_path(20),
        ] {
            let sequential = Apsp::new(&g);
            for threads in [1usize, 2, 4] {
                let (parallel, profile) = Apsp::new_profiled(&g, threads);
                assert_eq!(parallel, sequential, "threads={threads}");
                assert_eq!(profile.per_source_us.len(), g.node_count());
                assert_eq!(profile.workers.len(), threads.min(g.node_count()));
            }
        }
    }

    /// Two components: 0-1-2 and 3-4.
    fn two_components() -> Graph {
        let mut b = GraphBuilder::new(5);
        b.edge(0, 1, 1).unwrap();
        b.edge(1, 2, 1).unwrap();
        b.edge(3, 4, 2).unwrap();
        b.build_any().unwrap()
    }

    #[test]
    fn next_hop_is_none_across_components() {
        let apsp = Apsp::new(&two_components());
        // Within components next hops work as usual.
        assert_eq!(apsp.next_hop(0, 2), Some(1));
        assert_eq!(apsp.next_hop(3, 4), Some(4));
        // Across components: distance is INFINITY, next hop must be None —
        // not the bogus `Some(dst)` the source-initialized parent row would
        // have produced before the guard.
        assert_eq!(apsp.dist(0, 3), INFINITY);
        assert_eq!(apsp.next_hop(0, 3), None);
        assert_eq!(apsp.next_hop(4, 1), None);
    }

    #[test]
    #[should_panic(expected = "no path from 0 to 4")]
    fn path_across_components_panics() {
        Apsp::new(&two_components()).path(0, 4);
    }

    #[test]
    #[should_panic(expected = "graph is disconnected")]
    fn tree_path_to_unreachable_panics() {
        ShortestPathTree::new(&two_components(), 0).path_to(3);
    }

    #[test]
    fn apsp_matches_single_source() {
        let g = crate::gen::random_geometric(40, 260, 7);
        let apsp = Apsp::new(&g);
        for s in [0u32, 5, 17] {
            let t = ShortestPathTree::new(&g, s);
            for v in 0..g.node_count() as NodeId {
                assert_eq!(t.dist(v), apsp.dist(s, v));
            }
        }
    }
}
