//! Empirical doubling-dimension estimation.
//!
//! The doubling dimension `α` of a metric is the least value such that every
//! ball can be covered by at most `2^α` balls of half the radius. Computing
//! the exact minimum cover is NP-hard in general, so we report the greedy
//! cover size, which upper-bounds the minimum by at most a constant factor
//! in doubling metrics (greedy centers form a packing, so the greedy count
//! is itself at most the `r/2`-packing number of the ball — the standard
//! `2^{O(α)}` bound). The estimate is used only for *reporting* (e.g.
//! verifying Lemma 5.8's `α ≤ 6 − log ε` for the lower-bound tree); no
//! routing decision depends on it.

use crate::graph::{Dist, NodeId};
use crate::space::MetricSpace;

/// Result of a doubling-constant estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DoublingEstimate {
    /// The largest greedy half-radius cover size observed over all sampled
    /// balls — an upper bound on the doubling constant `2^α`.
    pub max_cover: usize,
    /// `log₂(max_cover)`, an upper estimate of the doubling dimension `α`.
    pub dimension: f64,
    /// Number of (center, radius) balls examined.
    pub balls_examined: usize,
}

/// Greedily covers `B_u(r)` with balls of radius `⌈r/2⌉` centered at members
/// of the ball, returning the number of cover balls used.
///
/// Centers are chosen farthest-first from `u` (deterministic via
/// `(distance, id)` ordering), which makes the greedy count equal to the
/// size of a `⌈r/2⌉`-packing of the ball — a valid lower bound on no cover
/// and upper bound `2^{O(α)}`.
pub fn greedy_half_cover(m: &MetricSpace, u: NodeId, r: Dist) -> usize {
    let ball: Vec<NodeId> = m.ball(u, r).iter().map(|&(_, x)| x).collect();
    let half = r.div_ceil(2);
    let mut covered = vec![false; ball.len()];
    let mut count = 0;
    // Farthest uncovered node from u (ties: least id — ball order is
    // ascending (dist, id), so take the last uncovered).
    while let Some((pick, _)) = ball.iter().enumerate().rev().find(|(k, _)| !covered[*k]) {
        let c = ball[pick];
        count += 1;
        for (k, &x) in ball.iter().enumerate() {
            if !covered[k] && m.dist(c, x) <= half {
                covered[k] = true;
            }
        }
    }
    count
}

/// Exact minimum half-radius cover of `B_u(r)` by balls of radius
/// `⌈r/2⌉` centered at members of the ball, via set-cover DP over
/// bitmasks. Ground truth for validating [`greedy_half_cover`]; only
/// usable for balls of at most 20 nodes.
///
/// # Panics
///
/// Panics if the ball has more than 20 nodes.
pub fn exact_half_cover(m: &MetricSpace, u: NodeId, r: Dist) -> usize {
    let ball: Vec<NodeId> = m.ball(u, r).iter().map(|&(_, x)| x).collect();
    let k = ball.len();
    assert!(k <= 20, "exact cover limited to 20-node balls (got {k})");
    if k == 0 {
        return 0;
    }
    let half = r.div_ceil(2);
    // Coverage mask of each candidate center.
    let covers: Vec<u32> = ball
        .iter()
        .map(|&c| {
            let mut mask = 0u32;
            for (idx, &x) in ball.iter().enumerate() {
                if m.dist(c, x) <= half {
                    mask |= 1 << idx;
                }
            }
            mask
        })
        .collect();
    let full = (1u32 << k) - 1;
    // BFS over covered-set masks.
    let mut best = vec![u8::MAX; 1usize << k];
    best[0] = 0;
    let mut frontier = vec![0u32];
    let mut depth = 0u8;
    while !frontier.is_empty() {
        depth += 1;
        let mut next = Vec::new();
        for &s in &frontier {
            for &c in &covers {
                let t = s | c;
                if best[t as usize] == u8::MAX {
                    best[t as usize] = depth;
                    if t == full {
                        return depth as usize;
                    }
                    next.push(t);
                }
            }
        }
        frontier = next;
    }
    unreachable!("every node covers itself, so the full mask is reachable")
}

/// Estimates the doubling constant/dimension of the metric by examining the
/// balls `B_u(s_i)` for every scale `s_i` and a deterministic sample of at
/// most `max_centers` centers per scale (all centers if `None`).
///
/// # Examples
///
/// ```rust
/// use doubling_metric::{doubling, gen, MetricSpace};
///
/// let m = MetricSpace::new(&gen::grid(6, 6));
/// let est = doubling::estimate(&m, None);
/// assert!(est.dimension < 5.0); // a grid is low-dimensional
/// ```
pub fn estimate(m: &MetricSpace, max_centers: Option<usize>) -> DoublingEstimate {
    let n = m.n();
    let stride = match max_centers {
        Some(k) if k < n => n.div_ceil(k),
        _ => 1,
    };
    let mut max_cover = 1usize;
    let mut examined = 0usize;
    for i in 0..m.num_scales() {
        let r = m.scale(i);
        let mut u = 0usize;
        while u < n {
            let c = greedy_half_cover(m, u as NodeId, r);
            max_cover = max_cover.max(c);
            examined += 1;
            u += stride;
        }
    }
    DoublingEstimate { max_cover, dimension: (max_cover as f64).log2(), balls_examined: examined }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn path_has_dimension_about_one() {
        let m = MetricSpace::new(&gen::path(64));
        let est = estimate(&m, None);
        // A path needs at most 3 half-balls to cover any ball.
        assert!(est.max_cover <= 4, "path cover too large: {}", est.max_cover);
        assert!(est.dimension <= 2.0);
    }

    #[test]
    fn grid_has_dimension_about_two() {
        let m = MetricSpace::new(&gen::grid(12, 12));
        let est = estimate(&m, Some(24));
        assert!(est.max_cover >= 3, "grid should need several half-balls");
        assert!(est.max_cover <= 40, "grid doubling constant too large: {}", est.max_cover);
    }

    #[test]
    fn star_dimension_grows_with_legs() {
        // A spider with many legs has larger doubling constant near the hub
        // than a path does anywhere.
        let m_path = MetricSpace::new(&gen::path(40));
        let m_spider = MetricSpace::new(&gen::spider(13, 3));
        let e_path = estimate(&m_path, None);
        let e_spider = estimate(&m_spider, None);
        assert!(
            e_spider.max_cover > e_path.max_cover,
            "spider {} vs path {}",
            e_spider.max_cover,
            e_path.max_cover
        );
    }

    #[test]
    fn half_cover_of_tiny_ball_is_one() {
        let m = MetricSpace::new(&gen::grid(4, 4));
        assert_eq!(greedy_half_cover(&m, 0, 0), 1);
    }

    #[test]
    fn sampling_reduces_examined_count() {
        let m = MetricSpace::new(&gen::grid(10, 10));
        let full = estimate(&m, None);
        let sampled = estimate(&m, Some(10));
        assert!(sampled.balls_examined < full.balls_examined);
        assert!(sampled.max_cover <= full.max_cover);
    }

    #[test]
    fn greedy_never_beats_exact_and_stays_close() {
        let m = MetricSpace::new(&gen::grid(5, 4));
        for u in 0..20u32 {
            for r in [1u64, 2, 3] {
                if m.ball_size(u, r) > 20 {
                    continue;
                }
                let exact = exact_half_cover(&m, u, r);
                let greedy = greedy_half_cover(&m, u, r);
                assert!(greedy >= exact, "greedy {greedy} below exact {exact}");
                // Farthest-first greedy centers form a half-radius packing,
                // so greedy ≤ the packing number; on these inputs it stays
                // packing-vs-covering gap (2^{O(α)}, not a small constant).
                assert!(
                    greedy <= 8 * exact,
                    "greedy {greedy} too far above exact {exact} at u={u}, r={r}"
                );
            }
        }
    }

    #[test]
    fn exact_cover_trivial_cases() {
        let m = MetricSpace::new(&gen::path(8));
        // Radius 0: the ball is {u}, covered by itself.
        assert_eq!(exact_half_cover(&m, 3, 0), 1);
        // A radius-2 path ball is covered by the center's radius-1 ball
        // plus the two endpoints... exactly 1 if half=1 covers all 5? No:
        // B_3(2) = {1..5}, half = 1 → need ≥ 2; exact finds the optimum.
        let e = exact_half_cover(&m, 3, 2);
        assert!((2..=3).contains(&e), "exact path cover {e}");
    }
}
