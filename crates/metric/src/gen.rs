//! Reproducible generators for the graph families used throughout the
//! benchmark harness.
//!
//! The families deliberately span the regimes the paper distinguishes:
//!
//! * **growth-bounded** (2-D grids, rings) — the easy subclass;
//! * **doubling but not growth-bounded** (grids with holes, spiders,
//!   weighted trees) — where the paper's schemes earn their keep;
//! * **super-polynomial normalized diameter Δ** (exponential-weight paths)
//!   — where non-scale-free schemes blow up and Theorems 1.1/1.2 win.
//!
//! All randomized generators take an explicit seed and use `StdRng`, so
//! every experiment in EXPERIMENTS.md is reproducible bit-for-bit.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::graph::{Dist, Graph, GraphBuilder, NodeId};

/// A `w × h` unit-weight grid (growth-bounded, doubling dimension ≈ 2).
///
/// Node `(x, y)` has id `y·w + x`.
///
/// # Panics
///
/// Panics if `w == 0 || h == 0`.
pub fn grid(w: usize, h: usize) -> Graph {
    assert!(w > 0 && h > 0, "grid dimensions must be positive");
    let mut b = GraphBuilder::new(w * h);
    for y in 0..h {
        for x in 0..w {
            let id = (y * w + x) as NodeId;
            if x + 1 < w {
                b.edge(id, id + 1, 1).expect("valid grid edge");
            }
            if y + 1 < h {
                b.edge(id, id + w as NodeId, 1).expect("valid grid edge");
            }
        }
    }
    b.build().expect("grid is connected")
}

/// A `w × h` grid with a deterministic pattern of rectangular holes removed.
///
/// The result is still doubling (a subgraph of the grid metric's host space)
/// but no longer growth-bounded: ball sizes can stagnate across scales. Node
/// ids are re-compacted; the largest connected component is returned.
pub fn grid_with_holes(w: usize, h: usize, seed: u64) -> Graph {
    assert!(w >= 4 && h >= 4, "grid_with_holes needs at least a 4x4 grid");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut removed = vec![false; w * h];
    // Carve a few rectangular holes covering ~25% of the area.
    let target = w * h / 4;
    let mut removed_count = 0;
    let mut attempts = 0;
    while removed_count < target && attempts < 200 {
        attempts += 1;
        let hw = rng.gen_range(1..=(w / 3).max(1));
        let hh = rng.gen_range(1..=(h / 3).max(1));
        let x0 = rng.gen_range(0..w.saturating_sub(hw).max(1));
        let y0 = rng.gen_range(0..h.saturating_sub(hh).max(1));
        for y in y0..(y0 + hh).min(h) {
            for x in x0..(x0 + hw).min(w) {
                let idx = y * w + x;
                if !removed[idx] {
                    removed[idx] = true;
                    removed_count += 1;
                }
            }
        }
    }
    largest_component_subgrid(w, h, &removed)
}

/// Builds the largest connected component of the grid minus removed cells.
fn largest_component_subgrid(w: usize, h: usize, removed: &[bool]) -> Graph {
    let n = w * h;
    // Union-find over surviving cells.
    let mut comp = vec![usize::MAX; n];
    let mut comps: Vec<Vec<usize>> = Vec::new();
    for start in 0..n {
        if removed[start] || comp[start] != usize::MAX {
            continue;
        }
        let id = comps.len();
        let mut members = Vec::new();
        let mut stack = vec![start];
        comp[start] = id;
        while let Some(c) = stack.pop() {
            members.push(c);
            let (x, y) = (c % w, c / w);
            let push = |nx: usize, ny: usize, stack: &mut Vec<usize>, comp: &mut Vec<usize>| {
                let nc = ny * w + nx;
                if !removed[nc] && comp[nc] == usize::MAX {
                    comp[nc] = id;
                    stack.push(nc);
                }
            };
            if x > 0 {
                push(x - 1, y, &mut stack, &mut comp);
            }
            if x + 1 < w {
                push(x + 1, y, &mut stack, &mut comp);
            }
            if y > 0 {
                push(x, y - 1, &mut stack, &mut comp);
            }
            if y + 1 < h {
                push(x, y + 1, &mut stack, &mut comp);
            }
        }
        comps.push(members);
    }
    let biggest = comps.iter().max_by_key(|c| c.len()).expect("nonempty grid");
    let mut new_id = vec![NodeId::MAX; n];
    let mut sorted = biggest.clone();
    sorted.sort_unstable();
    for (i, &c) in sorted.iter().enumerate() {
        new_id[c] = i as NodeId;
    }
    let mut b = GraphBuilder::new(sorted.len());
    for &c in &sorted {
        let (x, y) = (c % w, c / w);
        if x + 1 < w && new_id[c + 1] != NodeId::MAX {
            b.edge(new_id[c], new_id[c + 1], 1).expect("valid edge");
        }
        if y + 1 < h && new_id[c + w] != NodeId::MAX {
            b.edge(new_id[c], new_id[c + w], 1).expect("valid edge");
        }
    }
    b.build().expect("largest component is connected")
}

/// A random geometric graph: `n` points in a `1000 × 1000` square, an edge
/// between points within `radius`, weight = Euclidean distance rounded up
/// (at least 1). Components are stitched together by their closest point
/// pairs so the result is always connected.
pub fn random_geometric(n: usize, radius: u64, seed: u64) -> Graph {
    assert!(n > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let pts: Vec<(i64, i64)> =
        (0..n).map(|_| (rng.gen_range(0..1000), rng.gen_range(0..1000))).collect();
    let w = |a: (i64, i64), bpt: (i64, i64)| -> Dist {
        let dx = (a.0 - bpt.0) as f64;
        let dy = (a.1 - bpt.1) as f64;
        ((dx * dx + dy * dy).sqrt().ceil() as u64).max(1)
    };
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let d = w(pts[i], pts[j]);
            if d <= radius {
                b.edge(i as NodeId, j as NodeId, d).expect("valid edge");
            }
        }
    }
    // Stitch components: repeatedly connect the globally closest cross-
    // component pair until connected.
    loop {
        let comps = components_of(&b, n);
        if comps.len() <= 1 {
            break;
        }
        let mut best: Option<(Dist, usize, usize)> = None;
        let first = &comps[0];
        for other in &comps[1..] {
            for &i in first {
                for &j in other.iter() {
                    let d = w(pts[i], pts[j]);
                    if best.is_none_or(|(bd, _, _)| d < bd) {
                        best = Some((d, i, j));
                    }
                }
            }
        }
        let (d, i, j) = best.expect("nonempty components");
        b.edge(i as NodeId, j as NodeId, d.max(1)).expect("valid edge");
    }
    b.build().expect("stitched graph is connected")
}

/// Connected components of a builder's current edge set (helper for
/// [`random_geometric`]).
fn components_of(b: &GraphBuilder, n: usize) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); n];
    for &(u, v, _) in &b_edges(b) {
        adj[u as usize].push(v as usize);
        adj[v as usize].push(u as usize);
    }
    let mut comp = vec![usize::MAX; n];
    let mut out: Vec<Vec<usize>> = Vec::new();
    for s in 0..n {
        if comp[s] != usize::MAX {
            continue;
        }
        let id = out.len();
        let mut members = vec![];
        let mut stack = vec![s];
        comp[s] = id;
        while let Some(u) = stack.pop() {
            members.push(u);
            for &v in &adj[u] {
                if comp[v] == usize::MAX {
                    comp[v] = id;
                    stack.push(v);
                }
            }
        }
        out.push(members);
    }
    out
}

// GraphBuilder doesn't expose its edges publicly; this small accessor keeps
// the builder API minimal while letting the generator stitch components.
fn b_edges(b: &GraphBuilder) -> Vec<(NodeId, NodeId, Dist)> {
    b.edges_snapshot()
}

/// A complete `arity`-ary tree of the given depth, unit weights.
///
/// Doubling dimension grows with `arity`; for small arity these are the
/// canonical "tree metric" inputs, directly relevant to the lower-bound
/// construction (which is also a tree).
pub fn balanced_tree(arity: usize, depth: usize) -> Graph {
    assert!(arity >= 1);
    let mut nodes = 1usize;
    let mut level = 1usize;
    for _ in 0..depth {
        level *= arity;
        nodes += level;
    }
    let mut b = GraphBuilder::new(nodes);
    // BFS numbering: children of k are k*arity+1 ..= k*arity+arity.
    for k in 0..nodes {
        for c in 1..=arity {
            let child = k * arity + c;
            if child < nodes {
                b.edge(k as NodeId, child as NodeId, 1).expect("valid edge");
            }
        }
    }
    b.build().expect("tree is connected")
}

/// A path on `n` nodes with exponentially growing weights `1, 2, 4, …`
/// (capped at `2^40`): normalized diameter Δ exponential in `n`, the regime
/// where scale-free schemes (Theorems 1.1/1.2) beat the `log Δ` schemes.
pub fn exp_weight_path(n: usize) -> Graph {
    assert!(n >= 2);
    let mut b = GraphBuilder::new(n);
    for i in 0..n - 1 {
        let w = 1u64 << (i as u32).min(40);
        b.edge(i as NodeId, i as NodeId + 1, w).expect("valid edge");
    }
    b.build().expect("path is connected")
}

/// A uniformly-weighted path on `n` nodes.
pub fn path(n: usize) -> Graph {
    assert!(n >= 1);
    let mut b = GraphBuilder::new(n);
    for i in 0..n.saturating_sub(1) {
        b.edge(i as NodeId, i as NodeId + 1, 1).expect("valid edge");
    }
    b.build().expect("path is connected")
}

/// A ring (cycle) on `n ≥ 3` nodes, unit weights.
pub fn ring(n: usize) -> Graph {
    assert!(n >= 3);
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.edge(i as NodeId, ((i + 1) % n) as NodeId, 1).expect("valid edge");
    }
    b.build().expect("ring is connected")
}

/// A spider: `legs` paths of length `leg_len` joined at a hub (node 0),
/// unit weights. Doubling dimension grows with `log legs` near the hub —
/// a stress test for ball packings.
pub fn spider(legs: usize, leg_len: usize) -> Graph {
    assert!(legs >= 1 && leg_len >= 1);
    let n = 1 + legs * leg_len;
    let mut b = GraphBuilder::new(n);
    for l in 0..legs {
        let base = (1 + l * leg_len) as NodeId;
        b.edge(0, base, 1).expect("valid edge");
        for k in 0..leg_len - 1 {
            b.edge(base + k as NodeId, base + k as NodeId + 1, 1).expect("valid edge");
        }
    }
    b.build().expect("spider is connected")
}

/// A random spanning tree on `n` nodes with weights drawn uniformly from
/// `1..=max_w` (random-walk / random-attachment construction).
pub fn random_weighted_tree(n: usize, max_w: u64, seed: u64) -> Graph {
    assert!(n >= 1 && max_w >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    order.shuffle(&mut rng);
    for i in 1..n {
        let parent = order[rng.gen_range(0..i)];
        let w = rng.gen_range(1..=max_w);
        b.edge(order[i], parent, w).expect("valid edge");
    }
    b.build().expect("tree is connected")
}

/// A Sierpinski-triangle graph of the given depth: the canonical fractal
/// metric with doubling dimension `log₂ 3 ≈ 1.585`, unit weights. Depth 0
/// is a single triangle; each level replaces every triangle by three.
pub fn sierpinski(depth: usize) -> Graph {
    // Represent vertices by coordinates on a triangular lattice of side
    // 2^depth; corner-subdivision generates the vertex set.
    use std::collections::HashMap;
    let side = 1usize << depth.min(12);
    // Recursively collect triangles (top-down): a triangle is (x, y, s)
    // with apex at lattice position (x, y) and side s.
    let mut stack = vec![(0usize, 0usize, side)];
    let mut edges: Vec<((usize, usize), (usize, usize))> = Vec::new();
    while let Some((x, y, s)) = stack.pop() {
        if s == 1 {
            // Unit triangle: three corners a=(x,y), b=(x+1,y), c=(x,y+1).
            let a = (x, y);
            let b = (x + 1, y);
            let c = (x, y + 1);
            edges.push((a, b));
            edges.push((a, c));
            edges.push((b, c));
        } else {
            let h = s / 2;
            stack.push((x, y, h));
            stack.push((x + h, y, h));
            stack.push((x, y + h, h));
        }
    }
    let mut id_of: HashMap<(usize, usize), NodeId> = HashMap::new();
    let mut coords: Vec<(usize, usize)> = edges.iter().flat_map(|&(a, b)| [a, b]).collect();
    coords.sort_unstable();
    coords.dedup();
    for (i, &c) in coords.iter().enumerate() {
        id_of.insert(c, i as NodeId);
    }
    let mut b = GraphBuilder::new(coords.len());
    for (p, q) in edges {
        b.edge(id_of[&p], id_of[&q], 1).expect("valid edge");
    }
    b.build().expect("sierpinski graph is connected")
}

/// A `d`-dimensional hypercube with unit weights: doubling dimension
/// `Θ(d)` — the *contrast* family on which polylog-storage constant-stretch
/// routing is **not** promised by the paper (its guarantees assume
/// `α = O(log log n)`). Used to show where the assumptions bind.
pub fn hypercube(d: usize) -> Graph {
    assert!((1..=16).contains(&d));
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for bit in 0..d {
            let v = u ^ (1 << bit);
            if u < v {
                b.edge(u as NodeId, v as NodeId, 1).expect("valid edge");
            }
        }
    }
    b.build().expect("hypercube is connected")
}

/// A clustered geometric graph: `clusters` dense blobs far apart, linked
/// by long inter-cluster edges. Doubling but emphatically not
/// growth-bounded — ball populations plateau between cluster scales
/// (exactly the regime the ball packings `ℬ_j` exist for).
pub fn clustered_geometric(clusters: usize, per_cluster: usize, seed: u64) -> Graph {
    assert!(clusters >= 1 && per_cluster >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = clusters * per_cluster;
    let mut pts: Vec<(i64, i64)> = Vec::with_capacity(n);
    for c in 0..clusters {
        // Cluster centers on a coarse grid, spread 40_000 apart.
        let cx = (c % 4) as i64 * 40_000;
        let cy = (c / 4) as i64 * 40_000;
        for _ in 0..per_cluster {
            pts.push((cx + rng.gen_range(0..400), cy + rng.gen_range(0..400)));
        }
    }
    let w = |a: (i64, i64), b: (i64, i64)| -> Dist {
        let dx = (a.0 - b.0) as f64;
        let dy = (a.1 - b.1) as f64;
        ((dx * dx + dy * dy).sqrt().ceil() as u64).max(1)
    };
    let mut b = GraphBuilder::new(n);
    // Dense intra-cluster edges.
    for c in 0..clusters {
        let base = c * per_cluster;
        for i in base..base + per_cluster {
            for j in (i + 1)..base + per_cluster {
                if w(pts[i], pts[j]) <= 220 {
                    b.edge(i as NodeId, j as NodeId, w(pts[i], pts[j])).expect("edge");
                }
            }
        }
    }
    // Chain clusters via their first points.
    for c in 1..clusters {
        let i = (c - 1) * per_cluster;
        let j = c * per_cluster;
        b.edge(i as NodeId, j as NodeId, w(pts[i], pts[j])).expect("edge");
    }
    // Stitch any stragglers inside clusters.
    loop {
        let comps = components_of(&b, n);
        if comps.len() <= 1 {
            break;
        }
        let first = &comps[0];
        let mut best: Option<(Dist, usize, usize)> = None;
        for other in &comps[1..] {
            for &i in first {
                for &j in other.iter() {
                    let d = w(pts[i], pts[j]);
                    if best.is_none_or(|(bd, _, _)| d < bd) {
                        best = Some((d, i, j));
                    }
                }
            }
        }
        let (d, i, j) = best.expect("nonempty");
        b.edge(i as NodeId, j as NodeId, d).expect("edge");
    }
    b.build().expect("clustered graph is connected")
}

/// A caterpillar: a spine path with `legs_per_node` leaves on each spine
/// node — a tree whose interval-routing tables blow up at the spine while
/// compact tree routing stays constant.
pub fn caterpillar(spine: usize, legs_per_node: usize) -> Graph {
    assert!(spine >= 1);
    let n = spine + spine * legs_per_node;
    let mut b = GraphBuilder::new(n);
    for i in 0..spine.saturating_sub(1) {
        b.edge(i as NodeId, i as NodeId + 1, 1).expect("edge");
    }
    for i in 0..spine {
        for l in 0..legs_per_node {
            let leaf = spine + i * legs_per_node + l;
            b.edge(i as NodeId, leaf as NodeId, 1).expect("edge");
        }
    }
    b.build().expect("caterpillar is connected")
}

/// Enumerated graph family used by the benchmark harness to sweep inputs.
///
/// # Examples
///
/// ```rust
/// use doubling_metric::gen::Family;
///
/// for f in Family::all() {
///     let g = f.build(40, 7);
///     assert!(g.is_connected());
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Unit-weight square grid.
    Grid,
    /// Grid with carved holes (doubling, not growth-bounded).
    GridHoles,
    /// Random geometric graph in the unit square.
    Geometric,
    /// Random weighted spanning tree.
    Tree,
    /// Path with exponentially growing weights (huge Δ).
    ExpPath,
    /// Spider with many legs.
    Spider,
    /// Sierpinski-triangle fractal (dimension ≈ 1.585).
    Sierpinski,
    /// Clustered geometric graph (doubling, sharply non-growth-bounded).
    Clustered,
    /// Caterpillar tree (high-degree spine).
    Caterpillar,
}

impl Family {
    /// The core families the paper-table experiments sweep, in canonical
    /// order.
    pub fn all() -> &'static [Family] {
        &[
            Family::Grid,
            Family::GridHoles,
            Family::Geometric,
            Family::Tree,
            Family::ExpPath,
            Family::Spider,
        ]
    }

    /// All families including the extended set (fractal, clustered,
    /// caterpillar) used by the wider integration tests.
    pub fn extended() -> &'static [Family] {
        &[
            Family::Grid,
            Family::GridHoles,
            Family::Geometric,
            Family::Tree,
            Family::ExpPath,
            Family::Spider,
            Family::Sierpinski,
            Family::Clustered,
            Family::Caterpillar,
        ]
    }

    /// Short display name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            Family::Grid => "grid",
            Family::GridHoles => "grid-holes",
            Family::Geometric => "geometric",
            Family::Tree => "tree",
            Family::ExpPath => "exp-path",
            Family::Spider => "spider",
            Family::Sierpinski => "sierpinski",
            Family::Clustered => "clustered",
            Family::Caterpillar => "caterpillar",
        }
    }

    /// Instantiates the family with approximately `n` nodes.
    pub fn build(&self, n: usize, seed: u64) -> Graph {
        match self {
            Family::Grid => {
                let side = (n as f64).sqrt().round().max(2.0) as usize;
                grid(side, side)
            }
            Family::GridHoles => {
                let side = ((n as f64) / 0.75).sqrt().round().max(4.0) as usize;
                grid_with_holes(side.max(4), side.max(4), seed)
            }
            Family::Geometric => {
                // Radius chosen so the graph is sparse but (almost surely)
                // connectable by stitching.
                let r = (1400.0 / (n as f64).sqrt()).ceil() as u64 + 40;
                random_geometric(n, r, seed)
            }
            Family::Tree => random_weighted_tree(n, 8, seed),
            Family::ExpPath => exp_weight_path(n.max(2)),
            Family::Spider => {
                let legs = (n as f64).sqrt().round().max(1.0) as usize;
                let leg_len = ((n - 1) / legs).max(1);
                spider(legs, leg_len)
            }
            Family::Sierpinski => {
                // Nodes ≈ 3^{d+1}/2: pick the depth closest to n.
                let mut depth = 1;
                while 3usize.pow(depth as u32 + 1) / 2 < n && depth < 8 {
                    depth += 1;
                }
                sierpinski(depth)
            }
            Family::Clustered => {
                let clusters = 4.max(n / 24).min(8);
                clustered_geometric(clusters, (n / clusters).max(2), seed)
            }
            Family::Caterpillar => {
                let spine_len = (n / 5).max(2);
                caterpillar(spine_len, 4)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::MetricSpace;

    #[test]
    fn grid_shape() {
        let g = grid(4, 3);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 4 * 2 + 3 * 3); // 8 vertical + 9 horizontal
        assert!(g.is_connected());
    }

    #[test]
    fn grid_distances_are_manhattan() {
        let g = grid(5, 4);
        let m = MetricSpace::new(&g);
        for y1 in 0..4u32 {
            for x1 in 0..5u32 {
                for y2 in 0..4u32 {
                    for x2 in 0..5u32 {
                        let a = y1 * 5 + x1;
                        let b = y2 * 5 + x2;
                        let manhattan = (x1.abs_diff(x2) + y1.abs_diff(y2)) as u64;
                        assert_eq!(m.dist(a, b), manhattan);
                    }
                }
            }
        }
    }

    #[test]
    fn grid_with_holes_connected_and_smaller() {
        let g = grid_with_holes(12, 12, 42);
        assert!(g.is_connected());
        assert!(g.node_count() <= 144);
        assert!(g.node_count() >= 50, "hole carving removed too much");
    }

    #[test]
    fn random_geometric_connected_and_reproducible() {
        let g1 = random_geometric(50, 200, 9);
        let g2 = random_geometric(50, 200, 9);
        assert!(g1.is_connected());
        assert_eq!(g1.edge_count(), g2.edge_count());
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2, "same seed must give the same graph");
    }

    #[test]
    fn balanced_tree_sizes() {
        let g = balanced_tree(2, 3);
        assert_eq!(g.node_count(), 15);
        assert_eq!(g.edge_count(), 14);
        let g3 = balanced_tree(3, 2);
        assert_eq!(g3.node_count(), 13);
    }

    #[test]
    fn exp_weight_path_diameter() {
        let g = exp_weight_path(10);
        let m = MetricSpace::new(&g);
        // Diameter = 1+2+...+2^8 = 2^9 - 1.
        assert_eq!(m.diameter(), (1 << 9) - 1);
        assert_eq!(m.min_dist(), 1);
    }

    #[test]
    fn ring_and_path() {
        assert_eq!(ring(5).edge_count(), 5);
        assert_eq!(path(5).edge_count(), 4);
        assert_eq!(path(1).node_count(), 1);
    }

    #[test]
    fn spider_shape() {
        let g = spider(4, 3);
        assert_eq!(g.node_count(), 13);
        assert_eq!(g.degree(0), 4);
    }

    #[test]
    fn random_weighted_tree_is_tree() {
        let g = random_weighted_tree(30, 5, 11);
        assert_eq!(g.edge_count(), 29);
        assert!(g.is_connected());
    }

    #[test]
    fn families_build_and_connect() {
        for f in Family::all() {
            let g = f.build(64, 5);
            assert!(g.is_connected(), "family {} disconnected", f.name());
            assert!(g.node_count() >= 16, "family {} too small", f.name());
        }
    }

    #[test]
    fn extended_families_build_and_connect() {
        for f in Family::extended() {
            let g = f.build(48, 5);
            assert!(g.is_connected(), "family {} disconnected", f.name());
            assert!(g.node_count() >= 12, "family {} too small", f.name());
        }
        assert!(Family::extended().len() > Family::all().len());
    }

    #[test]
    fn sierpinski_shape() {
        // Depth d: 3·(3^d + 1)/2 vertices.
        assert_eq!(sierpinski(0).node_count(), 3);
        assert_eq!(sierpinski(1).node_count(), 6);
        assert_eq!(sierpinski(2).node_count(), 15);
        assert_eq!(sierpinski(3).node_count(), 42);
        let g = sierpinski(3);
        assert!(g.is_connected());
        // 3^{d+1} edges.
        assert_eq!(g.edge_count(), 81);
    }

    #[test]
    fn sierpinski_is_low_doubling() {
        let g = sierpinski(3);
        let m = MetricSpace::new(&g);
        let est = crate::doubling::estimate(&m, Some(14));
        // Dimension ≈ log2(3) ≈ 1.58; the greedy estimator stays small.
        assert!(est.dimension <= 4.0, "sierpinski dimension estimate {}", est.dimension);
    }

    #[test]
    fn hypercube_shape_and_high_dimension() {
        let g = hypercube(6);
        assert_eq!(g.node_count(), 64);
        assert_eq!(g.edge_count(), 64 * 6 / 2);
        let m = MetricSpace::new(&g);
        let est = crate::doubling::estimate(&m, Some(16));
        let grid_est = crate::doubling::estimate(&MetricSpace::new(&grid(8, 8)), Some(16));
        assert!(
            est.max_cover > grid_est.max_cover,
            "hypercube ({}) should dominate the grid ({})",
            est.max_cover,
            grid_est.max_cover
        );
    }

    #[test]
    fn clustered_geometric_plateaus() {
        let g = clustered_geometric(4, 12, 3);
        assert_eq!(g.node_count(), 48);
        assert!(g.is_connected());
        let m = MetricSpace::new(&g);
        // Ball populations plateau: growing the radius within the gap
        // between cluster scale (~500) and separation (~40000) adds no
        // nodes — the non-growth-bounded signature.
        let at_600 = m.ball_size(0, 600);
        let at_20000 = m.ball_size(0, 20_000);
        assert_eq!(at_600, at_20000, "population must plateau across the gap");
        assert!(m.ball_size(0, 60_000) > at_20000);
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(5, 3);
        assert_eq!(g.node_count(), 20);
        assert_eq!(g.edge_count(), 19);
        assert_eq!(g.degree(2), 5); // spine interior: 2 spine + 3 legs
    }
}
