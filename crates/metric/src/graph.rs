//! Weighted undirected graphs with exact `u64` edge weights.
//!
//! The graph is the only input to every routing scheme in this workspace.
//! Nodes are dense indices `0..n`; edges carry positive integer weights.
//! The paper normalizes the minimum edge weight to 1; we do not rescale but
//! expose [`Graph::min_weight`] so the metric layer can normalize scales.

use std::fmt;

/// Dense node identifier (`0..n`).
pub type NodeId = u32;

/// Exact integer distance. Edge weights are at least 1, so all shortest-path
/// distances between distinct nodes are at least the minimum edge weight.
pub type Dist = u64;

/// Sentinel for "unreachable" in shortest-path computations.
pub const INFINITY: Dist = Dist::MAX;

/// Errors produced when constructing or validating a [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge referenced a node index `>= n`.
    NodeOutOfRange {
        /// The out-of-range index.
        node: NodeId,
        /// The graph's node count.
        n: usize,
    },
    /// An edge had weight zero (the metric requires positive weights).
    ZeroWeight {
        /// One endpoint of the offending edge.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
    /// A self-loop was added.
    SelfLoop {
        /// The node with the self-loop.
        u: NodeId,
    },
    /// The graph is not connected (routing schemes require connectivity).
    Disconnected,
    /// The graph has no nodes.
    Empty,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph with {n} nodes")
            }
            GraphError::ZeroWeight { u, v } => {
                write!(f, "edge ({u}, {v}) has zero weight; weights must be positive")
            }
            GraphError::SelfLoop { u } => write!(f, "self-loop at node {u}"),
            GraphError::Disconnected => write!(f, "graph is not connected"),
            GraphError::Empty => write!(f, "graph has no nodes"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A half-edge in the adjacency list: the neighbour and the edge weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Neighbor {
    /// The node at the other end of the edge.
    pub node: NodeId,
    /// The (positive) edge weight.
    pub weight: Dist,
}

/// A connected, edge-weighted, undirected graph.
///
/// Construct with [`GraphBuilder`]; the builder validates weights, node
/// ranges and (on [`GraphBuilder::build`]) connectivity.
///
/// ```rust
/// use doubling_metric::graph::GraphBuilder;
///
/// # fn main() -> Result<(), doubling_metric::graph::GraphError> {
/// let mut b = GraphBuilder::new(3);
/// b.edge(0, 1, 2)?;
/// b.edge(1, 2, 3)?;
/// let g = b.build()?;
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(g.min_weight(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<Vec<Neighbor>>,
    edge_count: usize,
    min_weight: Dist,
    max_weight: Dist,
}

impl Graph {
    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Neighbours of `u`, sorted by node id.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[Neighbor] {
        &self.adj[u as usize]
    }

    /// The smallest edge weight in the graph.
    #[inline]
    pub fn min_weight(&self) -> Dist {
        self.min_weight
    }

    /// The largest edge weight in the graph.
    #[inline]
    pub fn max_weight(&self) -> Dist {
        self.max_weight
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.node_count() as NodeId
    }

    /// Iterator over all undirected edges as `(u, v, w)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, Dist)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, ns)| {
            ns.iter().filter_map(move |nb| {
                if (u as NodeId) < nb.node {
                    Some((u as NodeId, nb.node, nb.weight))
                } else {
                    None
                }
            })
        })
    }

    /// The weight of edge `(u, v)` if present.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<Dist> {
        let ns = &self.adj[u as usize];
        ns.binary_search_by_key(&v, |nb| nb.node).ok().map(|i| ns[i].weight)
    }

    /// Whether `u` and `v` are adjacent.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_weight(u, v).is_some()
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.adj[u as usize].len()
    }

    /// Checks connectivity with a BFS from node 0.
    pub fn is_connected(&self) -> bool {
        if self.adj.is_empty() {
            return false;
        }
        let mut seen = vec![false; self.adj.len()];
        let mut stack = vec![0 as NodeId];
        seen[0] = true;
        let mut count = 1usize;
        while let Some(u) = stack.pop() {
            for nb in &self.adj[u as usize] {
                if !seen[nb.node as usize] {
                    seen[nb.node as usize] = true;
                    count += 1;
                    stack.push(nb.node);
                }
            }
        }
        count == self.adj.len()
    }
}

/// Incremental builder for [`Graph`].
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId, Dist)>,
}

impl GraphBuilder {
    /// Starts a builder for a graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        GraphBuilder { n, edges: Vec::new() }
    }

    /// Adds an undirected edge `(u, v)` with weight `w`.
    ///
    /// If the same edge is added twice, the smaller weight wins (the metric
    /// only ever uses the cheapest parallel edge).
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range endpoints, zero weights or
    /// self-loops.
    pub fn edge(&mut self, u: NodeId, v: NodeId, w: Dist) -> Result<&mut Self, GraphError> {
        if (u as usize) >= self.n {
            return Err(GraphError::NodeOutOfRange { node: u, n: self.n });
        }
        if (v as usize) >= self.n {
            return Err(GraphError::NodeOutOfRange { node: v, n: self.n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { u });
        }
        if w == 0 {
            return Err(GraphError::ZeroWeight { u, v });
        }
        self.edges.push((u.min(v), u.max(v), w));
        Ok(self)
    }

    /// A snapshot of the edges added so far, as `(min(u,v), max(u,v), w)`
    /// triples (parallel edges not yet deduplicated). Used by generators
    /// that need connectivity checks mid-construction.
    pub fn edges_snapshot(&self) -> Vec<(NodeId, NodeId, Dist)> {
        self.edges.clone()
    }

    /// Number of nodes this builder was created with.
    pub fn node_capacity(&self) -> usize {
        self.n
    }

    /// Finalizes the graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Empty`] for zero nodes and
    /// [`GraphError::Disconnected`] if the graph is not connected.
    pub fn build(self) -> Result<Graph, GraphError> {
        let g = self.build_any()?;
        if !g.is_connected() {
            return Err(GraphError::Disconnected);
        }
        Ok(g)
    }

    /// Finalizes the graph **without the connectivity requirement**.
    ///
    /// Routing schemes still demand connected inputs; this exists for the
    /// shortest-path oracles' disconnected-graph edge cases (unreachable
    /// pairs report `INFINITY` / `None`) and for fault-injection tooling
    /// that carves components out of a connected graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Empty`] for zero nodes.
    pub fn build_any(self) -> Result<Graph, GraphError> {
        if self.n == 0 {
            return Err(GraphError::Empty);
        }
        let mut edges = self.edges;
        // Deduplicate parallel edges, keeping the minimum weight.
        edges.sort_unstable();
        edges.dedup_by(|next, prev| {
            if next.0 == prev.0 && next.1 == prev.1 {
                prev.2 = prev.2.min(next.2);
                true
            } else {
                false
            }
        });

        let mut adj: Vec<Vec<Neighbor>> = vec![Vec::new(); self.n];
        let mut min_w = Dist::MAX;
        let mut max_w = 0;
        for &(u, v, w) in &edges {
            adj[u as usize].push(Neighbor { node: v, weight: w });
            adj[v as usize].push(Neighbor { node: u, weight: w });
            min_w = min_w.min(w);
            max_w = max_w.max(w);
        }
        for ns in &mut adj {
            ns.sort_unstable_by_key(|nb| nb.node);
        }
        if min_w == Dist::MAX {
            // No edges: only valid for the 1-node graph.
            min_w = 1;
            max_w = 1;
        }
        Ok(Graph { adj, edge_count: edges.len(), min_weight: min_w, max_weight: max_w })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.edge(0, 1, 1).unwrap();
        b.edge(1, 2, 2).unwrap();
        b.edge(0, 2, 5).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builds_triangle() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.min_weight(), 1);
        assert_eq!(g.max_weight(), 5);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.edge_weight(0, 2), Some(5));
        assert_eq!(g.edge_weight(2, 0), Some(5));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(1, 1));
    }

    #[test]
    fn rejects_zero_weight() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(b.edge(0, 1, 0).unwrap_err(), GraphError::ZeroWeight { u: 0, v: 1 });
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(b.edge(1, 1, 3).unwrap_err(), GraphError::SelfLoop { u: 1 });
    }

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        assert!(matches!(b.edge(0, 2, 1).unwrap_err(), GraphError::NodeOutOfRange { .. }));
    }

    #[test]
    fn rejects_disconnected() {
        let mut b = GraphBuilder::new(4);
        b.edge(0, 1, 1).unwrap();
        b.edge(2, 3, 1).unwrap();
        assert_eq!(b.build().unwrap_err(), GraphError::Disconnected);
    }

    #[test]
    fn build_any_accepts_disconnected_but_not_empty() {
        let mut b = GraphBuilder::new(4);
        b.edge(0, 1, 1).unwrap();
        b.edge(2, 3, 1).unwrap();
        let g = b.build_any().unwrap();
        assert!(!g.is_connected());
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(GraphBuilder::new(0).build_any().unwrap_err(), GraphError::Empty);
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(GraphBuilder::new(0).build().unwrap_err(), GraphError::Empty);
    }

    #[test]
    fn single_node_graph_is_connected() {
        let g = GraphBuilder::new(1).build().unwrap();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn parallel_edges_keep_minimum() {
        let mut b = GraphBuilder::new(2);
        b.edge(0, 1, 7).unwrap();
        b.edge(1, 0, 3).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(3));
    }

    #[test]
    fn edges_iterator_is_canonical() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1, 1), (0, 2, 5), (1, 2, 2)]);
    }

    #[test]
    fn neighbors_sorted() {
        let g = triangle();
        let ns: Vec<NodeId> = g.neighbors(1).iter().map(|nb| nb.node).collect();
        assert_eq!(ns, vec![0, 2]);
    }
}
