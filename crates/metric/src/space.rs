//! The shortest-path metric space of a graph, with exact ball queries.
//!
//! [`MetricSpace`] packages the all-pairs distance oracle together with the
//! per-node sorted distance rows that the paper's structures need:
//!
//! * **Balls** `B_u(r) = {x : d(u, x) ≤ r}` (Section 2);
//! * **Size-`2^j` radii** `r_u(j)`, the radius of the smallest ball around
//!   `u` containing `2^j` nodes (Section 2, used by the ball packings and by
//!   the ring index set `R(u)` in Section 4);
//! * **Scales** `s_i = min_dist · 2^i` for `i ∈ [⌈log Δ⌉]`, the exact integer
//!   analogue of the paper's `2^i` levels after normalizing the minimum
//!   distance to 1.
//!
//! Ties everywhere are broken by `(distance, least node id)`.

use std::sync::Arc;

use crate::build::{run_rows, BuildProfile};
use crate::ceil_log2;
use crate::graph::{Dist, Graph, NodeId};
use crate::shortest_paths::Apsp;

/// A finite metric space induced by a connected weighted graph.
///
/// The graph is held behind an [`Arc`], so cloning a `MetricSpace` (or
/// building one from a shared graph with [`MetricSpace::from_shared`])
/// never duplicates the adjacency lists, and an `Arc<MetricSpace>` can be
/// handed to every routing-scheme constructor without rebuilding the
/// `Θ(n²)` tables.
///
/// # Examples
///
/// ```rust
/// use doubling_metric::{gen, MetricSpace};
///
/// let m = MetricSpace::new(&gen::grid(4, 4));
/// assert_eq!(m.dist(0, 15), 6);             // Manhattan corner-to-corner
/// assert_eq!(m.ball(0, 1).len(), 3);        // self + two neighbours
/// assert_eq!(m.r_small(0, 2), 2);           // smallest radius holding 4 nodes
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSpace {
    graph: Arc<Graph>,
    apsp: Apsp,
    /// All `n` sorted rows in one contiguous allocation: row `u` occupies
    /// `sorted[u*n..(u+1)*n]` and holds every `(d(u, x), x)` sorted
    /// ascending (self first with d = 0).
    sorted: Vec<(Dist, NodeId)>,
    min_dist: Dist,
    diameter: Dist,
    num_scales: usize,
    log2_n: u32,
}

impl MetricSpace {
    /// Builds the metric (all-pairs Dijkstra plus sorted rows) on the
    /// calling thread.
    ///
    /// Runs in `O(n·m log n + n² log n)` time and `Θ(n²)` space. Clones
    /// the graph once into shared ownership; callers that can give up or
    /// share their graph should prefer [`MetricSpace::from_graph`] /
    /// [`MetricSpace::from_shared`], which skip the clone.
    pub fn new(g: &Graph) -> Self {
        Self::from_shared(Arc::new(g.clone()), 1)
    }

    /// Builds the metric, taking ownership of the graph (no clone).
    pub fn from_graph(g: Graph) -> Self {
        Self::from_shared(Arc::new(g), 1)
    }

    /// Builds the metric over an already-shared graph with up to
    /// `threads` worker threads; see [`MetricSpace::build_profiled`].
    pub fn from_shared(graph: Arc<Graph>, threads: usize) -> Self {
        Self::build_profiled(graph, threads).0
    }

    /// Builds the metric over a shared graph with up to `threads` worker
    /// threads, returning the per-phase/per-worker [`BuildProfile`].
    ///
    /// Both phases (all-pairs Dijkstra, sorted-row construction)
    /// parallelize over sources into disjoint row slices of flat arrays,
    /// so the result is **byte-identical** to the sequential build
    /// (`threads == 1`, which runs inline with no spawned threads).
    pub fn build_profiled(graph: Arc<Graph>, threads: usize) -> (Self, BuildProfile) {
        let n = graph.node_count();
        let (apsp, apsp_profile) = Apsp::new_profiled(&graph, threads);

        let mut sorted = vec![(0 as Dist, 0 as NodeId); n * n];
        let mut unused: Vec<()> = Vec::new();
        let apsp_ref = &apsp;
        let rows_profile =
            run_rows(n, n, threads, &mut sorted, &mut unused, |source, local, chunk, _| {
                let row = &mut chunk[local * n..(local + 1) * n];
                for (v, &d) in apsp_ref.row(source as NodeId).iter().enumerate() {
                    row[v] = (d, v as NodeId);
                }
                row.sort_unstable();
            });
        // Each row is sorted ascending, so its last entry is that source's
        // eccentricity; the diameter is the max over sources.
        let mut diameter: Dist = 0;
        for u in 0..n {
            diameter = diameter.max(sorted[(u + 1) * n - 1].0);
        }

        // The minimum pairwise distance equals the minimum edge weight.
        let min_dist = if n > 1 { graph.min_weight() } else { 1 };
        if diameter == 0 {
            diameter = min_dist; // single-node graph: one trivial scale
        }
        // Scales s_i = min_dist << i for i in 0..num_scales, with the top
        // scale at least the diameter (so the top net is a singleton).
        // With two or more nodes the hierarchy needs at least two levels:
        // Y_0 must be all of V while the top net is a singleton, which a
        // single shared level cannot satisfy when diameter == min_dist.
        let top = ceil_log2(diameter.div_ceil(min_dist)) as usize;
        let num_scales = if n > 1 { (top + 1).max(2) } else { 1 };
        let log2_n = ceil_log2(n as u64);
        let profile = BuildProfile { threads, apsp: apsp_profile, rows: rows_profile };
        (MetricSpace { graph, apsp, sorted, min_dist, diameter, num_scales, log2_n }, profile)
    }

    /// The underlying graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Shared handle to the underlying graph (cheap `Arc` clone).
    #[inline]
    pub fn graph_arc(&self) -> Arc<Graph> {
        Arc::clone(&self.graph)
    }

    /// The all-pairs shortest path tables.
    #[inline]
    pub fn apsp(&self) -> &Apsp {
        &self.apsp
    }

    /// Number of points.
    #[inline]
    pub fn n(&self) -> usize {
        self.graph.node_count()
    }

    /// `⌈log₂ n⌉`.
    #[inline]
    pub fn log2_n(&self) -> u32 {
        self.log2_n
    }

    /// Exact distance `d(u, v)`.
    #[inline]
    pub fn dist(&self, u: NodeId, v: NodeId) -> Dist {
        self.apsp.dist(u, v)
    }

    /// The minimum pairwise distance (equals the minimum edge weight).
    #[inline]
    pub fn min_dist(&self) -> Dist {
        self.min_dist
    }

    /// The diameter `max_{u,v} d(u, v)`.
    #[inline]
    pub fn diameter(&self) -> Dist {
        self.diameter
    }

    /// `⌈log₂ Δ⌉ + 1` where `Δ = diameter / min_dist` is the normalized
    /// diameter: the number of scales `s_0, …, s_L`.
    #[inline]
    pub fn num_scales(&self) -> usize {
        self.num_scales
    }

    /// The scale `s_i = min_dist · 2^i` — the exact analogue of the paper's
    /// level radius `2^i`.
    ///
    /// # Panics
    ///
    /// Panics if the shift overflows (`i` far beyond `num_scales` on graphs
    /// with huge diameters).
    #[inline]
    pub fn scale(&self, i: usize) -> Dist {
        self.min_dist.checked_shl(i as u32).expect("scale overflow")
    }

    /// Sorted row of `(d(u, x), x)` pairs, ascending by `(distance, id)`.
    #[inline]
    pub fn sorted_row(&self, u: NodeId) -> &[(Dist, NodeId)] {
        let n = self.n();
        &self.sorted[u as usize * n..(u as usize + 1) * n]
    }

    /// `r_u(j)`: the radius of the smallest ball around `u` containing
    /// `min(2^j, n)` nodes (the paper's `r_u(j)` with `|B_u(r_u(j))| = 2^j`,
    /// clamped at `n` for the top levels of non-power-of-two graphs).
    #[inline]
    pub fn r_small(&self, u: NodeId, j: u32) -> Dist {
        let size = (1usize << j.min(62)).min(self.n());
        self.sorted_row(u)[size - 1].0
    }

    /// The `min(2^j, n)` nodes nearest to `u` (by `(distance, id)`), i.e. the
    /// canonical size-`2^j` ball used by the packing construction.
    #[inline]
    pub fn nearest_set(&self, u: NodeId, j: u32) -> &[(Dist, NodeId)] {
        let size = (1usize << j.min(62)).min(self.n());
        &self.sorted_row(u)[..size]
    }

    /// All nodes within distance `r` of `u` (the ball `B_u(r)`), in
    /// `(distance, id)` order.
    pub fn ball(&self, u: NodeId, r: Dist) -> &[(Dist, NodeId)] {
        let row = self.sorted_row(u);
        let end = row.partition_point(|&(d, _)| d <= r);
        &row[..end]
    }

    /// `|B_u(r)|`.
    #[inline]
    pub fn ball_size(&self, u: NodeId, r: Dist) -> usize {
        self.ball(u, r).len()
    }

    /// The nearest member of `set` to `u`, breaking ties by least id.
    /// Returns `None` for an empty set.
    pub fn nearest_in(&self, u: NodeId, set: &[NodeId]) -> Option<NodeId> {
        set.iter().map(|&y| (self.dist(u, y), y)).min().map(|(_, y)| y)
    }

    /// The neighbour of `src` on the deterministic shortest path to `dst`.
    #[inline]
    pub fn next_hop(&self, src: NodeId, dst: NodeId) -> Option<NodeId> {
        self.apsp.next_hop(src, dst)
    }

    /// The full shortest path from `src` to `dst` (inclusive).
    #[inline]
    pub fn path(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        self.apsp.path(src, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn grid_metric_basics() {
        let g = gen::grid(4, 4);
        let m = MetricSpace::new(&g);
        assert_eq!(m.n(), 16);
        assert_eq!(m.min_dist(), 1);
        assert_eq!(m.diameter(), 6); // Manhattan distance corner to corner
                                     // scales: 1,2,4,8 → num_scales = 4 (ceil_log2(6)=3, +1)
        assert_eq!(m.num_scales(), 4);
        assert_eq!(m.scale(0), 1);
        assert_eq!(m.scale(3), 8);
        assert!(m.scale(m.num_scales() - 1) >= m.diameter());
    }

    #[test]
    fn sorted_rows_start_with_self() {
        let g = gen::grid(3, 3);
        let m = MetricSpace::new(&g);
        for u in 0..9 {
            assert_eq!(m.sorted_row(u)[0], (0, u));
        }
    }

    #[test]
    fn ball_contains_exactly_close_nodes() {
        let g = gen::grid(5, 5);
        let m = MetricSpace::new(&g);
        for u in 0..25u32 {
            for r in 0..8u64 {
                let ball: Vec<NodeId> = m.ball(u, r).iter().map(|&(_, x)| x).collect();
                for v in 0..25u32 {
                    assert_eq!(ball.contains(&v), m.dist(u, v) <= r);
                }
            }
        }
    }

    #[test]
    fn r_small_is_monotone_and_tight() {
        let g = gen::random_geometric(60, 220, 3);
        let m = MetricSpace::new(&g);
        for u in 0..m.n() as NodeId {
            let mut prev = 0;
            for j in 0..=m.log2_n() {
                let r = m.r_small(u, j);
                assert!(r >= prev, "r_u(j) must be nondecreasing in j");
                // The ball of radius r_u(j) has at least 2^j nodes.
                assert!(m.ball_size(u, r) >= (1usize << j).min(m.n()));
                // A strictly smaller radius has fewer than 2^j nodes.
                if r > 0 {
                    assert!(
                        m.ball_size(u, r - 1) < (1usize << j).min(m.n()) || {
                            // ties: r_small picks the 2^j-th sorted distance, so
                            // a smaller radius must cut below 2^j *in sorted
                            // (dist,id) order*; ball_size counts by distance only
                            // and may exceed due to equal distances.
                            m.sorted_row(u)[(1usize << j).min(m.n()) - 1].0 == r
                        }
                    );
                }
                prev = r;
            }
        }
    }

    #[test]
    fn nearest_set_sizes() {
        let g = gen::grid(4, 4);
        let m = MetricSpace::new(&g);
        assert_eq!(m.nearest_set(0, 0).len(), 1);
        assert_eq!(m.nearest_set(0, 2).len(), 4);
        assert_eq!(m.nearest_set(0, 4).len(), 16);
        assert_eq!(m.nearest_set(0, 10).len(), 16); // clamped at n
    }

    #[test]
    fn nearest_in_breaks_ties_by_id() {
        let g = gen::grid(3, 1); // path 0-1-2
        let m = MetricSpace::new(&g);
        // 0 and 2 are both at distance 1 from node 1 → pick least id 0.
        assert_eq!(m.nearest_in(1, &[0, 2]), Some(0));
        assert_eq!(m.nearest_in(1, &[2, 0]), Some(0));
        assert_eq!(m.nearest_in(1, &[]), None);
    }

    #[test]
    fn single_node_space() {
        let g = crate::graph::GraphBuilder::new(1).build().unwrap();
        let m = MetricSpace::new(&g);
        assert_eq!(m.n(), 1);
        assert_eq!(m.num_scales(), 1);
        assert_eq!(m.r_small(0, 0), 0);
    }

    #[test]
    fn parallel_build_is_bit_identical_for_threads_1_2_4() {
        for g in [gen::grid(6, 5), gen::random_geometric(48, 210, 9), gen::exp_weight_path(16)] {
            let shared = Arc::new(g);
            let sequential = MetricSpace::from_shared(Arc::clone(&shared), 1);
            for threads in [2usize, 4] {
                let (parallel, profile) = MetricSpace::build_profiled(Arc::clone(&shared), threads);
                assert_eq!(parallel, sequential, "threads = {threads}");
                assert_eq!(profile.threads, threads);
                assert_eq!(profile.rows.per_source_us.len(), shared.node_count());
            }
        }
    }

    #[test]
    fn from_graph_matches_new() {
        let g = gen::grid(4, 3);
        assert_eq!(MetricSpace::from_graph(g.clone()), MetricSpace::new(&g));
    }

    #[test]
    fn large_weight_scales() {
        // Path with exponentially growing weights: Δ is huge, num_scales
        // tracks log Δ.
        let g = gen::exp_weight_path(12);
        let m = MetricSpace::new(&g);
        assert!(m.num_scales() >= 11, "num_scales = {}", m.num_scales());
        assert!(m.scale(m.num_scales() - 1) >= m.diameter());
    }
}
