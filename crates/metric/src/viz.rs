//! Graphviz DOT export for graphs and hierarchies — visualization support
//! for debugging and documentation.
//!
//! The exports are plain strings; render with `dot -Tsvg` or any Graphviz
//! front end. Netting-tree exports draw one box per `(level, net point)`
//! pair, so the zooming sequences are visible as root-to-leaf paths.

use std::fmt::Write as _;

use crate::graph::Graph;
use crate::nets::NetHierarchy;

/// Renders the graph as an undirected Graphviz document. Edge labels are
/// the weights; unit weights are omitted to reduce clutter.
pub fn graph_to_dot(g: &Graph, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph {name} {{");
    let _ = writeln!(out, "  node [shape=circle fontsize=10];");
    for u in g.nodes() {
        let _ = writeln!(out, "  n{u};");
    }
    for (u, v, w) in g.edges() {
        if w == 1 {
            let _ = writeln!(out, "  n{u} -- n{v};");
        } else {
            let _ = writeln!(out, "  n{u} -- n{v} [label=\"{w}\"];");
        }
    }
    out.push_str("}\n");
    out
}

/// Renders the netting tree as a Graphviz document: one node per
/// `(level, net point)`, edges along netting-tree parents, leaf labels
/// annotated with the DFS label `l(u)`.
pub fn netting_tree_to_dot(h: &NetHierarchy, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  rankdir=BT; node [shape=box fontsize=10];");
    for i in 0..h.num_levels() {
        for &y in h.level(i) {
            if i == 0 {
                let _ = writeln!(out, "  l{i}_{y} [label=\"{y}@{i}\\nl={}\"];", h.label(y));
            } else {
                let _ = writeln!(out, "  l{i}_{y} [label=\"{y}@{i}\"];");
            }
        }
    }
    for i in 0..h.num_levels().saturating_sub(1) {
        for &y in h.level(i) {
            let p = h.net_parent(i, y);
            let _ = writeln!(out, "  l{i}_{y} -> l{}_{p};", i + 1);
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::space::MetricSpace;

    #[test]
    fn graph_dot_contains_all_edges() {
        let g = gen::grid(3, 2);
        let dot = graph_to_dot(&g, "g");
        assert!(dot.starts_with("graph g {"));
        assert!(dot.trim_end().ends_with('}'));
        // 7 edges, all unit weight → no labels.
        assert_eq!(dot.matches(" -- ").count(), g.edge_count());
        assert!(!dot.contains("label=\"1\""));
    }

    #[test]
    fn weighted_edges_get_labels() {
        let g = gen::exp_weight_path(4); // weights 1, 2, 4
        let dot = graph_to_dot(&g, "p");
        assert!(dot.contains("label=\"2\""));
        assert!(dot.contains("label=\"4\""));
    }

    #[test]
    fn netting_tree_dot_is_well_formed() {
        let m = MetricSpace::new(&gen::grid(3, 3));
        let h = NetHierarchy::new(&m);
        let dot = netting_tree_to_dot(&h, "nt");
        assert!(dot.starts_with("digraph nt {"));
        // Every level-0 node appears with its DFS label.
        for u in 0..9 {
            assert!(dot.contains(&format!("{u}@0")), "missing leaf {u}");
        }
        // One parent edge per (level < top, member).
        let expect_edges: usize = (0..h.num_levels() - 1).map(|i| h.level(i).len()).sum();
        assert_eq!(dot.matches(" -> ").count(), expect_edges);
    }
}
