//! Parallel deterministic preprocessing: source partitioning and build
//! profiles.
//!
//! Both expensive phases of [`crate::space::MetricSpace`] construction —
//! the all-pairs Dijkstra and the per-node sorted-row build — are
//! embarrassingly parallel over *sources*: source `u`'s output occupies a
//! disjoint row slice of one flat array, so workers never share mutable
//! state and the result is **byte-identical** to the sequential build
//! regardless of thread count. This module provides the shared
//! partitioning helper ([`chunk_ranges`]) plus the profile types
//! ([`BuildProfile`], [`PhaseProfile`], [`WorkerSpan`]) that the parallel
//! builders fill in so harnesses can report per-phase wall clock and
//! per-worker spans without this crate depending on the observability
//! layer.
//!
//! Worker spans are always emitted in worker-index order (worker `i`
//! covers the `i`-th contiguous source range), so merging them into any
//! downstream trace is deterministic even though the workers themselves
//! finish in arbitrary order.

use std::ops::Range;

use crate::graph::NodeId;

/// One worker's share of a parallel build phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerSpan {
    /// Worker index (also its rank in the deterministic merge order).
    pub worker: usize,
    /// First source node this worker processed.
    pub first_source: NodeId,
    /// Number of consecutive sources processed.
    pub source_count: u32,
    /// Wall-clock the worker spent on its whole range, microseconds.
    pub wall_us: u64,
}

/// Timing of one parallel phase (APSP or sorted-row construction).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Wall-clock of the whole phase (spawn to last join), microseconds.
    pub wall_us: u64,
    /// Per-worker spans, in worker-index order.
    pub workers: Vec<WorkerSpan>,
    /// Per-source wall-clock, microseconds, indexed by source node id
    /// (concatenation of the workers' ranges — deterministic order).
    pub per_source_us: Vec<u64>,
}

impl PhaseProfile {
    /// Number of threads that actually ran this phase.
    pub fn threads(&self) -> usize {
        self.workers.len().max(1)
    }
}

/// Full profile of one [`crate::space::MetricSpace`] build.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BuildProfile {
    /// Requested thread count (workers may be fewer on tiny graphs).
    pub threads: usize,
    /// The all-pairs Dijkstra phase.
    pub apsp: PhaseProfile,
    /// The sorted-row construction phase.
    pub rows: PhaseProfile,
}

impl BuildProfile {
    /// Total build wall-clock (sum of the two phases), microseconds.
    pub fn total_us(&self) -> u64 {
        self.apsp.wall_us + self.rows.wall_us
    }
}

/// Splits `0..n` into at most `threads` contiguous near-equal ranges
/// (never empty; fewer ranges than `threads` when `n < threads`).
///
/// The partition depends only on `(n, threads)`, so a parallel build's
/// worker layout — and with it the deterministic span merge order — is a
/// pure function of its inputs.
pub fn chunk_ranges(n: usize, threads: usize) -> Vec<Range<usize>> {
    let threads = threads.max(1).min(n.max(1));
    let base = n / threads;
    let extra = n % threads;
    let mut ranges = Vec::with_capacity(threads);
    let mut start = 0usize;
    for i in 0..threads {
        let len = base + usize::from(i < extra);
        if len == 0 {
            continue;
        }
        ranges.push(start..start + len);
        start += len;
    }
    if ranges.is_empty() {
        ranges.push(0..n);
    }
    ranges
}

/// Runs `job(source, worker_scratch)` for every source in `0..n`,
/// splitting the flat `n * row_len` output buffers into disjoint
/// per-worker row chunks.
///
/// `job` receives `(source, local_row_index, chunk_a, chunk_b)` where the
/// chunks are the worker's slices of `out_a` / `out_b`; it must write row
/// `local_row_index` of each chunk. Returns per-phase timing. With
/// `threads == 1` everything runs inline on the caller's thread (no spawn
/// overhead — exactly the historical sequential path).
pub(crate) fn run_rows<A: Send, B: Send>(
    n: usize,
    row_len: usize,
    threads: usize,
    out_a: &mut [A],
    out_b: &mut [B],
    job: impl Fn(usize, usize, &mut [A], &mut [B]) + Sync,
) -> PhaseProfile {
    assert_eq!(out_a.len(), n * row_len, "out_a must hold n rows");
    assert!(out_b.len() == n * row_len || out_b.is_empty(), "out_b must hold n rows or be empty");
    let t_phase = std::time::Instant::now();
    let ranges = chunk_ranges(n, threads);

    // Timing parts per worker: (wall_us, per_source_us).
    let mut parts: Vec<(u64, Vec<u64>)> = Vec::with_capacity(ranges.len());

    if ranges.len() == 1 {
        parts.push(run_worker(ranges[0].clone(), out_a, out_b, &job));
    } else {
        // Carve the flat buffers into disjoint per-worker chunks.
        let mut a_chunks: Vec<&mut [A]> = Vec::with_capacity(ranges.len());
        let mut b_chunks: Vec<&mut [B]> = Vec::with_capacity(ranges.len());
        let mut a_rest: &mut [A] = out_a;
        let mut b_rest: &mut [B] = out_b;
        for r in &ranges {
            let (a, rest_a) = a_rest.split_at_mut(r.len() * row_len);
            a_chunks.push(a);
            a_rest = rest_a;
            if !b_rest.is_empty() {
                let (b, rest_b) = b_rest.split_at_mut(r.len() * row_len);
                b_chunks.push(b);
                b_rest = rest_b;
            } else {
                b_chunks.push(&mut []);
            }
        }
        let job = &job;
        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(ranges.len());
            for ((r, a), b) in ranges.iter().zip(a_chunks).zip(b_chunks) {
                let r = r.clone();
                handles.push(s.spawn(move || run_worker(r, a, b, job)));
            }
            for h in handles {
                parts.push(h.join().expect("build worker panicked"));
            }
        });
    }

    let mut profile = PhaseProfile {
        wall_us: t_phase.elapsed().as_micros() as u64,
        workers: Vec::with_capacity(parts.len()),
        per_source_us: Vec::with_capacity(n),
    };
    for (i, (r, (wall_us, per_source))) in ranges.iter().zip(parts).enumerate() {
        profile.workers.push(WorkerSpan {
            worker: i,
            first_source: r.start as NodeId,
            source_count: r.len() as u32,
            wall_us,
        });
        profile.per_source_us.extend(per_source);
    }
    profile
}

/// One worker's loop over its contiguous source range.
fn run_worker<A, B>(
    range: Range<usize>,
    chunk_a: &mut [A],
    chunk_b: &mut [B],
    job: &impl Fn(usize, usize, &mut [A], &mut [B]),
) -> (u64, Vec<u64>) {
    let t_worker = std::time::Instant::now();
    let mut per_source = Vec::with_capacity(range.len());
    for (local, source) in range.enumerate() {
        let t0 = std::time::Instant::now();
        job(source, local, chunk_a, chunk_b);
        per_source.push(t0.elapsed().as_micros() as u64);
    }
    (t_worker.elapsed().as_micros() as u64, per_source)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_exactly() {
        for n in [0usize, 1, 2, 5, 7, 16, 100, 101] {
            for threads in [1usize, 2, 3, 4, 8, 200] {
                let ranges = chunk_ranges(n, threads);
                // Contiguous cover of 0..n, no empties (except the n=0 single range).
                let mut next = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, next, "n={n} threads={threads}");
                    assert!(r.end >= r.start);
                    next = r.end;
                }
                assert_eq!(next, n);
                assert!(ranges.len() <= threads.max(1));
                if n > 0 {
                    assert!(ranges.iter().all(|r| !r.is_empty()));
                    // Near-equal: sizes differ by at most one.
                    let min = ranges.iter().map(Range::len).min().unwrap();
                    let max = ranges.iter().map(Range::len).max().unwrap();
                    assert!(max - min <= 1, "n={n} threads={threads}: {ranges:?}");
                }
            }
        }
    }

    #[test]
    fn chunk_ranges_deterministic() {
        assert_eq!(chunk_ranges(10, 4), chunk_ranges(10, 4));
        assert_eq!(chunk_ranges(10, 4), vec![0..3, 3..6, 6..8, 8..10]);
    }

    #[test]
    fn run_rows_fills_disjoint_rows_in_parallel() {
        let n = 13;
        let row_len = 7;
        for threads in [1usize, 2, 4, 32] {
            let mut a = vec![0u64; n * row_len];
            let mut b = vec![0u32; n * row_len];
            let profile = run_rows(n, row_len, threads, &mut a, &mut b, |src, local, ca, cb| {
                for j in 0..row_len {
                    ca[local * row_len + j] = (src * row_len + j) as u64;
                    cb[local * row_len + j] = src as u32;
                }
            });
            assert_eq!(a, (0..(n * row_len) as u64).collect::<Vec<_>>());
            for (i, &v) in b.iter().enumerate() {
                assert_eq!(v as usize, i / row_len);
            }
            assert_eq!(profile.per_source_us.len(), n);
            assert_eq!(profile.workers.len(), threads.min(n).max(1));
            let covered: u32 = profile.workers.iter().map(|w| w.source_count).sum();
            assert_eq!(covered as usize, n);
        }
    }

    #[test]
    fn run_rows_supports_empty_second_buffer() {
        let n = 5;
        let mut a = vec![0u8; n * 3];
        let mut b: Vec<u8> = Vec::new();
        run_rows(n, 3, 2, &mut a, &mut b, |src, local, ca, _cb| {
            ca[local * 3..local * 3 + 3].fill(src as u8);
        });
        assert_eq!(a, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3, 4, 4, 4]);
    }
}
