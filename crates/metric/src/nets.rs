//! The nested `2^i`-net hierarchy, zooming sequences, and the netting tree
//! (Section 2 of the paper).
//!
//! An *r-net* of a metric `(V, d)` is a subset `Y ⊆ V` such that every point
//! of `V` is within distance `r` of `Y` (covering) and any two points of `Y`
//! are at distance at least `r` (packing) — Definition 2.1. The hierarchy
//! `Y_0 ⊇ Y_1 ⊇ … ⊇ Y_L` is built top-down by greedy expansion, so the nets
//! are *nested* (Eqn. (1)): `Y_L` is a singleton at scale `s_L ≥ diameter`,
//! and `Y_0 = V` because all pairwise distances are at least `s_0 =
//! min_dist`.
//!
//! The *zooming sequence* of `u` is `u(0) = u` and `u(i) =` the nearest
//! member of `Y_i` to `u(i−1)` (ties by least id). Because `u(i)` depends
//! only on `u(i−1)`, the union of all zooming sequences forms the *netting
//! tree* `T({Y_i})`, whose level-`i` nodes are the members of `Y_i` and
//! whose leaves are exactly `V`. A DFS of the netting tree (children in
//! increasing id order) enumerates the leaves; this enumeration is the
//! `⌈log n⌉`-bit label assignment `l : V → [n]` of the labeled scheme
//! (Section 4.1), and `Range(x, i)` is the contiguous interval of leaf
//! labels below the level-`i` tree node `x`.

use crate::graph::{Dist, NodeId};
use crate::space::MetricSpace;

/// The full net hierarchy with zooming sequences, netting tree and DFS leaf
/// labels.
///
/// # Examples
///
/// ```rust
/// use doubling_metric::{gen, MetricSpace};
/// use doubling_metric::nets::NetHierarchy;
///
/// let m = MetricSpace::new(&gen::grid(4, 4));
/// let h = NetHierarchy::new(&m);
/// // The zooming sequence of every node ends at the hierarchy root.
/// for u in 0..16 {
///     assert_eq!(*h.zoom_seq(u).last().unwrap(), 0);
/// }
/// // l(u) ∈ Range(x, i) exactly when x = u(i).
/// let u = 13;
/// let x = h.zoom(u, 1);
/// let (lo, hi) = h.range(1, x).unwrap();
/// assert!(lo <= h.label(u) && h.label(u) <= hi);
/// ```
/// The full net hierarchy with zooming sequences, netting tree and DFS leaf
/// labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetHierarchy {
    /// `levels[i]` = members of `Y_i`, sorted by node id. `levels.len()`
    /// equals `MetricSpace::num_scales()`.
    levels: Vec<Vec<NodeId>>,
    /// `parent[i][k]` = netting-tree parent (in `Y_{i+1}`) of `levels[i][k]`.
    /// For the top level the parent is the node itself.
    parent: Vec<Vec<NodeId>>,
    /// `zoom[u]` = the zooming sequence `u(0), …, u(L)`.
    zoom: Vec<Vec<NodeId>>,
    /// DFS leaf label `l(u)` for every node.
    label: Vec<u32>,
    /// Inverse of `label`.
    node_of_label: Vec<NodeId>,
    /// `range[i][k]` = inclusive label interval of leaves below the level-`i`
    /// tree node `levels[i][k]`.
    range: Vec<Vec<(u32, u32)>>,
    /// Highest level at which each node appears (`level_of[u] = max {i : u ∈ Y_i}`).
    level_of: Vec<u32>,
}

impl NetHierarchy {
    /// Builds the nested hierarchy for all scales of `m` by top-down greedy
    /// expansion with `(distance, id)` tie-breaking.
    pub fn new(m: &MetricSpace) -> Self {
        let n = m.n();
        let num = m.num_scales();
        let top = num - 1;

        // Top net: a singleton — the least node id (the paper allows any).
        let mut levels: Vec<Vec<NodeId>> = vec![Vec::new(); num];
        levels[top] = vec![0];

        // Greedy expansion downwards: Y_i starts from Y_{i+1} and adds, in id
        // order, every node at distance >= s_i from all current members.
        for i in (0..top).rev() {
            let s_i = m.scale(i);
            let mut members = levels[i + 1].clone();
            // Track the minimum distance from each node to the current set,
            // so the pass below is O(n·|added|) rather than O(n·|Y_i|²).
            let mut min_d: Vec<Dist> = vec![Dist::MAX; n];
            for &y in &members {
                for v in 0..n as NodeId {
                    let d = m.dist(v, y);
                    if d < min_d[v as usize] {
                        min_d[v as usize] = d;
                    }
                }
            }
            for v in 0..n as NodeId {
                if min_d[v as usize] >= s_i {
                    members.push(v);
                    for x in 0..n as NodeId {
                        let d = m.dist(x, v);
                        if d < min_d[x as usize] {
                            min_d[x as usize] = d;
                        }
                    }
                }
            }
            members.sort_unstable();
            levels[i] = members;
        }
        debug_assert_eq!(levels[0].len(), n, "Y_0 must equal V");

        // Netting-tree parents: parent of y ∈ Y_i is the nearest member of
        // Y_{i+1} (ties by least id). If y ∈ Y_{i+1}, that is y itself
        // (distance 0 beats everything).
        let mut parent: Vec<Vec<NodeId>> = Vec::with_capacity(num);
        for i in 0..num {
            if i == top {
                parent.push(levels[i].clone());
                break;
            }
            let ps: Vec<NodeId> = levels[i]
                .iter()
                .map(|&y| m.nearest_in(y, &levels[i + 1]).expect("upper net nonempty"))
                .collect();
            parent.push(ps);
        }

        // Zooming sequences follow parent pointers from the leaf level.
        let mut zoom: Vec<Vec<NodeId>> = Vec::with_capacity(n);
        // Index maps per level for parent lookup.
        let index_of = |level: &Vec<NodeId>, y: NodeId| -> usize {
            level.binary_search(&y).expect("member of net level")
        };
        for u in 0..n as NodeId {
            let mut seq = Vec::with_capacity(num);
            seq.push(u);
            let mut cur = u;
            for i in 0..top {
                let k = index_of(&levels[i], cur);
                cur = parent[i][k];
                seq.push(cur);
            }
            zoom.push(seq);
        }

        // DFS leaf enumeration. Children of tree node (i+1, y): members
        // x ∈ Y_i with parent x→y, visited in increasing id order. The node
        // y itself is among its own children (distance 0), and is visited
        // first only if it has the least id — order is by id, per the
        // deterministic rule.
        let mut children: Vec<Vec<Vec<u32>>> = Vec::with_capacity(num);
        // children[i][k] = indices (into levels[i]) of level-i nodes whose
        // parent is levels[i+1][k].
        for i in 0..top {
            let mut c: Vec<Vec<u32>> = vec![Vec::new(); levels[i + 1].len()];
            for (k, &p) in parent[i].iter().enumerate() {
                let pk = index_of(&levels[i + 1], p);
                c[pk].push(k as u32);
            }
            children.push(c);
        }

        let mut label = vec![0u32; n];
        let mut node_of_label = vec![0 as NodeId; n];
        let mut range: Vec<Vec<(u32, u32)>> =
            levels.iter().map(|l| vec![(u32::MAX, 0); l.len()]).collect();

        // Iterative DFS from the root (top, index 0).
        let mut next_label = 0u32;
        // Stack entries: (level, index, child cursor). Post-order range
        // computation: leaf gets [l, l]; internal nodes get min/max of
        // children.
        enum Frame {
            Enter(usize, u32),
            Exit(usize, u32),
        }
        let mut stack = vec![Frame::Enter(top, 0)];
        while let Some(f) = stack.pop() {
            match f {
                Frame::Enter(i, k) => {
                    if i == 0 {
                        let u = levels[0][k as usize];
                        label[u as usize] = next_label;
                        node_of_label[next_label as usize] = u;
                        range[0][k as usize] = (next_label, next_label);
                        next_label += 1;
                    } else {
                        stack.push(Frame::Exit(i, k));
                        // Push children in reverse so they pop in id order.
                        for &ck in children[i - 1][k as usize].iter().rev() {
                            stack.push(Frame::Enter(i - 1, ck));
                        }
                    }
                }
                Frame::Exit(i, k) => {
                    let mut lo = u32::MAX;
                    let mut hi = 0u32;
                    for &ck in &children[i - 1][k as usize] {
                        let (clo, chi) = range[i - 1][ck as usize];
                        lo = lo.min(clo);
                        hi = hi.max(chi);
                    }
                    range[i][k as usize] = (lo, hi);
                }
            }
        }
        debug_assert_eq!(next_label as usize, n, "every node must be a leaf");

        let mut level_of = vec![0u32; n];
        for (i, l) in levels.iter().enumerate() {
            for &y in l {
                level_of[y as usize] = level_of[y as usize].max(i as u32);
            }
        }

        NetHierarchy { levels, parent, zoom, label, node_of_label, range, level_of }
    }

    /// Number of levels (`= MetricSpace::num_scales()`).
    #[inline]
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Members of `Y_i`, sorted by id.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn level(&self, i: usize) -> &[NodeId] {
        &self.levels[i]
    }

    /// Whether `u ∈ Y_i`.
    pub fn in_level(&self, i: usize, u: NodeId) -> bool {
        i < self.levels.len() && self.levels[i].binary_search(&u).is_ok()
    }

    /// The highest level at which `u` appears.
    #[inline]
    pub fn max_level_of(&self, u: NodeId) -> u32 {
        self.level_of[u as usize]
    }

    /// The zooming sequence member `u(i)`.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `i` is out of range.
    #[inline]
    pub fn zoom(&self, u: NodeId, i: usize) -> NodeId {
        self.zoom[u as usize][i]
    }

    /// The full zooming sequence `u(0), …, u(L)`.
    #[inline]
    pub fn zoom_seq(&self, u: NodeId) -> &[NodeId] {
        &self.zoom[u as usize]
    }

    /// The netting-tree parent of `y ∈ Y_i` (a member of `Y_{i+1}`); for the
    /// top level, `y` itself.
    ///
    /// # Panics
    ///
    /// Panics if `y ∉ Y_i`.
    pub fn net_parent(&self, i: usize, y: NodeId) -> NodeId {
        let k = self.levels[i].binary_search(&y).expect("y must be in Y_i");
        self.parent[i][k]
    }

    /// The DFS leaf label `l(u) ∈ [n]`.
    #[inline]
    pub fn label(&self, u: NodeId) -> u32 {
        self.label[u as usize]
    }

    /// The node with label `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l ≥ n`.
    #[inline]
    pub fn node_of_label(&self, l: u32) -> NodeId {
        self.node_of_label[l as usize]
    }

    /// `Range(x, i)`: the inclusive interval of leaf labels below the
    /// level-`i` netting-tree node `x`, or `None` if `x ∉ Y_i`.
    pub fn range(&self, i: usize, x: NodeId) -> Option<(u32, u32)> {
        let k = self.levels[i].binary_search(&x).ok()?;
        Some(self.range[i][k])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::space::MetricSpace;

    fn hierarchy(g: &crate::graph::Graph) -> (MetricSpace, NetHierarchy) {
        let m = MetricSpace::new(g);
        let h = NetHierarchy::new(&m);
        (m, h)
    }

    #[test]
    fn net_packing_and_covering_properties() {
        let g = gen::random_geometric(70, 220, 13);
        let (m, h) = hierarchy(&g);
        for i in 0..h.num_levels() {
            let s = m.scale(i);
            let y = h.level(i);
            // Packing: pairwise distances at least s_i.
            for (a, &p) in y.iter().enumerate() {
                for &q in &y[a + 1..] {
                    assert!(m.dist(p, q) >= s, "packing violated at level {i}");
                }
            }
            // Covering: every node within s_i of the net.
            for u in 0..m.n() as NodeId {
                let d = y.iter().map(|&p| m.dist(u, p)).min().unwrap();
                assert!(d <= s, "covering violated at level {i} for node {u}");
            }
        }
    }

    #[test]
    fn nets_are_nested() {
        let g = gen::grid(6, 6);
        let (_, h) = hierarchy(&g);
        for i in 0..h.num_levels() - 1 {
            for &y in h.level(i + 1) {
                assert!(h.in_level(i, y), "Y_{} ⊄ Y_{}", i + 1, i);
            }
        }
    }

    #[test]
    fn bottom_is_all_top_is_single() {
        let g = gen::grid(5, 4);
        let (m, h) = hierarchy(&g);
        assert_eq!(h.level(0).len(), m.n());
        assert_eq!(h.level(h.num_levels() - 1), &[0]);
    }

    #[test]
    fn zooming_sequence_steps_are_bounded() {
        // Eqn (2): d(u(k-1), u(k)) <= s_k.
        let g = gen::random_geometric(50, 250, 21);
        let (m, h) = hierarchy(&g);
        for u in 0..m.n() as NodeId {
            let seq = h.zoom_seq(u);
            assert_eq!(seq[0], u);
            for k in 1..seq.len() {
                assert!(
                    m.dist(seq[k - 1], seq[k]) <= m.scale(k),
                    "zoom step too long at node {u} level {k}"
                );
                assert!(h.in_level(k, seq[k]));
            }
            assert_eq!(*seq.last().unwrap(), 0, "all sequences end at the root");
        }
    }

    #[test]
    fn zoom_follows_net_parents() {
        let g = gen::grid(5, 5);
        let (_, h) = hierarchy(&g);
        for u in 0..25 as NodeId {
            let seq = h.zoom_seq(u);
            for i in 0..seq.len() - 1 {
                assert_eq!(h.net_parent(i, seq[i]), seq[i + 1]);
            }
        }
    }

    #[test]
    fn labels_are_a_bijection() {
        let g = gen::random_geometric(40, 260, 5);
        let (m, h) = hierarchy(&g);
        let mut seen = vec![false; m.n()];
        for u in 0..m.n() as NodeId {
            let l = h.label(u);
            assert!(!seen[l as usize], "duplicate label");
            seen[l as usize] = true;
            assert_eq!(h.node_of_label(l), u);
        }
    }

    #[test]
    fn range_membership_iff_on_zoom_sequence() {
        // l(u) ∈ Range(x, i) iff x = u(i)  (Section 4.1).
        let g = gen::grid(6, 4);
        let (m, h) = hierarchy(&g);
        for u in 0..m.n() as NodeId {
            let l = h.label(u);
            for i in 0..h.num_levels() {
                for &x in h.level(i) {
                    let (lo, hi) = h.range(i, x).unwrap();
                    let inside = lo <= l && l <= hi;
                    assert_eq!(inside, h.zoom(u, i) == x, "range test failed u={u} i={i} x={x}");
                }
            }
        }
    }

    #[test]
    fn ranges_partition_labels_per_level() {
        let g = gen::spider(5, 4);
        let (m, h) = hierarchy(&g);
        for i in 0..h.num_levels() {
            let mut covered = vec![false; m.n()];
            for &x in h.level(i) {
                let (lo, hi) = h.range(i, x).unwrap();
                for l in lo..=hi {
                    assert!(!covered[l as usize], "ranges overlap at level {i}");
                    covered[l as usize] = true;
                }
            }
            assert!(covered.iter().all(|&c| c), "ranges must cover all labels");
        }
    }

    #[test]
    fn net_size_bound_lemma_2_2() {
        // Lemma 2.2: |B_u(r') ∩ Y| ≤ (4r'/r)^α for an r-net Y. We check the
        // qualitative consequence used throughout: rings X_i(u) =
        // B_u(s_i/ε) ∩ Y_i have size bounded by a constant independent of n
        // for grids (α ≈ 2, ε = 1/2 → bound (8·2)^2).
        let g = gen::grid(8, 8);
        let (m, h) = hierarchy(&g);
        for i in 0..h.num_levels() {
            let r = 2 * m.scale(i); // 2^i/ε with ε = 1/2
            for u in 0..m.n() as NodeId {
                let count = h.level(i).iter().filter(|&&y| m.dist(u, y) <= r).count();
                assert!(count <= 256, "ring unexpectedly large: {count}");
            }
        }
    }

    #[test]
    fn exp_path_hierarchy_depth() {
        let g = gen::exp_weight_path(16);
        let (m, h) = hierarchy(&g);
        assert_eq!(h.num_levels(), m.num_scales());
        assert!(h.num_levels() >= 15);
    }

    #[test]
    fn single_node() {
        let g = crate::graph::GraphBuilder::new(1).build().unwrap();
        let (_, h) = hierarchy(&g);
        assert_eq!(h.num_levels(), 1);
        assert_eq!(h.label(0), 0);
        assert_eq!(h.zoom_seq(0), &[0]);
    }
}
