//! The nested `2^i`-net hierarchy, zooming sequences, and the netting tree
//! (Section 2 of the paper).
//!
//! An *r-net* of a metric `(V, d)` is a subset `Y ⊆ V` such that every point
//! of `V` is within distance `r` of `Y` (covering) and any two points of `Y`
//! are at distance at least `r` (packing) — Definition 2.1. The hierarchy
//! `Y_0 ⊇ Y_1 ⊇ … ⊇ Y_L` is built top-down by greedy expansion, so the nets
//! are *nested* (Eqn. (1)): `Y_L` is a singleton at scale `s_L ≥ diameter`,
//! and `Y_0 = V` because all pairwise distances are at least `s_0 =
//! min_dist`.
//!
//! The *zooming sequence* of `u` is `u(0) = u` and `u(i) =` the nearest
//! member of `Y_i` to `u(i−1)` (ties by least id). Because `u(i)` depends
//! only on `u(i−1)`, the union of all zooming sequences forms the *netting
//! tree* `T({Y_i})`, whose level-`i` nodes are the members of `Y_i` and
//! whose leaves are exactly `V`. A DFS of the netting tree (children in
//! increasing id order) enumerates the leaves; this enumeration is the
//! `⌈log n⌉`-bit label assignment `l : V → [n]` of the labeled scheme
//! (Section 4.1), and `Range(x, i)` is the contiguous interval of leaf
//! labels below the level-`i` tree node `x`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::graph::{Dist, NodeId};
use crate::space::MetricSpace;

/// Label sentinel for nodes outside the active overlay set: inactive nodes
/// carry no DFS leaf label, so [`NetHierarchy::label`] returns this value
/// for them.
pub const INACTIVE_LABEL: u32 = u32::MAX;

/// A batch of overlay churn: node ids joining and leaving the active set.
///
/// The metric space itself is immutable — churn mutates the *active
/// overlay* `A ⊆ V` the hierarchy is built over. Joins must currently be
/// inactive, leaves must currently be active, and the two lists must be
/// disjoint ([`ChurnBatch::validate`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChurnBatch {
    /// Nodes entering the active set, sorted and deduplicated.
    pub joins: Vec<NodeId>,
    /// Nodes leaving the active set, sorted and deduplicated.
    pub leaves: Vec<NodeId>,
}

/// A structured rejection reason from [`ChurnBatch::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChurnBatchError {
    /// A join or leave id is `≥ n`.
    OutOfRange(NodeId),
    /// A join target is already active.
    AlreadyActive(NodeId),
    /// A leave target is already inactive.
    NotActive(NodeId),
    /// A node appears in both the join and the leave list.
    Overlap(NodeId),
    /// Applying the batch would leave the active set empty.
    EmptiesActiveSet,
}

impl std::fmt::Display for ChurnBatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChurnBatchError::OutOfRange(v) => write!(f, "churn node {v} out of range"),
            ChurnBatchError::AlreadyActive(v) => write!(f, "join target {v} is already active"),
            ChurnBatchError::NotActive(v) => write!(f, "leave target {v} is not active"),
            ChurnBatchError::Overlap(v) => write!(f, "node {v} both joins and leaves"),
            ChurnBatchError::EmptiesActiveSet => write!(f, "batch would empty the active set"),
        }
    }
}

impl std::error::Error for ChurnBatchError {}

impl ChurnBatch {
    /// Builds a batch, sorting and deduplicating both lists.
    pub fn new(mut joins: Vec<NodeId>, mut leaves: Vec<NodeId>) -> Self {
        joins.sort_unstable();
        joins.dedup();
        leaves.sort_unstable();
        leaves.dedup();
        ChurnBatch { joins, leaves }
    }

    /// Whether the batch changes nothing.
    pub fn is_empty(&self) -> bool {
        self.joins.is_empty() && self.leaves.is_empty()
    }

    /// Number of join + leave events.
    pub fn len(&self) -> usize {
        self.joins.len() + self.leaves.len()
    }

    /// All churned node ids (joins ∪ leaves), sorted.
    pub fn changed(&self) -> Vec<NodeId> {
        let mut all: Vec<NodeId> = self.joins.iter().chain(self.leaves.iter()).copied().collect();
        all.sort_unstable();
        all
    }

    /// Checks the batch against the current active flags.
    ///
    /// # Errors
    ///
    /// Returns the first [`ChurnBatchError`] violated, if any.
    pub fn validate(&self, active: &[bool]) -> Result<(), ChurnBatchError> {
        for &v in self.joins.iter().chain(self.leaves.iter()) {
            if (v as usize) >= active.len() {
                return Err(ChurnBatchError::OutOfRange(v));
            }
        }
        for &v in &self.joins {
            if self.leaves.binary_search(&v).is_ok() {
                return Err(ChurnBatchError::Overlap(v));
            }
            if active[v as usize] {
                return Err(ChurnBatchError::AlreadyActive(v));
            }
        }
        for &v in &self.leaves {
            if !active[v as usize] {
                return Err(ChurnBatchError::NotActive(v));
            }
        }
        let count = active.iter().filter(|&&a| a).count();
        if count + self.joins.len() <= self.leaves.len() {
            return Err(ChurnBatchError::EmptiesActiveSet);
        }
        Ok(())
    }
}

/// Work budget for a single [`NetHierarchy::apply_churn`] call.
///
/// `level_evals` caps the number of distance-row entries the dirty-set sweep
/// may inspect *per level*; when exceeded the level degrades to a scoped
/// from-scratch greedy rebuild (recorded in [`NetRepair::scoped_rebuilds`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetRepairBudget {
    /// Max distance evaluations per level before the scoped-rebuild fallback.
    pub level_evals: u64,
}

impl NetRepairBudget {
    /// No cap: the dirty-set sweep always runs to completion.
    pub fn unbounded() -> Self {
        NetRepairBudget { level_evals: u64::MAX }
    }

    /// Cap of `evals` distance evaluations per level.
    pub fn per_level(evals: u64) -> Self {
        NetRepairBudget { level_evals: evals }
    }
}

impl Default for NetRepairBudget {
    fn default() -> Self {
        Self::unbounded()
    }
}

/// Membership changes of one net level, sorted by id.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LevelDelta {
    /// Nodes that entered `Y_i`.
    pub added: Vec<NodeId>,
    /// Nodes that left `Y_i`.
    pub removed: Vec<NodeId>,
}

impl LevelDelta {
    /// Whether the level membership is unchanged.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// All changed members (added ∪ removed), sorted.
    pub fn changed(&self) -> Vec<NodeId> {
        let mut all: Vec<NodeId> = self.added.iter().chain(self.removed.iter()).copied().collect();
        all.sort_unstable();
        all
    }
}

/// Outcome report of one [`NetHierarchy::apply_churn`] call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetRepair {
    /// Per-level membership deltas (index = level).
    pub deltas: Vec<LevelDelta>,
    /// Levels whose dirty-set sweep blew the eval budget and were rebuilt
    /// from scratch (greedy, scoped to that level).
    pub scoped_rebuilds: Vec<u32>,
    /// Distance-row entries inspected across all levels and parent repairs.
    pub evals: u64,
}

impl NetRepair {
    /// Total membership changes across all levels.
    pub fn total_changes(&self) -> u64 {
        self.deltas.iter().map(|d| (d.added.len() + d.removed.len()) as u64).sum()
    }

    /// Levels with a nonempty delta.
    pub fn changed_levels(&self) -> Vec<usize> {
        (0..self.deltas.len()).filter(|&i| !self.deltas[i].is_empty()).collect()
    }
}

/// Everything derivable from `(levels, parent)` by pure pointer chasing.
struct Finished {
    zoom: Vec<Vec<NodeId>>,
    label: Vec<u32>,
    node_of_label: Vec<NodeId>,
    range: Vec<Vec<(u32, u32)>>,
    level_of: Vec<u32>,
}

/// The full net hierarchy with zooming sequences, netting tree and DFS leaf
/// labels.
///
/// # Examples
///
/// ```rust
/// use doubling_metric::{gen, MetricSpace};
/// use doubling_metric::nets::NetHierarchy;
///
/// let m = MetricSpace::new(&gen::grid(4, 4));
/// let h = NetHierarchy::new(&m);
/// // The zooming sequence of every node ends at the hierarchy root.
/// for u in 0..16 {
///     assert_eq!(*h.zoom_seq(u).last().unwrap(), 0);
/// }
/// // l(u) ∈ Range(x, i) exactly when x = u(i).
/// let u = 13;
/// let x = h.zoom(u, 1);
/// let (lo, hi) = h.range(1, x).unwrap();
/// assert!(lo <= h.label(u) && h.label(u) <= hi);
/// ```
/// The full net hierarchy with zooming sequences, netting tree and DFS leaf
/// labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetHierarchy {
    /// `levels[i]` = members of `Y_i`, sorted by node id. `levels.len()`
    /// equals `MetricSpace::num_scales()`.
    levels: Vec<Vec<NodeId>>,
    /// `parent[i][k]` = netting-tree parent (in `Y_{i+1}`) of `levels[i][k]`.
    /// For the top level the parent is the node itself.
    parent: Vec<Vec<NodeId>>,
    /// `zoom[u]` = the zooming sequence `u(0), …, u(L)`.
    zoom: Vec<Vec<NodeId>>,
    /// DFS leaf label `l(u)` for every node.
    label: Vec<u32>,
    /// Inverse of `label`.
    node_of_label: Vec<NodeId>,
    /// `range[i][k]` = inclusive label interval of leaves below the level-`i`
    /// tree node `levels[i][k]`.
    range: Vec<Vec<(u32, u32)>>,
    /// Highest level at which each node appears (`level_of[u] = max {i : u ∈ Y_i}`).
    level_of: Vec<u32>,
    /// `active[u]` — whether `u` is in the overlay set the hierarchy covers.
    /// `levels[0]` is exactly the sorted list of active nodes.
    active: Vec<bool>,
}

/// One greedy net level: seeds plus, in id order, every active node at
/// distance `>= s_i` from all current members. Returns `(members, evals)`.
fn greedy_level(
    m: &MetricSpace,
    seeds: &[NodeId],
    active: &[bool],
    s_i: Dist,
) -> (Vec<NodeId>, u64) {
    let n = m.n();
    let mut members = seeds.to_vec();
    // Track the minimum distance from each node to the current set,
    // so the pass below is O(n·|added|) rather than O(n·|Y_i|²).
    let mut min_d: Vec<Dist> = vec![Dist::MAX; n];
    let mut evals: u64 = 0;
    for &y in seeds {
        evals += n as u64;
        for v in 0..n as NodeId {
            let d = m.dist(v, y);
            if d < min_d[v as usize] {
                min_d[v as usize] = d;
            }
        }
    }
    for v in 0..n as NodeId {
        if active[v as usize] && min_d[v as usize] >= s_i {
            members.push(v);
            evals += n as u64;
            for x in 0..n as NodeId {
                let d = m.dist(x, v);
                if d < min_d[x as usize] {
                    min_d[x as usize] = d;
                }
            }
        }
    }
    members.sort_unstable();
    (members, evals)
}

/// Sorted two-pointer diff `old → new`.
fn diff_sorted(old: &[NodeId], new: &[NodeId]) -> LevelDelta {
    let mut added = Vec::new();
    let mut removed = Vec::new();
    let (mut a, mut b) = (0usize, 0usize);
    while a < old.len() || b < new.len() {
        match (old.get(a), new.get(b)) {
            (Some(&o), Some(&x)) if o == x => {
                a += 1;
                b += 1;
            }
            (Some(&o), Some(&x)) if o < x => {
                removed.push(o);
                a += 1;
            }
            (Some(_), Some(&x)) => {
                added.push(x);
                b += 1;
            }
            (Some(&o), None) => {
                removed.push(o);
                a += 1;
            }
            (None, Some(&x)) => {
                added.push(x);
                b += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    LevelDelta { added, removed }
}

/// Recomputes everything downstream of `(levels, parent)`: zooming
/// sequences, the netting-tree DFS leaf labels and ranges, and `level_of`.
/// Pure pointer chasing — no metric evaluations — so full and incremental
/// builds that agree on `(levels, parent)` agree byte-for-byte here too.
fn finish(n: usize, levels: &[Vec<NodeId>], parent: &[Vec<NodeId>]) -> Finished {
    let num = levels.len();
    let top = num - 1;
    let index_of = |level: &[NodeId], y: NodeId| -> usize {
        level.binary_search(&y).expect("member of net level")
    };

    // Zooming sequences follow parent pointers from the leaf level; inactive
    // nodes (not in Y_0) have empty sequences.
    let mut zoom: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for &u in &levels[0] {
        let mut seq = Vec::with_capacity(num);
        seq.push(u);
        let mut cur = u;
        for i in 0..top {
            let k = index_of(&levels[i], cur);
            cur = parent[i][k];
            seq.push(cur);
        }
        zoom[u as usize] = seq;
    }

    // DFS leaf enumeration. Children of tree node (i+1, y): members
    // x ∈ Y_i with parent x→y, visited in increasing id order. The node
    // y itself is among its own children (distance 0), and is visited
    // first only if it has the least id — order is by id, per the
    // deterministic rule.
    let mut children: Vec<Vec<Vec<u32>>> = Vec::with_capacity(num);
    // children[i][k] = indices (into levels[i]) of level-i nodes whose
    // parent is levels[i+1][k].
    for i in 0..top {
        let mut c: Vec<Vec<u32>> = vec![Vec::new(); levels[i + 1].len()];
        for (k, &p) in parent[i].iter().enumerate() {
            let pk = index_of(&levels[i + 1], p);
            c[pk].push(k as u32);
        }
        children.push(c);
    }

    let active_count = levels[0].len();
    let mut label = vec![INACTIVE_LABEL; n];
    let mut node_of_label = vec![0 as NodeId; active_count];
    let mut range: Vec<Vec<(u32, u32)>> =
        levels.iter().map(|l| vec![(u32::MAX, 0); l.len()]).collect();

    // Iterative DFS from the root (top, index 0). Post-order range
    // computation: leaf gets [l, l]; internal nodes get min/max of
    // children.
    let mut next_label = 0u32;
    enum Frame {
        Enter(usize, u32),
        Exit(usize, u32),
    }
    let mut stack = vec![Frame::Enter(top, 0)];
    while let Some(f) = stack.pop() {
        match f {
            Frame::Enter(i, k) => {
                if i == 0 {
                    let u = levels[0][k as usize];
                    label[u as usize] = next_label;
                    node_of_label[next_label as usize] = u;
                    range[0][k as usize] = (next_label, next_label);
                    next_label += 1;
                } else {
                    stack.push(Frame::Exit(i, k));
                    // Push children in reverse so they pop in id order.
                    for &ck in children[i - 1][k as usize].iter().rev() {
                        stack.push(Frame::Enter(i - 1, ck));
                    }
                }
            }
            Frame::Exit(i, k) => {
                let mut lo = u32::MAX;
                let mut hi = 0u32;
                for &ck in &children[i - 1][k as usize] {
                    let (clo, chi) = range[i - 1][ck as usize];
                    lo = lo.min(clo);
                    hi = hi.max(chi);
                }
                range[i][k as usize] = (lo, hi);
            }
        }
    }
    debug_assert_eq!(next_label as usize, active_count, "every active node must be a leaf");

    let mut level_of = vec![0u32; n];
    for (i, l) in levels.iter().enumerate() {
        for &y in l {
            level_of[y as usize] = level_of[y as usize].max(i as u32);
        }
    }

    Finished { zoom, label, node_of_label, range, level_of }
}

/// Dirty-set repair of one level: re-decides membership only for candidates
/// reachable from the change set, in increasing id order (the greedy order),
/// so the fixpoint equals the from-scratch greedy net over the new seeds and
/// active set. Returns `(members, delta, evals, scoped_rebuild)`.
#[allow(clippy::too_many_arguments)]
fn repair_level(
    m: &MetricSpace,
    s_i: Dist,
    old: &[NodeId],
    seeds: &[NodeId],
    seed_delta: &LevelDelta,
    batch: &ChurnBatch,
    active: &[bool],
    budget: &NetRepairBudget,
) -> (Vec<NodeId>, LevelDelta, u64, bool) {
    let n = m.n();
    // Blocking radius: v is blocked by members strictly closer than s_i.
    let rad = s_i - 1;

    let mut mem = vec![false; n];
    for &y in old {
        mem[y as usize] = true;
    }
    let mut seed_flag = vec![false; n];
    for &y in seeds {
        seed_flag[y as usize] = true;
    }

    // Dirty candidates: every node whose membership decision could have
    // changed. Changed seeds affect their whole blocking ball (seeds block
    // candidates on both sides of them in id order). A leave affects its
    // ball only at levels where it was a member; a join only needs its own
    // decision here — if it becomes a member, the flip propagation below
    // re-decides the larger-id neighbours it can block.
    let mut in_heap = vec![false; n];
    let mut heap: BinaryHeap<Reverse<NodeId>> = BinaryHeap::new();
    {
        let push = |v: NodeId, in_heap: &mut Vec<bool>, heap: &mut BinaryHeap<Reverse<NodeId>>| {
            let vi = v as usize;
            if active[vi] && !seed_flag[vi] && !in_heap[vi] {
                in_heap[vi] = true;
                heap.push(Reverse(v));
            }
        };
        for &y in seed_delta.added.iter().chain(seed_delta.removed.iter()) {
            push(y, &mut in_heap, &mut heap);
            for &(_, w) in m.ball(y, rad) {
                push(w, &mut in_heap, &mut heap);
            }
        }
        for &v in &batch.joins {
            push(v, &mut in_heap, &mut heap);
        }
        for &v in &batch.leaves {
            if mem[v as usize] {
                for &(_, w) in m.ball(v, rad) {
                    push(w, &mut in_heap, &mut heap);
                }
            }
        }
    }

    // Seed and activity overrides, applied before the sweep: new seeds are
    // members by fiat, departed nodes are not members.
    for &y in &seed_delta.added {
        mem[y as usize] = true;
    }
    for &v in &batch.leaves {
        mem[v as usize] = false;
    }

    // Sweep in increasing id order. A non-seed candidate v is a member iff
    // no other member y with (seed(y) or y < v) lies strictly within s_i —
    // exactly the greedy rule. Membership flips propagate only to larger
    // ids, so one pass reaches the greedy fixpoint.
    let mut evals: u64 = 0;
    let mut scoped = false;
    while let Some(Reverse(v)) = heap.pop() {
        let vi = v as usize;
        in_heap[vi] = false;
        let ball = m.ball(v, rad);
        evals += ball.len() as u64;
        if evals > budget.level_evals {
            scoped = true;
            break;
        }
        let mut blocked = false;
        for &(_, y) in ball {
            let yi = y as usize;
            if y != v && mem[yi] && (seed_flag[yi] || y < v) {
                blocked = true;
                break;
            }
        }
        let want = !blocked;
        if want != mem[vi] {
            mem[vi] = want;
            for &(_, w) in ball {
                let wi = w as usize;
                if w > v && active[wi] && !seed_flag[wi] && !in_heap[wi] {
                    in_heap[wi] = true;
                    heap.push(Reverse(w));
                }
            }
        }
    }

    if scoped {
        let (members, g_evals) = greedy_level(m, seeds, active, s_i);
        let delta = diff_sorted(old, &members);
        return (members, delta, evals + g_evals, true);
    }

    let members: Vec<NodeId> = (0..n as NodeId).filter(|&v| mem[v as usize]).collect();
    let delta = diff_sorted(old, &members);
    (members, delta, evals, false)
}

impl NetHierarchy {
    /// Builds the nested hierarchy for all scales of `m` by top-down greedy
    /// expansion with `(distance, id)` tie-breaking. All nodes are active.
    pub fn new(m: &MetricSpace) -> Self {
        Self::build(m, vec![true; m.n()])
    }

    /// Builds the hierarchy over the *active overlay* `A ⊆ V`: `Y_0 = A`,
    /// only active nodes appear at any level or carry labels, and the top
    /// singleton is the least active id. With all nodes active this equals
    /// [`Self::new`] exactly.
    ///
    /// # Panics
    ///
    /// Panics if `active_nodes` is empty, contains duplicates, or contains
    /// an id `≥ n`.
    pub fn new_over(m: &MetricSpace, active_nodes: &[NodeId]) -> Self {
        let n = m.n();
        let mut active = vec![false; n];
        for &v in active_nodes {
            assert!((v as usize) < n, "active node {v} out of range");
            assert!(!active[v as usize], "duplicate active node {v}");
            active[v as usize] = true;
        }
        assert!(!active_nodes.is_empty(), "active set must be nonempty");
        Self::build(m, active)
    }

    fn build(m: &MetricSpace, active: Vec<bool>) -> Self {
        let n = m.n();
        let num = m.num_scales();
        let top = num - 1;
        let count = active.iter().filter(|&&a| a).count();
        assert!(count >= 1, "active set must be nonempty");

        // Top net: a singleton — the least active node id (the paper allows
        // any).
        let root = active.iter().position(|&a| a).unwrap() as NodeId;
        let mut levels: Vec<Vec<NodeId>> = vec![Vec::new(); num];
        levels[top] = vec![root];

        // Greedy expansion downwards: Y_i starts from Y_{i+1} and adds, in id
        // order, every active node at distance >= s_i from all current
        // members.
        for i in (0..top).rev() {
            let (members, _) = greedy_level(m, &levels[i + 1], &active, m.scale(i));
            levels[i] = members;
        }
        if top > 0 {
            debug_assert_eq!(levels[0].len(), count, "Y_0 must equal the active set");
        }

        // Netting-tree parents: parent of y ∈ Y_i is the nearest member of
        // Y_{i+1} (ties by least id). If y ∈ Y_{i+1}, that is y itself
        // (distance 0 beats everything).
        let mut parent: Vec<Vec<NodeId>> = Vec::with_capacity(num);
        for i in 0..num {
            if i == top {
                parent.push(levels[i].clone());
                break;
            }
            let ps: Vec<NodeId> = levels[i]
                .iter()
                .map(|&y| m.nearest_in(y, &levels[i + 1]).expect("upper net nonempty"))
                .collect();
            parent.push(ps);
        }

        let fin = finish(n, &levels, &parent);
        NetHierarchy {
            levels,
            parent,
            zoom: fin.zoom,
            label: fin.label,
            node_of_label: fin.node_of_label,
            range: fin.range,
            level_of: fin.level_of,
            active,
        }
    }

    /// Applies an overlay churn batch incrementally: re-seats only net
    /// points whose greedy decision is affected by the change set, repairs
    /// netting-tree parents by delta, and recomputes the derived structures
    /// (zoom, labels, ranges) wholesale. The result is **identical** to
    /// `NetHierarchy::new_over(m, new_active)` — the dirty-set sweep
    /// re-decides candidates in increasing id order, which is exactly the
    /// greedy insertion order, so it converges to the same fixpoint.
    ///
    /// Levels whose sweep exceeds `budget.level_evals` distance inspections
    /// degrade to a scoped from-scratch greedy rebuild of that level alone
    /// (still exact; recorded in [`NetRepair::scoped_rebuilds`]).
    ///
    /// # Panics
    ///
    /// Panics if the batch fails [`ChurnBatch::validate`] against the
    /// current active set.
    pub fn apply_churn(
        &mut self,
        m: &MetricSpace,
        batch: &ChurnBatch,
        budget: &NetRepairBudget,
    ) -> NetRepair {
        batch.validate(&self.active).expect("invalid churn batch");
        let n = m.n();
        let num = self.levels.len();
        let top = num - 1;
        if batch.is_empty() {
            return NetRepair { deltas: vec![LevelDelta::default(); num], ..NetRepair::default() };
        }

        let mut active = self.active.clone();
        for &v in &batch.leaves {
            active[v as usize] = false;
        }
        for &v in &batch.joins {
            active[v as usize] = true;
        }

        let old_levels = std::mem::take(&mut self.levels);
        let old_parent = std::mem::take(&mut self.parent);

        let mut levels: Vec<Vec<NodeId>> = vec![Vec::new(); num];
        let mut deltas: Vec<LevelDelta> = vec![LevelDelta::default(); num];
        let mut scoped_rebuilds: Vec<u32> = Vec::new();
        let mut evals: u64 = 0;

        // Top singleton: the least active id.
        let root = active.iter().position(|&a| a).expect("validated nonempty") as NodeId;
        levels[top] = vec![root];
        let old_root = old_levels[top][0];
        if old_root != root {
            deltas[top] = LevelDelta { added: vec![root], removed: vec![old_root] };
        }

        // Top-down level repair: level i's seeds are the already-repaired
        // Y_{i+1}, its seed delta the one just computed.
        for i in (0..top).rev() {
            let (members, delta, lv_evals, scoped) = repair_level(
                m,
                m.scale(i),
                &old_levels[i],
                &levels[i + 1],
                &deltas[i + 1],
                batch,
                &active,
                budget,
            );
            evals += lv_evals;
            if scoped {
                scoped_rebuilds.push(i as u32);
            }
            levels[i] = members;
            deltas[i] = delta;
        }
        if top > 0 {
            debug_assert_eq!(
                levels[0].len(),
                active.iter().filter(|&&a| a).count(),
                "Y_0 must equal the active set"
            );
        }

        // Parent repair by delta: a surviving member keeps its old parent
        // unless that parent left Y_{i+1} (then recompute in full) or a new
        // upper member beats it under (distance, id) order — the old parent
        // is the minimum over surviving old members, so comparing it against
        // the additions alone is exact.
        let mut parent: Vec<Vec<NodeId>> = Vec::with_capacity(num);
        for i in 0..num {
            if i == top {
                parent.push(levels[i].clone());
                break;
            }
            let up = &levels[i + 1];
            let up_added = &deltas[i + 1].added;
            let up_removed = &deltas[i + 1].removed;
            let ps: Vec<NodeId> = levels[i]
                .iter()
                .map(|&y| {
                    let fresh = deltas[i].added.binary_search(&y).is_ok();
                    if !fresh {
                        let k_old = old_levels[i].binary_search(&y).expect("survivor was a member");
                        let p_old = old_parent[i][k_old];
                        if up_removed.binary_search(&p_old).is_err() {
                            let mut best = (m.dist(y, p_old), p_old);
                            evals += 1 + up_added.len() as u64;
                            for &a in up_added {
                                let cand = (m.dist(y, a), a);
                                if cand < best {
                                    best = cand;
                                }
                            }
                            return best.1;
                        }
                    }
                    evals += up.len() as u64;
                    m.nearest_in(y, up).expect("upper net nonempty")
                })
                .collect();
            parent.push(ps);
        }

        let fin = finish(n, &levels, &parent);
        self.levels = levels;
        self.parent = parent;
        self.zoom = fin.zoom;
        self.label = fin.label;
        self.node_of_label = fin.node_of_label;
        self.range = fin.range;
        self.level_of = fin.level_of;
        self.active = active;

        NetRepair { deltas, scoped_rebuilds, evals }
    }

    /// Number of levels (`= MetricSpace::num_scales()`).
    #[inline]
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Whether `u` is in the active overlay set.
    #[inline]
    pub fn is_active(&self, u: NodeId) -> bool {
        self.active[u as usize]
    }

    /// Number of active nodes (`= |Y_0|`).
    #[inline]
    pub fn num_active(&self) -> usize {
        self.levels[0].len()
    }

    /// The sorted active node list (`= Y_0`).
    #[inline]
    pub fn active_nodes(&self) -> &[NodeId] {
        &self.levels[0]
    }

    /// Members of `Y_i`, sorted by id.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn level(&self, i: usize) -> &[NodeId] {
        &self.levels[i]
    }

    /// Whether `u ∈ Y_i`.
    pub fn in_level(&self, i: usize, u: NodeId) -> bool {
        i < self.levels.len() && self.levels[i].binary_search(&u).is_ok()
    }

    /// The highest level at which `u` appears.
    #[inline]
    pub fn max_level_of(&self, u: NodeId) -> u32 {
        self.level_of[u as usize]
    }

    /// The zooming sequence member `u(i)`.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `i` is out of range.
    #[inline]
    pub fn zoom(&self, u: NodeId, i: usize) -> NodeId {
        self.zoom[u as usize][i]
    }

    /// The full zooming sequence `u(0), …, u(L)`; empty if `u` is not in
    /// the active overlay set.
    #[inline]
    pub fn zoom_seq(&self, u: NodeId) -> &[NodeId] {
        &self.zoom[u as usize]
    }

    /// The netting-tree parent of `y ∈ Y_i` (a member of `Y_{i+1}`); for the
    /// top level, `y` itself.
    ///
    /// # Panics
    ///
    /// Panics if `y ∉ Y_i`.
    pub fn net_parent(&self, i: usize, y: NodeId) -> NodeId {
        let k = self.levels[i].binary_search(&y).expect("y must be in Y_i");
        self.parent[i][k]
    }

    /// The DFS leaf label `l(u) ∈ [|Y_0|]`, or [`INACTIVE_LABEL`] if `u` is
    /// not in the active overlay set.
    #[inline]
    pub fn label(&self, u: NodeId) -> u32 {
        self.label[u as usize]
    }

    /// The node with label `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l ≥ |Y_0|` (the number of active nodes).
    #[inline]
    pub fn node_of_label(&self, l: u32) -> NodeId {
        self.node_of_label[l as usize]
    }

    /// `Range(x, i)`: the inclusive interval of leaf labels below the
    /// level-`i` netting-tree node `x`, or `None` if `x ∉ Y_i`.
    pub fn range(&self, i: usize, x: NodeId) -> Option<(u32, u32)> {
        let k = self.levels[i].binary_search(&x).ok()?;
        Some(self.range[i][k])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::space::MetricSpace;

    fn hierarchy(g: &crate::graph::Graph) -> (MetricSpace, NetHierarchy) {
        let m = MetricSpace::new(g);
        let h = NetHierarchy::new(&m);
        (m, h)
    }

    #[test]
    fn net_packing_and_covering_properties() {
        let g = gen::random_geometric(70, 220, 13);
        let (m, h) = hierarchy(&g);
        for i in 0..h.num_levels() {
            let s = m.scale(i);
            let y = h.level(i);
            // Packing: pairwise distances at least s_i.
            for (a, &p) in y.iter().enumerate() {
                for &q in &y[a + 1..] {
                    assert!(m.dist(p, q) >= s, "packing violated at level {i}");
                }
            }
            // Covering: every node within s_i of the net.
            for u in 0..m.n() as NodeId {
                let d = y.iter().map(|&p| m.dist(u, p)).min().unwrap();
                assert!(d <= s, "covering violated at level {i} for node {u}");
            }
        }
    }

    #[test]
    fn nets_are_nested() {
        let g = gen::grid(6, 6);
        let (_, h) = hierarchy(&g);
        for i in 0..h.num_levels() - 1 {
            for &y in h.level(i + 1) {
                assert!(h.in_level(i, y), "Y_{} ⊄ Y_{}", i + 1, i);
            }
        }
    }

    #[test]
    fn bottom_is_all_top_is_single() {
        let g = gen::grid(5, 4);
        let (m, h) = hierarchy(&g);
        assert_eq!(h.level(0).len(), m.n());
        assert_eq!(h.level(h.num_levels() - 1), &[0]);
    }

    #[test]
    fn zooming_sequence_steps_are_bounded() {
        // Eqn (2): d(u(k-1), u(k)) <= s_k.
        let g = gen::random_geometric(50, 250, 21);
        let (m, h) = hierarchy(&g);
        for u in 0..m.n() as NodeId {
            let seq = h.zoom_seq(u);
            assert_eq!(seq[0], u);
            for k in 1..seq.len() {
                assert!(
                    m.dist(seq[k - 1], seq[k]) <= m.scale(k),
                    "zoom step too long at node {u} level {k}"
                );
                assert!(h.in_level(k, seq[k]));
            }
            assert_eq!(*seq.last().unwrap(), 0, "all sequences end at the root");
        }
    }

    #[test]
    fn zoom_follows_net_parents() {
        let g = gen::grid(5, 5);
        let (_, h) = hierarchy(&g);
        for u in 0..25 as NodeId {
            let seq = h.zoom_seq(u);
            for i in 0..seq.len() - 1 {
                assert_eq!(h.net_parent(i, seq[i]), seq[i + 1]);
            }
        }
    }

    #[test]
    fn labels_are_a_bijection() {
        let g = gen::random_geometric(40, 260, 5);
        let (m, h) = hierarchy(&g);
        let mut seen = vec![false; m.n()];
        for u in 0..m.n() as NodeId {
            let l = h.label(u);
            assert!(!seen[l as usize], "duplicate label");
            seen[l as usize] = true;
            assert_eq!(h.node_of_label(l), u);
        }
    }

    #[test]
    fn range_membership_iff_on_zoom_sequence() {
        // l(u) ∈ Range(x, i) iff x = u(i)  (Section 4.1).
        let g = gen::grid(6, 4);
        let (m, h) = hierarchy(&g);
        for u in 0..m.n() as NodeId {
            let l = h.label(u);
            for i in 0..h.num_levels() {
                for &x in h.level(i) {
                    let (lo, hi) = h.range(i, x).unwrap();
                    let inside = lo <= l && l <= hi;
                    assert_eq!(inside, h.zoom(u, i) == x, "range test failed u={u} i={i} x={x}");
                }
            }
        }
    }

    #[test]
    fn ranges_partition_labels_per_level() {
        let g = gen::spider(5, 4);
        let (m, h) = hierarchy(&g);
        for i in 0..h.num_levels() {
            let mut covered = vec![false; m.n()];
            for &x in h.level(i) {
                let (lo, hi) = h.range(i, x).unwrap();
                for l in lo..=hi {
                    assert!(!covered[l as usize], "ranges overlap at level {i}");
                    covered[l as usize] = true;
                }
            }
            assert!(covered.iter().all(|&c| c), "ranges must cover all labels");
        }
    }

    #[test]
    fn net_size_bound_lemma_2_2() {
        // Lemma 2.2: |B_u(r') ∩ Y| ≤ (4r'/r)^α for an r-net Y. We check the
        // qualitative consequence used throughout: rings X_i(u) =
        // B_u(s_i/ε) ∩ Y_i have size bounded by a constant independent of n
        // for grids (α ≈ 2, ε = 1/2 → bound (8·2)^2).
        let g = gen::grid(8, 8);
        let (m, h) = hierarchy(&g);
        for i in 0..h.num_levels() {
            let r = 2 * m.scale(i); // 2^i/ε with ε = 1/2
            for u in 0..m.n() as NodeId {
                let count = h.level(i).iter().filter(|&&y| m.dist(u, y) <= r).count();
                assert!(count <= 256, "ring unexpectedly large: {count}");
            }
        }
    }

    #[test]
    fn exp_path_hierarchy_depth() {
        let g = gen::exp_weight_path(16);
        let (m, h) = hierarchy(&g);
        assert_eq!(h.num_levels(), m.num_scales());
        assert!(h.num_levels() >= 15);
    }

    #[test]
    fn single_node() {
        let g = crate::graph::GraphBuilder::new(1).build().unwrap();
        let (_, h) = hierarchy(&g);
        assert_eq!(h.num_levels(), 1);
        assert_eq!(h.label(0), 0);
        assert_eq!(h.zoom_seq(0), &[0]);
    }

    #[test]
    fn new_over_all_nodes_equals_new() {
        for g in [gen::grid(6, 6), gen::random_geometric(50, 220, 9), gen::exp_weight_path(12)] {
            let m = MetricSpace::new(&g);
            let all: Vec<NodeId> = (0..m.n() as NodeId).collect();
            assert_eq!(NetHierarchy::new(&m), NetHierarchy::new_over(&m, &all));
        }
    }

    #[test]
    fn new_over_subset_has_overlay_invariants() {
        let m = MetricSpace::new(&gen::grid(6, 6));
        let active: Vec<NodeId> = (0..36).filter(|v| v % 3 != 0).collect();
        let h = NetHierarchy::new_over(&m, &active);
        assert_eq!(h.active_nodes(), &active[..]);
        assert_eq!(h.num_active(), active.len());
        for u in 0..36 as NodeId {
            if active.binary_search(&u).is_ok() {
                assert!(h.is_active(u));
                assert!(h.label(u) < active.len() as u32);
                assert_eq!(*h.zoom_seq(u).last().unwrap(), active[0]);
            } else {
                assert!(!h.is_active(u));
                assert_eq!(h.label(u), INACTIVE_LABEL);
                assert!(h.zoom_seq(u).is_empty());
            }
        }
        // Packing and covering hold within the active set.
        for i in 0..h.num_levels() {
            let s = m.scale(i);
            let y = h.level(i);
            for (a, &p) in y.iter().enumerate() {
                for &q in &y[a + 1..] {
                    assert!(m.dist(p, q) >= s, "packing violated at level {i}");
                }
            }
            for &u in &active {
                let d = y.iter().map(|&p| m.dist(u, p)).min().unwrap();
                assert!(d <= s, "covering violated at level {i} for node {u}");
            }
        }
    }

    /// Tiny deterministic LCG for churn sequences.
    fn lcg(seed: &mut u64) -> u64 {
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *seed >> 33
    }

    fn random_batch(active: &[bool], seed: &mut u64, events: usize) -> ChurnBatch {
        let n = active.len();
        let mut joins = Vec::new();
        let mut leaves = Vec::new();
        let mut act = active.to_vec();
        let mut touched = vec![false; n];
        for _ in 0..events {
            let v = (lcg(seed) as usize % n) as NodeId;
            if touched[v as usize] {
                continue;
            }
            if act[v as usize] {
                if act.iter().filter(|&&a| a).count() > 1 {
                    leaves.push(v);
                    act[v as usize] = false;
                    touched[v as usize] = true;
                }
            } else {
                joins.push(v);
                act[v as usize] = true;
                touched[v as usize] = true;
            }
        }
        ChurnBatch::new(joins, leaves)
    }

    #[test]
    fn apply_churn_matches_from_scratch_rebuild() {
        for g in [gen::grid(6, 6), gen::random_geometric(48, 230, 17)] {
            let m = MetricSpace::new(&g);
            let n = m.n();
            let mut h = NetHierarchy::new(&m);
            let mut active = vec![true; n];
            let mut seed = 0xfeed_beefu64;
            for round in 0..6 {
                let batch = random_batch(&active, &mut seed, 5);
                if batch.is_empty() {
                    continue;
                }
                let rep = h.apply_churn(&m, &batch, &NetRepairBudget::unbounded());
                assert_eq!(rep.deltas.len(), h.num_levels());
                assert!(rep.scoped_rebuilds.is_empty());
                for &v in &batch.leaves {
                    active[v as usize] = false;
                }
                for &v in &batch.joins {
                    active[v as usize] = true;
                }
                let ids: Vec<NodeId> = (0..n as NodeId).filter(|&v| active[v as usize]).collect();
                let fresh = NetHierarchy::new_over(&m, &ids);
                assert_eq!(h, fresh, "repair diverged from rebuild at round {round}");
            }
        }
    }

    #[test]
    fn apply_churn_adversarial_root_leave() {
        // Node 0 is the top singleton; removing it cascades a new seed
        // through every level. Repair must still match the rebuild.
        let m = MetricSpace::new(&gen::grid(6, 6));
        let mut h = NetHierarchy::new(&m);
        let batch = ChurnBatch::new(vec![], vec![0]);
        let rep = h.apply_churn(&m, &batch, &NetRepairBudget::unbounded());
        assert!(!rep.deltas[h.num_levels() - 1].is_empty(), "root must change");
        let ids: Vec<NodeId> = (1..36).collect();
        assert_eq!(h, NetHierarchy::new_over(&m, &ids));
        // And the node can come back.
        let rep =
            h.apply_churn(&m, &ChurnBatch::new(vec![0], vec![]), &NetRepairBudget::unbounded());
        assert!(rep.total_changes() > 0);
        assert_eq!(h, NetHierarchy::new(&m));
    }

    #[test]
    fn apply_churn_scoped_rebuild_under_tiny_budget_is_still_exact() {
        let m = MetricSpace::new(&gen::grid(6, 6));
        let mut h = NetHierarchy::new(&m);
        // Removing a mid-grid node with a 1-eval budget forces the scoped
        // per-level greedy fallback on every level it touched.
        let batch = ChurnBatch::new(vec![], vec![14]);
        let rep = h.apply_churn(&m, &batch, &NetRepairBudget::per_level(1));
        assert!(!rep.scoped_rebuilds.is_empty(), "budget must trip");
        let ids: Vec<NodeId> = (0..36).filter(|&v| v != 14).collect();
        assert_eq!(h, NetHierarchy::new_over(&m, &ids));
    }

    #[test]
    fn churn_batch_validation_errors() {
        let active = vec![true, true, false, true];
        let ok = ChurnBatch::new(vec![2], vec![0]);
        assert!(ok.validate(&active).is_ok());
        assert_eq!(
            ChurnBatch::new(vec![9], vec![]).validate(&active),
            Err(ChurnBatchError::OutOfRange(9))
        );
        assert_eq!(
            ChurnBatch::new(vec![0], vec![]).validate(&active),
            Err(ChurnBatchError::AlreadyActive(0))
        );
        assert_eq!(
            ChurnBatch::new(vec![], vec![2]).validate(&active),
            Err(ChurnBatchError::NotActive(2))
        );
        assert_eq!(
            ChurnBatch::new(vec![2], vec![2]).validate(&active),
            Err(ChurnBatchError::Overlap(2))
        );
        assert_eq!(
            ChurnBatch::new(vec![], vec![0, 1, 3]).validate(&active),
            Err(ChurnBatchError::EmptiesActiveSet)
        );
    }
}
