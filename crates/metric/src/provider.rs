//! Distance backends: the [`DistanceProvider`] trait and its three
//! implementations.
//!
//! Everything above the metric layer — evaluation, conformance audits, the
//! recovery runtime — historically read distances straight out of the dense
//! all-pairs matrix inside [`MetricSpace`], which caps every consumer at the
//! `Θ(n²)` wall. This module abstracts *where a distance comes from* so each
//! consumer can pick the cheapest backend that still honours its exactness
//! requirement:
//!
//! | Backend | Exact? | Memory | Per-query cost |
//! |---|---|---|---|
//! | [`MetricSpace`] / [`Apsp`] | yes | `Θ(n²)` | `O(1)` |
//! | [`OnDemandDijkstra`] | yes | `O(capacity · n)` | amortised one Dijkstra per distinct source, then `O(1)` |
//! | [`LandmarkEstimator`] | **no** (bracket only) | `O(k · n)` | `O(k)` |
//!
//! Exactness is part of the contract, not a quality-of-implementation
//! detail: conformance certificates and differential oracles must use an
//! exact backend ([`DistanceProvider::is_exact`] returns `true`), while
//! sampled-pair evaluation at large `n` may use the landmark bracket,
//! whose lower/upper bounds provably contain the true distance (triangle
//! inequality both ways). All backends are deterministic pure functions of
//! the input graph — caching and eviction order can change *cost*, never
//! *values* — so every result document built on them stays byte-identical
//! at any `--threads`.
//!
//! # Example: exact vs. estimated usage
//!
//! ```rust
//! use doubling_metric::gen;
//! use doubling_metric::provider::{DistanceProvider, LandmarkEstimator, OnDemandDijkstra};
//! use doubling_metric::MetricSpace;
//! use std::sync::Arc;
//!
//! let g = Arc::new(gen::grid(6, 6));
//! let m = MetricSpace::from_shared(Arc::clone(&g), 1);
//!
//! // Exact backends agree bit-for-bit with the dense matrix…
//! let lazy = OnDemandDijkstra::new(Arc::clone(&g), 8);
//! assert!(lazy.is_exact());
//! assert_eq!(lazy.dist(0, 35), m.dist(0, 35));
//!
//! // …while the landmark estimator only brackets the true distance.
//! let lm = LandmarkEstimator::new(&g, 4);
//! assert!(!lm.is_exact());
//! let b = lm.dist_bounds(0, 35);
//! assert!(b.lower <= m.dist(0, 35) && m.dist(0, 35) <= b.upper);
//! ```

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::graph::{Dist, Graph, NodeId, INFINITY};
use crate::shortest_paths::{dijkstra_into, Apsp};
use crate::space::MetricSpace;

/// A `[lower, upper]` bracket on a shortest-path distance.
///
/// Exact backends return `lower == upper`; the [`LandmarkEstimator`]
/// returns the best triangle-inequality bracket its landmark set yields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistBounds {
    /// Largest proven lower bound on `d(u, v)`.
    pub lower: Dist,
    /// Smallest proven upper bound on `d(u, v)` (`INFINITY` when no
    /// finite bound is known).
    pub upper: Dist,
}

impl DistBounds {
    /// The exact bracket `[d, d]`.
    pub fn exact(d: Dist) -> Self {
        DistBounds { lower: d, upper: d }
    }

    /// Whether the bracket pins the distance to a single value.
    pub fn is_exact(&self) -> bool {
        self.lower == self.upper
    }

    /// Whether `d` lies inside the bracket.
    pub fn contains(&self, d: Dist) -> bool {
        self.lower <= d && d <= self.upper
    }
}

/// A source of shortest-path distances for a fixed graph.
///
/// The contract every implementation must honour:
///
/// * **Determinism** — `dist_bounds(u, v)` is a pure function of the
///   underlying graph (and, for estimators, of their construction
///   parameters). Internal caching must never leak into results.
/// * **Soundness** — the true distance always satisfies
///   `lower ≤ d(u, v) ≤ upper`; `dist_bounds(u, u)` is `[0, 0]`.
/// * **Exactness flag** — [`DistanceProvider::is_exact`] returns `true`
///   iff `lower == upper` for *every* pair. Consumers that certify
///   theorem bounds must refuse estimated backends.
///
/// [`DistanceProvider::dist`] returns the upper bound, which for exact
/// backends *is* the distance; callers of an estimated backend should use
/// [`DistanceProvider::dist_bounds`] and carry the bracket through their
/// arithmetic instead.
pub trait DistanceProvider: Send + Sync {
    /// Number of nodes in the underlying graph.
    fn n(&self) -> usize;

    /// Whether every bracket this backend returns is a point (and thus
    /// [`DistanceProvider::dist`] is the true distance).
    fn is_exact(&self) -> bool;

    /// The `[lower, upper]` bracket on `d(u, v)`.
    fn dist_bounds(&self, u: NodeId, v: NodeId) -> DistBounds;

    /// The distance `d(u, v)` for exact backends; the *upper bound* for
    /// estimated ones (see the trait docs).
    fn dist(&self, u: NodeId, v: NodeId) -> Dist {
        self.dist_bounds(u, v).upper
    }

    /// Short machine-readable backend name for result documents.
    fn backend(&self) -> &'static str;
}

impl DistanceProvider for MetricSpace {
    fn n(&self) -> usize {
        MetricSpace::n(self)
    }

    fn is_exact(&self) -> bool {
        true
    }

    fn dist_bounds(&self, u: NodeId, v: NodeId) -> DistBounds {
        DistBounds::exact(MetricSpace::dist(self, u, v))
    }

    fn dist(&self, u: NodeId, v: NodeId) -> Dist {
        MetricSpace::dist(self, u, v)
    }

    fn backend(&self) -> &'static str {
        "apsp"
    }
}

impl DistanceProvider for Apsp {
    fn n(&self) -> usize {
        self.node_count()
    }

    fn is_exact(&self) -> bool {
        true
    }

    fn dist_bounds(&self, u: NodeId, v: NodeId) -> DistBounds {
        DistBounds::exact(Apsp::dist(self, u, v))
    }

    fn dist(&self, u: NodeId, v: NodeId) -> Dist {
        Apsp::dist(self, u, v)
    }

    fn backend(&self) -> &'static str {
        "apsp"
    }
}

/// Hit/miss/eviction counters of an [`OnDemandDijkstra`] row cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RowCacheStats {
    /// Source rows computed (cache misses).
    pub builds: u64,
    /// Queries served from a cached row.
    pub hits: u64,
    /// Rows evicted to stay within capacity.
    pub evictions: u64,
}

/// LRU store of Dijkstra source rows, guarded by the provider's mutex.
struct LruRows {
    /// `source → (distance row, last-touch tick)`.
    rows: HashMap<NodeId, (Arc<Vec<Dist>>, u64)>,
    tick: u64,
    stats: RowCacheStats,
}

/// Exact distances computed on demand: one deterministic Dijkstra per
/// distinct source, with the most recently used `capacity` rows kept.
///
/// This is the scalable *exact* backend: memory is `O(capacity · n)`
/// instead of `Θ(n²)`, and it reuses the same [`dijkstra_into`] kernel as
/// the parallel APSP build, so its rows are bit-identical to the dense
/// matrix rows at any thread count. Because rows are pure functions of
/// the graph, the eviction order affects only *when* a row is recomputed,
/// never its contents — results built on this backend are deterministic
/// regardless of access pattern or capacity.
pub struct OnDemandDijkstra {
    graph: Arc<Graph>,
    capacity: usize,
    inner: Mutex<LruRows>,
}

impl OnDemandDijkstra {
    /// A provider over `graph` keeping at most `capacity` source rows
    /// (`capacity` is clamped to ≥ 1).
    pub fn new(graph: Arc<Graph>, capacity: usize) -> Self {
        OnDemandDijkstra {
            graph,
            capacity: capacity.max(1),
            inner: Mutex::new(LruRows {
                rows: HashMap::new(),
                tick: 0,
                stats: RowCacheStats::default(),
            }),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// Maximum number of cached source rows.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The full distance row from `u` (computing it on a miss).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range for the graph.
    pub fn row(&self, u: NodeId) -> Arc<Vec<Dist>> {
        let n = self.graph.node_count();
        assert!((u as usize) < n, "source {u} out of range for n = {n}");
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some((row, touched)) = inner.rows.get_mut(&u) {
            *touched = tick;
            let row = Arc::clone(row);
            inner.stats.hits += 1;
            return row;
        }
        inner.stats.builds += 1;
        let mut dist = vec![INFINITY; n];
        let mut parent = vec![0 as NodeId; n];
        dijkstra_into(&self.graph, u, &mut dist, &mut parent);
        let row = Arc::new(dist);
        if inner.rows.len() >= self.capacity {
            // Evict the least recently touched row (tie-break by least
            // source id, though ticks are unique so it never fires).
            let victim = inner
                .rows
                .iter()
                .map(|(&src, &(_, touched))| (touched, src))
                .min()
                .map(|(_, src)| src)
                .expect("capacity >= 1 and the map is non-empty");
            inner.rows.remove(&victim);
            inner.stats.evictions += 1;
        }
        inner.rows.insert(u, (Arc::clone(&row), tick));
        row
    }

    /// Current hit/miss/eviction counters.
    pub fn stats(&self) -> RowCacheStats {
        self.inner.lock().unwrap().stats
    }
}

impl DistanceProvider for OnDemandDijkstra {
    fn n(&self) -> usize {
        self.graph.node_count()
    }

    fn is_exact(&self) -> bool {
        true
    }

    fn dist_bounds(&self, u: NodeId, v: NodeId) -> DistBounds {
        DistBounds::exact(self.dist(u, v))
    }

    fn dist(&self, u: NodeId, v: NodeId) -> Dist {
        if u == v {
            return 0;
        }
        self.row(u)[v as usize]
    }

    fn backend(&self) -> &'static str {
        "dijkstra-lru"
    }
}

/// ALT-style landmark bracket: `k` deterministic farthest-point landmarks
/// whose distance rows bound every pair by the triangle inequality.
///
/// For landmarks `L`, the bracket on `d(u, v)` is
///
/// * `lower = max_{l ∈ L} |d(l, u) − d(l, v)|`,
/// * `upper = min_{l ∈ L} d(l, u) + d(l, v)`,
///
/// both sound for any metric. Landmark selection is deterministic
/// farthest-point: start from node 0, then repeatedly add the node
/// maximising its distance to the chosen set (ties broken by least node
/// id), so the estimator is a pure function of `(graph, k)`. Memory and
/// preprocessing are `O(k · n)` — this is the backend for sampled-pair
/// evaluation at `n` far beyond the dense-matrix wall, and it is **not
/// exact**: consumers must carry [`DistBounds`] through their arithmetic.
pub struct LandmarkEstimator {
    n: usize,
    landmarks: Vec<NodeId>,
    /// `k` rows of length `n`, flat, in landmark order.
    rows: Vec<Dist>,
}

impl LandmarkEstimator {
    /// Builds the estimator with `min(k, n)` landmarks (`k` clamped ≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty.
    pub fn new(graph: &Graph, k: usize) -> Self {
        let n = graph.node_count();
        assert!(n > 0, "landmark estimator needs a non-empty graph");
        let k = k.clamp(1, n);
        let mut landmarks = Vec::with_capacity(k);
        let mut rows = Vec::with_capacity(k * n);
        let mut dist = vec![INFINITY; n];
        let mut parent = vec![0 as NodeId; n];
        // min over chosen landmarks of d(l, v); INFINITY = uncovered, so
        // farthest-point selection reaches every component first.
        let mut coverage = vec![INFINITY; n];
        let mut next = 0 as NodeId;
        for _ in 0..k {
            dijkstra_into(graph, next, &mut dist, &mut parent);
            landmarks.push(next);
            for v in 0..n {
                coverage[v] = coverage[v].min(dist[v]);
            }
            rows.extend_from_slice(&dist);
            // Farthest uncovered-or-far node, tie-break least id; skip
            // nodes already chosen (their coverage is 0).
            let far = (0..n)
                .map(|v| (coverage[v], std::cmp::Reverse(v)))
                .max()
                .map(|(_, std::cmp::Reverse(v))| v as NodeId)
                .expect("n > 0");
            next = far;
        }
        LandmarkEstimator { n, landmarks, rows }
    }

    /// The chosen landmarks, in selection order.
    pub fn landmarks(&self) -> &[NodeId] {
        &self.landmarks
    }
}

impl DistanceProvider for LandmarkEstimator {
    fn n(&self) -> usize {
        self.n
    }

    fn is_exact(&self) -> bool {
        false
    }

    fn dist_bounds(&self, u: NodeId, v: NodeId) -> DistBounds {
        if u == v {
            return DistBounds::exact(0);
        }
        let (u, v) = (u as usize, v as usize);
        let mut lower = 0;
        let mut upper = INFINITY;
        for row in self.rows.chunks_exact(self.n) {
            let (du, dv) = (row[u], row[v]);
            if du == INFINITY || dv == INFINITY {
                // u or v unreachable from this landmark: if exactly one
                // is, the pair spans components and the distance is
                // infinite; both-unreachable landmarks say nothing.
                if (du == INFINITY) != (dv == INFINITY) {
                    return DistBounds::exact(INFINITY);
                }
                continue;
            }
            lower = lower.max(du.abs_diff(dv));
            upper = upper.min(du.saturating_add(dv));
        }
        DistBounds { lower, upper }
    }

    fn backend(&self) -> &'static str {
        "landmarks"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn random_connected(n: usize, seed: u64) -> Graph {
        // The geometric generator stitches components, so this is always
        // connected with irregular weights — a good differential target.
        gen::Family::Geometric.build(n, seed)
    }

    #[test]
    fn on_demand_rows_match_apsp_row_for_row() {
        for seed in 0..6 {
            for &n in &[17, 40, 73] {
                let g = Arc::new(random_connected(n, seed));
                let apsp = Apsp::new(&g);
                let lazy = OnDemandDijkstra::new(Arc::clone(&g), 4);
                for u in 0..g.node_count() as NodeId {
                    assert_eq!(
                        lazy.row(u).as_slice(),
                        apsp.row(u),
                        "row {u} differs (n={n}, seed={seed})"
                    );
                }
            }
        }
    }

    #[test]
    fn on_demand_matches_metric_space_pairwise() {
        let g = Arc::new(gen::grid(7, 5));
        let m = MetricSpace::from_shared(Arc::clone(&g), 2);
        let lazy = OnDemandDijkstra::new(Arc::clone(&g), 3);
        for u in 0..m.n() as NodeId {
            for v in 0..m.n() as NodeId {
                assert_eq!(DistanceProvider::dist(&lazy, u, v), m.dist(u, v));
                assert!(lazy.dist_bounds(u, v).is_exact());
            }
        }
    }

    #[test]
    fn lru_evicts_least_recently_used_and_stays_correct() {
        let g = Arc::new(gen::grid(4, 4));
        let apsp = Apsp::new(&g);
        let lazy = OnDemandDijkstra::new(Arc::clone(&g), 2);
        lazy.row(0); // miss          cache: {0}
        lazy.row(1); // miss          cache: {0, 1}
        lazy.row(0); // hit           0 now fresher than 1
        lazy.row(2); // miss, evicts 1
        assert_eq!(lazy.stats(), RowCacheStats { builds: 3, hits: 1, evictions: 1 });
        lazy.row(1); // miss again (was evicted), evicts 0
        assert_eq!(lazy.stats(), RowCacheStats { builds: 4, hits: 1, evictions: 2 });
        // Values survive any amount of eviction churn.
        for u in 0..g.node_count() as NodeId {
            assert_eq!(lazy.row(u).as_slice(), apsp.row(u));
        }
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let g = Arc::new(gen::grid(3, 3));
        let lazy = OnDemandDijkstra::new(Arc::clone(&g), 0);
        assert_eq!(lazy.capacity(), 1);
        lazy.row(0);
        lazy.row(1);
        assert_eq!(lazy.stats().evictions, 1);
    }

    #[test]
    fn landmark_bounds_bracket_the_true_distance() {
        for seed in 0..8 {
            for &k in &[1, 4, 9] {
                let g = random_connected(45, seed);
                let apsp = Apsp::new(&g);
                let lm = LandmarkEstimator::new(&g, k);
                assert_eq!(lm.landmarks().len(), k);
                for u in 0..g.node_count() as NodeId {
                    for v in 0..g.node_count() as NodeId {
                        let b = lm.dist_bounds(u, v);
                        let d = apsp.dist(u, v);
                        assert!(
                            b.contains(d),
                            "bounds [{}, {}] miss d({u},{v}) = {d} (seed={seed}, k={k})",
                            b.lower,
                            b.upper
                        );
                        assert!(b.lower <= b.upper);
                    }
                }
            }
        }
    }

    #[test]
    fn landmark_bracket_is_tight_at_landmarks() {
        let g = gen::grid(6, 6);
        let lm = LandmarkEstimator::new(&g, 3);
        let apsp = Apsp::new(&g);
        // Any pair involving a landmark is pinned exactly by that
        // landmark's own row.
        for &l in lm.landmarks() {
            for v in 0..g.node_count() as NodeId {
                let b = lm.dist_bounds(l, v);
                assert!(b.is_exact());
                assert_eq!(b.upper, apsp.dist(l, v));
            }
        }
    }

    #[test]
    fn landmark_selection_is_deterministic() {
        let g = random_connected(60, 3);
        let a = LandmarkEstimator::new(&g, 5);
        let b = LandmarkEstimator::new(&g, 5);
        assert_eq!(a.landmarks(), b.landmarks());
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn exact_backends_report_exact() {
        let g = Arc::new(gen::grid(4, 4));
        let m = MetricSpace::from_shared(Arc::clone(&g), 1);
        assert!(DistanceProvider::is_exact(&m));
        assert_eq!(DistanceProvider::n(&m), 16);
        assert_eq!(m.backend(), "apsp");
        let lazy = OnDemandDijkstra::new(g, 2);
        assert!(lazy.is_exact());
        assert_eq!(lazy.backend(), "dijkstra-lru");
    }
}
