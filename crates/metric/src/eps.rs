//! Exact rational `ε` parameters.
//!
//! Every routing scheme in the paper is parameterized by a constant
//! `ε ∈ (0, 1)`; all of its decision rules are threshold comparisons such as
//! `d(u, x) ≤ 2^i/ε` or `(ε/6)·r_u(j) ≤ 2^i`. Evaluating these in floating
//! point would make tie-breaking platform- and rounding-dependent, so [`Eps`]
//! keeps `ε = num/den` as a reduced rational and evaluates every comparison
//! by cross-multiplication in `u128` — exactly.

use std::fmt;

use crate::graph::Dist;

/// Errors produced when constructing an [`Eps`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpsError {
    /// `ε` must satisfy `0 < ε < 1`.
    OutOfRange {
        /// Numerator of the rejected value.
        num: u64,
        /// Denominator of the rejected value.
        den: u64,
    },
    /// Denominator must be nonzero.
    ZeroDenominator,
}

impl fmt::Display for EpsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EpsError::OutOfRange { num, den } => {
                write!(f, "epsilon {num}/{den} not in the open interval (0, 1)")
            }
            EpsError::ZeroDenominator => write!(f, "epsilon denominator is zero"),
        }
    }
}

impl std::error::Error for EpsError {}

/// A rational `ε = num/den` with `0 < ε < 1`, compared exactly.
///
/// ```rust
/// use doubling_metric::eps::Eps;
///
/// let eps = Eps::one_over(4); // ε = 1/4
/// // 7 ≤ 2/ε  (2/ε = 8)
/// assert!(eps.mul_le(7, 2));
/// // 9 > 2/ε
/// assert!(!eps.mul_le(9, 2));
/// assert_eq!(eps.div_floor(2), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Eps {
    num: u64,
    den: u64,
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Eps {
    /// Creates `ε = num/den`, reduced to lowest terms.
    ///
    /// # Errors
    ///
    /// Returns an error unless `0 < num/den < 1`.
    pub fn new(num: u64, den: u64) -> Result<Self, EpsError> {
        if den == 0 {
            return Err(EpsError::ZeroDenominator);
        }
        if num == 0 || num >= den {
            return Err(EpsError::OutOfRange { num, den });
        }
        let g = gcd(num, den);
        Ok(Eps { num: num / g, den: den / g })
    }

    /// Creates `ε = 1/k` for `k ≥ 2`.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn one_over(k: u64) -> Self {
        assert!(k >= 2, "Eps::one_over requires k >= 2");
        Eps { num: 1, den: k }
    }

    /// Numerator of the reduced fraction.
    #[inline]
    pub fn num(&self) -> u64 {
        self.num
    }

    /// Denominator of the reduced fraction.
    #[inline]
    pub fn den(&self) -> u64 {
        self.den
    }

    /// `ε` as a float, for reporting only (never used in decisions).
    #[inline]
    pub fn as_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Exact test of `a ≤ b/ε` (equivalently `a·ε ≤ b`).
    #[inline]
    pub fn mul_le(&self, a: Dist, b: Dist) -> bool {
        (a as u128) * (self.num as u128) <= (b as u128) * (self.den as u128)
    }

    /// Exact test of `a < b/ε` (equivalently `a·ε < b`).
    #[inline]
    pub fn mul_lt(&self, a: Dist, b: Dist) -> bool {
        (a as u128) * (self.num as u128) < (b as u128) * (self.den as u128)
    }

    /// Exact test of `a ≥ b/ε`.
    #[inline]
    pub fn mul_ge(&self, a: Dist, b: Dist) -> bool {
        !self.mul_lt(a, b)
    }

    /// Exact test of `a > b/ε`.
    #[inline]
    pub fn mul_gt(&self, a: Dist, b: Dist) -> bool {
        !self.mul_le(a, b)
    }

    /// `⌊a·ε⌋`.
    #[inline]
    pub fn mul_floor(&self, a: Dist) -> Dist {
        ((a as u128) * (self.num as u128) / (self.den as u128)) as Dist
    }

    /// `⌊a/ε⌋`.
    #[inline]
    pub fn div_floor(&self, a: Dist) -> Dist {
        let v = (a as u128) * (self.den as u128) / (self.num as u128);
        v.min(u64::MAX as u128) as Dist
    }

    /// `⌈a/ε⌉`.
    #[inline]
    pub fn div_ceil(&self, a: Dist) -> Dist {
        let num = self.num as u128;
        let v = ((a as u128) * (self.den as u128)).div_ceil(num);
        v.min(u64::MAX as u128) as Dist
    }

    /// The rational `ε/k` (still exact). Used for thresholds like
    /// `(ε/6)·r_u(j) ≤ 2^i` in the definition of `R(u)`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or the scaled denominator overflows `u64`.
    pub fn div_by(&self, k: u64) -> Eps {
        assert!(k > 0, "division of epsilon by zero");
        let den = self.den.checked_mul(k).expect("epsilon denominator overflow");
        let g = gcd(self.num, den);
        Eps { num: self.num / g, den: den / g }
    }
}

impl fmt::Display for Eps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_range() {
        assert!(Eps::new(1, 2).is_ok());
        assert!(Eps::new(3, 4).is_ok());
        assert_eq!(Eps::new(0, 4).unwrap_err(), EpsError::OutOfRange { num: 0, den: 4 });
        assert_eq!(Eps::new(4, 4).unwrap_err(), EpsError::OutOfRange { num: 4, den: 4 });
        assert_eq!(Eps::new(5, 4).unwrap_err(), EpsError::OutOfRange { num: 5, den: 4 });
        assert_eq!(Eps::new(1, 0).unwrap_err(), EpsError::ZeroDenominator);
    }

    #[test]
    fn reduces_to_lowest_terms() {
        let e = Eps::new(2, 8).unwrap();
        assert_eq!((e.num(), e.den()), (1, 4));
    }

    #[test]
    fn comparisons_are_exact() {
        let e = Eps::one_over(3); // ε = 1/3, so b/ε = 3b
        assert!(e.mul_le(15, 5));
        assert!(!e.mul_lt(15, 5));
        assert!(e.mul_lt(14, 5));
        assert!(e.mul_gt(16, 5));
        assert!(e.mul_ge(15, 5));
    }

    #[test]
    fn comparisons_with_non_unit_numerator() {
        let e = Eps::new(2, 3).unwrap(); // b/ε = 3b/2
                                         // 7 ≤ 5/ε = 7.5
        assert!(e.mul_le(7, 5));
        // 8 > 7.5
        assert!(!e.mul_le(8, 5));
        assert_eq!(e.div_floor(5), 7);
        assert_eq!(e.div_ceil(5), 8);
        assert_eq!(e.mul_floor(5), 3); // ⌊10/3⌋
    }

    #[test]
    fn no_overflow_at_large_distances() {
        let e = Eps::one_over(1000);
        let big = 1u64 << 60;
        assert!(e.mul_le(big, big));
        assert!(!e.mul_gt(big, big));
        // div_floor saturates instead of overflowing.
        assert_eq!(e.div_floor(u64::MAX), u64::MAX);
    }

    #[test]
    fn div_by_scales_denominator() {
        let e = Eps::one_over(2).div_by(6); // 1/12
        assert_eq!((e.num(), e.den()), (1, 12));
        assert!(e.mul_le(12, 1));
        assert!(!e.mul_le(13, 1));
    }

    #[test]
    fn display_shows_fraction() {
        assert_eq!(Eps::one_over(8).to_string(), "1/8");
    }
}
