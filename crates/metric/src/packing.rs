//! Ball packings `ℬ_j` (Lemma 2.3, "Packing Lemma") and their Voronoi
//! assignment.
//!
//! For each `j ∈ [log n]`, `ℬ_j` is a maximal set of pairwise-disjoint
//! size-`2^j` balls, selected greedily by increasing radius from the
//! candidate set `{B_u(r_u(j)) : u ∈ V}`. Lemma 2.3 guarantees that for
//! every node `u` there is a packed ball `B ∈ ℬ_j` with center `c` such that
//! `r_c(j) ≤ r_u(j)` and `d(u, c) ≤ 2·r_u(j)` — the "witness" ball.
//!
//! Because real inputs have distance ties (grids!), a metric ball of radius
//! `r_u(j)` can contain more than `2^j` nodes. We therefore realize each
//! candidate as the canonical *nearest set*: the `2^j` nodes closest to the
//! center in `(distance, id)` order. The greedy argument of Lemma 2.3 only
//! uses that (a) each ball has exactly `2^j` nodes within radius `r_u(j)` of
//! its center and (b) balls are chosen by increasing radius, so both
//! properties survive the substitution (see DESIGN.md).
//!
//! The packing also provides, per Section 4.1, the Voronoi assignment of
//! every node to its nearest packed center (ties by least center id), which
//! induces the disjoint shortest-path trees `T_c(j)`.

use crate::graph::{Dist, NodeId};
use crate::space::MetricSpace;

/// One packed ball: `2^j` nodes nearest to `center`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedBall {
    /// Ball center `c`.
    pub center: NodeId,
    /// `r_c(j)`: distance from the center to the farthest member.
    pub radius: Dist,
    /// The members, in `(distance, id)` order from the center.
    pub nodes: Vec<NodeId>,
}

/// The ball packing `ℬ_j` for one size exponent `j`.
///
/// # Examples
///
/// ```rust
/// use doubling_metric::{gen, MetricSpace};
/// use doubling_metric::packing::BallPacking;
///
/// let m = MetricSpace::new(&gen::grid(4, 4));
/// let p = BallPacking::new(&m, 2); // disjoint balls of 4 nodes each
/// for b in p.balls() {
///     assert_eq!(b.nodes.len(), 4);
/// }
/// // Lemma 2.3(2): every node has a nearby packed ball of no larger radius.
/// let w = p.witness(&m, 5);
/// assert!(w.radius <= m.r_small(5, 2));
/// assert!(m.dist(5, w.center) <= 2 * m.r_small(5, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BallPacking {
    j: u32,
    balls: Vec<PackedBall>,
    /// `ball_of[v]` = index of the packed ball containing `v`, if any
    /// (packed balls are disjoint).
    ball_of: Vec<Option<u32>>,
    /// `voronoi[v]` = index (into `balls`) of the packed ball whose center
    /// is nearest to `v` (ties by least center id).
    voronoi: Vec<u32>,
}

impl BallPacking {
    /// Builds `ℬ_j` greedily per Lemma 2.3.
    pub fn new(m: &MetricSpace, j: u32) -> Self {
        let n = m.n();
        // Candidates sorted by (radius, center id) — the greedy order.
        let mut order: Vec<(Dist, NodeId)> =
            (0..n as NodeId).map(|u| (m.r_small(u, j), u)).collect();
        order.sort_unstable();

        let mut ball_of: Vec<Option<u32>> = vec![None; n];
        let mut balls: Vec<PackedBall> = Vec::new();
        for &(radius, u) in &order {
            let members = m.nearest_set(u, j);
            if members.iter().any(|&(_, x)| ball_of[x as usize].is_some()) {
                continue; // intersects an earlier (smaller-radius) ball
            }
            let idx = balls.len() as u32;
            let nodes: Vec<NodeId> = members.iter().map(|&(_, x)| x).collect();
            for &x in &nodes {
                ball_of[x as usize] = Some(idx);
            }
            balls.push(PackedBall { center: u, radius, nodes });
        }

        // Voronoi assignment to nearest center.
        let centers: Vec<NodeId> = balls.iter().map(|b| b.center).collect();
        let mut voronoi = vec![0u32; n];
        for v in 0..n as NodeId {
            let mut best: Option<(Dist, NodeId, u32)> = None;
            for (k, &c) in centers.iter().enumerate() {
                let d = m.dist(v, c);
                if best.is_none_or(|(bd, bc, _)| (d, c) < (bd, bc)) {
                    best = Some((d, c, k as u32));
                }
            }
            voronoi[v as usize] = best.expect("at least one ball").2;
        }

        BallPacking { j, balls, ball_of, voronoi }
    }

    /// The size exponent `j` (each ball has `min(2^j, n)` nodes).
    #[inline]
    pub fn j(&self) -> u32 {
        self.j
    }

    /// The packed balls, in greedy selection order (increasing radius).
    #[inline]
    pub fn balls(&self) -> &[PackedBall] {
        &self.balls
    }

    /// The packed ball containing `v`, if any.
    pub fn ball_of(&self, v: NodeId) -> Option<&PackedBall> {
        self.ball_of[v as usize].map(|k| &self.balls[k as usize])
    }

    /// Index (into [`Self::balls`]) of the packed ball containing `v`.
    pub fn ball_index_of(&self, v: NodeId) -> Option<u32> {
        self.ball_of[v as usize]
    }

    /// Index of the Voronoi ball of `v` (nearest center, ties by least id).
    #[inline]
    pub fn voronoi_index(&self, v: NodeId) -> u32 {
        self.voronoi[v as usize]
    }

    /// The Voronoi ball of `v`.
    #[inline]
    pub fn voronoi_ball(&self, v: NodeId) -> &PackedBall {
        &self.balls[self.voronoi[v as usize] as usize]
    }

    /// The Voronoi region `V(c, j)` of the `k`-th ball: all nodes assigned
    /// to it.
    pub fn voronoi_region(&self, k: u32) -> Vec<NodeId> {
        self.voronoi
            .iter()
            .enumerate()
            .filter_map(|(v, &b)| (b == k).then_some(v as NodeId))
            .collect()
    }

    /// The Lemma 2.3(2) witness for `u`: a packed ball `B` with center `c`
    /// such that `r_c(j) ≤ r_u(j)` and `d(u, c) ≤ 2·r_u(j)`.
    ///
    /// If `u`'s own candidate was selected this is `u`'s ball; otherwise it
    /// is the smallest-radius packed ball intersecting `u`'s candidate.
    pub fn witness(&self, m: &MetricSpace, u: NodeId) -> &PackedBall {
        if let Some(b) = self.ball_of(u) {
            if b.center == u {
                return b;
            }
        }
        let mut best: Option<(Dist, NodeId, u32)> = None;
        for &(_, x) in m.nearest_set(u, self.j) {
            if let Some(k) = self.ball_of[x as usize] {
                let b = &self.balls[k as usize];
                if best.is_none_or(|(br, bc, _)| (b.radius, b.center) < (br, bc)) {
                    best = Some((b.radius, b.center, k));
                }
            }
        }
        let (_, _, k) = best.expect("maximality: candidate intersects some packed ball");
        &self.balls[k as usize]
    }
}

/// All packings `ℬ_0, …, ℬ_{⌈log n⌉}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packings {
    packings: Vec<BallPacking>,
}

impl Packings {
    /// Builds `ℬ_j` for every `j ∈ 0..=⌈log₂ n⌉`.
    pub fn new(m: &MetricSpace) -> Self {
        let packings = (0..=m.log2_n()).map(|j| BallPacking::new(m, j)).collect();
        Packings { packings }
    }

    /// The packing for size exponent `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j > ⌈log₂ n⌉`.
    #[inline]
    pub fn at(&self, j: u32) -> &BallPacking {
        &self.packings[j as usize]
    }

    /// Number of packings (`⌈log₂ n⌉ + 1`).
    #[inline]
    pub fn len(&self) -> usize {
        self.packings.len()
    }

    /// Whether there are no packings (never true after construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.packings.is_empty()
    }

    /// Iterate over `(j, packing)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = &BallPacking> {
        self.packings.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn balls_have_exact_size_and_are_disjoint() {
        let g = gen::random_geometric(60, 230, 17);
        let m = MetricSpace::new(&g);
        for j in 0..=m.log2_n() {
            let p = BallPacking::new(&m, j);
            let want = (1usize << j).min(m.n());
            let mut seen = vec![false; m.n()];
            for b in p.balls() {
                assert_eq!(b.nodes.len(), want, "property (1) of Lemma 2.3");
                for &x in &b.nodes {
                    assert!(!seen[x as usize], "balls must be disjoint");
                    seen[x as usize] = true;
                    assert!(m.dist(b.center, x) <= b.radius);
                }
            }
        }
    }

    #[test]
    fn witness_satisfies_lemma_2_3_property_2() {
        let g = gen::grid(7, 7);
        let m = MetricSpace::new(&g);
        for j in 0..=m.log2_n() {
            let p = BallPacking::new(&m, j);
            for u in 0..m.n() as NodeId {
                let ru = m.r_small(u, j);
                let w = p.witness(&m, u);
                assert!(w.radius <= ru, "witness radius must be ≤ r_u(j)");
                assert!(
                    m.dist(u, w.center) <= 2 * ru,
                    "witness center must be within 2·r_u(j): j={j} u={u}"
                );
            }
        }
    }

    #[test]
    fn packing_is_maximal() {
        // Every node's candidate ball intersects some packed ball.
        let g = gen::spider(6, 5);
        let m = MetricSpace::new(&g);
        for j in 0..=m.log2_n() {
            let p = BallPacking::new(&m, j);
            for u in 0..m.n() as NodeId {
                let intersects =
                    m.nearest_set(u, j).iter().any(|&(_, x)| p.ball_index_of(x).is_some());
                assert!(intersects, "maximality violated at j={j}, u={u}");
            }
        }
    }

    #[test]
    fn j_zero_packs_every_singleton() {
        let g = gen::grid(4, 4);
        let m = MetricSpace::new(&g);
        let p = BallPacking::new(&m, 0);
        assert_eq!(p.balls().len(), 16);
        for b in p.balls() {
            assert_eq!(b.radius, 0);
            assert_eq!(b.nodes, vec![b.center]);
        }
    }

    #[test]
    fn voronoi_assignment_is_nearest_center() {
        let g = gen::grid(6, 5);
        let m = MetricSpace::new(&g);
        let p = BallPacking::new(&m, 3);
        for v in 0..m.n() as NodeId {
            let mine = p.voronoi_ball(v);
            for b in p.balls() {
                let dv = m.dist(v, mine.center);
                let db = m.dist(v, b.center);
                assert!((dv, mine.center) <= (db, b.center), "voronoi not nearest for v={v}");
            }
        }
    }

    #[test]
    fn voronoi_regions_partition() {
        let g = gen::random_geometric(45, 250, 23);
        let m = MetricSpace::new(&g);
        let p = BallPacking::new(&m, 2);
        let mut seen = vec![false; m.n()];
        for k in 0..p.balls().len() as u32 {
            for v in p.voronoi_region(k) {
                assert!(!seen[v as usize]);
                seen[v as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn voronoi_regions_are_shortest_path_closed() {
        // Every node on the deterministic shortest path from a Voronoi
        // center to a member of its region is itself in the region — the
        // property that makes the trees T_c(j) well-defined and disjoint.
        let g = gen::grid(6, 6);
        let m = MetricSpace::new(&g);
        for j in [1u32, 2, 3] {
            let p = BallPacking::new(&m, j);
            for v in 0..m.n() as NodeId {
                let k = p.voronoi_index(v);
                let c = p.balls()[k as usize].center;
                for x in m.path(c, v) {
                    assert_eq!(
                        p.voronoi_index(x),
                        k,
                        "path from center {c} to {v} leaves region at {x} (j={j})"
                    );
                }
            }
        }
    }

    #[test]
    fn packings_cover_all_exponents() {
        let g = gen::grid(5, 5);
        let m = MetricSpace::new(&g);
        let ps = Packings::new(&m);
        assert_eq!(ps.len() as u32, m.log2_n() + 1);
        assert!(!ps.is_empty());
        for (j, p) in ps.iter().enumerate() {
            assert_eq!(p.j(), j as u32);
        }
    }
}
