//! Property-based tests of the distance backends: on random connected
//! graphs, the on-demand Dijkstra backend must agree with the exact APSP
//! matrix row for row (at any LRU capacity), and the landmark estimator's
//! `[lower, upper]` bracket must always contain the true distance.

#![recursion_limit = "1024"]

use std::sync::Arc;

use proptest::prelude::*;

use doubling_metric::graph::{Graph, GraphBuilder};
use doubling_metric::provider::{DistanceProvider, LandmarkEstimator, OnDemandDijkstra};
use doubling_metric::shortest_paths::Apsp;

fn arb_connected_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (4usize..=max_n).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0usize..usize::MAX, 1u64..50), n - 1),
            proptest::collection::vec((0u32..n as u32, 0u32..n as u32, 1u64..50), 0..2 * n),
        )
            .prop_map(|(n, tree, extra)| {
                let mut b = GraphBuilder::new(n);
                for (c, (praw, w)) in tree.into_iter().enumerate() {
                    let child = c + 1;
                    b.edge(child as u32, (praw % child) as u32, w).unwrap();
                }
                for (u, v, w) in extra {
                    if u != v {
                        b.edge(u, v, w).unwrap();
                    }
                }
                b.build().expect("connected by construction")
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn on_demand_dijkstra_matches_apsp_row_for_row(
        g in arb_connected_graph(40),
        capacity in 1usize..6,
    ) {
        let apsp = Apsp::new(&g);
        let g = Arc::new(g);
        let lazy = OnDemandDijkstra::new(Arc::clone(&g), capacity);
        for u in 0..g.node_count() as u32 {
            prop_assert_eq!(lazy.row(u).as_slice(), apsp.row(u));
        }
        // A second sweep after eviction churn must still agree.
        for u in (0..g.node_count() as u32).rev() {
            prop_assert_eq!(lazy.row(u).as_slice(), apsp.row(u));
            prop_assert!(lazy.dist_bounds(u, 0).is_exact());
        }
    }

    #[test]
    fn landmark_estimates_bracket_the_true_distance(
        g in arb_connected_graph(40),
        k in 1usize..8,
    ) {
        let apsp = Apsp::new(&g);
        let lm = LandmarkEstimator::new(&g, k);
        prop_assert!(!lm.is_exact());
        for u in 0..g.node_count() as u32 {
            for v in 0..g.node_count() as u32 {
                let b = lm.dist_bounds(u, v);
                prop_assert!(b.lower <= b.upper);
                prop_assert!(
                    b.contains(apsp.dist(u, v)),
                    "bracket [{}, {}] misses d({}, {}) = {}",
                    b.lower, b.upper, u, v, apsp.dist(u, v)
                );
            }
        }
    }
}
