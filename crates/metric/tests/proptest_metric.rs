//! Property-based tests of the metric substrate: exact rational ε
//! arithmetic, shortest-path metric axioms, and ball/radius consistency
//! on random graphs.

use proptest::prelude::*;

use doubling_metric::eps::Eps;
use doubling_metric::graph::{Graph, GraphBuilder};
use doubling_metric::space::MetricSpace;

fn arb_connected_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2usize..=max_n).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0usize..usize::MAX, 1u64..50), n - 1),
            proptest::collection::vec((0u32..n as u32, 0u32..n as u32, 1u64..50), 0..n),
        )
            .prop_map(|(n, tree, extra)| {
                let mut b = GraphBuilder::new(n);
                for (c, (praw, w)) in tree.into_iter().enumerate() {
                    let child = c + 1;
                    b.edge(child as u32, (praw % child) as u32, w).unwrap();
                }
                for (u, v, w) in extra {
                    if u != v {
                        b.edge(u, v, w).unwrap();
                    }
                }
                b.build().expect("connected by construction")
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn eps_comparisons_match_exact_rationals(
        num in 1u64..100,
        den_extra in 1u64..100,
        a in 0u64..1_000_000,
        b in 0u64..1_000_000,
    ) {
        let den = num + den_extra; // guarantees 0 < ε < 1
        let eps = Eps::new(num, den).unwrap();
        // a ≤ b/ε ⟺ a·num ≤ b·den, checked against u128 ground truth.
        let exact = (a as u128) * (num as u128) <= (b as u128) * (den as u128);
        prop_assert_eq!(eps.mul_le(a, b), exact);
        prop_assert_eq!(eps.mul_gt(a, b), !exact);
        // Floor/ceil division consistency.
        let fl = eps.div_floor(a);
        let ce = eps.div_ceil(a);
        prop_assert!(fl <= ce);
        prop_assert!(ce - fl <= 1);
        // ⌊a·ε⌋ ≤ a for ε < 1.
        prop_assert!(eps.mul_floor(a) <= a);
    }

    #[test]
    fn metric_axioms_hold(g in arb_connected_graph(20)) {
        let m = MetricSpace::new(&g);
        let n = m.n() as u32;
        for u in 0..n {
            prop_assert_eq!(m.dist(u, u), 0);
            for v in 0..n {
                prop_assert_eq!(m.dist(u, v), m.dist(v, u));
                if u != v {
                    prop_assert!(m.dist(u, v) >= m.min_dist());
                    prop_assert!(m.dist(u, v) <= m.diameter());
                }
                for w in 0..n {
                    prop_assert!(m.dist(u, w) <= m.dist(u, v) + m.dist(v, w));
                }
            }
        }
    }

    #[test]
    fn balls_nest_and_r_small_is_consistent(g in arb_connected_graph(20)) {
        let m = MetricSpace::new(&g);
        for u in 0..m.n() as u32 {
            // Balls nest with radius.
            let mut prev = 0;
            for r in [0u64, 1, 2, 5, 13, m.diameter()] {
                let size = m.ball_size(u, r);
                prop_assert!(size >= prev);
                prev = size;
            }
            // r_small: the ball of radius r_u(j) holds ≥ min(2^j, n) nodes.
            for j in 0..=m.log2_n() {
                let r = m.r_small(u, j);
                prop_assert!(m.ball_size(u, r) >= (1usize << j).min(m.n()));
            }
        }
    }

    #[test]
    fn next_hop_makes_exact_progress(g in arb_connected_graph(16)) {
        let m = MetricSpace::new(&g);
        let n = m.n() as u32;
        for u in 0..n {
            for v in 0..n {
                if u == v { continue; }
                let h = m.next_hop(u, v).unwrap();
                let w = m.graph().edge_weight(u, h).unwrap();
                prop_assert_eq!(m.dist(u, v), w + m.dist(h, v));
            }
        }
    }

    #[test]
    fn scales_cover_the_diameter(g in arb_connected_graph(24)) {
        let m = MetricSpace::new(&g);
        prop_assert!(m.scale(m.num_scales() - 1) >= m.diameter());
        if m.num_scales() >= 3 {
            // Minimality up to the n ≥ 2 two-level floor: the next-to-top
            // scale does not yet reach the diameter.
            prop_assert!(m.scale(m.num_scales() - 2) < m.diameter());
        }
        prop_assert_eq!(m.scale(0), m.min_dist());
    }
}
