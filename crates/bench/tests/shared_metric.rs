//! Property tests for the parallel preprocessing engine and the shared
//! metric cache:
//!
//! 1. `MetricSpace` built with any thread count is **bit-identical**
//!    (`==` over every table, including the APSP matrix and sorted rows)
//!    to the sequential build, across random geometric graphs.
//! 2. All four routing schemes constructed from one shared
//!    `Arc<MetricSpace>` equal the schemes constructed from private,
//!    independently built copies of the same metric — sharing the
//!    substrate behind the cache cannot change any routing table.

use std::sync::Arc;

use proptest::prelude::*;

use bench::MetricCache;
use doubling_metric::{gen, Eps, MetricSpace};
use labeled_routing::{NetLabeled, ScaleFreeLabeled};
use name_independent::{ScaleFreeNameIndependent, SimpleNameIndependent};
use netsim::Naming;

/// Property 1 body: a `threads`-way build equals the sequential one.
fn check_parallel_identical(n: usize, radius: u64, seed: u64, threads: usize) {
    let g = Arc::new(gen::random_geometric(n, radius, seed));
    let sequential = MetricSpace::from_shared(Arc::clone(&g), 1);
    let parallel = MetricSpace::from_shared(g, threads);
    assert_eq!(sequential, parallel, "n={n} radius={radius} seed={seed} threads={threads}");
}

/// Property 2 body: every scheme built on the cache's shared metric
/// equals the same scheme built on a private sequential metric.
fn check_schemes_from_shared_metric(n: usize, radius: u64, seed: u64, threads: usize) {
    let g = gen::random_geometric(n, radius, seed);
    let eps = Eps::one_over(8);
    let naming = Naming::random(g.node_count(), seed ^ 0xA5);

    // One cached metric shared by all four schemes...
    let cache = MetricCache::new(threads);
    let shared = cache.get_or_build("geo", n, seed, || g.clone());
    // ...versus a private sequential metric per scheme.
    let private = MetricSpace::new(&g);
    assert_eq!(&private, shared.as_ref());

    let nl = NetLabeled::new(&shared, eps).unwrap();
    assert_eq!(nl, NetLabeled::new(&private, eps).unwrap());

    let sf = ScaleFreeLabeled::new(&shared, eps).unwrap();
    assert_eq!(sf, ScaleFreeLabeled::new(&private, eps).unwrap());

    let ni = SimpleNameIndependent::new(&shared, eps, naming.clone()).unwrap();
    assert_eq!(ni, SimpleNameIndependent::new(&private, eps, naming.clone()).unwrap());

    let sfni = ScaleFreeNameIndependent::new(&shared, eps, naming.clone()).unwrap();
    assert_eq!(sfni, ScaleFreeNameIndependent::new(&private, eps, naming).unwrap());

    // The four scheme constructions hit the cache's single build.
    let again = cache.get_or_build("geo", n, seed, || unreachable!("must hit"));
    assert_eq!(again.as_ref(), shared.as_ref());
    assert_eq!(cache.stats().builds, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // `random_geometric` links nodes within `radius` on a 1000×1000 grid
    // and adds a path fallback, so any (n, radius, seed) triple is valid.
    #[test]
    fn parallel_build_is_bit_identical(
        n in 4usize..=32,
        radius in 150u64..=500,
        seed in 0u64..=u64::MAX,
        threads in 2usize..=8,
    ) {
        check_parallel_identical(n, radius, seed, threads);
    }

    #[test]
    fn schemes_from_shared_metric_equal_private_builds(
        n in 4usize..=24,
        radius in 150u64..=500,
        seed in 0u64..=u64::MAX,
        threads in 1usize..=4,
    ) {
        check_schemes_from_shared_metric(n, radius, seed, threads);
    }
}
