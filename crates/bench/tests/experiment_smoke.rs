//! Smoke tests for every experiment runner: each must produce
//! well-formed, failure-free rows on small inputs (regression guard for
//! the table/figure binaries).

use bench::experiments::*;
use bench::MetricCache;
use doubling_metric::Eps;

fn cache() -> MetricCache {
    MetricCache::new(2)
}

#[test]
fn fig1_rows_cover_rounds() {
    let (h, rows) = run_fig1(&cache(), 49, Eps::one_over(8), 3);
    assert_eq!(h.len(), 8);
    assert!(!rows.is_empty());
    // Rounds within a family must be strictly increasing and distances
    // must grow with the round.
    let grid_rows: Vec<_> = rows.iter().filter(|r| r[0] == "grid").collect();
    for w in grid_rows.windows(2) {
        let r0: u32 = w[0][1].parse().unwrap();
        let r1: u32 = w[1][1].parse().unwrap();
        assert!(r1 > r0);
        let d0: f64 = w[0][3].parse().unwrap();
        let d1: f64 = w[1][3].parse().unwrap();
        assert!(d1 >= d0, "distance must grow with the found round");
    }
}

#[test]
fn fig2_shows_greedy_on_grid_and_packing_on_exp_path() {
    let (_, rows) = run_fig2(&cache(), Eps::one_over(8), 3);
    assert!(rows.iter().any(|r| r[0] == "grid" && r[1] == "greedy-only"));
    assert!(
        rows.iter().any(|r| r[0] == "exp-path" && r[1] == "packing"),
        "exp-path must exercise the packing phase: {rows:?}"
    );
    // Stretch column stays within 1+O(eps).
    for r in &rows {
        let stretch: f64 = r.last().unwrap().parse().unwrap();
        assert!(stretch <= 1.6, "labeled stretch {stretch} in {r:?}");
    }
}

#[test]
fn fig3_advice_curve_is_monotone() {
    let (_, rows) = run_fig3_advice(4);
    let values: Vec<f64> = rows.iter().map(|r| r[1].parse().unwrap()).collect();
    for w in values.windows(2) {
        assert!(w[1] <= w[0] + 1e-9, "advice curve must be nonincreasing: {values:?}");
    }
    assert!((values.last().unwrap() - 1.0).abs() < 1e-9);
}

#[test]
fn sweep_eps_labeled_stretch_monotone() {
    let (_, rows) = run_sweep_eps(&cache(), 49, 3);
    let nl: Vec<f64> =
        rows.iter().filter(|r| r[1] == "net-labeled").map(|r| r[2].parse().unwrap()).collect();
    assert!(nl.len() >= 3);
    for w in nl.windows(2) {
        assert!(w[1] <= w[0] + 1e-9, "labeled stretch must shrink with eps: {nl:?}");
    }
}

#[test]
fn ablation_rows_are_well_formed() {
    let (h1, r1) = run_ablation_rings(&cache(), 3);
    assert_eq!(r1.len(), 2);
    assert_eq!(h1.len(), r1[0].len());
    // On the exp-path, R(u) must prune a majority of levels.
    let exp = &r1[1];
    let total: f64 = exp[1].parse().unwrap();
    let kept: f64 = exp[2].parse().unwrap();
    assert!(kept * 2.0 < total, "R(u) must prune: kept {kept} of {total}");

    let (_, r2) = run_ablation_packing(&cache(), 3);
    for row in &r2 {
        let frac: f64 = row[1].parse().unwrap();
        assert!((0.0..=1.0).contains(&frac));
        assert!(frac > 0.3, "packing reuse should be substantial: {row:?}");
    }
}

#[test]
fn relaxed_quantiles_are_ordered() {
    let (_, rows) = run_relaxed(&cache(), 49, 3);
    for r in &rows {
        let p50: f64 = r[3].parse().unwrap();
        let p90: f64 = r[4].parse().unwrap();
        let p99: f64 = r[5].parse().unwrap();
        let max: f64 = r[6].parse().unwrap();
        assert!(p50 <= p90 && p90 <= p99 && p99 <= max, "{r:?}");
    }
}

#[test]
fn storage_growth_ratio_falls() {
    let (_, rows) = run_storage_growth(&cache(), &[64, 144, 256], 3);
    let ratios: Vec<f64> = rows.iter().map(|r| r[4].parse().unwrap()).collect();
    // Non-monotone wobble is possible at tiny n (level-count steps); the
    // end-to-end trend must still fall.
    assert!(
        ratios.last().unwrap() < ratios.first().unwrap(),
        "compact/full ratio must trend down: {ratios:?}"
    );
}
