//! Golden-file schema tests: the committed experiment outputs under
//! `results/` must stay parseable by `netsim::json` and keep their
//! `schema_version` and required top-level keys. Downstream tooling (CI
//! artifact diffs, the README tables) reads these files by key — a silent
//! rename or a dropped field is a breaking change this test catches.

use netsim::json::Value;

fn load(name: &str) -> Value {
    let path = format!("{}/../../results/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("golden file {path} must be committed: {e}"));
    Value::parse(&text).unwrap_or_else(|e| panic!("{name} is not valid JSON: {e}"))
}

fn assert_keys(doc: &Value, name: &str, required: &[&str]) {
    let Value::Object(fields) = doc else {
        panic!("{name}: top level must be an object");
    };
    assert_eq!(
        fields.first().map(|(k, _)| k.as_str()),
        Some("schema_version"),
        "{name}: schema_version must be the first key"
    );
    for key in required {
        assert!(
            fields.iter().any(|(k, _)| k == key),
            "{name}: missing required top-level key {key:?} (has {:?})",
            fields.iter().map(|(k, _)| k).collect::<Vec<_>>()
        );
    }
}

fn schema_version(doc: &Value) -> i64 {
    match doc {
        Value::Object(fields) => match fields.iter().find(|(k, _)| k == "schema_version") {
            Some((_, Value::Int(v))) => *v,
            other => panic!("schema_version must be an integer, got {other:?}"),
        },
        _ => panic!("top level must be an object"),
    }
}

#[test]
fn recovery_json_schema_is_stable() {
    let doc = load("recovery.json");
    assert_eq!(schema_version(&doc), 1);
    assert_keys(
        &doc,
        "recovery.json",
        &[
            "schema_version",
            "family",
            "n",
            "eps",
            "pairs",
            "fraction",
            "seed",
            "policies",
            "metric_cache",
            "strategies",
            "chaos",
        ],
    );
}

#[test]
fn churn_json_schema_is_stable() {
    let doc = load("churn.json");
    assert_eq!(schema_version(&doc), 1);
    assert_keys(
        &doc,
        "churn.json",
        &["schema_version", "family", "n", "eps", "pairs", "seed", "metric_cache", "cells"],
    );
}

#[test]
fn scale_json_schema_is_stable() {
    let doc = load("scale.json");
    assert_eq!(schema_version(&doc), 1);
    assert_keys(
        &doc,
        "scale.json",
        &[
            "schema_version",
            "experiment",
            "family",
            "seed",
            "eps",
            "pairs_per_cell",
            "threads",
            "stable",
            "all_deterministic",
            "instances",
            "cells",
        ],
    );

    // The committed sweep must have certified backend agreement on every
    // cell — the flag the scale binary enforces when it writes the file.
    let Value::Object(fields) = &doc else { unreachable!() };
    match fields.iter().find(|(k, _)| k == "all_deterministic") {
        Some((_, Value::Bool(true))) => {}
        other => panic!("committed scale.json must have all_deterministic=true, got {other:?}"),
    }
}

#[test]
fn profile_json_schema_is_stable() {
    let doc = load("profile.json");
    assert_eq!(schema_version(&doc), 1);
    assert_keys(
        &doc,
        "profile.json",
        &[
            "schema_version",
            "experiment",
            "n",
            "eps",
            "pairs",
            "seed",
            "threads",
            "metric_cache",
            "telemetry",
            "entries",
        ],
    );
}

#[test]
fn report_json_schema_is_stable() {
    let doc = load("report.json");
    assert_eq!(schema_version(&doc), 1);
    assert_keys(
        &doc,
        "report.json",
        &["schema_version", "experiment", "tolerances", "sections", "summary"],
    );

    // The committed report must certify the committed results against the
    // committed baselines: pass=true with nothing skipped.
    let Value::Object(fields) = &doc else { unreachable!() };
    let (_, summary) = fields.iter().find(|(k, _)| k == "summary").expect("summary present");
    let Value::Object(summary) = summary else {
        panic!("summary must be an object");
    };
    match summary.iter().find(|(k, _)| k == "pass") {
        Some((_, Value::Bool(true))) => {}
        other => panic!("committed report.json must have pass=true, got {other:?}"),
    }
    match summary.iter().find(|(k, _)| k == "regressions") {
        Some((_, Value::Int(0))) => {}
        other => panic!("committed report.json must have 0 regressions, got {other:?}"),
    }
}

#[test]
fn conformance_json_schema_is_stable() {
    let doc = load("conformance.json");
    assert_eq!(schema_version(&doc), 1);
    assert_keys(
        &doc,
        "conformance.json",
        &[
            "schema_version",
            "families",
            "ns",
            "eps",
            "seed",
            "num_seeds",
            "metric_cache",
            "cells",
            "lower_bound",
            "summary",
        ],
    );

    // The committed file must be a *passing* certificate set: the summary
    // records the verdict the conformance binary enforced when it wrote it.
    let Value::Object(fields) = &doc else { unreachable!() };
    let (_, summary) = fields.iter().find(|(k, _)| k == "summary").expect("summary present");
    let Value::Object(summary) = summary else {
        panic!("summary must be an object");
    };
    match summary.iter().find(|(k, _)| k == "all_pass") {
        Some((_, Value::Bool(true))) => {}
        other => panic!("committed conformance.json must have all_pass=true, got {other:?}"),
    }
}

#[test]
fn serve_json_schema_is_stable() {
    let doc = load("serve.json");
    assert_eq!(schema_version(&doc), 1);
    assert_keys(
        &doc,
        "serve.json",
        &[
            "schema_version",
            "experiment",
            "family",
            "n",
            "seed",
            "eps",
            "queries_per_cell",
            "zipf_theta",
            "phases",
            "worker_grid",
            "host_parallelism",
            "stable",
            "total_queries",
            "divergences",
            "failures",
            "all_deterministic",
            "multi_faster_all",
            "cells",
            "verify",
        ],
    );

    // The committed artifact is the T1 acceptance certificate: ≥ 1M route
    // queries served across all cells, every one differentially verified
    // against the reference scheme with zero divergences, identical
    // aggregates at every worker count — and, when the artifact was
    // generated on a multi-core host, the widest worker cell strictly
    // out-throughputting the 1-worker cell for every scheme (on a
    // single-core generator the speedup claim is vacuous; the recorded
    // `host_parallelism` keeps the certificate honest about which it is).
    assert!(
        doc.get("total_queries").and_then(Value::as_u64).unwrap() >= 1_000_000,
        "committed serve.json must cover at least 1M queries"
    );
    assert_eq!(doc.get("divergences").and_then(Value::as_u64), Some(0));
    assert_eq!(doc.get("failures").and_then(Value::as_u64), Some(0));
    assert_eq!(doc.get("all_deterministic").and_then(Value::as_bool), Some(true));
    let host = doc.get("host_parallelism").and_then(Value::as_u64).expect("host_parallelism");
    assert!(host >= 1, "committed artifact must not be a --stable run");
    let multi_core = host > 1;
    if multi_core {
        assert_eq!(doc.get("multi_faster_all").and_then(Value::as_bool), Some(true));
    } else {
        assert!(
            doc.get("multi_faster_all").and_then(Value::as_bool).is_some(),
            "multi_faster_all must still be recorded (not pinned) in the committed artifact"
        );
    }

    let cells = doc.get("cells").and_then(Value::as_array).expect("cells array");
    let workers = doc.get("worker_grid").and_then(Value::as_array).expect("worker grid");
    let schemes = ["net-labeled", "scale-free-labeled", "simple-NI", "scale-free-NI"];
    assert_eq!(cells.len(), schemes.len() * workers.len());
    let qps_of = |scheme: &str, workers: u64| {
        cells
            .iter()
            .find(|c| {
                c.get("scheme").and_then(Value::as_str) == Some(scheme)
                    && c.get("workers").and_then(Value::as_u64) == Some(workers)
            })
            .and_then(|c| c.get("qps"))
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("missing qps for {scheme}@{workers}"))
    };
    let widest = workers.iter().filter_map(Value::as_u64).max().unwrap();
    for scheme in schemes {
        for c in cells.iter().filter(|c| c.get("scheme").and_then(Value::as_str) == Some(scheme)) {
            assert_eq!(c.get("failures").and_then(Value::as_u64), Some(0));
            assert_eq!(c.get("deterministic").and_then(Value::as_bool), Some(true));
        }
        assert!(qps_of(scheme, 1) > 0.0, "{scheme}: committed artifact must record throughput");
        if multi_core {
            assert!(
                qps_of(scheme, widest) > qps_of(scheme, 1),
                "{scheme}: {widest}-worker throughput must beat single-thread"
            );
        }
    }

    // Every scheme's differential pass covered the full stream cleanly.
    for v in doc.get("verify").and_then(Value::as_array).expect("verify array") {
        assert_eq!(v.get("divergences").and_then(Value::as_u64), Some(0));
        assert!(v.get("queries").and_then(Value::as_u64).unwrap() > 0);
    }
}

#[test]
fn maintain_json_schema_is_stable() {
    let doc = load("maintain.json");
    assert_eq!(schema_version(&doc), 1);
    assert_keys(
        &doc,
        "maintain.json",
        &[
            "schema_version",
            "experiment",
            "family",
            "eps",
            "seed",
            "leave_batches",
            "rates",
            "audit_pairs",
            "stable",
            "metric_cache",
            "cells",
            "adversarial",
        ],
    );

    // The committed file must certify every batch, prove repair ≡ rebuild,
    // and show amortized repair strictly below full rebuild at n ≥ 2000 —
    // the M1 acceptance criteria baked into the golden artifact.
    let cells = doc.get("cells").and_then(Value::as_array).expect("cells array");
    assert!(!cells.is_empty());
    let mut large_n_seen = false;
    for c in cells {
        let key = format!(
            "n={:?} scheme={:?} per_batch={:?}",
            c.get("n"),
            c.get("scheme"),
            c.get("per_batch")
        );
        assert_eq!(c.get("audit_failures").and_then(Value::as_u64), Some(0), "{key}");
        assert_eq!(c.get("repair_equals_rebuild").and_then(Value::as_bool), Some(true), "{key}");
        let n = c.get("n").and_then(Value::as_u64).expect("n");
        if n >= 2000 {
            large_n_seen = true;
            let repair = c.get("amortized_repair_us").and_then(Value::as_f64).unwrap();
            let rebuild = c.get("amortized_rebuild_us").and_then(Value::as_f64).unwrap();
            assert!(repair < rebuild, "{key}: repair {repair} not below rebuild {rebuild}");
        }
    }
    assert!(large_n_seen, "grid must include an n >= 2000 cell");

    // The adversarial net-center cell fired the fallback ladder and the
    // maintainer recovered.
    let adv = doc.get("adversarial").expect("adversarial cell");
    assert!(adv.get("fallbacks").and_then(Value::as_u64).unwrap() > 0);
    assert_eq!(adv.get("recovered").and_then(Value::as_bool), Some(true));
}
