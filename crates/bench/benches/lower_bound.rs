//! Lower-bound machinery benchmarks: Figure-3 tree construction and
//! search-game evaluation/optimization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lowerbound::{game, LbParams, LowerBoundTree};

fn bench_lower_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("lower-bound");
    group.sample_size(10);
    for &eps in &[2u64, 4] {
        let params = LbParams::from_eps(eps, 1);
        group.bench_with_input(BenchmarkId::new("tree-build", eps), &eps, |b, _| {
            b.iter(|| LowerBoundTree::new(params, 1 << 16))
        });
        let t = LowerBoundTree::new(params, 1 << 16);
        let order = game::increasing_weight_order(&t);
        group.bench_with_input(BenchmarkId::new("game-eval", eps), &eps, |b, _| {
            b.iter(|| game::worst_case_stretch(&t, &order))
        });
        group.bench_with_input(BenchmarkId::new("game-optimize-500", eps), &eps, |b, _| {
            b.iter(|| game::optimize_order(&t, 500, 7))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lower_bound);
criterion_main!(benches);
