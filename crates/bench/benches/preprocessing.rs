//! Preprocessing-time benchmarks: how long each scheme takes to build its
//! tables (the "preprocessing step" of the paper's model).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use doubling_metric::{gen, Eps, MetricSpace};
use labeled_routing::{NetLabeled, ScaleFreeLabeled};
use name_independent::{ScaleFreeNameIndependent, SimpleNameIndependent};
use netsim::Naming;

fn bench_preprocessing(c: &mut Criterion) {
    let mut group = c.benchmark_group("preprocessing");
    group.sample_size(10);
    for &n in &[64usize, 144] {
        let g = gen::Family::Grid.build(n, 7);
        let m = MetricSpace::new(&g);
        let eps = Eps::one_over(8);
        group.bench_with_input(BenchmarkId::new("metric", n), &n, |b, _| {
            b.iter(|| MetricSpace::new(&g))
        });
        group.bench_with_input(BenchmarkId::new("net-labeled", n), &n, |b, _| {
            b.iter(|| NetLabeled::new(&m, eps).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("scale-free-labeled", n), &n, |b, _| {
            b.iter(|| ScaleFreeLabeled::new(&m, eps).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("simple-ni", n), &n, |b, _| {
            b.iter(|| SimpleNameIndependent::new(&m, eps, Naming::random(m.n(), 3)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("scale-free-ni", n), &n, |b, _| {
            b.iter(|| ScaleFreeNameIndependent::new(&m, eps, Naming::random(m.n(), 3)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_preprocessing);
criterion_main!(benches);
