//! Substrate benchmarks: the geometric data structures everything is
//! built on — all-pairs shortest paths, net hierarchies, ball packings,
//! search-tree construction and lookup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use doubling_metric::nets::NetHierarchy;
use doubling_metric::packing::Packings;
use doubling_metric::{gen, Eps, MetricSpace};
use searchtree::{SearchTree, SearchTreeConfig};

fn bench_substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");
    group.sample_size(10);
    for &n in &[100usize, 256] {
        let g = gen::Family::Geometric.build(n, 5);
        group.bench_with_input(BenchmarkId::new("apsp+metric", n), &n, |b, _| {
            b.iter(|| MetricSpace::new(&g))
        });
        let m = MetricSpace::new(&g);
        group.bench_with_input(BenchmarkId::new("net-hierarchy", n), &n, |b, _| {
            b.iter(|| NetHierarchy::new(&m))
        });
        group.bench_with_input(BenchmarkId::new("ball-packings", n), &n, |b, _| {
            b.iter(|| Packings::new(&m))
        });

        let eps = Eps::one_over(8);
        let r = m.diameter() / 2;
        let ball: Vec<u32> = m.ball(0, r).iter().map(|&(_, x)| x).collect();
        let pairs: Vec<(u64, u32)> = ball.iter().map(|&x| (x as u64, x)).collect();
        group.bench_with_input(BenchmarkId::new("search-tree-build", n), &n, |b, _| {
            b.iter(|| {
                SearchTree::new(
                    &m,
                    0,
                    &ball,
                    SearchTreeConfig { eps_r: eps.mul_floor(r).max(1), max_levels: None },
                    pairs.clone(),
                )
            })
        });
        let st = SearchTree::new(
            &m,
            0,
            &ball,
            SearchTreeConfig { eps_r: eps.mul_floor(r).max(1), max_levels: None },
            pairs.clone(),
        );
        group.bench_with_input(BenchmarkId::new("search-tree-lookup", n), &n, |b, _| {
            b.iter(|| {
                for &x in &ball {
                    st.search(x as u64);
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_substrate);
criterion_main!(benches);
