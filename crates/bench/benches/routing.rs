//! Routing-latency benchmarks: per-route simulation cost for each scheme
//! (this times the simulator's execution of the hop-by-hop algorithm, not
//! wire latency — the paper's cost metric is the path length, reported by
//! the table/figure binaries instead).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use doubling_metric::{gen, Eps, MetricSpace};
use labeled_routing::{NetLabeled, ScaleFreeLabeled};
use name_independent::{ScaleFreeNameIndependent, SimpleNameIndependent};
use netsim::baseline::FullTable;
use netsim::scheme::{LabeledScheme, NameIndependentScheme};
use netsim::stats::sample_pairs;
use netsim::Naming;

fn bench_routing(c: &mut Criterion) {
    let n = 144usize;
    let g = gen::Family::Grid.build(n, 7);
    let m = MetricSpace::new(&g);
    let eps = Eps::one_over(8);
    let naming = Naming::random(m.n(), 3);
    let pairs = sample_pairs(m.n(), 64, 9);

    let full = FullTable::with_naming(&m, naming.clone());
    let nl = NetLabeled::new(&m, eps).unwrap();
    let sfl = ScaleFreeLabeled::new(&m, eps).unwrap();
    let sni = SimpleNameIndependent::new(&m, eps, naming.clone()).unwrap();
    let sfni = ScaleFreeNameIndependent::new(&m, eps, naming.clone()).unwrap();

    let mut group = c.benchmark_group("routing");
    group.bench_with_input(BenchmarkId::new("full-table", n), &n, |b, _| {
        b.iter(|| {
            for &(u, v) in &pairs {
                LabeledScheme::route(&full, &m, u, LabeledScheme::label_of(&full, v)).unwrap();
            }
        })
    });
    group.bench_with_input(BenchmarkId::new("net-labeled", n), &n, |b, _| {
        b.iter(|| {
            for &(u, v) in &pairs {
                nl.route(&m, u, nl.label_of(v)).unwrap();
            }
        })
    });
    group.bench_with_input(BenchmarkId::new("scale-free-labeled", n), &n, |b, _| {
        b.iter(|| {
            for &(u, v) in &pairs {
                sfl.route(&m, u, sfl.label_of(v)).unwrap();
            }
        })
    });
    group.bench_with_input(BenchmarkId::new("simple-ni", n), &n, |b, _| {
        b.iter(|| {
            for &(u, v) in &pairs {
                sni.route(&m, u, naming.name_of(v)).unwrap();
            }
        })
    });
    group.bench_with_input(BenchmarkId::new("scale-free-ni", n), &n, |b, _| {
        b.iter(|| {
            for &(u, v) in &pairs {
                sfni.route(&m, u, naming.name_of(v)).unwrap();
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
