//! Forwarding-plane benchmarks: single-thread `next_hop` cost, packed
//! versus unpacked, per scheme.
//!
//! "Unpacked" is the reference scheme answering the same question through
//! its pointer-rich tables (first hop of a full reference route);
//! "packed/route" is the plane's full hop-identical route; "packed" is
//! the plane's [`netsim::plane::ForwardingPlane::next_hop`] — the ns/op
//! number the serving engine's throughput rests on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use doubling_metric::{gen, Eps, MetricSpace};
use labeled_routing::{NetLabeled, NetLabeledPlane, ScaleFreeLabeled, ScaleFreeLabeledPlane};
use name_independent::{
    ScaleFreeNameIndependent, ScaleFreeNiPlane, SimpleNameIndependent, SimpleNiPlane,
};
use netsim::plane::ForwardingPlane;
use netsim::scheme::{LabeledScheme, NameIndependentScheme};
use netsim::stats::sample_pairs;
use netsim::Naming;

fn bench_plane_throughput(c: &mut Criterion) {
    let n = 144usize;
    let g = gen::Family::Grid.build(n, 7);
    let m = MetricSpace::new(&g);
    let eps = Eps::one_over(8);
    let naming = Naming::random(m.n(), 3);
    let pairs = sample_pairs(m.n(), 64, 9);

    let nl = NetLabeled::new(&m, eps).unwrap();
    let nl_plane = NetLabeledPlane::compile(&m, &nl, Some(&naming), 0);
    let sfl = ScaleFreeLabeled::new(&m, eps).unwrap();
    let sfl_plane = ScaleFreeLabeledPlane::compile(&m, &sfl, Some(&naming), 0);
    let sni = SimpleNameIndependent::new(&m, eps, naming.clone()).unwrap();
    let sni_plane = SimpleNiPlane::compile(&m, &sni, 0);
    let sfni = ScaleFreeNameIndependent::new(&m, eps, naming.clone()).unwrap();
    let sfni_plane = ScaleFreeNiPlane::compile(&m, &sfni, 0);

    let mut group = c.benchmark_group("plane_throughput");

    group.bench_with_input(BenchmarkId::new("net-labeled/unpacked", n), &n, |b, _| {
        b.iter(|| {
            for &(u, v) in &pairs {
                nl.route(&m, u, nl.label_of(v)).unwrap();
            }
        })
    });
    group.bench_with_input(BenchmarkId::new("net-labeled/packed-route", n), &n, |b, _| {
        b.iter(|| {
            for &(u, v) in &pairs {
                nl_plane.route(&m, u, nl.label_of(v)).unwrap();
            }
        })
    });
    group.bench_with_input(BenchmarkId::new("net-labeled/packed-next-hop", n), &n, |b, _| {
        b.iter(|| {
            for &(u, v) in &pairs {
                nl_plane.next_hop(&m, u, nl.label_of(v)).unwrap();
            }
        })
    });

    group.bench_with_input(BenchmarkId::new("scale-free-labeled/unpacked", n), &n, |b, _| {
        b.iter(|| {
            for &(u, v) in &pairs {
                sfl.route(&m, u, sfl.label_of(v)).unwrap();
            }
        })
    });
    group.bench_with_input(BenchmarkId::new("scale-free-labeled/packed-route", n), &n, |b, _| {
        b.iter(|| {
            for &(u, v) in &pairs {
                sfl_plane.route(&m, u, sfl.label_of(v)).unwrap();
            }
        })
    });
    group.bench_with_input(
        BenchmarkId::new("scale-free-labeled/packed-next-hop", n),
        &n,
        |b, _| {
            b.iter(|| {
                for &(u, v) in &pairs {
                    sfl_plane.next_hop(&m, u, sfl.label_of(v)).unwrap();
                }
            })
        },
    );

    group.bench_with_input(BenchmarkId::new("simple-ni/unpacked", n), &n, |b, _| {
        b.iter(|| {
            for &(u, v) in &pairs {
                sni.route(&m, u, naming.name_of(v)).unwrap();
            }
        })
    });
    group.bench_with_input(BenchmarkId::new("simple-ni/packed-next-hop", n), &n, |b, _| {
        b.iter(|| {
            for &(u, v) in &pairs {
                sni_plane.next_hop_named(&m, u, naming.name_of(v)).unwrap();
            }
        })
    });

    group.bench_with_input(BenchmarkId::new("scale-free-ni/unpacked", n), &n, |b, _| {
        b.iter(|| {
            for &(u, v) in &pairs {
                sfni.route(&m, u, naming.name_of(v)).unwrap();
            }
        })
    });
    group.bench_with_input(BenchmarkId::new("scale-free-ni/packed-next-hop", n), &n, |b, _| {
        b.iter(|| {
            for &(u, v) in &pairs {
                sfni_plane.next_hop_named(&m, u, naming.name_of(v)).unwrap();
            }
        })
    });

    group.finish();
}

criterion_group!(benches, bench_plane_throughput);
criterion_main!(benches);
