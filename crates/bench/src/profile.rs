//! Experiment P1: per-phase preprocessing profile and route-metric
//! histograms for all four schemes, across the Table-1/2 graph families.
//!
//! For every (family, scheme) pair the runner:
//!
//! 1. builds the scheme with a recording [`Tracer`] (the `new_traced`
//!    constructors wrap each preprocessing stage — net-tree construction,
//!    ring building, packing/Voronoi trees, search-tree population, table
//!    assembly — in a span), measuring total build wall-clock;
//! 2. folds the trace into a [`PhaseBreakdown`] (per-phase wall time and
//!    allocation delta; allocation is nonzero only under the binaries'
//!    [`obs::alloc::CountingAlloc`] global allocator);
//! 3. routes a pair sample through
//!    [`obs::eval::eval_labeled_telemetered`] /
//!    [`obs::eval::eval_name_independent_telemetered`] with the *no-op*
//!    tracer, collecting [`RouteMetrics`] (cost / hop / header-bit
//!    histograms, per-level search-tree lookups, under-stretch counter)
//!    per entry, plus run-wide [`obs::MetricsRegistry`] counters and a
//!    [`obs::FlightRecorder`] ring that dumps
//!    `results/profile_flight.jsonl` if any route is lost or
//!    under-stretched.
//!
//! The binary prints the two tables and writes the full document —
//! `schema_version` 1, including the registry snapshot under
//! `"telemetry"` — to `results/profile.json`. With `--chrome-trace PATH`
//! the per-entry traces are merged into one timeline and exported as
//! Chrome trace-event JSON.

use std::time::Instant;

use doubling_metric::Eps;
use labeled_routing::{NetLabeled, ScaleFreeLabeled};
use name_independent::{ScaleFreeNameIndependent, SimpleNameIndependent};
use netsim::json::Value;
use netsim::stats::{sample_pairs, EvalResult};
use netsim::Naming;
use obs::eval::{eval_labeled_telemetered, eval_name_independent_telemetered};
use obs::{FlightRecorder, MetricsRegistry, PhaseBreakdown, RouteMetrics, TraceLog, Tracer};

use crate::cache::MetricCache;
use crate::experiments::table_families;
use crate::table::f2;

/// Version of the `results/profile.json` document layout.
pub const SCHEMA_VERSION: u64 = 1;

/// Everything one profiling run produces: the two console tables and the
/// JSON document for `results/profile.json`.
pub struct ProfileReport {
    /// Headers for the per-phase preprocessing table.
    pub phase_headers: Vec<&'static str>,
    /// One row per (family, scheme, phase), nested phases indented.
    pub phase_rows: Vec<Vec<String>>,
    /// Headers for the route-metrics table.
    pub metric_headers: Vec<&'static str>,
    /// One row per (family, scheme).
    pub metric_rows: Vec<Vec<String>>,
    /// The full document (`schema_version`, parameters, per-entry phases,
    /// histograms, eval results, registry snapshot).
    pub doc: Value,
    /// Every entry's recorded trace, merged into one timeline
    /// ([`TraceLog::append_shifted`]) for Chrome-trace export.
    pub trace: TraceLog,
    /// Run-wide registry snapshot (route counters/histograms plus metric
    /// cache stats) — the same object embedded in `doc` as `"telemetry"`.
    pub telemetry: obs::registry::Snapshot,
    /// Flight ring fed by every evaluation; anomalous runs dump it.
    pub flight: FlightRecorder,
}

/// One scheme profiled on one family: build time, trace, route metrics.
fn profile_one(
    family: &'static str,
    report: &mut ProfileReport,
    entries: &mut Vec<Value>,
    run: impl FnOnce(&Tracer) -> (f64, EvalResult, RouteMetrics),
) {
    let tracer = Tracer::recording();
    let (build_ms, res, rm) = run(&tracer);
    let log = tracer.finish();
    let breakdown = PhaseBreakdown::from_log(&log);
    report.trace.append_shifted(&log);

    for p in &breakdown.phases {
        report.phase_rows.push(vec![
            family.to_string(),
            res.scheme.to_string(),
            format!("{}{}", "  ".repeat(p.depth), p.name),
            p.calls.to_string(),
            f2(p.wall_us as f64 / 1e3),
            f2(p.alloc_bytes as f64 / 1024.0),
        ]);
    }
    let q = |hist: &obs::Log2Histogram, q: f64| {
        hist.quantile_bound(q).map_or_else(|| "-".into(), |b| b.to_string())
    };
    let lookups: u64 = rm.search_lookups_by_level.values().sum();
    report.metric_rows.push(vec![
        family.to_string(),
        res.scheme.to_string(),
        f2(build_ms),
        rm.cost.count().to_string(),
        res.failures.to_string(),
        q(&rm.cost, 0.5),
        q(&rm.cost, 0.99),
        rm.cost.max().map_or_else(|| "-".into(), |v| v.to_string()),
        f2(rm.hops.mean()),
        rm.header_bits.max().map_or_else(|| "-".into(), |v| v.to_string()),
        lookups.to_string(),
        res.understretch.to_string(),
    ]);
    entries.push(Value::Object(vec![
        ("family".into(), family.into()),
        ("scheme".into(), res.scheme.into()),
        ("build_ms".into(), build_ms.into()),
        ("phases".into(), breakdown.to_json()),
        ("metrics".into(), rm.to_json()),
        ("eval".into(), res.to_json()),
    ]));
}

/// Runs the full profiling grid: every Table-1/2 family × all four
/// schemes. Metrics come from `cache`: the first scheme of each family
/// pays the (traced) `metric-build`, the other three hit the cache — the
/// `metric_cache` counters in the JSON document prove it.
pub fn run_profile(
    cache: &MetricCache,
    n: usize,
    eps: Eps,
    pairs_count: usize,
    seed: u64,
) -> ProfileReport {
    let mut report = ProfileReport {
        phase_headers: vec!["family", "scheme", "phase", "calls", "wall(ms)", "alloc(KiB)"],
        phase_rows: Vec::new(),
        metric_headers: vec![
            "family",
            "scheme",
            "build(ms)",
            "routes",
            "failures",
            "cost-p50<=",
            "cost-p99<=",
            "cost-max",
            "hops-avg",
            "hdr(b)",
            "lookups",
            "under",
        ],
        metric_rows: Vec::new(),
        doc: Value::Null,
        trace: TraceLog::default(),
        telemetry: obs::registry::Snapshot::default(),
        flight: FlightRecorder::disabled(),
    };
    let mut entries = Vec::new();
    let registry = MetricsRegistry::new();
    let mut flight = FlightRecorder::new(obs::flight::DEFAULT_CAPACITY);

    for f in table_families() {
        // Every closure fetches the metric through the cache *inside* the
        // traced region: the first one records the metric-build span, the
        // other three record metric-cache-hit events. Naming and pair
        // samples are seeded, so recomputing them per closure is free
        // determinism (and they need `m.n()`, which only the metric knows).
        let pairs_for =
            |m: &doubling_metric::MetricSpace| sample_pairs(m.n(), pairs_count, seed ^ 0x5A);
        profile_one(f.name(), &mut report, &mut entries, |tracer| {
            let t0 = Instant::now();
            let m = cache.family_traced(f, n, seed, tracer);
            let s = NetLabeled::new_traced(&m, eps, tracer).expect("eps within range");
            let build_ms = t0.elapsed().as_secs_f64() * 1e3;
            let mut rm = RouteMetrics::new();
            let res = eval_labeled_telemetered(
                &s,
                &m,
                &pairs_for(&m),
                &Tracer::noop(),
                &mut rm,
                &registry,
                &mut flight,
            );
            (build_ms, res, rm)
        });
        profile_one(f.name(), &mut report, &mut entries, |tracer| {
            let t0 = Instant::now();
            let m = cache.family_traced(f, n, seed, tracer);
            let s = ScaleFreeLabeled::new_traced(&m, eps, tracer).expect("eps within range");
            let build_ms = t0.elapsed().as_secs_f64() * 1e3;
            let mut rm = RouteMetrics::new();
            let res = eval_labeled_telemetered(
                &s,
                &m,
                &pairs_for(&m),
                &Tracer::noop(),
                &mut rm,
                &registry,
                &mut flight,
            );
            (build_ms, res, rm)
        });
        profile_one(f.name(), &mut report, &mut entries, |tracer| {
            let t0 = Instant::now();
            let m = cache.family_traced(f, n, seed, tracer);
            let naming = Naming::random(m.n(), seed ^ 0xA5);
            let s = SimpleNameIndependent::new_traced(&m, eps, naming.clone(), tracer)
                .expect("eps within range");
            let build_ms = t0.elapsed().as_secs_f64() * 1e3;
            let mut rm = RouteMetrics::new();
            let res = eval_name_independent_telemetered(
                &s,
                &m,
                &naming,
                &pairs_for(&m),
                &Tracer::noop(),
                &mut rm,
                &registry,
                &mut flight,
            );
            (build_ms, res, rm)
        });
        profile_one(f.name(), &mut report, &mut entries, |tracer| {
            let t0 = Instant::now();
            let m = cache.family_traced(f, n, seed, tracer);
            let naming = Naming::random(m.n(), seed ^ 0xA5);
            let s = ScaleFreeNameIndependent::new_traced(&m, eps, naming.clone(), tracer)
                .expect("eps within range");
            let build_ms = t0.elapsed().as_secs_f64() * 1e3;
            let mut rm = RouteMetrics::new();
            let res = eval_name_independent_telemetered(
                &s,
                &m,
                &naming,
                &pairs_for(&m),
                &Tracer::noop(),
                &mut rm,
                &registry,
                &mut flight,
            );
            (build_ms, res, rm)
        });
    }

    let stats = cache.stats();
    registry.counter("metric_cache.builds").add(stats.builds);
    registry.counter("metric_cache.hits").add(stats.hits);
    report.telemetry = registry.snapshot();
    report.flight = flight;

    report.doc = Value::Object(vec![
        ("schema_version".into(), SCHEMA_VERSION.into()),
        ("experiment".into(), "profile".into()),
        ("n".into(), n.into()),
        ("eps".into(), eps.to_string().into()),
        ("pairs".into(), pairs_count.into()),
        ("seed".into(), seed.into()),
        ("alloc_counted".into(), (obs::alloc::allocated_bytes() > 0).into()),
        ("threads".into(), cache.threads().into()),
        ("metric_cache".into(), stats.to_json()),
        ("telemetry".into(), report.telemetry.to_json()),
        ("entries".into(), Value::Array(entries)),
    ]);
    report
}

/// Entry point shared by the root `profile` binary and
/// `cargo run -p bench --bin profile`: runs the grid, prints the two
/// tables, and writes `results/profile.json`.
///
/// Usage: `profile [n] [1/eps] [pairs] [--seed N] [--json] [--threads N]
/// [--chrome-trace PATH]`.
pub fn profile_main() {
    let cli = crate::cli::Cli::parse_env(42);
    let n: usize = cli.pos(0, 100);
    let inv: u64 = cli.pos(1, 8);
    let pairs: usize = cli.pos(2, 200);
    let cache = MetricCache::new(cli.threads);
    let report = run_profile(&cache, n, Eps::one_over(inv), pairs, cli.seed);
    crate::table::emit(
        &format!("P1a: preprocessing phases (n≈{n}, eps=1/{inv}, seed {})", cli.seed),
        &report.phase_headers,
        &report.phase_rows,
    );
    crate::table::emit(
        &format!("P1b: route metrics ({pairs} pairs/graph)"),
        &report.metric_headers,
        &report.metric_rows,
    );
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/profile.json", report.doc.to_string_pretty() + "\n")
        .expect("write results/profile.json");
    if let Some(path) = cli.write_chrome_trace(&report.trace, Some(&report.telemetry)) {
        if !cli.json {
            println!("wrote {path}");
        }
    }
    let dumped = report
        .flight
        .dump_if_anomalous("results/profile_flight.jsonl")
        .expect("write results/profile_flight.jsonl");
    if dumped {
        eprintln!(
            "anomalies observed ({}); flight ring dumped to results/profile_flight.jsonl",
            report.flight.anomalies()
        );
    }
    if !cli.json {
        println!("\nwrote results/profile.json");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_covers_every_family_and_scheme() {
        let cache = MetricCache::new(1);
        let report = run_profile(&cache, 36, Eps::one_over(8), 40, 3);
        let n_families = table_families().len();
        assert_eq!(report.metric_rows.len(), n_families * 4);

        // Each family's metric is built exactly once; the other three
        // schemes hit the cache.
        assert_eq!(cache.stats().builds, n_families as u64);
        assert_eq!(cache.stats().hits, n_families as u64 * 3);
        let mc = report.doc.get("metric_cache").expect("metric_cache stats");
        assert_eq!(mc.get("builds").and_then(Value::as_u64), Some(n_families as u64));

        // The run-wide registry saw every route of every entry, the cache
        // stats were published as counters, and nothing tripped the flight
        // recorder's anomaly detection.
        let routes = n_families as u64 * 4 * 40;
        assert_eq!(report.telemetry.counter("eval.routes"), Some(routes));
        assert_eq!(report.telemetry.counter("eval.route_failures"), Some(0));
        assert_eq!(
            report.telemetry.histogram("eval.route_cost").map(obs::Log2Histogram::count),
            Some(routes)
        );
        assert_eq!(report.telemetry.counter("metric_cache.builds"), Some(n_families as u64));
        assert_eq!(report.telemetry.counter("metric_cache.hits"), Some(n_families as u64 * 3));
        assert_eq!(report.flight.anomalies(), 0);
        assert_eq!(report.flight.len(), obs::flight::DEFAULT_CAPACITY.min(routes as usize));
        assert!(report.doc.get("telemetry").is_some(), "doc embeds the registry snapshot");
        // Per-entry traces were merged into one non-empty timeline.
        assert!(!report.trace.spans.is_empty());
        // The first entry of each family carries the metric-build phase.
        let entries = report.doc.get("entries").and_then(Value::as_array).expect("entries");
        for (i, e) in entries.iter().enumerate() {
            let phases = e.get("phases").and_then(Value::as_array).expect("phases");
            let names: Vec<&str> =
                phases.iter().filter_map(|p| p.get("name").and_then(Value::as_str)).collect();
            assert_eq!(names.contains(&"metric-build"), i % 4 == 0, "entry {i}: {names:?}");
        }

        let doc = &report.doc;
        assert_eq!(
            doc.get("schema_version").and_then(Value::as_u64),
            Some(SCHEMA_VERSION),
            "profile.json must carry its schema version"
        );
        let entries = doc.get("entries").and_then(Value::as_array).expect("entries");
        assert_eq!(entries.len(), n_families * 4);
        for e in entries {
            let scheme = e.get("scheme").and_then(Value::as_str).expect("scheme");
            let phases = e.get("phases").and_then(Value::as_array).expect("phases");
            assert!(!phases.is_empty(), "{scheme}: traced build must record phases");
            // Every scheme's trace leads with the net-tree span (the
            // name-independent ones nest it under "underlying-labeled").
            let names: Vec<&str> =
                phases.iter().filter_map(|p| p.get("name").and_then(Value::as_str)).collect();
            assert!(names.contains(&"net-hierarchy"), "{scheme}: phases {names:?}");
            assert!(
                e.get("build_ms").and_then(Value::as_f64).expect("build_ms") >= 0.0,
                "{scheme}: build wall-clock missing"
            );
            // All sampled routes delivered; histograms saw each of them.
            let eval = e.get("eval").expect("eval block");
            assert_eq!(eval.get("failures").and_then(Value::as_u64), Some(0), "{scheme}");
            assert_eq!(eval.get("understretch").and_then(Value::as_u64), Some(0), "{scheme}");
            let cost = e.get("metrics").and_then(|m| m.get("cost")).expect("cost histogram");
            assert_eq!(cost.get("count").and_then(Value::as_u64), Some(40), "{scheme}");
        }
        // The JSON document round-trips through the parser.
        assert_eq!(Value::parse(&doc.to_string_pretty()).unwrap(), *doc);
    }
}
