//! The CI perf-regression gate: diff current results against committed
//! baselines.
//!
//! [`run_report`] reads `results/{scale,bench_build,profile,maintain,serve}.json`
//! and the same documents from `baselines/`, matches their cells by stable
//! keys — scale cells by `(n, scheme)`, scale instances by `n`,
//! bench-build cells by `(n, threads)`, profile entries by
//! `(family, scheme)`, serve cells by `(scheme, workers)` — and checks
//! each measured value against a tolerance:
//!
//! * **wall time** (`build_us`, `apsp_us`, `total_us`, `build_ms`): the
//!   current value may not exceed `max(baseline, floor) × 4` — the floor
//!   ([`WALL_FLOOR_US`]) keeps sub-50 ms cells, which are dominated by
//!   scheduler noise on shared CI runners, from ever tripping the gate;
//! * **allocation** (`peak_bytes`, `alloc_bytes`): ratio ≤ 1.5 over a
//!   1 MiB floor — allocation is deterministic, so the band is tighter;
//! * **stretch** (`stretch_mean`): absolute increase ≤ [`STRETCH_TOL`] —
//!   stretch is a correctness-adjacent quantity, a ratio would be far too
//!   loose;
//! * **invariants**: any `failures > 0` or `deterministic: false` in the
//!   current document is a regression outright, no tolerance.
//!
//! Cells present in only one document are reported as `skipped` (the grid
//! legitimately changes shape when sweep parameters change), as are
//! sections whose file is missing on either side. The verdict document —
//! `schema_version` **first key**, like every other results document — is
//! written to `results/report.json`, and [`report_main`] exits non-zero
//! when any cell regressed, which is what makes it a CI gate.

use std::path::Path;

use netsim::json::Value;

/// Version of the `results/report.json` document layout.
pub const SCHEMA_VERSION: u64 = 1;

/// Wall-time ratio bound: current ≤ max(baseline, floor) × this.
pub const WALL_RATIO: f64 = 4.0;
/// Wall-time noise floor in microseconds (50 ms).
pub const WALL_FLOOR_US: f64 = 50_000.0;
/// Allocation ratio bound.
pub const BYTES_RATIO: f64 = 1.5;
/// Allocation noise floor in bytes (1 MiB).
pub const BYTES_FLOOR: f64 = 1024.0 * 1024.0;
/// Maximum tolerated absolute increase of a cell's mean stretch.
pub const STRETCH_TOL: f64 = 0.05;

/// How one measured value is compared against its baseline.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// Ratio bound over a noise floor, in µs.
    WallUs,
    /// Ratio bound over a noise floor, in ms.
    WallMs,
    /// Ratio bound over a 1 MiB floor.
    Bytes,
    /// Absolute increase bound.
    StretchAbs,
    /// Zero-tolerance invariant: any increase over 0 regresses.
    Invariant,
}

impl Kind {
    fn verdict(self, baseline: f64, current: f64) -> &'static str {
        let regressed = match self {
            Kind::WallUs => current > baseline.max(WALL_FLOOR_US) * WALL_RATIO,
            Kind::WallMs => current > baseline.max(WALL_FLOOR_US / 1e3) * WALL_RATIO,
            Kind::Bytes => current > baseline.max(BYTES_FLOOR) * BYTES_RATIO,
            Kind::StretchAbs => current > baseline + STRETCH_TOL,
            Kind::Invariant => current > 0.0,
        };
        if regressed {
            "regress"
        } else {
            "pass"
        }
    }
}

/// One compared (cell, metric) pair.
struct Finding {
    key: String,
    metric: &'static str,
    baseline: f64,
    current: f64,
    verdict: &'static str,
}

impl Finding {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("key".into(), self.key.clone().into()),
            ("metric".into(), self.metric.into()),
            ("baseline".into(), self.baseline.into()),
            ("current".into(), self.current.into()),
            ("verdict".into(), self.verdict.into()),
        ])
    }
}

/// One section (source document) of the report.
struct Section {
    name: &'static str,
    findings: Vec<Finding>,
    skipped: Vec<String>,
    /// Set when the whole section could not be compared.
    note: Option<String>,
}

impl Section {
    fn new(name: &'static str) -> Self {
        Section { name, findings: Vec::new(), skipped: Vec::new(), note: None }
    }

    fn regressions(&self) -> usize {
        self.findings.iter().filter(|f| f.verdict == "regress").count()
    }

    fn compare(&mut self, key: &str, metric: &'static str, kind: Kind, base: f64, cur: f64) {
        self.findings.push(Finding {
            key: key.to_string(),
            metric,
            baseline: base,
            current: cur,
            verdict: kind.verdict(base, cur),
        });
    }

    fn to_json(&self) -> Value {
        let mut fields = vec![
            ("name".to_string(), Value::from(self.name)),
            ("compared".into(), self.findings.len().into()),
            ("regressions".into(), self.regressions().into()),
            (
                "skipped".into(),
                Value::Array(self.skipped.iter().map(|s| s.clone().into()).collect()),
            ),
        ];
        if let Some(n) = &self.note {
            fields.push(("note".into(), n.clone().into()));
        }
        fields.push((
            "findings".into(),
            Value::Array(self.findings.iter().map(Finding::to_json).collect()),
        ));
        Value::Object(fields)
    }
}

/// The gate's outcome: the JSON document plus the counts `report_main`
/// turns into an exit code.
pub struct Report {
    /// The full verdict document (written to `results/report.json`).
    pub doc: Value,
    /// Cells compared across all sections.
    pub compared: usize,
    /// Cells that regressed beyond tolerance.
    pub regressions: usize,
    /// Keys present on only one side, plus missing-file notes.
    pub skipped: usize,
}

/// Loads a JSON document, returning `None` (not an error) when the file
/// is missing or unparsable — the gate skips what it cannot compare.
fn load(path: &Path) -> Option<Value> {
    let text = std::fs::read_to_string(path).ok()?;
    Value::parse(&text).ok()
}

/// `v[field]` as f64, tolerating integer-typed values.
fn num(v: &Value, field: &str) -> Option<f64> {
    let f = v.get(field)?;
    f.as_f64().or_else(|| f.as_u64().map(|u| u as f64))
}

/// Indexes an array of objects by a string key derived from each element.
fn index(
    arr: Option<&[Value]>,
    key_of: impl Fn(&Value) -> Option<String>,
) -> Vec<(String, &Value)> {
    arr.unwrap_or(&[]).iter().filter_map(|v| key_of(v).map(|k| (k, v))).collect()
}

/// Walks two indexed cell lists: matched keys are compared via `compare`,
/// unmatched keys on either side are recorded as skipped.
fn diff_cells(
    section: &mut Section,
    base: &[(String, &Value)],
    cur: &[(String, &Value)],
    mut compare: impl FnMut(&mut Section, &str, &Value, &Value),
) {
    for (k, b) in base {
        match cur.iter().find(|(ck, _)| ck == k) {
            Some((_, c)) => compare(section, k, b, c),
            None => section.skipped.push(format!("{k} (baseline only)")),
        }
    }
    for (k, _) in cur {
        if !base.iter().any(|(bk, _)| bk == k) {
            section.skipped.push(format!("{k} (current only)"));
        }
    }
}

/// Diffs `scale.json`: per-(n, scheme) build wall / peak allocation /
/// mean stretch / failure and determinism invariants, plus per-instance
/// APSP wall time.
fn diff_scale(base: Option<&Value>, cur: Option<&Value>) -> Section {
    let mut s = Section::new("scale");
    let (Some(base), Some(cur)) = (base, cur) else {
        s.note = Some("scale.json missing on one side; section skipped".into());
        return s;
    };
    let cell_key = |v: &Value| {
        Some(format!("n={} scheme={}", num(v, "n")? as u64, v.get("scheme")?.as_str()?))
    };
    let b = index(base.get("cells").and_then(Value::as_array), cell_key);
    let c = index(cur.get("cells").and_then(Value::as_array), cell_key);
    diff_cells(&mut s, &b, &c, |s, k, b, c| {
        if let (Some(bv), Some(cv)) = (num(b, "build_us"), num(c, "build_us")) {
            s.compare(k, "build_us", Kind::WallUs, bv, cv);
        }
        if let (Some(bv), Some(cv)) = (num(b, "peak_bytes"), num(c, "peak_bytes")) {
            s.compare(k, "peak_bytes", Kind::Bytes, bv, cv);
        }
        if let (Some(bv), Some(cv)) = (num(b, "stretch_mean"), num(c, "stretch_mean")) {
            s.compare(k, "stretch_mean", Kind::StretchAbs, bv, cv);
        }
        if let Some(f) = num(c, "failures") {
            s.compare(k, "failures", Kind::Invariant, 0.0, f);
        }
        if c.get("deterministic").and_then(Value::as_bool) == Some(false) {
            s.compare(k, "deterministic", Kind::Invariant, 0.0, 1.0);
        }
    });
    let inst_key = |v: &Value| Some(format!("instance n={}", num(v, "n")? as u64));
    let b = index(base.get("instances").and_then(Value::as_array), inst_key);
    let c = index(cur.get("instances").and_then(Value::as_array), inst_key);
    diff_cells(&mut s, &b, &c, |s, k, b, c| {
        if let (Some(bv), Some(cv)) = (num(b, "apsp_us"), num(c, "apsp_us")) {
            s.compare(k, "apsp_us", Kind::WallUs, bv, cv);
        }
    });
    s
}

/// Diffs `bench_build.json`: per-(n, threads) total wall / allocation,
/// plus the whole-document determinism invariant.
fn diff_bench_build(base: Option<&Value>, cur: Option<&Value>) -> Section {
    let mut s = Section::new("bench_build");
    let (Some(base), Some(cur)) = (base, cur) else {
        s.note = Some("bench_build.json missing on one side; section skipped".into());
        return s;
    };
    let key = |v: &Value| {
        Some(format!("n={} threads={}", num(v, "n")? as u64, num(v, "threads")? as u64))
    };
    let b = index(base.get("cells").and_then(Value::as_array), key);
    let c = index(cur.get("cells").and_then(Value::as_array), key);
    diff_cells(&mut s, &b, &c, |s, k, b, c| {
        if let (Some(bv), Some(cv)) = (num(b, "total_us"), num(c, "total_us")) {
            s.compare(k, "total_us", Kind::WallUs, bv, cv);
        }
        if let (Some(bv), Some(cv)) = (num(b, "alloc_bytes"), num(c, "alloc_bytes")) {
            s.compare(k, "alloc_bytes", Kind::Bytes, bv, cv);
        }
    });
    if cur.get("all_deterministic").and_then(Value::as_bool) == Some(false) {
        s.compare("document", "all_deterministic", Kind::Invariant, 0.0, 1.0);
    }
    s
}

/// Diffs `profile.json`: per-(family, scheme) build wall time.
fn diff_profile(base: Option<&Value>, cur: Option<&Value>) -> Section {
    let mut s = Section::new("profile");
    let (Some(base), Some(cur)) = (base, cur) else {
        s.note = Some("profile.json missing on one side; section skipped".into());
        return s;
    };
    let key = |v: &Value| {
        Some(format!("family={} scheme={}", v.get("family")?.as_str()?, v.get("scheme")?.as_str()?))
    };
    let b = index(base.get("entries").and_then(Value::as_array), key);
    let c = index(cur.get("entries").and_then(Value::as_array), key);
    diff_cells(&mut s, &b, &c, |s, k, b, c| {
        if let (Some(bv), Some(cv)) = (num(b, "build_ms"), num(c, "build_ms")) {
            s.compare(k, "build_ms", Kind::WallMs, bv, cv);
        }
    });
    s
}

/// Diffs `maintain.json`: per-(n, scheme, per-batch) amortized repair
/// wall time and p99 repair latency, plus the certification,
/// repair-equals-rebuild, and sublinearity invariants — and the
/// adversarial cell's fired-and-recovered contract.
fn diff_maintain(base: Option<&Value>, cur: Option<&Value>) -> Section {
    let mut s = Section::new("maintain");
    let (Some(base), Some(cur)) = (base, cur) else {
        s.note = Some("maintain.json missing on one side; section skipped".into());
        return s;
    };
    let key = |v: &Value| {
        Some(format!(
            "n={} scheme={} per_batch={}",
            num(v, "n")? as u64,
            v.get("scheme")?.as_str()?,
            num(v, "per_batch")? as u64
        ))
    };
    let b = index(base.get("cells").and_then(Value::as_array), key);
    let c = index(cur.get("cells").and_then(Value::as_array), key);
    diff_cells(&mut s, &b, &c, |s, k, b, c| {
        if let (Some(bv), Some(cv)) = (num(b, "amortized_repair_us"), num(c, "amortized_repair_us"))
        {
            s.compare(k, "amortized_repair_us", Kind::WallUs, bv, cv);
        }
        if let (Some(bv), Some(cv)) = (num(b, "p99_repair_us"), num(c, "p99_repair_us")) {
            s.compare(k, "p99_repair_us", Kind::WallUs, bv, cv);
        }
        if let Some(f) = num(c, "audit_failures") {
            s.compare(k, "audit_failures", Kind::Invariant, 0.0, f);
        }
        if c.get("repair_equals_rebuild").and_then(Value::as_bool) == Some(false) {
            s.compare(k, "repair_equals_rebuild", Kind::Invariant, 0.0, 1.0);
        }
        if c.get("sublinear_ok").and_then(Value::as_bool) == Some(false) {
            s.compare(k, "sublinear_ok", Kind::Invariant, 0.0, 1.0);
        }
    });
    if let Some(adv) = cur.get("adversarial") {
        if num(adv, "fallbacks") == Some(0.0) {
            s.compare("adversarial", "fallback_fired", Kind::Invariant, 0.0, 1.0);
        }
        if adv.get("recovered").and_then(Value::as_bool) == Some(false) {
            s.compare("adversarial", "recovered", Kind::Invariant, 0.0, 1.0);
        }
    }
    s
}

/// Diffs `serve.json`: per-(scheme, workers) serving wall time plus the
/// per-cell failure/determinism invariants and the whole-document
/// divergence counter — a plane that disagrees with its reference scheme
/// on even one route regresses outright.
fn diff_serve(base: Option<&Value>, cur: Option<&Value>) -> Section {
    let mut s = Section::new("serve");
    let (Some(base), Some(cur)) = (base, cur) else {
        s.note = Some("serve.json missing on one side; section skipped".into());
        return s;
    };
    let key = |v: &Value| {
        Some(format!("scheme={} workers={}", v.get("scheme")?.as_str()?, num(v, "workers")? as u64))
    };
    let b = index(base.get("cells").and_then(Value::as_array), key);
    let c = index(cur.get("cells").and_then(Value::as_array), key);
    diff_cells(&mut s, &b, &c, |s, k, b, c| {
        if let (Some(bv), Some(cv)) = (num(b, "wall_us"), num(c, "wall_us")) {
            s.compare(k, "wall_us", Kind::WallUs, bv, cv);
        }
        if let Some(f) = num(c, "failures") {
            s.compare(k, "failures", Kind::Invariant, 0.0, f);
        }
        if c.get("deterministic").and_then(Value::as_bool) == Some(false) {
            s.compare(k, "deterministic", Kind::Invariant, 0.0, 1.0);
        }
    });
    if let Some(d) = num(cur, "divergences") {
        s.compare("document", "divergences", Kind::Invariant, 0.0, d);
    }
    if cur.get("all_deterministic").and_then(Value::as_bool) == Some(false) {
        s.compare("document", "all_deterministic", Kind::Invariant, 0.0, 1.0);
    }
    s
}

/// Runs the full gate: diffs the five documents under `results_dir`
/// against `baselines_dir` and assembles the verdict document.
pub fn run_report(results_dir: &Path, baselines_dir: &Path) -> Report {
    let sections = [
        diff_scale(
            load(&baselines_dir.join("scale.json")).as_ref(),
            load(&results_dir.join("scale.json")).as_ref(),
        ),
        diff_bench_build(
            load(&baselines_dir.join("bench_build.json")).as_ref(),
            load(&results_dir.join("bench_build.json")).as_ref(),
        ),
        diff_profile(
            load(&baselines_dir.join("profile.json")).as_ref(),
            load(&results_dir.join("profile.json")).as_ref(),
        ),
        diff_maintain(
            load(&baselines_dir.join("maintain.json")).as_ref(),
            load(&results_dir.join("maintain.json")).as_ref(),
        ),
        diff_serve(
            load(&baselines_dir.join("serve.json")).as_ref(),
            load(&results_dir.join("serve.json")).as_ref(),
        ),
    ];

    let compared: usize = sections.iter().map(|s| s.findings.len()).sum();
    let regressions: usize = sections.iter().map(Section::regressions).sum();
    let skipped: usize =
        sections.iter().map(|s| s.skipped.len() + usize::from(s.note.is_some())).sum();

    let doc = Value::Object(vec![
        ("schema_version".into(), SCHEMA_VERSION.into()),
        ("experiment".into(), "report".into()),
        (
            "tolerances".into(),
            Value::Object(vec![
                ("wall_ratio".into(), WALL_RATIO.into()),
                ("wall_floor_us".into(), WALL_FLOOR_US.into()),
                ("bytes_ratio".into(), BYTES_RATIO.into()),
                ("bytes_floor".into(), BYTES_FLOOR.into()),
                ("stretch_tol".into(), STRETCH_TOL.into()),
            ]),
        ),
        ("sections".into(), Value::Array(sections.iter().map(Section::to_json).collect())),
        (
            "summary".into(),
            Value::Object(vec![
                ("compared".into(), compared.into()),
                ("regressions".into(), regressions.into()),
                ("skipped".into(), skipped.into()),
                ("pass".into(), (regressions == 0).into()),
            ]),
        ),
    ]);
    Report { doc, compared, regressions, skipped }
}

/// Entry point shared by the root `report` binary and
/// `cargo run -p bench --bin report`: runs the gate, writes
/// `results/report.json`, prints the summary, and exits non-zero when any
/// cell regressed.
///
/// Usage: `report [results_dir] [baselines_dir]` (defaults: `results`,
/// `baselines`).
pub fn report_main() {
    let cli = crate::cli::Cli::parse_env(42);
    let results: String = cli.pos(0, "results".to_string());
    let baselines: String = cli.pos(1, "baselines".to_string());
    let rep = run_report(Path::new(&results), Path::new(&baselines));

    std::fs::create_dir_all(&results).expect("create results dir");
    let out = Path::new(&results).join("report.json");
    std::fs::write(&out, rep.doc.to_string_pretty() + "\n").expect("write report.json");

    // One line per regressed cell, then the verdict.
    if let Some(sections) = rep.doc.get("sections").and_then(Value::as_array) {
        for sec in sections {
            let name = sec.get("name").and_then(Value::as_str).unwrap_or("?");
            for f in sec.get("findings").and_then(Value::as_array).unwrap_or(&Vec::new()) {
                if f.get("verdict").and_then(Value::as_str) == Some("regress") {
                    eprintln!(
                        "REGRESSION [{name}] {} {}: {} -> {}",
                        f.get("key").and_then(Value::as_str).unwrap_or("?"),
                        f.get("metric").and_then(Value::as_str).unwrap_or("?"),
                        f.get("baseline").and_then(Value::as_f64).unwrap_or(f64::NAN),
                        f.get("current").and_then(Value::as_f64).unwrap_or(f64::NAN),
                    );
                }
            }
        }
    }
    println!(
        "perf gate: {} compared, {} regressions, {} skipped -> {}",
        rep.compared,
        rep.regressions,
        rep.skipped,
        if rep.regressions == 0 { "PASS" } else { "FAIL" }
    );
    println!("wrote {}", out.display());
    if rep.regressions > 0 {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A unique temp dir per test invocation (no `Date::now` in tests —
    /// the pid plus a name keeps parallel test binaries apart).
    fn temp_dir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("report-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn scale_doc(build_us: u64, stretch: f64, failures: u64) -> String {
        format!(
            r#"{{
  "schema_version": 1,
  "instances": [{{"n": 1024, "apsp_us": 40000}}],
  "cells": [
    {{"n": 1024, "scheme": "net-labeled", "build_us": {build_us},
      "peak_bytes": 46000000, "stretch_mean": {stretch},
      "failures": {failures}, "deterministic": true}}
  ]
}}
"#
        )
    }

    fn bench_build_doc(total_us: u64) -> String {
        format!(
            r#"{{
  "schema_version": 1,
  "all_deterministic": true,
  "cells": [{{"n": 400, "threads": 2, "total_us": {total_us}, "alloc_bytes": 2000000}}]
}}
"#
        )
    }

    fn profile_doc(build_ms: f64) -> String {
        format!(
            r#"{{
  "schema_version": 1,
  "entries": [{{"family": "grid", "scheme": "net-labeled", "build_ms": {build_ms}}}]
}}
"#
        )
    }

    fn maintain_doc(
        repair_us: f64,
        audit_failures: u64,
        fallbacks: u64,
        recovered: bool,
    ) -> String {
        format!(
            r#"{{
  "schema_version": 1,
  "cells": [
    {{"n": 256, "scheme": "net-labeled", "per_batch": 8,
      "amortized_repair_us": {repair_us}, "p99_repair_us": 900,
      "audit_failures": {audit_failures}, "repair_equals_rebuild": true,
      "sublinear_ok": true}}
  ],
  "adversarial": {{"fallbacks": {fallbacks}, "recovered": {recovered}}}
}}
"#
        )
    }

    fn serve_doc(wall_us: u64, divergences: u64, failures: u64, deterministic: bool) -> String {
        format!(
            r#"{{
  "schema_version": 1,
  "divergences": {divergences},
  "all_deterministic": {deterministic},
  "cells": [
    {{"scheme": "net-labeled", "workers": 8, "wall_us": {wall_us},
      "failures": {failures}, "deterministic": {deterministic}}}
  ]
}}
"#
        )
    }

    fn write_all(dir: &Path, scale: &str, bb: &str, profile: &str) {
        std::fs::write(dir.join("scale.json"), scale).unwrap();
        std::fs::write(dir.join("bench_build.json"), bb).unwrap();
        std::fs::write(dir.join("profile.json"), profile).unwrap();
        std::fs::write(dir.join("maintain.json"), maintain_doc(700.0, 0, 1, true)).unwrap();
        std::fs::write(dir.join("serve.json"), serve_doc(300_000, 0, 0, true)).unwrap();
    }

    #[test]
    fn identical_documents_pass_with_zero_regressions() {
        let base = temp_dir("identical-base");
        let cur = temp_dir("identical-cur");
        let (s, b, p) = (scale_doc(500_000, 1.02, 0), bench_build_doc(200_000), profile_doc(80.0));
        write_all(&base, &s, &b, &p);
        write_all(&cur, &s, &b, &p);

        let rep = run_report(&cur, &base);
        assert_eq!(rep.regressions, 0);
        assert_eq!(rep.skipped, 0);
        // build_us + peak_bytes + stretch_mean + failures + apsp_us +
        // total_us + alloc_bytes + build_ms +
        // amortized_repair_us + p99_repair_us + audit_failures +
        // serve wall_us + serve failures + serve divergences.
        assert_eq!(rep.compared, 14);
        assert_eq!(
            rep.doc.get("summary").and_then(|s| s.get("pass")).and_then(Value::as_bool),
            Some(true)
        );
        // schema_version leads the document (the CI guard greps the head).
        assert!(rep.doc.to_string_pretty().starts_with("{\n  \"schema_version\""));
        // The document round-trips.
        assert_eq!(Value::parse(&rep.doc.to_string_pretty()).unwrap(), rep.doc);
    }

    #[test]
    fn injected_regressions_fail_the_gate() {
        let base = temp_dir("inject-base");
        let cur = temp_dir("inject-cur");
        write_all(
            &base,
            &scale_doc(500_000, 1.02, 0),
            &bench_build_doc(200_000),
            &profile_doc(80.0),
        );
        // 10× build wall, +0.2 stretch, a route failure, and a 10× profile
        // build: four independent regressions.
        write_all(
            &cur,
            &scale_doc(5_000_000, 1.22, 3),
            &bench_build_doc(200_000),
            &profile_doc(800.0),
        );

        let rep = run_report(&cur, &base);
        assert_eq!(rep.regressions, 4);
        assert_eq!(
            rep.doc.get("summary").and_then(|s| s.get("pass")).and_then(Value::as_bool),
            Some(false)
        );
        let regressed: Vec<(String, String)> = rep
            .doc
            .get("sections")
            .and_then(Value::as_array)
            .unwrap()
            .iter()
            .flat_map(|sec| sec.get("findings").and_then(Value::as_array).unwrap().iter())
            .filter(|f| f.get("verdict").and_then(Value::as_str) == Some("regress"))
            .map(|f| {
                (
                    f.get("metric").and_then(Value::as_str).unwrap().to_string(),
                    f.get("key").and_then(Value::as_str).unwrap().to_string(),
                )
            })
            .collect();
        let metrics: Vec<&str> = regressed.iter().map(|(m, _)| m.as_str()).collect();
        assert_eq!(metrics, ["build_us", "stretch_mean", "failures", "build_ms"]);
    }

    #[test]
    fn sub_floor_noise_never_regresses() {
        let base = temp_dir("floor-base");
        let cur = temp_dir("floor-cur");
        // 600 µs baseline, 9 ms current: a 15× blowup, but both sit under
        // the 50 ms floor × 4 bound — scheduler noise, not a regression.
        write_all(&base, &scale_doc(600, 1.02, 0), &bench_build_doc(600), &profile_doc(0.6));
        write_all(&cur, &scale_doc(9_000, 1.02, 0), &bench_build_doc(9_000), &profile_doc(9.0));
        let rep = run_report(&cur, &base);
        assert_eq!(rep.regressions, 0);
    }

    #[test]
    fn shape_changes_are_skipped_not_failed() {
        let base = temp_dir("shape-base");
        let cur = temp_dir("shape-cur");
        write_all(
            &base,
            &scale_doc(500_000, 1.02, 0),
            &bench_build_doc(200_000),
            &profile_doc(80.0),
        );
        // Current run dropped bench_build.json and renamed the scale cell.
        std::fs::write(
            cur.join("scale.json"),
            scale_doc(500_000, 1.02, 0).replace("net-labeled", "renamed-scheme"),
        )
        .unwrap();
        std::fs::write(cur.join("profile.json"), profile_doc(80.0)).unwrap();
        let rep = run_report(&cur, &base);
        assert_eq!(rep.regressions, 0);
        // One baseline-only + one current-only scale cell, plus the
        // missing bench_build, maintain, and serve section notes.
        assert_eq!(rep.skipped, 5);
    }

    #[test]
    fn maintain_invariants_and_regressions_fail_the_gate() {
        let base = temp_dir("maintain-base");
        let cur = temp_dir("maintain-cur");
        write_all(
            &base,
            &scale_doc(500_000, 1.02, 0),
            &bench_build_doc(200_000),
            &profile_doc(80.0),
        );
        write_all(
            &cur,
            &scale_doc(500_000, 1.02, 0),
            &bench_build_doc(200_000),
            &profile_doc(80.0),
        );
        // 100× amortized repair above the floor, an audit failure, a
        // broken equivalence claim, and an adversarial cell that neither
        // fired nor recovered.
        let bad = maintain_doc(90_000_000.0, 2, 0, false)
            .replace(r#""repair_equals_rebuild": true"#, r#""repair_equals_rebuild": false"#)
            .replace(r#""sublinear_ok": true"#, r#""sublinear_ok": false"#);
        std::fs::write(cur.join("maintain.json"), bad).unwrap();
        let rep = run_report(&cur, &base);
        // amortized_repair_us blowup + audit_failures + equivalence +
        // sublinearity + fallback_fired + recovered.
        assert_eq!(rep.regressions, 6);
    }

    #[test]
    fn serve_divergences_and_failures_fail_the_gate() {
        let base = temp_dir("serve-base");
        let cur = temp_dir("serve-cur");
        write_all(
            &base,
            &scale_doc(500_000, 1.02, 0),
            &bench_build_doc(200_000),
            &profile_doc(80.0),
        );
        write_all(
            &cur,
            &scale_doc(500_000, 1.02, 0),
            &bench_build_doc(200_000),
            &profile_doc(80.0),
        );
        // A single route divergence, two query failures, a non-reproducing
        // worker sweep, and a 100× serving-wall blowup: five regressions
        // (per-cell deterministic plus document all_deterministic).
        std::fs::write(cur.join("serve.json"), serve_doc(30_000_000, 1, 2, false)).unwrap();
        let rep = run_report(&cur, &base);
        let serve_regressions: Vec<&str> = rep
            .doc
            .get("sections")
            .and_then(Value::as_array)
            .unwrap()
            .iter()
            .filter(|sec| sec.get("name").and_then(Value::as_str) == Some("serve"))
            .flat_map(|sec| sec.get("findings").and_then(Value::as_array).unwrap().iter())
            .filter(|f| f.get("verdict").and_then(Value::as_str) == Some("regress"))
            .map(|f| f.get("metric").and_then(Value::as_str).unwrap())
            .collect();
        assert_eq!(
            serve_regressions,
            ["wall_us", "failures", "deterministic", "divergences", "all_deterministic"]
        );
        assert_eq!(rep.regressions, 5);
    }

    #[test]
    fn committed_baselines_pass_against_committed_results() {
        // The acceptance criterion: the gate exits clean on the shipped
        // tree. Committed results and baselines are identical copies, so
        // any nonzero verdict here means the gate itself is broken.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let rep = run_report(&root.join("results"), &root.join("baselines"));
        assert_eq!(rep.regressions, 0, "doc: {}", rep.doc.to_string_pretty());
        assert!(rep.compared > 50, "expected a full grid, got {}", rep.compared);
        assert_eq!(rep.skipped, 0);
    }
}
