//! Minimal aligned text-table printing for experiment output.

/// Prints an aligned text table with a header row and a separator.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let cols = headers.len();
    let mut width = vec![0usize; cols];
    for (c, h) in headers.iter().enumerate() {
        width[c] = h.len();
    }
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(cols) {
            width[c] = width[c].max(cell.len());
        }
    }
    let line = |cells: Vec<&str>| {
        let mut s = String::new();
        for (c, cell) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", cell, w = width[c]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.to_vec());
    println!("{}", "-".repeat(width.iter().sum::<usize>() + 2 * cols));
    for row in rows {
        line(row.iter().map(|s| s.as_str()).collect());
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Serializes `(headers, rows)` as a JSON array of objects (no external
/// dependency; values are emitted as strings, which is what the rows
/// contain).
pub fn to_json(headers: &[&str], rows: &[Vec<String>]) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let mut out = String::from("[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        for (c, h) in headers.iter().enumerate() {
            if c > 0 {
                out.push(',');
            }
            let empty = String::new();
            let cell = row.get(c).unwrap_or(&empty);
            out.push_str(&format!("\"{}\":\"{}\"", esc(h), esc(cell)));
        }
        out.push('}');
    }
    out.push(']');
    out
}

/// Prints the table as text, or as JSON when the process args contain
/// `--json` — the shared output path for every experiment binary.
pub fn emit(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    if std::env::args().any(|a| a == "--json") {
        println!("{}", to_json(headers, rows));
    } else {
        print_table(title, headers, rows);
    }
}

#[cfg(test)]
mod json_tests {
    use super::to_json;

    #[test]
    fn json_shape() {
        let json =
            to_json(&["a", "b"], &[vec!["1".into(), "x\"y".into()], vec!["2".into(), "z".into()]]);
        assert_eq!(json, r#"[{"a":"1","b":"x\"y"},{"a":"2","b":"z"}]"#);
    }

    #[test]
    fn json_handles_missing_cells() {
        let json = to_json(&["a", "b"], &[vec!["1".into()]]);
        assert_eq!(json, r#"[{"a":"1","b":""}]"#);
    }

    #[test]
    fn json_empty_rows() {
        assert_eq!(to_json(&["a"], &[]), "[]");
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn formatting_smoke() {
        super::print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert_eq!(super::f2(1.234), "1.23");
    }
}
