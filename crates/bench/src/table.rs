//! Minimal aligned text-table printing for experiment output.

/// Prints an aligned text table with a header row and a separator.
///
/// Every row must have exactly as many cells as there are headers; a
/// ragged row is a caller bug (it used to be silently truncated, hiding
/// the extra cells), caught by a debug assertion.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let cols = headers.len();
    for (i, row) in rows.iter().enumerate() {
        debug_assert_eq!(
            row.len(),
            cols,
            "row {i} has {} cells for {cols} headers: {row:?}",
            row.len()
        );
    }
    let mut width = vec![0usize; cols];
    for (c, h) in headers.iter().enumerate() {
        width[c] = h.len();
    }
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(cols) {
            width[c] = width[c].max(cell.len());
        }
    }
    let line = |cells: Vec<&str>| {
        let mut s = String::new();
        for (c, cell) in cells.iter().enumerate().take(cols) {
            s.push_str(&format!("{:<w$}  ", cell, w = width[c]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.to_vec());
    println!("{}", "-".repeat(width.iter().sum::<usize>() + 2 * cols));
    for row in rows {
        line(row.iter().map(|s| s.as_str()).collect());
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Serializes `(headers, rows)` as a JSON array of objects (no external
/// dependency; values are emitted as strings, which is what the rows
/// contain).
pub fn to_json(headers: &[&str], rows: &[Vec<String>]) -> String {
    fn esc(s: &str) -> String {
        // Full JSON string escaping: backslash, quote, and every control
        // character (a raw newline or tab in a cell used to produce
        // invalid JSON).
        let mut out = String::with_capacity(s.len());
        for ch in s.chars() {
            match ch {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut out = String::from("[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        for (c, h) in headers.iter().enumerate() {
            if c > 0 {
                out.push(',');
            }
            let empty = String::new();
            let cell = row.get(c).unwrap_or(&empty);
            out.push_str(&format!("\"{}\":\"{}\"", esc(h), esc(cell)));
        }
        out.push('}');
    }
    out.push(']');
    out
}

/// Prints the table as text, or as JSON when the process args contain
/// `--json` — the shared output path for every experiment binary.
pub fn emit(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    if std::env::args().any(|a| a == "--json") {
        println!("{}", to_json(headers, rows));
    } else {
        print_table(title, headers, rows);
    }
}

#[cfg(test)]
mod json_tests {
    use super::to_json;

    #[test]
    fn json_shape() {
        let json =
            to_json(&["a", "b"], &[vec!["1".into(), "x\"y".into()], vec!["2".into(), "z".into()]]);
        assert_eq!(json, r#"[{"a":"1","b":"x\"y"},{"a":"2","b":"z"}]"#);
    }

    #[test]
    fn json_handles_missing_cells() {
        let json = to_json(&["a", "b"], &[vec!["1".into()]]);
        assert_eq!(json, r#"[{"a":"1","b":""}]"#);
    }

    #[test]
    fn json_empty_rows() {
        assert_eq!(to_json(&["a"], &[]), "[]");
    }

    #[test]
    fn json_escapes_control_characters_and_newlines() {
        let json = to_json(&["a"], &[vec!["line1\nline2\tend\r\u{1}".into()]]);
        assert_eq!(json, r#"[{"a":"line1\nline2\tend\r\u0001"}]"#);
        // The emitted text must parse back as well-formed JSON.
        let parsed = netsim::json::Value::parse(&json).expect("valid JSON");
        let cell = parsed.as_array().unwrap()[0].get("a").unwrap().as_str().unwrap().to_string();
        assert_eq!(cell, "line1\nline2\tend\r\u{1}");
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn formatting_smoke() {
        super::print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert_eq!(super::f2(1.234), "1.23");
    }
}
