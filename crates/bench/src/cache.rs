//! Shared metric cache: build each `(family, n, seed)` metric once.
//!
//! Every experiment evaluates up to four routing schemes on the same
//! graph, and a single binary often runs several experiments over the
//! same families. The `Θ(n²)`-time/-space [`MetricSpace`] build dwarfs
//! everything else at scale, so [`MetricCache`] memoizes it: the first
//! request for a key runs the (optionally parallel) build and stores the
//! result behind an [`Arc`]; every later request is a pointer clone.
//!
//! The cache keeps **build/hit counters** and emits a
//! `metric-cache-build` / `metric-cache-hit` event per lookup when handed
//! a recording [`Tracer`], so a trace proves each metric was built
//! exactly once (the acceptance check the `profile`/`churn` binaries
//! surface in their JSON output via [`MetricCache::stats`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use doubling_metric::OnDemandDijkstra;
use doubling_metric::{gen, DistanceProvider, Graph, LandmarkEstimator, MetricSpace};
use netsim::json::Value;
use obs::Tracer;

/// Cache key: a family/generator name plus the `(n, seed)` it was built
/// with. Generators that ignore the seed (e.g. `exp_weight_path`) use 0.
pub type MetricKey = (String, usize, u64);

/// Build/hit counters for one cache; see [`MetricCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of metrics built (misses).
    pub builds: u64,
    /// Number of lookups served from the cache.
    pub hits: u64,
}

impl CacheStats {
    /// The stats as a JSON object (`{"builds": .., "hits": ..}`).
    pub fn to_json(self) -> Value {
        Value::Object(vec![
            ("builds".into(), self.builds.into()),
            ("hits".into(), self.hits.into()),
        ])
    }
}

/// Which [`DistanceProvider`] backend a caller wants from the cache; see
/// [`MetricCache::provider`]. The selection rules live in DESIGN.md
/// ("Distance backends"): `Exact` below the `Θ(n²)` wall or whenever a
/// certificate is produced, `OnDemand` for exact spot checks at scale,
/// `Landmarks` only for bracketing estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistanceBackend {
    /// The dense APSP matrix inside the cached [`MetricSpace`] — exact,
    /// `Θ(n²)` memory, builds the full metric on first use.
    Exact,
    /// [`OnDemandDijkstra`] over the cached graph — exact, keeps at most
    /// `rows` source rows, never builds the dense matrix.
    OnDemand {
        /// LRU capacity in source rows.
        rows: usize,
    },
    /// [`LandmarkEstimator`] over the cached graph — estimated
    /// (lower/upper bracket only), `count` landmarks.
    Landmarks {
        /// Number of farthest-point landmarks.
        count: usize,
    },
}

impl DistanceBackend {
    /// Cache-key suffix distinguishing backend variants.
    fn key(self) -> String {
        match self {
            DistanceBackend::Exact => "exact".into(),
            DistanceBackend::OnDemand { rows } => format!("ondemand:{rows}"),
            DistanceBackend::Landmarks { count } => format!("landmarks:{count}"),
        }
    }
}

/// A memoizing store of [`MetricSpace`]s keyed by `(family, n, seed)`.
pub struct MetricCache {
    threads: usize,
    map: Mutex<HashMap<MetricKey, Arc<MetricSpace>>>,
    graphs: Mutex<HashMap<MetricKey, Arc<Graph>>>,
    providers: Mutex<HashMap<(MetricKey, String), Arc<dyn DistanceProvider>>>,
    builds: AtomicU64,
    hits: AtomicU64,
}

impl MetricCache {
    /// An empty cache whose builds use up to `threads` worker threads
    /// (the `--threads` flag; 1 = sequential, results identical anyway).
    pub fn new(threads: usize) -> Self {
        MetricCache {
            threads: threads.max(1),
            map: Mutex::new(HashMap::new()),
            graphs: Mutex::new(HashMap::new()),
            providers: Mutex::new(HashMap::new()),
            builds: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    /// Worker threads used for cache-miss builds.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The metric of `family.build(n, seed)`, built on first use.
    pub fn family(&self, f: gen::Family, n: usize, seed: u64) -> Arc<MetricSpace> {
        self.family_traced(f, n, seed, &Tracer::noop())
    }

    /// As [`MetricCache::family`], logging a cache event to `tracer`.
    pub fn family_traced(
        &self,
        f: gen::Family,
        n: usize,
        seed: u64,
        tracer: &Tracer,
    ) -> Arc<MetricSpace> {
        self.get_or_build_traced(f.name(), n, seed, tracer, || f.build(n, seed))
    }

    /// The metric for an arbitrary generator under an explicit key name;
    /// `build` runs only on the first request for `(name, n, seed)`.
    pub fn get_or_build(
        &self,
        name: &str,
        n: usize,
        seed: u64,
        build: impl FnOnce() -> Graph,
    ) -> Arc<MetricSpace> {
        self.get_or_build_traced(name, n, seed, &Tracer::noop(), build)
    }

    /// As [`MetricCache::get_or_build`], logging a `metric-cache-build`
    /// or `metric-cache-hit` event (fields: family, n, seed) to `tracer`.
    pub fn get_or_build_traced(
        &self,
        name: &str,
        n: usize,
        seed: u64,
        tracer: &Tracer,
        build: impl FnOnce() -> Graph,
    ) -> Arc<MetricSpace> {
        let key = (name.to_string(), n, seed);
        if let Some(m) = self.map.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            tracer.event_lazy("metric-cache-hit", || cache_fields(name, n, seed));
            return Arc::clone(m);
        }
        // Build outside the lock: misses are rare and expensive, and the
        // experiment drivers are single-threaded per cache, so a
        // duplicate concurrent build is not a concern worth serializing
        // every Dijkstra behind a held mutex for. If two threads do race,
        // both builds are byte-identical and the second insert wins.
        self.builds.fetch_add(1, Ordering::Relaxed);
        tracer.event_lazy("metric-cache-build", || cache_fields(name, n, seed));
        let graph = self.graph_or_insert(&key, build);
        let m = {
            let _span = tracer.span("metric-build");
            let (m, profile) = MetricSpace::build_profiled(graph, self.threads);
            obs::phase::record_build_profile(tracer, &profile);
            Arc::new(m)
        };
        self.map.lock().unwrap().insert(key, Arc::clone(&m));
        m
    }

    /// The shared graph for `key`, building (and memoizing) it if absent.
    fn graph_or_insert(&self, key: &MetricKey, build: impl FnOnce() -> Graph) -> Arc<Graph> {
        let mut graphs = self.graphs.lock().unwrap();
        if let Some(g) = graphs.get(key) {
            return Arc::clone(g);
        }
        let g = Arc::new(build());
        graphs.insert(key.clone(), Arc::clone(&g));
        g
    }

    /// The shared graph of `family.build(n, seed)` *without* triggering
    /// the `Θ(n²)` metric build — the entry point for backends that scale
    /// past the dense-matrix wall.
    pub fn graph(&self, f: gen::Family, n: usize, seed: u64) -> Arc<Graph> {
        let key = (f.name().to_string(), n, seed);
        self.graph_or_insert(&key, || f.build(n, seed))
    }

    /// A memoized [`DistanceProvider`] over `family.build(n, seed)`.
    ///
    /// [`DistanceBackend::Exact`] builds (or reuses) the full
    /// [`MetricSpace`]; the other backends only need the graph, so they
    /// stay `O(capacity · n)` / `O(count · n)` even at `n` far beyond the
    /// dense-matrix wall. Providers are cached per `(key, backend)` so
    /// repeated requests share row caches and landmark tables.
    pub fn provider(
        &self,
        f: gen::Family,
        n: usize,
        seed: u64,
        backend: DistanceBackend,
    ) -> Arc<dyn DistanceProvider> {
        let key = (f.name().to_string(), n, seed);
        let pkey = (key.clone(), backend.key());
        if let Some(p) = self.providers.lock().unwrap().get(&pkey) {
            return Arc::clone(p);
        }
        let provider: Arc<dyn DistanceProvider> = match backend {
            DistanceBackend::Exact => self.family(f, n, seed),
            DistanceBackend::OnDemand { rows } => {
                Arc::new(OnDemandDijkstra::new(self.graph(f, n, seed), rows))
            }
            DistanceBackend::Landmarks { count } => {
                Arc::new(LandmarkEstimator::new(&self.graph(f, n, seed), count))
            }
        };
        self.providers.lock().unwrap().insert(pkey, Arc::clone(&provider));
        provider
    }

    /// Current build/hit counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            builds: self.builds.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
        }
    }
}

fn cache_fields(name: &str, n: usize, seed: u64) -> Vec<(&'static str, Value)> {
    vec![("family", Value::Str(name.to_string())), ("n", (n as u64).into()), ("seed", seed.into())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_once_and_shares_the_arc() {
        let cache = MetricCache::new(1);
        let a = cache.family(gen::Family::Grid, 16, 3);
        let b = cache.family(gen::Family::Grid, 16, 3);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), CacheStats { builds: 1, hits: 1 });
        // A different key is a different build.
        let c = cache.family(gen::Family::Grid, 16, 4);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.stats(), CacheStats { builds: 2, hits: 1 });
    }

    #[test]
    fn cached_metric_equals_direct_build() {
        let cache = MetricCache::new(2);
        let m = cache.family(gen::Family::Geometric, 36, 7);
        let direct = MetricSpace::new(&gen::Family::Geometric.build(36, 7));
        assert_eq!(*m, direct);
    }

    #[test]
    fn custom_generator_keys_work() {
        let cache = MetricCache::new(1);
        let mut calls = 0;
        let a = cache.get_or_build("exp-path", 12, 0, || {
            calls += 1;
            gen::exp_weight_path(12)
        });
        let b = cache.get_or_build("exp-path", 12, 0, || unreachable!("must hit the cache"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(calls, 1);
    }

    #[test]
    fn on_demand_provider_never_builds_the_dense_metric() {
        let cache = MetricCache::new(1);
        let p = cache.provider(gen::Family::Grid, 25, 3, DistanceBackend::OnDemand { rows: 4 });
        assert!(p.is_exact());
        assert!(p.dist(0, 24) > 0);
        // No Θ(n²) build happened — only the graph was generated.
        assert_eq!(cache.stats().builds, 0);
        // The exact backend *does* build, and agrees with the lazy one.
        let exact = cache.provider(gen::Family::Grid, 25, 3, DistanceBackend::Exact);
        assert_eq!(cache.stats().builds, 1);
        for v in 0..25 {
            assert_eq!(p.dist(0, v), exact.dist(0, v));
        }
        // Providers are memoized per backend.
        let again = cache.provider(gen::Family::Grid, 25, 3, DistanceBackend::OnDemand { rows: 4 });
        assert!(Arc::ptr_eq(&p, &again));
    }

    #[test]
    fn landmark_provider_brackets_the_exact_backend() {
        let cache = MetricCache::new(1);
        let lm = cache.provider(gen::Family::Grid, 36, 1, DistanceBackend::Landmarks { count: 4 });
        assert!(!lm.is_exact());
        let exact = cache.provider(gen::Family::Grid, 36, 1, DistanceBackend::Exact);
        for v in 1..36 {
            let b = lm.dist_bounds(0, v);
            assert!(b.contains(exact.dist(0, v)));
        }
    }

    #[test]
    fn graph_is_shared_between_backends_and_the_metric() {
        let cache = MetricCache::new(1);
        let g = cache.graph(gen::Family::Grid, 16, 2);
        let m = cache.family(gen::Family::Grid, 16, 2);
        assert!(Arc::ptr_eq(&g, &m.graph_arc()));
    }

    #[test]
    fn trace_events_prove_single_build() {
        let tracer = Tracer::recording();
        let cache = MetricCache::new(1);
        cache.family_traced(gen::Family::Grid, 9, 1, &tracer);
        cache.family_traced(gen::Family::Grid, 9, 1, &tracer);
        let log = tracer.finish();
        let names: Vec<&str> = log.events.iter().map(|e| e.name).collect();
        assert_eq!(names, ["metric-cache-build", "metric-cache-hit"]);
        // The single build left a metric-build span with the per-phase /
        // per-worker (threads = 1 → one worker each) children.
        let spans: Vec<&str> = log.spans.iter().map(|s| s.name).collect();
        assert_eq!(spans, ["metric-build", "apsp", "apsp-worker", "sort-rows", "sort-rows-worker"]);
        assert!(log.spans[1..].iter().all(|s| s.parent == Some(0)));
        assert_eq!(
            log.events[0].fields.iter().find(|(k, _)| *k == "family").map(|(_, v)| v.clone()),
            Some(Value::Str("grid".into()))
        );
    }
}
