//! Shared metric cache: build each `(family, n, seed)` metric once.
//!
//! Every experiment evaluates up to four routing schemes on the same
//! graph, and a single binary often runs several experiments over the
//! same families. The `Θ(n²)`-time/-space [`MetricSpace`] build dwarfs
//! everything else at scale, so [`MetricCache`] memoizes it: the first
//! request for a key runs the (optionally parallel) build and stores the
//! result behind an [`Arc`]; every later request is a pointer clone.
//!
//! The cache keeps **build/hit counters** and emits a
//! `metric-cache-build` / `metric-cache-hit` event per lookup when handed
//! a recording [`Tracer`], so a trace proves each metric was built
//! exactly once (the acceptance check the `profile`/`churn` binaries
//! surface in their JSON output via [`MetricCache::stats`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use doubling_metric::{gen, Graph, MetricSpace};
use netsim::json::Value;
use obs::Tracer;

/// Cache key: a family/generator name plus the `(n, seed)` it was built
/// with. Generators that ignore the seed (e.g. `exp_weight_path`) use 0.
pub type MetricKey = (String, usize, u64);

/// Build/hit counters for one cache; see [`MetricCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of metrics built (misses).
    pub builds: u64,
    /// Number of lookups served from the cache.
    pub hits: u64,
}

impl CacheStats {
    /// The stats as a JSON object (`{"builds": .., "hits": ..}`).
    pub fn to_json(self) -> Value {
        Value::Object(vec![
            ("builds".into(), self.builds.into()),
            ("hits".into(), self.hits.into()),
        ])
    }
}

/// A memoizing store of [`MetricSpace`]s keyed by `(family, n, seed)`.
pub struct MetricCache {
    threads: usize,
    map: Mutex<HashMap<MetricKey, Arc<MetricSpace>>>,
    builds: AtomicU64,
    hits: AtomicU64,
}

impl MetricCache {
    /// An empty cache whose builds use up to `threads` worker threads
    /// (the `--threads` flag; 1 = sequential, results identical anyway).
    pub fn new(threads: usize) -> Self {
        MetricCache {
            threads: threads.max(1),
            map: Mutex::new(HashMap::new()),
            builds: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    /// Worker threads used for cache-miss builds.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The metric of `family.build(n, seed)`, built on first use.
    pub fn family(&self, f: gen::Family, n: usize, seed: u64) -> Arc<MetricSpace> {
        self.family_traced(f, n, seed, &Tracer::noop())
    }

    /// As [`MetricCache::family`], logging a cache event to `tracer`.
    pub fn family_traced(
        &self,
        f: gen::Family,
        n: usize,
        seed: u64,
        tracer: &Tracer,
    ) -> Arc<MetricSpace> {
        self.get_or_build_traced(f.name(), n, seed, tracer, || f.build(n, seed))
    }

    /// The metric for an arbitrary generator under an explicit key name;
    /// `build` runs only on the first request for `(name, n, seed)`.
    pub fn get_or_build(
        &self,
        name: &str,
        n: usize,
        seed: u64,
        build: impl FnOnce() -> Graph,
    ) -> Arc<MetricSpace> {
        self.get_or_build_traced(name, n, seed, &Tracer::noop(), build)
    }

    /// As [`MetricCache::get_or_build`], logging a `metric-cache-build`
    /// or `metric-cache-hit` event (fields: family, n, seed) to `tracer`.
    pub fn get_or_build_traced(
        &self,
        name: &str,
        n: usize,
        seed: u64,
        tracer: &Tracer,
        build: impl FnOnce() -> Graph,
    ) -> Arc<MetricSpace> {
        let key = (name.to_string(), n, seed);
        if let Some(m) = self.map.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            tracer.event_lazy("metric-cache-hit", || cache_fields(name, n, seed));
            return Arc::clone(m);
        }
        // Build outside the lock: misses are rare and expensive, and the
        // experiment drivers are single-threaded per cache, so a
        // duplicate concurrent build is not a concern worth serializing
        // every Dijkstra behind a held mutex for. If two threads do race,
        // both builds are byte-identical and the second insert wins.
        self.builds.fetch_add(1, Ordering::Relaxed);
        tracer.event_lazy("metric-cache-build", || cache_fields(name, n, seed));
        let m = {
            let _span = tracer.span("metric-build");
            let (m, profile) = MetricSpace::build_profiled(Arc::new(build()), self.threads);
            obs::phase::record_build_profile(tracer, &profile);
            Arc::new(m)
        };
        self.map.lock().unwrap().insert(key, Arc::clone(&m));
        m
    }

    /// Current build/hit counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            builds: self.builds.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
        }
    }
}

fn cache_fields(name: &str, n: usize, seed: u64) -> Vec<(&'static str, Value)> {
    vec![("family", Value::Str(name.to_string())), ("n", (n as u64).into()), ("seed", seed.into())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_once_and_shares_the_arc() {
        let cache = MetricCache::new(1);
        let a = cache.family(gen::Family::Grid, 16, 3);
        let b = cache.family(gen::Family::Grid, 16, 3);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), CacheStats { builds: 1, hits: 1 });
        // A different key is a different build.
        let c = cache.family(gen::Family::Grid, 16, 4);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.stats(), CacheStats { builds: 2, hits: 1 });
    }

    #[test]
    fn cached_metric_equals_direct_build() {
        let cache = MetricCache::new(2);
        let m = cache.family(gen::Family::Geometric, 36, 7);
        let direct = MetricSpace::new(&gen::Family::Geometric.build(36, 7));
        assert_eq!(*m, direct);
    }

    #[test]
    fn custom_generator_keys_work() {
        let cache = MetricCache::new(1);
        let mut calls = 0;
        let a = cache.get_or_build("exp-path", 12, 0, || {
            calls += 1;
            gen::exp_weight_path(12)
        });
        let b = cache.get_or_build("exp-path", 12, 0, || unreachable!("must hit the cache"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(calls, 1);
    }

    #[test]
    fn trace_events_prove_single_build() {
        let tracer = Tracer::recording();
        let cache = MetricCache::new(1);
        cache.family_traced(gen::Family::Grid, 9, 1, &tracer);
        cache.family_traced(gen::Family::Grid, 9, 1, &tracer);
        let log = tracer.finish();
        let names: Vec<&str> = log.events.iter().map(|e| e.name).collect();
        assert_eq!(names, ["metric-cache-build", "metric-cache-hit"]);
        // The single build left a metric-build span with the per-phase /
        // per-worker (threads = 1 → one worker each) children.
        let spans: Vec<&str> = log.spans.iter().map(|s| s.name).collect();
        assert_eq!(spans, ["metric-build", "apsp", "apsp-worker", "sort-rows", "sort-rows-worker"]);
        assert!(log.spans[1..].iter().all(|s| s.parent == Some(0)));
        assert_eq!(
            log.events[0].fields.iter().find(|(k, _)| *k == "family").map(|(_, v)| v.clone()),
            Some(Value::Str("grid".into()))
        );
    }
}
