//! M1 — incremental maintenance under churn: self-healing tables vs the
//! full-rebuild baseline.
//!
//! For every (n, scheme, per-batch churn rate) cell the experiment drives
//! a seeded join/leave schedule — leave batches derived from the deltas
//! of a cumulative [`FaultTimeline`], followed by rejoin batches
//! re-admitting the same nodes — through a [`Maintainer`], and measures:
//!
//! * **amortized update cost** — repair wall time per join/leave event,
//!   next to the cost of absorbing the same batch by rebuilding the
//!   scheme from scratch over the post-batch active set (the baseline a
//!   self-healing table must beat; the target is sublinear in `n`);
//! * **p99 repair latency** — per-batch repair time folded into a
//!   [`Log2Histogram`];
//! * **certification** — every committed batch is spot-audited
//!   ([`conform::spot_audit`]): sampled active routes against the exact
//!   oracle plus a full table re-price, with the audit verdict recorded
//!   per batch;
//! * **equivalence** — after every batch the repaired scheme is compared
//!   (`PartialEq`, i.e. byte-for-byte on the table level) against the
//!   full-rebuild baseline copy;
//! * **fallbacks** — an adversarial cell aims the churn at net centers
//!   under a tight blast budget, demonstrating that the degradation
//!   ladder fires ([`netsim::maintain::BatchAction::is_fallback`]) and that the maintainer
//!   recovers (epochs keep advancing, audits keep passing).
//!
//! Wall-clock fields are pinned to 0 under `--stable` so CI's same-seed
//! determinism check can byte-compare two runs; the committed
//! `results/maintain.json` is produced without `--stable` so the
//! repair-vs-rebuild gap stays visible.

use std::time::Instant;

use doubling_metric::graph::NodeId;
use doubling_metric::nets::{ChurnBatch, NetHierarchy, NetRepairBudget};
use doubling_metric::{gen, Eps, MetricSpace};
use labeled_routing::{NetLabeled, ScaleFreeLabeled};
use name_independent::{ScaleFreeNameIndependent, SimpleNameIndependent};
use netsim::faults::{FaultPlan, FaultTimeline};
use netsim::json::Value;
use netsim::maintain::{BatchReport, Maintainable, Maintainer, MaintainerConfig};
use netsim::scheme::{Certifiable, LabeledScheme, NameIndependentScheme};
use netsim::stats::sample_pairs;
use netsim::Naming;
use obs::{Log2Histogram, MetricsRegistry, Tracer};

use crate::cache::MetricCache;
use crate::table::f2;

/// Version of the `results/maintain.json` document layout.
pub const SCHEMA_VERSION: u64 = 1;

/// Builds a seeded churn schedule by driving a cumulative
/// [`FaultTimeline`] and converting its epoch deltas into leave batches,
/// then re-admitting the same nodes in reverse order as join batches.
///
/// With `nets: None` the leave plans are uniformly random
/// ([`FaultPlan::random_nodes`], deterministic in `seed`); with
/// `Some(nets)` they target the highest net centers
/// ([`FaultPlan::targeted_net_centers`]) — the adversarial cell. Both
/// strategies kill growing prefixes of one fixed priority order, so the
/// plans are nested and the timeline validates as cumulative.
pub fn churn_schedule(
    m: &MetricSpace,
    nets: Option<&NetHierarchy>,
    leave_batches: usize,
    per_batch: usize,
    seed: u64,
) -> Vec<ChurnBatch> {
    let n = m.n();
    let plans: Vec<FaultPlan> = (1..=leave_batches)
        .map(|k| {
            let fraction = ((k * per_batch) as f64 / n as f64).min(0.5);
            match nets {
                Some(nh) => FaultPlan::targeted_net_centers(nh, n, fraction),
                None => FaultPlan::random_nodes(n, fraction, seed),
            }
        })
        .collect();
    let tl = FaultTimeline::new(plans, 1).expect("growing prefixes are cumulative");
    let mut batches = Vec::new();
    let mut prev: Vec<NodeId> = Vec::new();
    for plan in tl.epochs() {
        let dead: Vec<NodeId> = (0..n as NodeId).filter(|&v| plan.is_node_dead(v)).collect();
        let leaves: Vec<NodeId> =
            dead.iter().copied().filter(|v| prev.binary_search(v).is_err()).collect();
        batches.push(ChurnBatch::new(Vec::new(), leaves));
        prev = dead;
    }
    // Rejoin epoch by epoch in reverse: the last casualties return first.
    for k in (0..batches.len()).rev() {
        let joins = batches[k].leaves.clone();
        batches.push(ChurnBatch::new(joins, Vec::new()));
    }
    batches.retain(|b| !b.is_empty());
    batches
}

/// Everything measured over one maintenance cell.
struct CellResult {
    scheme: &'static str,
    per_batch: usize,
    updates: usize,
    repair_us: u64,
    audit_us: u64,
    rebuild_us: u64,
    hist: Log2Histogram,
    fallbacks: u64,
    equal: bool,
    reports: Vec<BatchReport>,
}

impl CellResult {
    fn amortized(&self, total: u64) -> f64 {
        if self.updates == 0 {
            0.0
        } else {
            total as f64 / self.updates as f64
        }
    }

    fn mean_blast(&self) -> f64 {
        if self.reports.is_empty() {
            0.0
        } else {
            self.reports.iter().map(|r| r.stats.blast_fraction()).sum::<f64>()
                / self.reports.len() as f64
        }
    }

    fn action_counts(&self) -> Vec<(String, Value)> {
        let mut counts: Vec<(String, u64)> = Vec::new();
        for r in &self.reports {
            let tag = r.action.tag().to_string();
            match counts.iter_mut().find(|(t, _)| *t == tag) {
                Some((_, c)) => *c += 1,
                None => counts.push((tag, 1)),
            }
        }
        counts.into_iter().map(|(t, c)| (t, c.into())).collect()
    }

    fn to_json(&self, n: usize, stable: bool) -> Value {
        let sublinear_ok = stable || self.repair_us < self.rebuild_us.max(1);
        Value::Object(vec![
            ("n".to_string(), n.into()),
            ("scheme".into(), self.scheme.into()),
            ("per_batch".into(), self.per_batch.into()),
            ("batches".into(), self.reports.len().into()),
            ("updates".into(), self.updates.into()),
            ("amortized_repair_us".into(), self.amortized(self.repair_us).into()),
            ("amortized_rebuild_us".into(), self.amortized(self.rebuild_us).into()),
            ("amortized_audit_us".into(), self.amortized(self.audit_us).into()),
            ("p99_repair_us".into(), self.hist.p99().unwrap_or(0).into()),
            ("repair_hist".into(), self.hist.to_json()),
            ("mean_blast".into(), self.mean_blast().into()),
            ("fallbacks".into(), self.fallbacks.into()),
            ("audit_failures".into(), audit_failures(&self.reports).into()),
            ("repair_equals_rebuild".into(), self.equal.into()),
            ("sublinear_ok".into(), sublinear_ok.into()),
            ("epoch_final".into(), self.reports.last().map_or(0, |r| r.epoch).into()),
            ("table_bits_final".into(), self.reports.last().map_or(0, |r| r.table_bits).into()),
            ("active_final".into(), self.reports.last().map_or(0, |r| r.active).into()),
            ("actions".into(), Value::Object(self.action_counts())),
        ])
    }

    fn row(&self, n: usize) -> Vec<String> {
        vec![
            n.to_string(),
            self.scheme.to_string(),
            self.per_batch.to_string(),
            self.updates.to_string(),
            f2(self.amortized(self.repair_us)),
            f2(self.amortized(self.rebuild_us)),
            self.hist.p99().unwrap_or(0).to_string(),
            f2(self.mean_blast()),
            self.fallbacks.to_string(),
            if audit_failures(&self.reports) == 0 { "ok".into() } else { "FAIL".into() },
        ]
    }
}

fn audit_failures(reports: &[BatchReport]) -> u64 {
    reports.iter().filter(|r| !r.audit_ok).count() as u64
}

/// Drives one scheme instance through `schedule`, maintaining a second
/// copy by full rebuilds as the baseline (and equivalence witness).
#[allow(clippy::too_many_arguments)] // experiment cell: one knob per measured dimension
fn run_cell<S: Maintainable + Clone + PartialEq>(
    m: &MetricSpace,
    scheme: S,
    scheme_name: &'static str,
    schedule: &[ChurnBatch],
    config: MaintainerConfig,
    audit_pairs: usize,
    seed: u64,
    per_batch: usize,
    stable: bool,
    tracer: &Tracer,
    registry: &MetricsRegistry,
    audit: impl Fn(&S, &[(NodeId, NodeId)]) -> bool,
) -> CellResult {
    let pin = |v: u64| if stable { 0 } else { v };
    let mut baseline = scheme.clone();
    let mut active = vec![false; m.n()];
    for v in scheme.active_nodes() {
        active[v as usize] = true;
    }
    let mut mt = Maintainer::new(m.n(), scheme, config);
    let mut out = CellResult {
        scheme: scheme_name,
        per_batch,
        updates: 0,
        repair_us: 0,
        audit_us: 0,
        rebuild_us: 0,
        hist: Log2Histogram::new(),
        fallbacks: 0,
        equal: true,
        reports: Vec::new(),
    };
    for (i, batch) in schedule.iter().enumerate() {
        out.updates += batch.len();
        for &v in &batch.leaves {
            active[v as usize] = false;
        }
        for &v in &batch.joins {
            active[v as usize] = true;
        }
        let ids: Vec<NodeId> = (0..m.n() as NodeId).filter(|&v| active[v as usize]).collect();
        // Audit pairs sampled over the *post-batch* active set.
        let pairs: Vec<(NodeId, NodeId)> =
            sample_pairs(ids.len(), audit_pairs, seed ^ ((i as u64 + 1) << 8))
                .into_iter()
                .map(|(a, b)| (ids[a as usize], ids[b as usize]))
                .collect();

        let audit_spent = std::cell::Cell::new(0u64);
        let t0 = Instant::now();
        let report = mt
            .apply_batch(m, batch, |s| {
                let ta = Instant::now();
                let ok = audit(s, &pairs);
                audit_spent.set(audit_spent.get() + ta.elapsed().as_micros() as u64);
                ok
            })
            .expect("schedule batches are valid and audits recover");
        let total_us = t0.elapsed().as_micros() as u64;
        let repair_us = pin(total_us.saturating_sub(audit_spent.get()));
        out.repair_us += repair_us;
        out.audit_us += pin(audit_spent.get());
        out.hist.record(repair_us);
        if report.action.is_fallback() {
            out.fallbacks += 1;
        }

        let t1 = Instant::now();
        baseline.rebuild(m, &ids);
        out.rebuild_us += pin(t1.elapsed().as_micros() as u64);
        out.equal &= *mt.scheme() == baseline;

        obs::eval::trace_maintain_batch(
            tracer,
            || {
                vec![
                    ("scheme", scheme_name.into()),
                    ("n", m.n().into()),
                    ("per_batch", per_batch.into()),
                ]
            },
            &report,
        );
        obs::eval::meter_maintain_batch(registry, &report);
        out.reports.push(report);
    }
    out
}

/// Spot-audit closures per scheme kind: sampled differential route audit
/// plus the full table re-price (see [`conform::spot_audit`]).
fn audit_labeled<S: LabeledScheme + Certifiable + Sync>(
    m: &MetricSpace,
    threads: usize,
) -> impl Fn(&S, &[(NodeId, NodeId)]) -> bool + '_ {
    move |s, pairs| {
        conform::spot_audit(
            m,
            s,
            |u| s.table_bits(u),
            pairs,
            threads,
            |u, v| s.route_to_node(m, u, v),
        )
        .ok()
    }
}

fn audit_name_independent<'a, S: NameIndependentScheme + Certifiable + Sync>(
    m: &'a MetricSpace,
    naming: &'a Naming,
    threads: usize,
) -> impl Fn(&S, &[(NodeId, NodeId)]) -> bool + 'a {
    move |s, pairs| {
        conform::spot_audit(
            m,
            s,
            |u| s.table_bits(u),
            pairs,
            threads,
            |u, v| s.route(m, u, naming.name_of(v)),
        )
        .ok()
    }
}

/// Runs the adversarial cell: net-center-targeted leaves under a blast
/// budget tight enough that the degradation ladder must fire, followed by
/// the rejoins. Returns its JSON block; the embedded assertions are the
/// acceptance criterion (fallback fires AND the maintainer recovers).
#[allow(clippy::too_many_arguments)] // experiment cell: one knob per measured dimension
fn run_adversarial(
    m: &MetricSpace,
    eps: Eps,
    audit_pairs: usize,
    seed: u64,
    threads: usize,
    stable: bool,
    tracer: &Tracer,
    registry: &MetricsRegistry,
) -> Value {
    let nets = NetHierarchy::new(m);
    let per_batch = (m.n() / 16).max(2);
    let schedule = churn_schedule(m, Some(&nets), 2, per_batch, seed);
    let config = MaintainerConfig {
        budget: NetRepairBudget::unbounded(),
        // Net-center churn rebuilds far more than 2% of the structures, so
        // the blast rung must trip and degrade to a whole-scheme rebuild.
        max_blast_fraction: 0.02,
        ..Default::default()
    };
    let scheme = NetLabeled::new(m, eps).expect("eps within range");
    let cell = run_cell(
        m,
        scheme,
        "net-labeled",
        &schedule,
        config,
        audit_pairs,
        seed,
        per_batch,
        stable,
        tracer,
        registry,
        audit_labeled(m, threads),
    );
    let recovered = audit_failures(&cell.reports) == 0
        && cell.reports.last().map_or(0, |r| r.epoch) == cell.reports.len() as u64
        && cell.equal;
    Value::Object(vec![
        ("n".to_string(), m.n().into()),
        ("scheme".into(), "net-labeled".into()),
        ("strategy".into(), "netcenter".into()),
        ("per_batch".into(), per_batch.into()),
        ("batches".into(), cell.reports.len().into()),
        ("fallbacks".into(), cell.fallbacks.into()),
        ("recovered".into(), recovered.into()),
        (
            "actions".into(),
            Value::Array(cell.reports.iter().map(|r| r.action.tag().into()).collect()),
        ),
    ])
}

/// Runs the full maintenance grid on unit grid graphs: every scheme ×
/// every n × every per-batch churn rate, plus the adversarial
/// net-center cell on the smallest n. Returns table headers/rows for the
/// console plus the full JSON document.
///
/// When `tracer` records, every committed batch becomes one
/// `"maintain-batch"` event ([`obs::eval::trace_maintain_batch`]);
/// `registry` counts batches by action
/// ([`obs::eval::meter_maintain_batch`]).
#[allow(clippy::too_many_arguments)] // experiment entry point: one knob per CLI flag
pub fn run_maintain(
    cache: &MetricCache,
    ns: &[usize],
    eps: Eps,
    leave_batches: usize,
    rates: &[usize],
    audit_pairs: usize,
    seed: u64,
    threads: usize,
    stable: bool,
    tracer: &Tracer,
    registry: &MetricsRegistry,
) -> (Vec<&'static str>, Vec<Vec<String>>, Value) {
    let headers = vec![
        "n",
        "scheme",
        "per-batch",
        "updates",
        "repair(us/upd)",
        "rebuild(us/upd)",
        "p99(us)",
        "blast",
        "fallbacks",
        "cert",
    ];
    let mut rows = Vec::new();
    let mut cells = Vec::new();
    let mut adversarial = None;

    for &n in ns {
        let m = cache.family_traced(gen::Family::Grid, n, seed, tracer);
        let naming = Naming::random(m.n(), seed ^ 0xA5);
        for &rate in rates {
            let schedule = churn_schedule(&m, None, leave_batches, rate, seed ^ rate as u64);
            let config = MaintainerConfig::default();
            let cell_results = [
                run_cell(
                    &m,
                    NetLabeled::new(&m, eps).expect("eps within range"),
                    "net-labeled",
                    &schedule,
                    config,
                    audit_pairs,
                    seed,
                    rate,
                    stable,
                    tracer,
                    registry,
                    audit_labeled(&m, threads),
                ),
                run_cell(
                    &m,
                    ScaleFreeLabeled::new(&m, eps).expect("eps within range"),
                    "scale-free-labeled",
                    &schedule,
                    config,
                    audit_pairs,
                    seed,
                    rate,
                    stable,
                    tracer,
                    registry,
                    audit_labeled(&m, threads),
                ),
                run_cell(
                    &m,
                    SimpleNameIndependent::new(&m, eps, naming.clone()).expect("eps within range"),
                    "simple-NI",
                    &schedule,
                    config,
                    audit_pairs,
                    seed,
                    rate,
                    stable,
                    tracer,
                    registry,
                    audit_name_independent(&m, &naming, threads),
                ),
                run_cell(
                    &m,
                    ScaleFreeNameIndependent::new(&m, eps, naming.clone())
                        .expect("eps within range"),
                    "scale-free-NI",
                    &schedule,
                    config,
                    audit_pairs,
                    seed,
                    rate,
                    stable,
                    tracer,
                    registry,
                    audit_name_independent(&m, &naming, threads),
                ),
            ];
            for cell in cell_results {
                rows.push(cell.row(m.n()));
                cells.push(cell.to_json(m.n(), stable));
            }
        }
        if adversarial.is_none() {
            adversarial = Some(run_adversarial(
                &m,
                eps,
                audit_pairs,
                seed,
                threads,
                stable,
                tracer,
                registry,
            ));
        }
    }

    let doc = Value::Object(vec![
        ("schema_version".to_string(), SCHEMA_VERSION.into()),
        ("experiment".into(), "maintain".into()),
        ("family".into(), "grid".into()),
        ("eps".into(), eps.to_string().into()),
        ("seed".into(), seed.into()),
        ("leave_batches".into(), leave_batches.into()),
        ("rates".into(), Value::Array(rates.iter().map(|&r| Value::from(r)).collect())),
        ("audit_pairs".into(), audit_pairs.into()),
        ("stable".into(), stable.into()),
        ("metric_cache".into(), cache.stats().to_json()),
        ("cells".into(), Value::Array(cells)),
        ("adversarial".into(), adversarial.unwrap_or(Value::Null)),
    ]);
    (headers, rows, doc)
}

/// Entry point shared by the root `maintain` binary and
/// `cargo run -p bench --bin maintain`: runs the grid, prints the table,
/// and writes `results/maintain.json`. With `--trace` the per-batch
/// events land in `results/maintain_trace.jsonl`.
///
/// Usage: `maintain [1/eps] [audit_pairs] [--n LIST] [--seed N]
/// [--stable] [--json] [--trace] [--chrome-trace PATH] [--threads N]`.
pub fn maintain_main() {
    let cli = crate::cli::Cli::parse_env(42);
    let inv: u64 = cli.pos(0, 8);
    let audit_pairs: usize = cli.pos(1, 50);
    let ns = cli.n_list.clone().unwrap_or_else(|| vec![64, 256, 2025]);
    let rates = [1usize, 8];
    let leave_batches = 3usize;
    let tracer = cli.tracer();
    let cache = MetricCache::new(cli.threads);
    let registry = MetricsRegistry::new();
    let (headers, rows, doc) = run_maintain(
        &cache,
        &ns,
        Eps::one_over(inv),
        leave_batches,
        &rates,
        audit_pairs,
        cli.seed,
        cli.threads,
        cli.stable,
        &tracer,
        &registry,
    );
    crate::table::emit(
        &format!(
            "Maintain: incremental repair vs full rebuild (eps=1/{inv}, {audit_pairs} audit pairs)"
        ),
        &headers,
        &rows,
    );
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/maintain.json", doc.to_string_pretty() + "\n")
        .expect("write results/maintain.json");
    if !cli.json {
        println!("\nwrote results/maintain.json");
    }
    let snapshot = registry.snapshot();
    let log = tracer.finish();
    if cli.trace {
        std::fs::write("results/maintain_trace.jsonl", log.to_jsonl())
            .expect("write results/maintain_trace.jsonl");
        if !cli.json {
            println!("wrote results/maintain_trace.jsonl");
        }
    }
    if let Some(path) = cli.write_chrome_trace(&log, Some(&snapshot)) {
        if !cli.json {
            println!("wrote {path}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_schedule_is_cumulative_and_returns_everyone() {
        let m = MetricSpace::new(&gen::grid(8, 8));
        let batches = churn_schedule(&m, None, 3, 4, 7);
        assert_eq!(batches.len(), 6); // 3 leave + 3 rejoin
        let mut active = vec![true; m.n()];
        let mut left_total = 0;
        for b in &batches {
            b.validate(&active).expect("schedule batches are valid in order");
            left_total += b.leaves.len();
            for &v in &b.leaves {
                active[v as usize] = false;
            }
            for &v in &b.joins {
                active[v as usize] = true;
            }
        }
        assert_eq!(left_total, 12);
        assert!(active.iter().all(|&a| a), "every leaver rejoins");
        // Deterministic in the seed.
        assert_eq!(batches, churn_schedule(&m, None, 3, 4, 7));
        assert_ne!(batches, churn_schedule(&m, None, 3, 4, 8));
    }

    #[test]
    fn maintain_grid_certifies_every_batch_and_matches_rebuild() {
        let cache = MetricCache::new(1);
        let tracer = Tracer::recording();
        let registry = MetricsRegistry::new();
        let (h, rows, doc) = run_maintain(
            &cache,
            &[36],
            Eps::one_over(8),
            2,
            &[2],
            40,
            7,
            1,
            true, // stable: pinned wall fields keep this test timing-free
            &tracer,
            &registry,
        );
        assert_eq!(h.len(), 10);
        assert_eq!(rows.len(), 4); // 4 schemes × 1 n × 1 rate
        let cells = doc.get("cells").and_then(Value::as_array).expect("cells");
        assert_eq!(cells.len(), 4);
        let mut batches_total = 0;
        for c in cells {
            assert_eq!(c.get("audit_failures").and_then(Value::as_u64), Some(0));
            assert_eq!(c.get("repair_equals_rebuild").and_then(Value::as_bool), Some(true));
            assert_eq!(c.get("fallbacks").and_then(Value::as_u64), Some(0));
            assert_eq!(c.get("sublinear_ok").and_then(Value::as_bool), Some(true));
            let batches = c.get("batches").and_then(Value::as_u64).unwrap();
            let epoch = c.get("epoch_final").and_then(Value::as_u64).unwrap();
            assert_eq!(epoch, batches, "every batch epoch-stamped");
            batches_total += batches;
            // Stable run: pinned wall fields are exactly zero.
            assert_eq!(c.get("amortized_repair_us").and_then(Value::as_f64), Some(0.0));
        }

        // The adversarial net-center cell fired the fallback AND recovered.
        let adv = doc.get("adversarial").expect("adversarial cell");
        assert!(adv.get("fallbacks").and_then(Value::as_u64).unwrap() > 0, "ladder must fire");
        assert_eq!(adv.get("recovered").and_then(Value::as_bool), Some(true));
        let adv_batches = adv.get("batches").and_then(Value::as_u64).unwrap();

        // Telemetry: one maintain-batch event and one counter tick per
        // committed batch (grid cells + adversarial cell).
        let total = batches_total + adv_batches;
        let log = tracer.finish();
        let events = log.events.iter().filter(|e| e.name == "maintain-batch").count() as u64;
        assert_eq!(events, total);
        assert_eq!(registry.snapshot().counter("maintain.batches"), Some(total));

        // schema_version leads the document.
        assert!(doc.to_string_pretty().starts_with("{\n  \"schema_version\""));
        assert_eq!(Value::parse(&doc.to_string_pretty()).unwrap(), doc);
    }

    #[test]
    fn unpinned_run_beats_rebuild_on_amortized_cost() {
        // Timing-based, but the margin is structural: a 2-node batch
        // touches O(polylog) structures while the rebuild reconstructs
        // all of them. Assert the aggregate, not per-batch, to stay
        // robust against scheduler noise.
        let cache = MetricCache::new(1);
        let (_, _, doc) = run_maintain(
            &cache,
            &[196],
            Eps::one_over(8),
            2,
            &[2],
            20,
            7,
            1,
            false,
            &Tracer::noop(),
            &MetricsRegistry::disabled(),
        );
        let cells = doc.get("cells").and_then(Value::as_array).unwrap();
        for c in cells {
            let scheme = c.get("scheme").and_then(Value::as_str).unwrap();
            let repair = c.get("amortized_repair_us").and_then(Value::as_f64).unwrap();
            let rebuild = c.get("amortized_rebuild_us").and_then(Value::as_f64).unwrap();
            assert!(
                repair < rebuild,
                "{scheme}: amortized repair {repair} us not below rebuild {rebuild} us"
            );
            assert_eq!(c.get("sublinear_ok").and_then(Value::as_bool), Some(true));
        }
    }
}
