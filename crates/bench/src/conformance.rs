//! Experiment V1: theorem-conformance certificates.
//!
//! For every (metric family × `n` × `ε` × seed) cell, all four schemes are
//! built and audited against their theorems by the `conform` crate:
//! exhaustive all-pairs routing with the differential route oracle, the
//! double-entry per-node table audit, and header/label measurements —
//! each clause reported as bound vs measured with its margin, plus a
//! worst-stretch witness route per certificate (reproducing Tables 1 & 2
//! with a bound column). Theorem 1.3 is certified once per run by playing
//! the adversarial search game on the lower-bound tree.
//!
//! Output schema (`results/conformance.json`, `schema_version` 1): the
//! sweep axes, one `cells` entry per (family, n, ε, seed) holding the four
//! [`conform::Certificate`]s, the `lower_bound` certificate, and a
//! `summary` with the total clause count and the global verdict. The
//! document depends only on the sweep arguments and `--seed` — never on
//! `--threads` — so same-seed runs are byte-identical (CI enforces this).

use std::sync::Arc;

use doubling_metric::{gen, DistanceProvider, Eps, OnDemandDijkstra};
use labeled_routing::{NetLabeled, ScaleFreeLabeled};
use name_independent::{ScaleFreeNameIndependent, SimpleNameIndependent};
use netsim::json::Value;
use netsim::stats::{all_pairs, sample_pairs};
use netsim::Naming;
use obs::{FlightRecorder, Tracer};

use conform::{certify_labeled_with, certify_lower_bound, certify_name_independent_with};
use conform::{Certificate, Guarantee, Params};

use crate::cache::MetricCache;
use crate::table::f2;

/// Size of the Theorem 1.3 lower-bound tree and the number of
/// order-optimization iterations used by the full `conformance` run.
pub const LB_TREE_SIZE: usize = 1 << 14;
/// See [`LB_TREE_SIZE`].
pub const LB_ITERS: usize = 1500;
/// The `ε` values (as integers, the game's convention) Theorem 1.3 is
/// certified at: the game value must stay `≥ 9 − ε` for each.
pub const LB_EPS_VALUES: [u64; 3] = [2, 4, 6];

/// Above this node count the per-cell route audit switches from the
/// exhaustive all-pairs oracle to a seeded spot audit: `SPOT_PAIRS`
/// sampled pairs cross-checked against the exact on-demand Dijkstra
/// backend (see DESIGN.md, "Distance backends"). Below it, nothing
/// changes — the audit replays every ordered pair against the dense
/// matrix, byte-identical to the pre-backend engine.
pub const AUDIT_WALL: usize = 800;
/// Pairs per spot-audit cell above [`AUDIT_WALL`].
pub const SPOT_PAIRS: usize = 2000;
/// LRU row capacity of the spot-audit oracle.
pub const SPOT_ORACLE_ROWS: usize = 64;

/// Table row for one certificate: sweep coordinates, then measured vs
/// bound for the three headline clauses, then the verdict.
fn cert_row(family: &str, n: usize, eps: &str, seed: u64, cert: &Certificate) -> Vec<String> {
    let get = |name: &str| {
        cert.clauses
            .iter()
            .find(|c| c.name == name)
            .map(|c| (c.measured, c.bound))
            .unwrap_or((f64::NAN, f64::NAN))
    };
    let (stretch_m, stretch_b) = get("stretch");
    let (table_m, table_b) = get("table-bits");
    let (header_m, header_b) = get("header-bits");
    vec![
        family.to_string(),
        n.to_string(),
        eps.to_string(),
        seed.to_string(),
        cert.theorem.to_string(),
        cert.scheme.clone(),
        f2(stretch_m),
        f2(stretch_b),
        format!("{}", table_m as u64),
        format!("{}", table_b as u64),
        format!("{}", header_m as u64),
        format!("{}", header_b as u64),
        if cert.pass() { "PASS" } else { "FAIL" }.to_string(),
    ]
}

/// Emits one trace event per clause of `cert` (see
/// [`obs::eval::trace_conformance_clause`]); free with a noop tracer.
fn trace_cert(tracer: &Tracer, family: &str, n: usize, eps: &str, seed: u64, cert: &Certificate) {
    for c in &cert.clauses {
        obs::eval::trace_conformance_clause(
            tracer,
            || {
                vec![
                    ("family", family.into()),
                    ("n", n.into()),
                    ("eps", eps.into()),
                    ("seed", seed.into()),
                    ("scheme", cert.scheme.clone().into()),
                    ("theorem", cert.theorem.into()),
                ]
            },
            &c.name,
            c.bound,
            c.measured,
            c.pass(),
        );
    }
}

/// Runs the full conformance sweep. Returns console table headers/rows
/// plus the JSON document (`schema_version` 1).
///
/// Seeds run from `seed` to `seed + num_seeds - 1`. `threads` fans the
/// per-cell route audit out over scoped workers but never affects the
/// document (the audit merge is order-deterministic), so two runs with the
/// same sweep arguments and seed are byte-identical at any thread count.
///
/// Every certificate's worst-stretch witness route enters `flight` (hop
/// attribution included); a failing certificate flags it with a
/// `"conformance-failure"` anomaly, so the owning binary dumps the ring.
#[allow(clippy::too_many_arguments)]
pub fn run_conformance(
    cache: &MetricCache,
    families: &[gen::Family],
    ns: &[usize],
    eps_list: &[Eps],
    seed: u64,
    num_seeds: usize,
    threads: usize,
    lb_tree_size: usize,
    lb_iters: usize,
    audit_wall: usize,
    tracer: &Tracer,
    flight: &mut FlightRecorder,
) -> (Vec<&'static str>, Vec<Vec<String>>, Value) {
    let headers = vec![
        "family", "n", "eps", "seed", "theorem", "scheme", "stretch", "s-bound", "table-b",
        "t-bound", "header-b", "h-bound", "verdict",
    ];
    let mut rows = Vec::new();
    let mut cell_docs = Vec::new();
    let mut total_clauses = 0usize;
    let mut total_certs = 0usize;
    let mut all_pass = true;

    for &family in families {
        for &n in ns {
            for &eps in eps_list {
                for s in seed..seed + num_seeds as u64 {
                    let m = cache.family_traced(family, n, s, tracer);
                    let params = Params::measure(&m, eps);
                    let naming = Naming::random(m.n(), s ^ 0xA5);
                    let exhaustive = m.n() <= audit_wall;
                    let pairs = if exhaustive {
                        all_pairs(m.n())
                    } else {
                        sample_pairs(m.n(), SPOT_PAIRS, s ^ 0x51)
                    };
                    let oracle: Arc<dyn DistanceProvider> = if exhaustive {
                        Arc::clone(&m) as Arc<dyn DistanceProvider>
                    } else {
                        Arc::new(OnDemandDijkstra::new(m.graph_arc(), SPOT_ORACLE_ROWS))
                    };
                    let eps_str = eps.to_string();

                    let nl = NetLabeled::new(&m, eps).expect("eps within range");
                    let sfl = ScaleFreeLabeled::new(&m, eps).expect("eps within range");
                    let sni = SimpleNameIndependent::new(&m, eps, naming.clone())
                        .expect("eps within range");
                    let sfni = ScaleFreeNameIndependent::new(&m, eps, naming.clone())
                        .expect("eps within range");

                    let o = oracle.as_ref();
                    let certs = vec![
                        certify_labeled_with(
                            &m,
                            o,
                            &nl,
                            &Guarantee::lemma_3_1(),
                            &params,
                            &pairs,
                            threads,
                        ),
                        certify_labeled_with(
                            &m,
                            o,
                            &sfl,
                            &Guarantee::theorem_1_2(),
                            &params,
                            &pairs,
                            threads,
                        ),
                        certify_name_independent_with(
                            &m,
                            o,
                            &sni,
                            &naming,
                            &Guarantee::theorem_1_4(),
                            &params,
                            &pairs,
                            threads,
                        ),
                        certify_name_independent_with(
                            &m,
                            o,
                            &sfni,
                            &naming,
                            &Guarantee::theorem_1_1(),
                            &params,
                            &pairs,
                            threads,
                        ),
                    ];

                    for cert in &certs {
                        trace_cert(tracer, family.name(), m.n(), &eps_str, s, cert);
                        rows.push(cert_row(family.name(), m.n(), &eps_str, s, cert));
                        if let Some(w) = &cert.witness {
                            flight.record_route(w.src, w.dst, &w.route, w.stretch);
                        }
                        if !cert.pass() {
                            flight.note_anomaly("conformance-failure");
                        }
                        total_clauses += cert.clauses.len();
                        total_certs += 1;
                        all_pass &= cert.pass();
                    }
                    cell_docs.push(Value::Object(vec![
                        ("family".into(), family.name().into()),
                        ("n".into(), m.n().into()),
                        ("eps".into(), eps_str.clone().into()),
                        ("seed".into(), s.into()),
                        (
                            "audit".into(),
                            Value::Object(vec![
                                (
                                    "mode".into(),
                                    if exhaustive { "exhaustive" } else { "spot" }.into(),
                                ),
                                ("pairs".into(), pairs.len().into()),
                                ("oracle".into(), oracle.backend().into()),
                            ]),
                        ),
                        (
                            "certificates".into(),
                            Value::Array(certs.iter().map(Certificate::to_json).collect()),
                        ),
                    ]));
                }
            }
        }
    }

    // Theorem 1.3, once per run: the search game on the lower-bound tree.
    let lb = certify_lower_bound(&LB_EPS_VALUES, lb_tree_size, lb_iters, seed);
    trace_cert(tracer, "lb-tree", lb_tree_size, "-", seed, &lb);
    for c in &lb.clauses {
        rows.push(vec![
            "lb-tree".to_string(),
            lb_tree_size.to_string(),
            "-".to_string(),
            seed.to_string(),
            lb.theorem.to_string(),
            lb.scheme.clone(),
            f2(c.measured),
            f2(c.bound),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            if c.pass() { "PASS" } else { "FAIL" }.to_string(),
        ]);
    }
    total_clauses += lb.clauses.len();
    total_certs += 1;
    all_pass &= lb.pass();
    if !lb.pass() {
        flight.note_anomaly("conformance-failure");
    }

    let doc = Value::Object(vec![
        ("schema_version".into(), 1u64.into()),
        ("families".into(), Value::Array(families.iter().map(|f| f.name().into()).collect())),
        ("ns".into(), Value::Array(ns.iter().map(|&n| n.into()).collect())),
        ("eps".into(), Value::Array(eps_list.iter().map(|e| e.to_string().into()).collect())),
        ("seed".into(), seed.into()),
        ("num_seeds".into(), num_seeds.into()),
        ("metric_cache".into(), cache.stats().to_json()),
        ("cells".into(), Value::Array(cell_docs)),
        ("lower_bound".into(), lb.to_json()),
        (
            "summary".into(),
            Value::Object(vec![
                ("certificates".into(), total_certs.into()),
                ("clauses".into(), total_clauses.into()),
                ("all_pass".into(), all_pass.into()),
            ]),
        ),
    ]);
    (headers, rows, doc)
}

/// Entry point shared by the root `conformance` binary and
/// `cargo run -p bench --bin conformance`: runs the sweep, prints the
/// table, and writes `results/conformance.json`. With `--trace`, every
/// clause verdict is recorded to `results/conformance_trace.jsonl`.
///
/// Usage: `conformance [1/eps-list] [--n LIST] [--seeds K] [--seed N]
/// [--json] [--trace] [--chrome-trace PATH] [--threads N]` — e.g.
/// `conformance 4,8 --n 64,196`. A failing certificate dumps the witness
/// flight ring to `results/conformance_flight.jsonl` before the verdict
/// assertion fires.
pub fn conformance_main() {
    let cli = crate::cli::Cli::parse_env(42);
    let inv_list: String = cli.pos(0, "4,8".to_string());
    let eps_list: Vec<Eps> = inv_list
        .split(',')
        .map(|s| {
            let inv: u64 = s
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("invalid 1/eps value: {s:?} in {inv_list:?}"));
            Eps::one_over(inv)
        })
        .collect();
    let ns = cli.n_list.clone().unwrap_or_else(|| vec![64, 196]);
    let num_seeds = cli.seeds.unwrap_or(1);
    let families = crate::experiments::table_families();
    let tracer = cli.tracer();
    let cache = MetricCache::new(cli.threads);
    let mut flight = FlightRecorder::new(obs::flight::DEFAULT_CAPACITY);
    let (headers, rows, doc) = run_conformance(
        &cache,
        &families,
        &ns,
        &eps_list,
        cli.seed,
        num_seeds,
        cli.threads,
        LB_TREE_SIZE,
        LB_ITERS,
        AUDIT_WALL,
        &tracer,
        &mut flight,
    );
    crate::table::emit(
        &format!(
            "Conformance: theorem certificates, bound vs measured (eps 1/{inv_list}, n {ns:?}, \
             {num_seeds} seed(s))"
        ),
        &headers,
        &rows,
    );
    let all_pass = doc
        .get("summary")
        .and_then(|s| s.get("all_pass"))
        .and_then(Value::as_bool)
        .unwrap_or(false);
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/conformance.json", doc.to_string_pretty() + "\n")
        .expect("write results/conformance.json");
    if !cli.json {
        println!("\nwrote results/conformance.json");
        println!("verdict: {}", if all_pass { "all certificates PASS" } else { "FAILURES found" });
    }
    let log = tracer.finish();
    if cli.trace {
        std::fs::write("results/conformance_trace.jsonl", log.to_jsonl())
            .expect("write results/conformance_trace.jsonl");
        if !cli.json {
            println!("wrote results/conformance_trace.jsonl");
        }
    }
    if let Some(path) = cli.write_chrome_trace(&log, None) {
        if !cli.json {
            println!("wrote {path}");
        }
    }
    let dumped = flight
        .dump_if_anomalous("results/conformance_flight.jsonl")
        .expect("write results/conformance_flight.jsonl");
    if dumped {
        eprintln!(
            "conformance failures: witness flight ring dumped to \
             results/conformance_flight.jsonl"
        );
    }
    assert!(all_pass, "conformance FAILED — see results/conformance.json");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_grid_cell_certifies_all_four_theorems() {
        let tracer = Tracer::recording();
        let cache = MetricCache::new(1);
        let mut flight = FlightRecorder::new(8);
        let (h, rows, doc) = run_conformance(
            &cache,
            &[gen::Family::Grid],
            &[36],
            &[Eps::one_over(8)],
            7,
            1,
            2,
            1 << 9,
            120,
            AUDIT_WALL,
            &tracer,
            &mut flight,
        );
        assert_eq!(h.len(), 13);
        for row in &rows {
            assert_eq!(row.len(), h.len());
            assert_eq!(row.last().unwrap(), "PASS", "row failed: {row:?}");
        }
        // 4 scheme certificates + 3 lower-bound clauses.
        assert_eq!(rows.len(), 4 + LB_EPS_VALUES.len());
        assert_eq!(doc.get("schema_version").and_then(Value::as_u64), Some(1));
        let summary = doc.get("summary").expect("summary");
        assert_eq!(summary.get("all_pass").and_then(Value::as_bool), Some(true));
        assert_eq!(summary.get("certificates").and_then(Value::as_u64), Some(5));

        // Every certificate carries a worst-pair witness whose route ends
        // at the witness destination.
        let cells = doc.get("cells").and_then(Value::as_array).expect("cells");
        assert_eq!(cells.len(), 1);
        let certs = cells[0].get("certificates").and_then(Value::as_array).unwrap();
        assert_eq!(certs.len(), 4);
        for cert in certs {
            let w = cert.get("witness").expect("witness");
            let dst = w.get("dst").and_then(Value::as_u64).expect("dst");
            let hops = w.get("route").and_then(|r| r.get("hops")).and_then(Value::as_array);
            assert_eq!(hops.and_then(|h| h.last()).and_then(Value::as_u64), Some(dst));
            assert!(w.get("stretch").and_then(Value::as_f64).unwrap() >= 1.0);
        }

        // Clause verdicts were traced.
        let log = tracer.finish();
        assert!(log.events.iter().any(|e| e.name == "conformance-pass"));
        assert!(!log.events.iter().any(|e| e.name == "conformance-violation"));

        // Every scheme certificate's witness route entered the flight
        // ring; with all certificates passing, nothing is anomalous.
        assert_eq!(flight.len(), 4);
        assert_eq!(flight.anomalies(), 0);
        assert!(flight.records().all(|r| !r.hops.is_empty() || r.src == r.dst));
    }

    #[test]
    fn spot_audit_above_the_wall_still_certifies_and_stays_deterministic() {
        // Force the spot path by dropping the wall below n = 36: the cell
        // is audited on sampled pairs against the on-demand oracle.
        let run = |threads: usize| {
            let cache = MetricCache::new(threads);
            let (_, rows, doc) = run_conformance(
                &cache,
                &[gen::Family::Grid],
                &[36],
                &[Eps::one_over(8)],
                7,
                1,
                threads,
                1 << 8,
                60,
                16,
                &Tracer::noop(),
                &mut FlightRecorder::disabled(),
            );
            for row in &rows {
                assert_eq!(row.last().unwrap(), "PASS", "row failed: {row:?}");
            }
            doc
        };
        let doc = run(1);
        let cells = doc.get("cells").and_then(Value::as_array).expect("cells");
        let audit = cells[0].get("audit").expect("audit block");
        assert_eq!(audit.get("mode").and_then(Value::as_str), Some("spot"));
        assert_eq!(audit.get("oracle").and_then(Value::as_str), Some("dijkstra-lru"));
        let pairs = audit.get("pairs").and_then(Value::as_u64).unwrap() as usize;
        assert!(pairs > 0 && pairs <= SPOT_PAIRS);
        assert_eq!(doc.to_string(), run(4).to_string());
    }

    #[test]
    fn conformance_run_is_deterministic_across_thread_counts() {
        let run = |threads: usize| {
            let cache = MetricCache::new(threads);
            let (_, _, doc) = run_conformance(
                &cache,
                &[gen::Family::Grid],
                &[25],
                &[Eps::one_over(8)],
                7,
                1,
                threads,
                1 << 8,
                60,
                AUDIT_WALL,
                &Tracer::noop(),
                &mut FlightRecorder::disabled(),
            );
            doc.to_string()
        };
        let base = run(1);
        assert_eq!(base, run(1));
        assert_eq!(base, run(4));
    }
}
