//! Experiment S1: end-to-end scaling of all four schemes to n = 10,000.
//!
//! The dense all-pairs experiments (tables, conformance) stop being the
//! bottleneck once the Θ(n²) *evaluation* is replaced by seeded sampled
//! pairs measured against the exact [`OnDemandDijkstra`] backend — the
//! metric itself still builds densely (the schemes consume
//! [`MetricSpace`]), but nothing downstream touches all n² pairs. Per
//! (n, scheme) cell this sweep records:
//!
//! * per-phase preprocessing wall time — the metric build split
//!   (all-pairs Dijkstra / sorted rows, via
//!   [`MetricSpace::build_profiled`]) plus the scheme construction;
//! * peak allocation per phase (high-water bytes under the binary's
//!   [`obs::alloc::CountingAlloc`]);
//! * per-node storage (max / mean table bits, label bits where the
//!   scheme has labels);
//! * sampled stretch — mean with a 95% CI half-width, p99, and max over
//!   seeded pairs ([`netsim::stats::SampledStretch`]), measured against
//!   the on-demand Dijkstra oracle;
//! * a **determinism flag**: the same pairs are re-measured against the
//!   dense matrix backend and the two statistics must agree bit for bit
//!   (the backends are interchangeable exact oracles — see DESIGN.md,
//!   "Distance backends").
//!
//! Each instance also records the landmark estimator's mean relative
//! bound gap on the sampled pairs — how tight the third (inexact)
//! backend's brackets are at scale.
//!
//! The `scale` binary prints the table and writes the JSON document
//! (`schema_version` 1) to `results/scale.json`. With `--stable` the
//! volatile fields (wall times, peak bytes, the recorded thread count)
//! are pinned to `0` so two same-seed runs — at any `--threads` —
//! produce byte-identical files; every other field is byte-identical
//! even without the flag.

use std::sync::Arc;
use std::time::Instant;

use doubling_metric::{
    gen, DistanceProvider, Eps, LandmarkEstimator, MetricSpace, OnDemandDijkstra,
};
use labeled_routing::{NetLabeled, ScaleFreeLabeled};
use name_independent::{ScaleFreeNameIndependent, SimpleNameIndependent};
use netsim::json::Value;
use netsim::scheme::{LabeledScheme, NameIndependentScheme};
use netsim::stats::{
    sample_pairs, sampled_stretch_labeled, sampled_stretch_labeled_observed,
    sampled_stretch_name_independent, sampled_stretch_name_independent_observed, SampledStretch,
};
use netsim::Naming;
use obs::{FlightRecorder, MetricsRegistry, Tracer};

use crate::table::f2;

/// Version of the `results/scale.json` document layout.
pub const SCHEMA_VERSION: u64 = 1;

/// The default n sweep (requested grid sizes; grids round to squares).
pub const DEFAULT_NS: [usize; 4] = [1000, 2000, 5000, 10000];

/// Sampled source/destination pairs per cell (`--pairs` overrides).
pub const DEFAULT_PAIRS: usize = 2000;

/// 1/ε for every scheme in the sweep.
pub const EPS_INV: u64 = 8;

/// LRU row capacity of the on-demand evaluation oracle.
pub const ORACLE_ROWS: usize = 256;

/// Landmarks for the per-instance bound-gap diagnostic.
pub const LANDMARK_COUNT: usize = 16;

/// One instance's metric-level measurements, shared by its four cells.
struct InstanceCell {
    n: usize,
    requested_n: usize,
    apsp_us: u64,
    rows_us: u64,
    peak_bytes: u64,
    landmark_mean_rel_gap: f64,
}

impl InstanceCell {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("n".into(), self.n.into()),
            ("requested_n".into(), self.requested_n.into()),
            ("apsp_us".into(), self.apsp_us.into()),
            ("sort_rows_us".into(), self.rows_us.into()),
            ("peak_bytes".into(), self.peak_bytes.into()),
            ("oracle".into(), "dijkstra-lru".into()),
            ("oracle_rows".into(), ORACLE_ROWS.into()),
            ("landmark_count".into(), LANDMARK_COUNT.into()),
            ("landmark_mean_rel_gap".into(), self.landmark_mean_rel_gap.into()),
        ])
    }
}

/// One (n, scheme) cell.
struct SchemeCell {
    n: usize,
    scheme: &'static str,
    build_us: u64,
    peak_bytes: u64,
    label_bits: Option<u64>,
    max_table_bits: u64,
    avg_table_bits: f64,
    stats: SampledStretch,
    deterministic: bool,
}

impl SchemeCell {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("n".into(), self.n.into()),
            ("scheme".into(), self.scheme.into()),
            ("build_us".into(), self.build_us.into()),
            ("peak_bytes".into(), self.peak_bytes.into()),
            ("label_bits".into(), self.label_bits.map_or(Value::Null, Value::from)),
            ("max_table_bits".into(), self.max_table_bits.into()),
            ("avg_table_bits".into(), self.avg_table_bits.into()),
            ("pairs".into(), self.stats.pairs.into()),
            ("failures".into(), self.stats.failures.into()),
            ("stretch_mean".into(), self.stats.mean.into()),
            ("stretch_ci95".into(), self.stats.ci_half_width.into()),
            ("stretch_p99".into(), self.stats.p99.into()),
            ("stretch_max".into(), self.stats.max.into()),
            ("deterministic".into(), self.deterministic.into()),
        ])
    }

    fn row(&self, inst: &InstanceCell) -> Vec<String> {
        vec![
            self.n.to_string(),
            self.scheme.to_string(),
            f2((inst.apsp_us + inst.rows_us) as f64 / 1e3),
            f2(self.build_us as f64 / 1e3),
            f2(self.peak_bytes as f64 / (1024.0 * 1024.0)),
            self.max_table_bits.to_string(),
            f2(self.stats.mean),
            format!("{:.4}", self.stats.ci_half_width),
            f2(self.stats.p99),
            f2(self.stats.max),
            if self.deterministic { "yes".into() } else { "NO".into() },
        ]
    }
}

/// Everything one scaling sweep produces: console table plus the JSON
/// document for `results/scale.json`.
pub struct ScaleReport {
    /// Table headers.
    pub headers: Vec<&'static str>,
    /// One row per (n, scheme) cell.
    pub rows: Vec<Vec<String>>,
    /// The full document (`schema_version` 1).
    pub doc: Value,
    /// Whether every cell's on-demand statistics matched the dense-matrix
    /// statistics bit for bit (the sweep's hard invariant).
    pub all_deterministic: bool,
    /// Total routes that returned an error, across all cells.
    pub failures: usize,
}

/// Runs one phase under timing + peak-allocation measurement.
fn measured<T>(f: impl FnOnce() -> T) -> (T, u64, u64) {
    obs::alloc::reset_peak_bytes();
    let t = Instant::now();
    let out = f();
    (out, t.elapsed().as_micros() as u64, obs::alloc::peak_bytes())
}

/// Telemetry sinks shared by every cell of one sweep (see
/// [`run_scale_telemetered`]); [`run_scale`] wires in disabled sinks.
pub struct ScaleTelemetry<'a> {
    /// Span/event tracer (per-phase spans when recording).
    pub tracer: &'a Tracer,
    /// Shared registry: route counters/histograms plus oracle row-cache
    /// stats.
    pub registry: MetricsRegistry,
    /// Flight recorder fed from the oracle evaluation pass.
    pub flight: FlightRecorder,
}

/// Observes one oracle-pass routing outcome into the registry + flight
/// recorder (the cross-check pass stays unobserved: it replays the same
/// pairs and would double-count).
fn observe_scale_route(
    m: &MetricSpace,
    registry: &MetricsRegistry,
    flight: &mut FlightRecorder,
    u: doubling_metric::NodeId,
    v: doubling_metric::NodeId,
    res: &Result<netsim::Route, netsim::RouteError>,
) {
    match res {
        Ok(r) => {
            registry.counter("scale.routes").inc();
            registry.histogram("scale.route_cost").record(r.cost);
            registry.histogram("scale.route_hops").record(r.hop_count() as u64);
            flight.record_route(u, v, r, r.stretch(m));
        }
        Err(e) => {
            registry.counter("scale.route_failures").inc();
            flight.record_error(u, v, e);
        }
    }
}

/// Builds one labeled scheme and measures its cell.
#[allow(clippy::too_many_arguments)]
fn labeled_cell<S: LabeledScheme>(
    scheme: &'static str,
    build: impl FnOnce() -> S,
    m: &MetricSpace,
    oracle: &OnDemandDijkstra,
    pairs: &[(doubling_metric::NodeId, doubling_metric::NodeId)],
    stable: bool,
    tel: &mut ScaleTelemetry,
) -> SchemeCell {
    let n = m.n();
    let pin = |v: u64| if stable { 0 } else { v };
    let (s, build_us, peak) = {
        let _sp = tel.tracer.span("scheme-build");
        measured(build)
    };
    let stats = {
        let _sp = tel.tracer.span("evaluate");
        let (registry, flight) = (&tel.registry, &mut tel.flight);
        sampled_stretch_labeled_observed(&s, m, oracle, pairs, |u, v, res| {
            observe_scale_route(m, registry, flight, u, v, res)
        })
    };
    let check = {
        let _sp = tel.tracer.span("cross-check");
        sampled_stretch_labeled(&s, m, m, pairs)
    };
    let table_bits: Vec<u64> = (0..n as u32).map(|u| s.table_bits(u)).collect();
    SchemeCell {
        n,
        scheme,
        build_us: pin(build_us),
        peak_bytes: pin(peak),
        label_bits: Some(s.label_bits()),
        max_table_bits: table_bits.iter().copied().max().unwrap_or(0),
        avg_table_bits: table_bits.iter().sum::<u64>() as f64 / n as f64,
        deterministic: stats == check,
        stats,
    }
}

/// Builds one name-independent scheme and measures its cell.
#[allow(clippy::too_many_arguments)]
fn name_independent_cell<S: NameIndependentScheme>(
    scheme: &'static str,
    build: impl FnOnce() -> S,
    m: &MetricSpace,
    naming: &Naming,
    oracle: &OnDemandDijkstra,
    pairs: &[(doubling_metric::NodeId, doubling_metric::NodeId)],
    stable: bool,
    tel: &mut ScaleTelemetry,
) -> SchemeCell {
    let n = m.n();
    let pin = |v: u64| if stable { 0 } else { v };
    let (s, build_us, peak) = {
        let _sp = tel.tracer.span("scheme-build");
        measured(build)
    };
    let stats = {
        let _sp = tel.tracer.span("evaluate");
        let (registry, flight) = (&tel.registry, &mut tel.flight);
        sampled_stretch_name_independent_observed(&s, m, naming, oracle, pairs, |u, v, res| {
            observe_scale_route(m, registry, flight, u, v, res)
        })
    };
    let check = {
        let _sp = tel.tracer.span("cross-check");
        sampled_stretch_name_independent(&s, m, naming, m, pairs)
    };
    let table_bits: Vec<u64> = (0..n as u32).map(|u| s.table_bits(u)).collect();
    SchemeCell {
        n,
        scheme,
        build_us: pin(build_us),
        peak_bytes: pin(peak),
        label_bits: None,
        max_table_bits: table_bits.iter().copied().max().unwrap_or(0),
        avg_table_bits: table_bits.iter().sum::<u64>() as f64 / n as f64,
        deterministic: stats == check,
        stats,
    }
}

/// Runs the sweep: for each requested `n`, one metric build, then all
/// four schemes built and sampled-evaluated against the on-demand oracle
/// with a dense-matrix cross-check. `stable` pins the volatile fields
/// (wall times, peak bytes) to `0` for byte-identity checks.
pub fn run_scale(
    ns: &[usize],
    pairs_per_cell: usize,
    seed: u64,
    threads: usize,
    stable: bool,
) -> ScaleReport {
    let tracer = Tracer::noop();
    let mut tel = ScaleTelemetry {
        tracer: &tracer,
        registry: MetricsRegistry::disabled(),
        flight: FlightRecorder::disabled(),
    };
    run_scale_telemetered(ns, pairs_per_cell, seed, threads, stable, &mut tel)
}

/// [`run_scale`] with telemetry: per-phase spans (`metric-build` with its
/// apsp/sort-rows worker children, `scheme-build`, `evaluate`,
/// `cross-check`, `landmark-gap`) when `tel.tracer` is recording, route
/// counters/histograms and oracle row-cache stats into `tel.registry`,
/// and per-hop forensics for the oracle evaluation pass into
/// `tel.flight`. The produced document is identical to [`run_scale`]'s —
/// telemetry never feeds back into the sweep.
pub fn run_scale_telemetered(
    ns: &[usize],
    pairs_per_cell: usize,
    seed: u64,
    threads: usize,
    stable: bool,
    tel: &mut ScaleTelemetry,
) -> ScaleReport {
    let headers = vec![
        "n",
        "scheme",
        "metric(ms)",
        "build(ms)",
        "peak(MiB)",
        "max-table(b)",
        "mean",
        "ci95",
        "p99",
        "max",
        "identical",
    ];
    let eps = Eps::one_over(EPS_INV);
    let pin = |v: u64| if stable { 0 } else { v };
    let mut rows = Vec::new();
    let mut instances_json = Vec::new();
    let mut cells_json = Vec::new();
    let mut all_deterministic = true;
    let mut failures = 0usize;

    for &requested_n in ns {
        tel.tracer.event_lazy("scale-instance", || vec![("requested_n", requested_n.into())]);
        let graph = Arc::new(gen::Family::Grid.build(requested_n, seed));
        let ((m, profile), _, metric_peak) = {
            let _sp = tel.tracer.span("metric-build");
            let out = measured(|| MetricSpace::build_profiled(Arc::clone(&graph), threads));
            obs::phase::record_build_profile(tel.tracer, &out.0 .1);
            out
        };
        let n = m.n();

        let pairs = sample_pairs(n, pairs_per_cell, seed ^ 0x5A);
        let naming = Naming::random(n, seed ^ 0xA5);
        let oracle = OnDemandDijkstra::new(Arc::clone(&graph), ORACLE_ROWS);

        let _landmark_span = tel.tracer.span("landmark-gap");
        let landmarks = LandmarkEstimator::new(&graph, LANDMARK_COUNT);
        let mut gap = 0.0;
        for &(u, v) in &pairs {
            let b = landmarks.dist_bounds(u, v);
            gap += (b.upper - b.lower) as f64 / b.upper.max(1) as f64;
        }
        drop(_landmark_span);
        let inst = InstanceCell {
            n,
            requested_n,
            apsp_us: pin(profile.apsp.wall_us),
            rows_us: pin(profile.rows.wall_us),
            peak_bytes: pin(metric_peak),
            landmark_mean_rel_gap: if pairs.is_empty() { 0.0 } else { gap / pairs.len() as f64 },
        };

        // Evaluate against the on-demand oracle, then cross-check bit for
        // bit against the dense matrix.
        let cells = [
            labeled_cell(
                "net-labeled",
                || NetLabeled::new(&m, eps).expect("eps within range"),
                &m,
                &oracle,
                &pairs,
                stable,
                tel,
            ),
            labeled_cell(
                "scale-free-labeled",
                || ScaleFreeLabeled::new(&m, eps).expect("eps within range"),
                &m,
                &oracle,
                &pairs,
                stable,
                tel,
            ),
            name_independent_cell(
                "simple-NI",
                || SimpleNameIndependent::new(&m, eps, naming.clone()).expect("eps ok"),
                &m,
                &naming,
                &oracle,
                &pairs,
                stable,
                tel,
            ),
            name_independent_cell(
                "scale-free-NI",
                || ScaleFreeNameIndependent::new(&m, eps, naming.clone()).expect("eps ok"),
                &m,
                &naming,
                &oracle,
                &pairs,
                stable,
                tel,
            ),
        ];
        for cell in cells {
            all_deterministic &= cell.deterministic;
            failures += cell.stats.failures;
            rows.push(cell.row(&inst));
            cells_json.push(cell.to_json());
        }
        let oracle_stats = oracle.stats();
        tel.registry.counter("oracle.row_builds").add(oracle_stats.builds);
        tel.registry.counter("oracle.row_hits").add(oracle_stats.hits);
        tel.registry.counter("oracle.row_evictions").add(oracle_stats.evictions);
        instances_json.push(inst.to_json());
    }

    let doc = Value::Object(vec![
        ("schema_version".into(), SCHEMA_VERSION.into()),
        ("experiment".into(), "scale".into()),
        ("family".into(), "grid".into()),
        ("seed".into(), seed.into()),
        ("eps".into(), format!("1/{EPS_INV}").into()),
        ("pairs_per_cell".into(), pairs_per_cell.into()),
        // `--stable` pins the recorded thread count alongside the wall
        // times: the whole point of the flag is that the document is
        // byte-identical at any `--threads`, including this header field.
        ("threads".into(), if stable { 0usize } else { threads }.into()),
        ("stable".into(), stable.into()),
        ("alloc_counted".into(), (obs::alloc::allocated_bytes() > 0).into()),
        ("all_deterministic".into(), all_deterministic.into()),
        ("instances".into(), Value::Array(instances_json)),
        ("cells".into(), Value::Array(cells_json)),
    ]);
    ScaleReport { headers, rows, doc, all_deterministic, failures }
}

/// Entry point for `cargo run --release --bin scale`: runs the sweep,
/// prints the table, and writes `results/scale.json`.
///
/// Usage: `scale [max_n] [--n LIST] [--pairs K] [--seed N] [--threads N]
/// [--stable] [--json] [--trace] [--chrome-trace PATH]`. `max_n`
/// truncates the default n sweep {1000, 2000, 5000, 10000}; `--n`
/// replaces it outright; `--stable` pins wall times, peak bytes, and the
/// recorded thread count to `0` so same-seed runs are byte-identical at
/// any `--threads` (CI's determinism check `cmp`s the raw files —
/// telemetry output lives in separate files and never perturbs the
/// document). `--trace` writes `results/scale_trace.jsonl` and the
/// registry snapshot as `results/scale_metrics.prom`; the flight
/// recorder dumps `results/scale_flight.jsonl` whenever a loss or
/// under-stretch route was observed.
pub fn scale_main() {
    let cli = crate::cli::Cli::parse_env(42);
    let max_n: usize = cli.pos(0, *DEFAULT_NS.last().unwrap());
    let ns: Vec<usize> = match &cli.n_list {
        Some(list) => list.clone(),
        None => DEFAULT_NS.into_iter().filter(|&n| n <= max_n).collect(),
    };
    let pairs = cli.pairs.unwrap_or(DEFAULT_PAIRS);
    let tracer = cli.tracer();
    let mut tel = ScaleTelemetry {
        tracer: &tracer,
        registry: MetricsRegistry::new(),
        flight: FlightRecorder::new(obs::flight::DEFAULT_CAPACITY),
    };
    let report = run_scale_telemetered(&ns, pairs, cli.seed, cli.threads, cli.stable, &mut tel);
    crate::table::emit(
        &format!(
            "S1: scheme scaling (grid, eps=1/{EPS_INV}, {pairs} pairs/cell, seed {}{})",
            cli.seed,
            if cli.stable { ", stable" } else { "" }
        ),
        &report.headers,
        &report.rows,
    );
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/scale.json", report.doc.to_string_pretty() + "\n")
        .expect("write results/scale.json");
    let ScaleTelemetry { registry, flight, .. } = tel;
    let snapshot = registry.snapshot();
    let log = tracer.finish();
    if cli.trace {
        std::fs::write("results/scale_trace.jsonl", log.to_jsonl())
            .expect("write results/scale_trace.jsonl");
        std::fs::write("results/scale_metrics.prom", obs::export::prometheus_text(&snapshot))
            .expect("write results/scale_metrics.prom");
        if !cli.json {
            println!("wrote results/scale_trace.jsonl and results/scale_metrics.prom");
        }
    }
    if let Some(path) = cli.write_chrome_trace(&log, Some(&snapshot)) {
        if !cli.json {
            println!("wrote {path}");
        }
    }
    if flight.dump_if_anomalous("results/scale_flight.jsonl").expect("write scale_flight.jsonl") {
        eprintln!(
            "anomalies observed ({}): flight ring dumped to results/scale_flight.jsonl",
            flight.anomalies()
        );
    }
    if !cli.json {
        println!("\nwrote results/scale.json");
        println!("reading: stretch is sampled ({pairs} seeded pairs/cell) against the");
        println!("on-demand Dijkstra oracle; `identical` certifies the dense matrix");
        println!("produced bit-identical statistics for the same pairs.");
    }
    assert_eq!(report.failures, 0, "routes failed — see results/scale.json");
    assert!(report.all_deterministic, "backends disagreed — see results/scale.json");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_cells_with_exact_sampled_stats() {
        let report = run_scale(&[64], 100, 3, 1, false);
        assert_eq!(report.rows.len(), 4);
        assert!(report.all_deterministic);
        assert_eq!(report.failures, 0);
        assert_eq!(report.doc.get("schema_version").and_then(Value::as_u64), Some(SCHEMA_VERSION));
        let cells = report.doc.get("cells").and_then(Value::as_array).expect("cells");
        assert_eq!(cells.len(), 4);
        for c in cells {
            assert_eq!(c.get("deterministic").and_then(Value::as_bool), Some(true));
            assert_eq!(c.get("failures").and_then(Value::as_u64), Some(0));
            let mean = c.get("stretch_mean").and_then(Value::as_f64).expect("mean");
            let p99 = c.get("stretch_p99").and_then(Value::as_f64).expect("p99");
            let max = c.get("stretch_max").and_then(Value::as_f64).expect("max");
            assert!(1.0 <= mean && mean <= p99 + 1e-12 && p99 <= max + 1e-12, "{c:?}");
            assert!(c.get("max_table_bits").and_then(Value::as_u64).unwrap() > 0);
        }
        let inst = &report.doc.get("instances").and_then(Value::as_array).unwrap()[0];
        let gap = inst.get("landmark_mean_rel_gap").and_then(Value::as_f64).unwrap();
        assert!((0.0..=1.0).contains(&gap));
        // Round-trips through the parser.
        assert_eq!(Value::parse(&report.doc.to_string_pretty()).unwrap(), report.doc);
    }

    #[test]
    fn telemetered_sweep_records_spans_registry_and_flight() {
        let tracer = Tracer::recording();
        let mut tel = ScaleTelemetry {
            tracer: &tracer,
            registry: MetricsRegistry::new(),
            flight: FlightRecorder::new(16),
        };
        let report = run_scale_telemetered(&[36], 40, 3, 1, false, &mut tel);
        assert!(report.all_deterministic);
        assert_eq!(report.failures, 0);

        let ScaleTelemetry { registry, flight, .. } = tel;
        let log = tracer.finish();
        let names: std::collections::BTreeSet<&str> = log.spans.iter().map(|s| s.name).collect();
        for want in [
            "metric-build",
            "apsp",
            "sort-rows",
            "scheme-build",
            "evaluate",
            "cross-check",
            "landmark-gap",
        ] {
            assert!(names.contains(want), "missing span {want:?} in {names:?}");
        }

        // 4 schemes × 40 pairs, all delivered, observed only on the
        // oracle pass (the cross-check replays the same pairs).
        let snap = registry.snapshot();
        assert_eq!(snap.counter("scale.routes"), Some(160));
        assert_eq!(snap.counter("scale.route_failures"), None);
        assert_eq!(snap.histogram("scale.route_cost").map(obs::Log2Histogram::count), Some(160));
        assert!(snap.counter("oracle.row_builds").unwrap_or(0) > 0);

        // The flight ring retains the last 16 of those queries, none
        // anomalous.
        assert_eq!(flight.len(), 16);
        assert_eq!(flight.anomalies(), 0);
    }

    #[test]
    fn stable_runs_are_byte_identical_at_any_thread_count() {
        let a = run_scale(&[36], 60, 7, 1, true).doc.to_string_pretty();
        let b = run_scale(&[36], 60, 7, 4, true).doc.to_string_pretty();
        // The *whole document* must agree byte for byte — `--stable`
        // pins the recorded thread count too (CI `cmp`s raw files).
        assert_eq!(a, b);
        assert!(a.contains("\"threads\": 0"), "thread count not pinned:\n{a}");
        assert!(a.contains("\"apsp_us\": 0"), "volatile field not pinned:\n{a}");
        assert!(a.contains("\"build_us\": 0"));
        assert!(a.contains("\"peak_bytes\": 0"));
    }

    #[test]
    fn unstable_runs_pin_nothing_but_agree_on_semantics() {
        let a = run_scale(&[36], 60, 7, 1, false);
        let b = run_scale(&[36], 60, 7, 1, false);
        let strip = |doc: &Value| {
            let cells = doc.get("cells").and_then(Value::as_array).unwrap();
            cells
                .iter()
                .map(|c| {
                    (
                        c.get("stretch_mean").and_then(Value::as_f64).unwrap().to_bits(),
                        c.get("stretch_ci95").and_then(Value::as_f64).unwrap().to_bits(),
                        c.get("max_table_bits").and_then(Value::as_u64).unwrap(),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(strip(&a.doc), strip(&b.doc));
    }
}
