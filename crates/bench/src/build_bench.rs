//! Experiment B1: metric preprocessing build-time scaling.
//!
//! Sweeps grid instances over n × thread counts and measures the two
//! parallel phases of [`MetricSpace`] construction (all-pairs Dijkstra,
//! sorted-row build) via [`MetricSpace::build_profiled`]:
//!
//! * wall-clock per phase and speedup vs the 1-thread baseline;
//! * per-source Dijkstra timing quantiles (p50/p90/p99 bucket bounds from
//!   an [`obs::Log2Histogram`]);
//! * allocation delta per build (nonzero only under the binary's
//!   [`obs::alloc::CountingAlloc`] global allocator);
//! * a **determinism check**: every multi-threaded build is compared
//!   (`==`, i.e. every table byte) against the sequential one.
//!
//! The `bench_build` binary prints the table and writes the JSON document
//! (`schema_version` 1) to `results/bench_build.json` — the first
//! datapoint of the repo's perf trajectory. Speedups are hardware-bound:
//! on a single-core container every thread count measures ≈ 1.0×.

use std::sync::Arc;

use doubling_metric::build::BuildProfile;
use doubling_metric::{gen, MetricSpace};
use netsim::json::Value;
use obs::Log2Histogram;

use crate::table::f2;

/// Version of the `results/bench_build.json` document layout.
pub const SCHEMA_VERSION: u64 = 1;

/// The default n sweep (requested grid sizes; grids round to squares).
pub const DEFAULT_NS: [usize; 4] = [100, 200, 400, 800];

/// One build's measurements.
struct BuildCell {
    n: usize,
    threads: usize,
    profile: BuildProfile,
    alloc_bytes: u64,
    deterministic: bool,
}

impl BuildCell {
    fn to_json(&self, baseline: &BuildProfile) -> Value {
        let apsp_hist = per_source_hist(&self.profile.apsp.per_source_us);
        let q = |o: Option<u64>| o.map_or(Value::Null, Value::from);
        Value::Object(vec![
            ("n".into(), self.n.into()),
            ("threads".into(), self.threads.into()),
            ("workers".into(), self.profile.apsp.threads().into()),
            ("apsp_us".into(), self.profile.apsp.wall_us.into()),
            ("sort_rows_us".into(), self.profile.rows.wall_us.into()),
            ("total_us".into(), self.profile.total_us().into()),
            (
                "speedup_apsp".into(),
                speedup(baseline.apsp.wall_us, self.profile.apsp.wall_us).into(),
            ),
            ("speedup_total".into(), speedup(baseline.total_us(), self.profile.total_us()).into()),
            ("alloc_bytes".into(), self.alloc_bytes.into()),
            ("per_source_p50_us".into(), q(apsp_hist.p50())),
            ("per_source_p90_us".into(), q(apsp_hist.p90())),
            ("per_source_p99_us".into(), q(apsp_hist.p99())),
            ("deterministic".into(), self.deterministic.into()),
        ])
    }

    fn row(&self, baseline: &BuildProfile) -> Vec<String> {
        let apsp_hist = per_source_hist(&self.profile.apsp.per_source_us);
        let q = |o: Option<u64>| o.map_or_else(|| "-".into(), |v| v.to_string());
        vec![
            self.n.to_string(),
            self.threads.to_string(),
            f2(self.profile.apsp.wall_us as f64 / 1e3),
            f2(self.profile.rows.wall_us as f64 / 1e3),
            f2(speedup(baseline.apsp.wall_us, self.profile.apsp.wall_us)),
            f2(speedup(baseline.total_us(), self.profile.total_us())),
            q(apsp_hist.p50()),
            q(apsp_hist.p99()),
            f2(self.alloc_bytes as f64 / (1024.0 * 1024.0)),
            if self.deterministic { "yes".into() } else { "NO".into() },
        ]
    }
}

fn per_source_hist(per_source_us: &[u64]) -> Log2Histogram {
    let mut h = Log2Histogram::new();
    for &us in per_source_us {
        h.record(us);
    }
    h
}

fn speedup(baseline_us: u64, us: u64) -> f64 {
    if us == 0 {
        1.0
    } else {
        baseline_us as f64 / us as f64
    }
}

/// Everything one build sweep produces: console table plus the JSON
/// document for `results/bench_build.json`.
pub struct BuildBenchReport {
    /// Table headers.
    pub headers: Vec<&'static str>,
    /// One row per (n, threads) cell.
    pub rows: Vec<Vec<String>>,
    /// The full document (`schema_version` 1).
    pub doc: Value,
    /// Whether every parallel build was bit-identical to its sequential
    /// baseline (the sweep's hard invariant).
    pub all_deterministic: bool,
}

/// Runs the sweep: for each `n`, a 1-thread baseline build, then one
/// build per entry of `thread_counts` compared `==` against the baseline.
pub fn run_build_bench(ns: &[usize], thread_counts: &[usize], seed: u64) -> BuildBenchReport {
    let headers = vec![
        "n",
        "threads",
        "apsp(ms)",
        "sort-rows(ms)",
        "speedup-apsp",
        "speedup-total",
        "src-p50(us)",
        "src-p99(us)",
        "alloc(MiB)",
        "identical",
    ];
    let mut rows = Vec::new();
    let mut cells_json = Vec::new();
    let mut all_deterministic = true;

    for &n in ns {
        let graph = Arc::new(gen::Family::Grid.build(n, seed));
        let real_n = graph.node_count();

        let alloc0 = obs::alloc::allocated_bytes();
        let (reference, baseline) = MetricSpace::build_profiled(Arc::clone(&graph), 1);
        let baseline_alloc = obs::alloc::allocated_bytes() - alloc0;

        for &threads in thread_counts {
            let cell = if threads == 1 {
                BuildCell {
                    n: real_n,
                    threads,
                    profile: baseline.clone(),
                    alloc_bytes: baseline_alloc,
                    deterministic: true,
                }
            } else {
                let alloc0 = obs::alloc::allocated_bytes();
                let (m, profile) = MetricSpace::build_profiled(Arc::clone(&graph), threads);
                let alloc_bytes = obs::alloc::allocated_bytes() - alloc0;
                let deterministic = m == reference;
                all_deterministic &= deterministic;
                BuildCell { n: real_n, threads, profile, alloc_bytes, deterministic }
            };
            rows.push(cell.row(&baseline));
            cells_json.push(cell.to_json(&baseline));
        }
    }

    let doc = Value::Object(vec![
        ("schema_version".into(), SCHEMA_VERSION.into()),
        ("experiment".into(), "bench_build".into()),
        ("family".into(), "grid".into()),
        ("seed".into(), seed.into()),
        ("alloc_counted".into(), (obs::alloc::allocated_bytes() > 0).into()),
        ("available_parallelism".into(), crate::cli::default_threads().into()),
        ("all_deterministic".into(), all_deterministic.into()),
        ("cells".into(), Value::Array(cells_json)),
    ]);
    BuildBenchReport { headers, rows, doc, all_deterministic }
}

/// The thread counts a sweep covers given the `--threads` cap: `{1, 2, 4,
/// cap}` filtered to `≤ cap`, deduplicated, ascending.
pub fn thread_sweep(cap: usize) -> Vec<usize> {
    let mut ts: Vec<usize> = [1, 2, 4, cap].into_iter().filter(|&t| t <= cap.max(1)).collect();
    ts.sort_unstable();
    ts.dedup();
    ts
}

/// Entry point for `cargo run --release -p bench --bin bench_build`: runs
/// the sweep, prints the table, and writes `results/bench_build.json`.
///
/// Usage: `bench_build [max_n] [--seed N] [--threads N] [--json]`.
/// `max_n` truncates the default n sweep {100, 200, 400, 800}; `--threads`
/// caps the thread sweep {1, 2, 4, max} (default: available parallelism).
pub fn build_bench_main() {
    let cli = crate::cli::Cli::parse_env(42);
    let max_n: usize = cli.pos(0, *DEFAULT_NS.last().unwrap());
    let ns: Vec<usize> = DEFAULT_NS.into_iter().filter(|&n| n <= max_n).collect();
    let threads = thread_sweep(cli.threads);
    let report = run_build_bench(&ns, &threads, cli.seed);
    crate::table::emit(
        &format!(
            "B1: metric build scaling (grid, threads {threads:?}, {} core(s) available, seed {})",
            crate::cli::default_threads(),
            cli.seed
        ),
        &report.headers,
        &report.rows,
    );
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/bench_build.json", report.doc.to_string_pretty() + "\n")
        .expect("write results/bench_build.json");
    if !cli.json {
        println!("\nwrote results/bench_build.json");
        println!("reading: speedup is vs the 1-thread build of the same n; on a");
        println!("single-core machine it stays ≈1.0 — the `identical` column is the");
        println!("invariant that must hold everywhere.");
    }
    assert!(report.all_deterministic, "parallel build diverged from sequential");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_cells_and_stays_deterministic() {
        let report = run_build_bench(&[64, 100], &[1, 2, 4], 3);
        assert_eq!(report.rows.len(), 2 * 3);
        assert!(report.all_deterministic);
        assert_eq!(report.doc.get("schema_version").and_then(Value::as_u64), Some(SCHEMA_VERSION));
        let cells = report.doc.get("cells").and_then(Value::as_array).expect("cells");
        assert_eq!(cells.len(), 6);
        for c in cells {
            assert_eq!(c.get("deterministic").and_then(Value::as_bool), Some(true));
            let speedup = c.get("speedup_apsp").and_then(Value::as_f64).expect("speedup");
            assert!(speedup > 0.0);
            // Baseline cells pin speedup to exactly 1.0.
            if c.get("threads").and_then(Value::as_u64) == Some(1) {
                assert!((speedup - 1.0).abs() < 1e-12);
            }
        }
        // Round-trips through the parser.
        assert_eq!(Value::parse(&report.doc.to_string_pretty()).unwrap(), report.doc);
    }

    #[test]
    fn thread_sweep_dedups_and_caps() {
        assert_eq!(thread_sweep(1), vec![1]);
        assert_eq!(thread_sweep(2), vec![1, 2]);
        assert_eq!(thread_sweep(4), vec![1, 2, 4]);
        assert_eq!(thread_sweep(8), vec![1, 2, 4, 8]);
        assert_eq!(thread_sweep(3), vec![1, 2, 3]);
    }
}
