//! Benchmark harness regenerating every table and figure of the paper.
//!
//! Each experiment in EXPERIMENTS.md is a pure function in
//! [`experiments`] returning a header row plus data rows; the `bin/`
//! targets print them as aligned text tables:
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table 1 — name-independent schemes (stretch / table bits / header bits) |
//! | `table2` | Table 2 — labeled schemes (stretch / table / label / header bits) |
//! | `fig1` | Figure 1 — name-independent route anatomy by search round |
//! | `fig2` | Figure 2 — labeled route anatomy (ring walk / packing phases) |
//! | `fig3` | Figure 3 + Theorem 1.3 — lower-bound tree properties and the search-game curve |
//! | `sweep_eps` | E1 — stretch vs ε for all four schemes |
//! | `sweep_scale` | E2 — storage vs log Δ: the scale-free crossover |
//! | `ablation_rings` | A1 — R(u) pruning vs full ring tables |
//! | `ablation_packing` | A2 — ℬ/𝒜 reuse statistics (Claims 3.6–3.9) |
//! | `profile` | P1 — per-phase preprocessing breakdown + route-metric histograms |
//! | `churn` | fault injection: stale-table vs rebuilt routing |
//! | `maintain` | M1 — incremental repair vs full rebuild under seeded churn |
//! | `conformance` | V1 — theorem certificates: bound vs measured per (family, n, ε, seed) |
//! | `scale` | S1 — end-to-end scaling of all four schemes to n = 10,000 |
//!
//! Every binary shares the flag vocabulary of [`cli::Cli`]
//! (`--seed N`, `--json`, `--trace`).
//!
//! Criterion benches (`benches/`) time preprocessing, routing, search-tree
//! lookups and game evaluation on the same inputs.

#![warn(missing_docs)]

pub mod build_bench;
pub mod cache;
pub mod churn;
pub mod cli;
pub mod conformance;
pub mod experiments;
pub mod maintain;
pub mod profile;
pub mod recovery;
pub mod report;
pub mod scale;
pub mod serve;
pub mod table;

pub use cache::MetricCache;
pub use table::{emit, print_table, to_json};
