//! Shared command-line parsing for the experiment binaries.
//!
//! Every binary accepts the same flag vocabulary on top of its positional
//! arguments:
//!
//! * `--seed N` / `--seed=N` — the experiment's RNG seed (graph
//!   generation, namings, pair samples). Each binary supplies its own
//!   default (historically `42`), so existing invocations keep producing
//!   byte-identical output.
//! * `--json` — machine-readable output; [`crate::table::emit`] also
//!   checks for this flag, so the tables switch automatically, and the
//!   binaries use [`Cli::json`] to suppress their prose footers.
//! * `--trace` — opt into recording-tracer output where the binary
//!   supports it (e.g. `churn` writes `results/churn_trace.jsonl`).
//! * `--chrome-trace PATH` / `--chrome-trace=PATH` — additionally render
//!   the recorded trace as Chrome trace-event / Perfetto JSON (see
//!   [`obs::export::chrome_trace`]) at `PATH`. Implies recording even
//!   without `--trace`.
//! * `--threads N` / `--threads=N` — worker threads for parallel metric
//!   preprocessing (default: available parallelism; `1` recovers the
//!   sequential build, which is byte-identical anyway).
//! * `--policy P` / `--policy=P` — a recovery policy for binaries that
//!   deliver under faults (`churn`), in
//!   [`netsim::recovery::RecoveryPolicy::parse`] syntax: `drop`,
//!   `detour[:TTL]`, `fallback[:CLIMBS]`, or a `+`-chain. The spelling is
//!   validated at parse time; binaries that ignore it simply never read
//!   [`Cli::policy`].
//! * `--n LIST` / `--n=LIST` — a comma-separated list of instance sizes
//!   for sweep binaries (`conformance`), e.g. `--n 64,196`.
//! * `--seeds K` / `--seeds=K` — how many consecutive seeds (starting at
//!   `--seed`) a sweep binary runs per cell.
//! * `--pairs K` / `--pairs=K` — how many sampled source/destination
//!   pairs an evaluation binary routes per cell (`scale`); binaries that
//!   evaluate exhaustively never read [`Cli::pairs`].
//! * `--stable` — pin volatile fields (wall times, allocator bytes) in
//!   JSON artifacts to `0` so two same-seed runs produce byte-identical
//!   files; used by CI's determinism checks. Semantic fields (stretch,
//!   sizes, determinism flags) are never affected.
//! * `--min-delivery F` / `--min-delivery=F` — a delivered-fraction
//!   floor in `[0, 1]` for gating binaries (`churn`): when any cell's
//!   delivered fraction falls below `F`, the binary exits non-zero so CI
//!   catches the regression.
//!
//! Unknown `--flags` are rejected loudly rather than silently treated as
//! positionals, so a typo like `--sed 7` cannot quietly run with the
//! default seed.

/// Parsed command line: positionals plus the shared flags.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    positionals: Vec<String>,
    /// The `--seed` value, or the binary's default.
    pub seed: u64,
    /// Whether `--json` was passed (machine-readable output).
    pub json: bool,
    /// Whether `--trace` was passed (record and dump a trace).
    pub trace: bool,
    /// The `--chrome-trace` output path — `None` when the flag was not
    /// passed. A `Some` implies recording, like `--trace`.
    pub chrome_trace: Option<String>,
    /// The `--threads` value, defaulting to the machine's available
    /// parallelism. Always ≥ 1.
    pub threads: usize,
    /// The `--policy` value, already parsed — `None` when the flag was
    /// not passed (binaries fall back to their historical behavior).
    pub policy: Option<netsim::recovery::RecoveryPolicy>,
    /// The `--n` list of instance sizes — `None` when the flag was not
    /// passed (sweep binaries fall back to their default grid).
    pub n_list: Option<Vec<usize>>,
    /// The `--seeds` count — `None` when the flag was not passed.
    pub seeds: Option<usize>,
    /// The `--pairs` count — `None` when the flag was not passed
    /// (evaluation binaries fall back to their default sample size).
    pub pairs: Option<usize>,
    /// Whether `--stable` was passed (pin volatile timing/allocation
    /// fields in JSON artifacts to `0` for byte-identity checks).
    pub stable: bool,
    /// The `--min-delivery` threshold in `[0, 1]` — `None` when the flag
    /// was not passed. Binaries that gate on delivered fraction (`churn`)
    /// exit non-zero when any cell falls below it.
    pub min_delivery: Option<f64>,
}

/// The machine's available parallelism (≥ 1), the default for
/// [`Cli::threads`].
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}

impl Cli {
    /// Parses the process arguments (skipping `argv[0]`).
    ///
    /// # Panics
    ///
    /// Exits with a message on an unknown flag or a malformed `--seed`
    /// value — a mistyped flag must not silently fall back to defaults.
    pub fn parse_env(default_seed: u64) -> Self {
        Self::parse(std::env::args().skip(1), default_seed)
    }

    /// Parses an explicit argument iterator; see [`Cli::parse_env`].
    ///
    /// # Panics
    ///
    /// As [`Cli::parse_env`].
    pub fn parse(args: impl Iterator<Item = String>, default_seed: u64) -> Self {
        let mut cli = Cli {
            positionals: Vec::new(),
            seed: default_seed,
            json: false,
            trace: false,
            chrome_trace: None,
            threads: default_threads(),
            policy: None,
            n_list: None,
            seeds: None,
            pairs: None,
            stable: false,
            min_delivery: None,
        };
        let parse_threads = |v: &str| -> usize {
            let t: usize = v.parse().unwrap_or_else(|_| panic!("invalid --threads value: {v:?}"));
            if t == 0 {
                panic!("invalid --threads value: must be >= 1");
            }
            t
        };
        let parse_policy = |v: &str| -> netsim::recovery::RecoveryPolicy {
            netsim::recovery::RecoveryPolicy::parse(v)
                .unwrap_or_else(|e| panic!("invalid --policy value: {e}"))
        };
        let parse_n_list = |v: &str| -> Vec<usize> {
            let ns: Vec<usize> = v
                .split(',')
                .map(|s| {
                    s.trim().parse().unwrap_or_else(|_| panic!("invalid --n value: {s:?} in {v:?}"))
                })
                .collect();
            if ns.is_empty() || ns.contains(&0) {
                panic!("invalid --n value: sizes must be >= 1");
            }
            ns
        };
        let parse_seeds = |v: &str| -> usize {
            let k: usize = v.parse().unwrap_or_else(|_| panic!("invalid --seeds value: {v:?}"));
            if k == 0 {
                panic!("invalid --seeds value: must be >= 1");
            }
            k
        };
        let parse_min_delivery = |v: &str| -> f64 {
            let f: f64 =
                v.parse().unwrap_or_else(|_| panic!("invalid --min-delivery value: {v:?}"));
            if !(0.0..=1.0).contains(&f) {
                panic!("invalid --min-delivery value: must be in [0, 1]");
            }
            f
        };
        let parse_pairs = |v: &str| -> usize {
            let k: usize = v.parse().unwrap_or_else(|_| panic!("invalid --pairs value: {v:?}"));
            if k == 0 {
                panic!("invalid --pairs value: must be >= 1");
            }
            k
        };
        let mut args = args;
        while let Some(a) = args.next() {
            if a == "--json" {
                cli.json = true;
            } else if a == "--trace" {
                cli.trace = true;
            } else if a == "--chrome-trace" {
                let v = args.next().expect("--chrome-trace requires a path");
                cli.chrome_trace = Some(v);
            } else if let Some(v) = a.strip_prefix("--chrome-trace=") {
                cli.chrome_trace = Some(v.to_string());
            } else if a == "--seed" {
                let v = args.next().expect("--seed requires a value");
                cli.seed = v.parse().unwrap_or_else(|_| panic!("invalid --seed value: {v:?}"));
            } else if let Some(v) = a.strip_prefix("--seed=") {
                cli.seed = v.parse().unwrap_or_else(|_| panic!("invalid --seed value: {v:?}"));
            } else if a == "--threads" {
                let v = args.next().expect("--threads requires a value");
                cli.threads = parse_threads(&v);
            } else if let Some(v) = a.strip_prefix("--threads=") {
                cli.threads = parse_threads(v);
            } else if a == "--policy" {
                let v = args.next().expect("--policy requires a value");
                cli.policy = Some(parse_policy(&v));
            } else if let Some(v) = a.strip_prefix("--policy=") {
                cli.policy = Some(parse_policy(v));
            } else if a == "--n" {
                let v = args.next().expect("--n requires a value");
                cli.n_list = Some(parse_n_list(&v));
            } else if let Some(v) = a.strip_prefix("--n=") {
                cli.n_list = Some(parse_n_list(v));
            } else if a == "--seeds" {
                let v = args.next().expect("--seeds requires a value");
                cli.seeds = Some(parse_seeds(&v));
            } else if let Some(v) = a.strip_prefix("--seeds=") {
                cli.seeds = Some(parse_seeds(v));
            } else if a == "--pairs" {
                let v = args.next().expect("--pairs requires a value");
                cli.pairs = Some(parse_pairs(&v));
            } else if let Some(v) = a.strip_prefix("--pairs=") {
                cli.pairs = Some(parse_pairs(v));
            } else if a == "--stable" {
                cli.stable = true;
            } else if a == "--min-delivery" {
                let v = args.next().expect("--min-delivery requires a value");
                cli.min_delivery = Some(parse_min_delivery(&v));
            } else if let Some(v) = a.strip_prefix("--min-delivery=") {
                cli.min_delivery = Some(parse_min_delivery(v));
            } else if a.starts_with("--") {
                panic!(
                    "unknown flag {a:?} (expected --seed, --json, --trace, --chrome-trace, \
                     --threads, --policy, --n, --seeds, --pairs, --stable, --min-delivery)"
                );
            } else {
                cli.positionals.push(a);
            }
        }
        cli
    }

    /// The `idx`-th positional argument parsed as `T`, or `default` when
    /// absent or unparsable (matching the binaries' historical lenience
    /// for positionals).
    pub fn pos<T: std::str::FromStr>(&self, idx: usize, default: T) -> T {
        self.positionals.get(idx).and_then(|s| s.parse().ok()).unwrap_or(default)
    }

    /// Whether any flag requests a recording tracer (`--trace` or
    /// `--chrome-trace`).
    pub fn wants_recording(&self) -> bool {
        self.trace || self.chrome_trace.is_some()
    }

    /// A tracer matching the flags: recording iff
    /// [`Cli::wants_recording`], noop otherwise.
    pub fn tracer(&self) -> obs::Tracer {
        if self.wants_recording() {
            obs::Tracer::recording()
        } else {
            obs::Tracer::noop()
        }
    }

    /// Writes `log` (plus `snapshot`'s counters, when given) as Chrome
    /// trace-event JSON to the `--chrome-trace` path, if one was passed.
    /// Returns the path written.
    pub fn write_chrome_trace(
        &self,
        log: &obs::TraceLog,
        snapshot: Option<&obs::registry::Snapshot>,
    ) -> Option<&str> {
        let path = self.chrome_trace.as_deref()?;
        let doc = obs::export::chrome_trace_with_metrics(log, snapshot);
        std::fs::write(path, doc.to_string_pretty() + "\n")
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str], default_seed: u64) -> Cli {
        Cli::parse(args.iter().map(|s| s.to_string()), default_seed)
    }

    #[test]
    fn defaults_apply_when_nothing_is_passed() {
        let c = parse(&[], 42);
        assert_eq!(c.seed, 42);
        assert!(!c.json);
        assert!(!c.trace);
        assert_eq!(c.pos(0, 196usize), 196);
    }

    #[test]
    fn positionals_and_flags_mix_in_any_order() {
        let c = parse(&["100", "--seed", "7", "8", "--json", "50", "--trace"], 42);
        assert_eq!(c.seed, 7);
        assert!(c.json);
        assert!(c.trace);
        assert_eq!(c.pos(0, 0usize), 100);
        assert_eq!(c.pos(1, 0u64), 8);
        assert_eq!(c.pos(2, 0usize), 50);
        assert_eq!(c.pos(3, 9usize), 9); // absent → default
    }

    #[test]
    fn seed_equals_form() {
        assert_eq!(parse(&["--seed=123"], 42).seed, 123);
    }

    #[test]
    fn threads_flag_both_forms() {
        assert_eq!(parse(&[], 42).threads, default_threads());
        assert_eq!(parse(&["--threads", "4"], 42).threads, 4);
        assert_eq!(parse(&["--threads=2"], 42).threads, 2);
    }

    #[test]
    #[should_panic(expected = "invalid --threads")]
    fn zero_threads_is_rejected() {
        parse(&["--threads", "0"], 42);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flags_are_rejected() {
        parse(&["--sed", "7"], 42);
    }

    #[test]
    fn policy_flag_both_forms() {
        use netsim::recovery::RecoveryPolicy;
        assert_eq!(parse(&[], 42).policy, None);
        assert_eq!(
            parse(&["--policy", "detour:3"], 42).policy,
            Some(RecoveryPolicy::LocalDetour { ttl: 3 })
        );
        assert_eq!(
            parse(&["--policy=detour:8+fallback:4"], 42).policy,
            Some(RecoveryPolicy::Chained(vec![
                RecoveryPolicy::LocalDetour { ttl: 8 },
                RecoveryPolicy::LevelFallback { max_climbs: 4 },
            ]))
        );
    }

    #[test]
    #[should_panic(expected = "invalid --policy")]
    fn malformed_policy_is_rejected() {
        parse(&["--policy", "teleport"], 42);
    }

    #[test]
    fn n_list_and_seeds_flags_both_forms() {
        let c = parse(&[], 42);
        assert_eq!(c.n_list, None);
        assert_eq!(c.seeds, None);
        assert_eq!(parse(&["--n", "64"], 42).n_list, Some(vec![64]));
        assert_eq!(parse(&["--n=64,196,400"], 42).n_list, Some(vec![64, 196, 400]));
        assert_eq!(parse(&["--seeds", "3"], 42).seeds, Some(3));
        assert_eq!(parse(&["--seeds=1"], 42).seeds, Some(1));
    }

    #[test]
    fn pairs_and_stable_flags() {
        let c = parse(&[], 42);
        assert_eq!(c.pairs, None);
        assert!(!c.stable);
        assert_eq!(parse(&["--pairs", "500"], 42).pairs, Some(500));
        assert_eq!(parse(&["--pairs=2000"], 42).pairs, Some(2000));
        assert!(parse(&["--stable"], 42).stable);
    }

    #[test]
    fn chrome_trace_flag_both_forms_and_implies_recording() {
        let c = parse(&[], 42);
        assert_eq!(c.chrome_trace, None);
        assert!(!c.wants_recording());
        assert!(!c.tracer().enabled());
        let c = parse(&["--chrome-trace", "out.json"], 42);
        assert_eq!(c.chrome_trace.as_deref(), Some("out.json"));
        assert!(c.wants_recording());
        assert!(c.tracer().enabled());
        let c = parse(&["--chrome-trace=/tmp/t.json"], 42);
        assert_eq!(c.chrome_trace.as_deref(), Some("/tmp/t.json"));
        let c = parse(&["--trace"], 42);
        assert!(c.wants_recording());
        assert!(c.write_chrome_trace(&obs::TraceLog::default(), None).is_none());
    }

    #[test]
    fn min_delivery_flag_both_forms() {
        assert_eq!(parse(&[], 42).min_delivery, None);
        assert_eq!(parse(&["--min-delivery", "0.9"], 42).min_delivery, Some(0.9));
        assert_eq!(parse(&["--min-delivery=0.5"], 42).min_delivery, Some(0.5));
        assert_eq!(parse(&["--min-delivery=1"], 42).min_delivery, Some(1.0));
    }

    #[test]
    #[should_panic(expected = "invalid --min-delivery")]
    fn out_of_range_min_delivery_is_rejected() {
        parse(&["--min-delivery", "1.5"], 42);
    }

    #[test]
    #[should_panic(expected = "invalid --min-delivery")]
    fn malformed_min_delivery_is_rejected() {
        parse(&["--min-delivery=lots"], 42);
    }

    #[test]
    #[should_panic(expected = "invalid --pairs")]
    fn zero_pairs_is_rejected() {
        parse(&["--pairs", "0"], 42);
    }

    #[test]
    #[should_panic(expected = "invalid --n")]
    fn malformed_n_list_is_rejected() {
        parse(&["--n", "64,banana"], 42);
    }

    #[test]
    #[should_panic(expected = "invalid --seeds")]
    fn zero_seeds_is_rejected() {
        parse(&["--seeds", "0"], 42);
    }

    #[test]
    #[should_panic(expected = "invalid --seed")]
    fn malformed_seed_is_rejected() {
        parse(&["--seed", "banana"], 42);
    }
}
