//! Experiment runners. Every function is deterministic given its
//! arguments (seeded generators, seeded pair samples) and returns
//! `(headers, rows)` ready for [`crate::table::print_table`].
//!
//! All runners draw their metrics from a shared [`MetricCache`], so a
//! binary that runs several experiments over the same `(family, n, seed)`
//! builds each `Θ(n²)` metric exactly once.

use doubling_metric::{doubling, gen, Eps};
use labeled_routing::{NetLabeled, ScaleFreeLabeled};
use lowerbound::{game, LbParams, LowerBoundTree};
use name_independent::{ScaleFreeNameIndependent, SimpleNameIndependent};
use netsim::baseline::FullTable;
use netsim::scheme::{LabeledScheme, NameIndependentScheme};
use netsim::stats::{
    eval_labeled, eval_name_independent, sample_pairs, sampled_stretch_labeled,
    sampled_stretch_name_independent, EvalResult,
};
use netsim::Naming;

use crate::cache::MetricCache;
use crate::table::f2;

/// Result-row helper: one evaluated scheme on one graph.
fn eval_row(family: &str, n: usize, res: &EvalResult, label_bits: Option<u64>) -> Vec<String> {
    let mut row = vec![
        family.to_string(),
        n.to_string(),
        res.scheme.to_string(),
        f2(res.max_stretch),
        f2(res.avg_stretch),
        res.max_table_bits.to_string(),
        f2(res.avg_table_bits),
        res.max_header_bits.to_string(),
    ];
    if let Some(lb) = label_bits {
        row.push(lb.to_string());
    }
    if res.failures > 0 {
        row.push(format!("FAILURES={}", res.failures));
    }
    if res.understretch > 0 {
        // A sub-1 stretch means the recorder under-charged a route — a
        // harness bug worth shouting about, never silently clamped.
        row.push(format!("UNDERSTRETCH={}", res.understretch));
    }
    row
}

/// The graph families Table 1 / Table 2 sweep over.
pub fn table_families() -> Vec<gen::Family> {
    vec![
        gen::Family::Grid,
        gen::Family::GridHoles,
        gen::Family::Geometric,
        gen::Family::Tree,
        gen::Family::ExpPath,
    ]
}

/// Above this n, Table 1 / Table 2 append a 95% CI half-width column on
/// the sampled mean stretch. Below it, the sample covers a large enough
/// fraction of the n² ordered pairs that the historical columns stand on
/// their own, and the output stays byte-identical to earlier releases.
pub const CI_WALL: usize = 1000;

/// **Table 1** — name-independent schemes: stretch, table bits, header
/// bits, across graph families (plus the full-table baseline row). Above
/// [`CI_WALL`] nodes every row gains an `avg-ci95` column: the 95%
/// confidence half-width of the sampled mean stretch from
/// [`netsim::stats::SampledStretch`].
pub fn run_table1(
    cache: &MetricCache,
    n: usize,
    eps: Eps,
    pairs_per_graph: usize,
    seed: u64,
) -> (Vec<&'static str>, Vec<Vec<String>>) {
    run_table1_with_wall(cache, n, eps, pairs_per_graph, seed, CI_WALL)
}

fn run_table1_with_wall(
    cache: &MetricCache,
    n: usize,
    eps: Eps,
    pairs_per_graph: usize,
    seed: u64,
    ci_wall: usize,
) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let mut headers = vec![
        "family",
        "n",
        "scheme",
        "max-stretch",
        "avg-stretch",
        "max-table(b)",
        "avg-table(b)",
        "header(b)",
    ];
    let with_ci = n > ci_wall;
    if with_ci {
        headers.push("avg-ci95");
    }
    let mut rows = Vec::new();
    for f in table_families() {
        let m = cache.family(f, n, seed);
        let naming = Naming::random(m.n(), seed ^ 0xA5);
        let pairs = sample_pairs(m.n(), pairs_per_graph, seed ^ 0x5A);
        let mut push = |row: Vec<String>, ss: Option<netsim::stats::SampledStretch>| {
            let mut row = row;
            if let Some(ss) = ss {
                row.push(f2(ss.ci_half_width));
            }
            rows.push(row);
        };

        let simple = SimpleNameIndependent::new(&m, eps, naming.clone()).expect("eps within range");
        push(
            eval_row(f.name(), m.n(), &eval_name_independent(&simple, &m, &naming, &pairs), None),
            with_ci.then(|| sampled_stretch_name_independent(&simple, &m, &naming, &*m, &pairs)),
        );

        let sf = ScaleFreeNameIndependent::new(&m, eps, naming.clone()).expect("eps within range");
        push(
            eval_row(f.name(), m.n(), &eval_name_independent(&sf, &m, &naming, &pairs), None),
            with_ci.then(|| sampled_stretch_name_independent(&sf, &m, &naming, &*m, &pairs)),
        );

        let full = FullTable::with_naming(&m, naming.clone());
        push(
            eval_row(f.name(), m.n(), &eval_name_independent(&full, &m, &naming, &pairs), None),
            with_ci.then(|| sampled_stretch_name_independent(&full, &m, &naming, &*m, &pairs)),
        );
    }
    (headers, rows)
}

/// **Table 2** — labeled schemes: stretch, table bits, label bits, header
/// bits, across graph families. Above [`CI_WALL`] nodes every row gains an
/// `avg-ci95` column; see [`run_table1`].
pub fn run_table2(
    cache: &MetricCache,
    n: usize,
    eps: Eps,
    pairs_per_graph: usize,
    seed: u64,
) -> (Vec<&'static str>, Vec<Vec<String>>) {
    run_table2_with_wall(cache, n, eps, pairs_per_graph, seed, CI_WALL)
}

fn run_table2_with_wall(
    cache: &MetricCache,
    n: usize,
    eps: Eps,
    pairs_per_graph: usize,
    seed: u64,
    ci_wall: usize,
) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let mut headers = vec![
        "family",
        "n",
        "scheme",
        "max-stretch",
        "avg-stretch",
        "max-table(b)",
        "avg-table(b)",
        "header(b)",
        "label(b)",
    ];
    let with_ci = n > ci_wall;
    if with_ci {
        headers.push("avg-ci95");
    }
    let mut rows = Vec::new();
    for f in table_families() {
        let m = cache.family(f, n, seed);
        let pairs = sample_pairs(m.n(), pairs_per_graph, seed ^ 0x5A);
        let mut push = |row: Vec<String>, ss: Option<netsim::stats::SampledStretch>| {
            let mut row = row;
            if let Some(ss) = ss {
                row.push(f2(ss.ci_half_width));
            }
            rows.push(row);
        };

        let nl = NetLabeled::new(&m, eps).expect("eps within range");
        push(
            eval_row(f.name(), m.n(), &eval_labeled(&nl, &m, &pairs), Some(nl.label_bits())),
            with_ci.then(|| sampled_stretch_labeled(&nl, &m, &*m, &pairs)),
        );

        let sf = ScaleFreeLabeled::new(&m, eps).expect("eps within range");
        push(
            eval_row(f.name(), m.n(), &eval_labeled(&sf, &m, &pairs), Some(sf.label_bits())),
            with_ci.then(|| sampled_stretch_labeled(&sf, &m, &*m, &pairs)),
        );

        let full = FullTable::new(&m);
        push(
            eval_row(
                f.name(),
                m.n(),
                &eval_labeled(&full, &m, &pairs),
                Some(LabeledScheme::label_bits(&full)),
            ),
            with_ci.then(|| sampled_stretch_labeled(&full, &m, &*m, &pairs)),
        );
    }
    (headers, rows)
}

/// **Figure 1** — anatomy of name-independent routes, bucketed by the
/// search round at which the destination's label was found: counts, mean
/// distance, and the zoom/search/final cost split.
pub fn run_fig1(
    cache: &MetricCache,
    n: usize,
    eps: Eps,
    seed: u64,
) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let headers = vec![
        "family",
        "round",
        "routes",
        "avg-d(u,v)",
        "avg-zoom",
        "avg-search",
        "avg-final",
        "avg-stretch",
    ];
    let mut rows = Vec::new();
    for f in [gen::Family::Grid, gen::Family::Geometric] {
        let m = cache.family(f, n, seed);
        let naming = Naming::random(m.n(), seed ^ 0xA5);
        let s = SimpleNameIndependent::new(&m, eps, naming.clone()).expect("eps ok");
        // Buckets keyed by the final round (level of the "final" segment).
        let mut buckets: std::collections::BTreeMap<u32, (usize, f64, f64, f64, f64, f64)> =
            std::collections::BTreeMap::new();
        for (u, v) in sample_pairs(m.n(), 400, seed ^ 0x77) {
            let r = s.route(&m, u, naming.name_of(v)).expect("delivers");
            let round = r
                .segments
                .iter()
                .rev()
                .find(|sg| sg.label == "final")
                .and_then(|sg| sg.level)
                .unwrap_or(0);
            let mut zoom = 0f64;
            let mut search = 0f64;
            let mut fin = 0f64;
            for sg in &r.segments {
                match sg.label {
                    "zoom" => zoom += sg.cost as f64,
                    "search" => search += sg.cost as f64,
                    "final" => fin += sg.cost as f64,
                    _ => {}
                }
            }
            let e = buckets.entry(round).or_insert((0, 0.0, 0.0, 0.0, 0.0, 0.0));
            e.0 += 1;
            e.1 += m.dist(u, v) as f64;
            e.2 += zoom;
            e.3 += search;
            e.4 += fin;
            e.5 += r.stretch(&m);
        }
        for (round, (c, d, z, sch, fin, st)) in buckets {
            let cf = c as f64;
            rows.push(vec![
                f.name().to_string(),
                round.to_string(),
                c.to_string(),
                f2(d / cf),
                f2(z / cf),
                f2(sch / cf),
                f2(fin / cf),
                f2(st / cf),
            ]);
        }
    }
    (headers, rows)
}

/// **Figure 2** — anatomy of scale-free labeled routes: cost split between
/// the greedy ring walk and the three packing phases, bucketed by whether
/// the packing machinery engaged.
pub fn run_fig2(cache: &MetricCache, eps: Eps, seed: u64) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let headers = vec![
        "family",
        "phase-mix",
        "routes",
        "avg-d(u,v)",
        "avg-ring-walk",
        "avg-to-center",
        "avg-tree-search",
        "avg-to-target",
        "avg-stretch",
    ];
    let mut rows = Vec::new();
    for (name, m) in [
        ("grid", cache.family(gen::Family::Grid, 144, seed)),
        ("exp-path", cache.get_or_build("exp-path", 48, 0, || gen::exp_weight_path(48))),
    ] {
        let s = ScaleFreeLabeled::new(&m, eps).expect("eps ok");
        let mut agg: std::collections::BTreeMap<&str, (usize, f64, [f64; 4], f64)> =
            std::collections::BTreeMap::new();
        for (u, v) in sample_pairs(m.n(), 400, seed ^ 0x33) {
            let r = s.route(&m, u, s.label_of(v)).expect("delivers");
            let mut parts = [0f64; 4]; // ring-walk, to-center, tree-search, to-target
            for sg in &r.segments {
                let idx = match sg.label {
                    "ring-walk" => 0,
                    "to-center" => 1,
                    "tree-search" => 2,
                    "to-target" => 3,
                    _ => continue,
                };
                parts[idx] += sg.cost as f64;
            }
            let mix = if parts[1] + parts[2] + parts[3] > 0.0 { "packing" } else { "greedy-only" };
            let e = agg.entry(mix).or_insert((0, 0.0, [0.0; 4], 0.0));
            e.0 += 1;
            e.1 += m.dist(u, v) as f64;
            for (acc, p) in e.2.iter_mut().zip(parts) {
                *acc += p;
            }
            e.3 += r.stretch(&m);
        }
        for (mix, (c, d, parts, st)) in agg {
            let cf = c as f64;
            rows.push(vec![
                name.to_string(),
                mix.to_string(),
                c.to_string(),
                f2(d / cf),
                f2(parts[0] / cf),
                f2(parts[1] / cf),
                f2(parts[2] / cf),
                f2(parts[3] / cf),
                f2(st / cf),
            ]);
        }
    }
    (headers, rows)
}

/// **Figure 3 / Theorem 1.3** — the lower-bound construction: parameters,
/// measured doubling constant vs Lemma 5.8, measured Δ vs the theorem's
/// envelope, and the search-game stretch (oblivious / optimized / 9−ε).
pub fn run_fig3(cache: &MetricCache, seed: u64) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let headers = vec![
        "eps",
        "p",
        "q",
        "c=pq",
        "nodes",
        "alpha-est",
        "alpha-bound",
        "log2(delta)",
        "log2(envelope)",
        "oblivious",
        "optimized",
        "9-eps",
    ];
    let mut rows = Vec::new();
    for &eps in &[2u64, 4, 6] {
        let params = LbParams::from_eps(eps, 1);
        // Structure/game tree at a generous size; metric checks on a small
        // materialization (Θ(n²) memory).
        let big = LowerBoundTree::new(params, 1 << 16);
        let small = LowerBoundTree::new(params, 256);
        let m = cache.get_or_build("lb-tree", 256, eps, || small.to_graph());
        let est = doubling::estimate(&m, Some(24));
        let alpha_bound = 6.0 - (eps as f64).log2();

        let oblivious = game::worst_case_stretch(&big, &game::increasing_weight_order(&big)).0;
        let optimized = game::worst_case_stretch(&big, &game::optimize_order(&big, 4000, seed)).0;
        rows.push(vec![
            eps.to_string(),
            params.p.to_string(),
            params.q.to_string(),
            params.c().to_string(),
            big.total_nodes().to_string(),
            f2(est.dimension),
            f2(alpha_bound),
            f2((big.normalized_diameter() as f64).log2()),
            f2((big.delta_envelope() as f64).log2()),
            f2(oblivious),
            f2(optimized),
            f2(9.0 - eps as f64),
        ]);
    }
    (headers, rows)
}

/// **Figure 3, advice curve** — stretch of the search game as a function
/// of the advice bits β (the empirical face of the table-size/stretch
/// trade-off in Theorem 1.3).
pub fn run_fig3_advice(eps: u64) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let headers = vec!["beta(bits)", "worst-stretch"];
    let params = LbParams::from_eps(eps, 1);
    let t = LowerBoundTree::new(params, 1 << 16);
    let order = game::increasing_weight_order(&t);
    let mut rows = Vec::new();
    for beta in [0u32, 1, 2, 3, 4, 6, 8, 10, 12] {
        rows.push(vec![beta.to_string(), f2(game::advice_stretch(&t, &order, beta))]);
    }
    (headers, rows)
}

/// **E1** — max/avg stretch vs ε for all four schemes on one graph.
pub fn run_sweep_eps(
    cache: &MetricCache,
    n: usize,
    seed: u64,
) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let headers = vec!["eps", "scheme", "max-stretch", "avg-stretch", "bound"];
    let m = cache.family(gen::Family::Grid, n, seed);
    let naming = Naming::random(m.n(), seed ^ 1);
    let pairs = sample_pairs(m.n(), 400, seed ^ 2);
    let mut rows = Vec::new();
    for k in [4u64, 8, 16, 32] {
        let eps = Eps::one_over(k);
        let nl = NetLabeled::new(&m, eps).expect("eps ok");
        let r = eval_labeled(&nl, &m, &pairs);
        rows.push(vec![
            eps.to_string(),
            r.scheme.into(),
            f2(r.max_stretch),
            f2(r.avg_stretch),
            "1+O(eps)".into(),
        ]);
        if k >= 4 {
            let sf = ScaleFreeLabeled::new(&m, eps).expect("eps ok");
            let r = eval_labeled(&sf, &m, &pairs);
            rows.push(vec![
                eps.to_string(),
                r.scheme.into(),
                f2(r.max_stretch),
                f2(r.avg_stretch),
                "1+O(eps)".into(),
            ]);
        }
        let si = SimpleNameIndependent::new(&m, eps, naming.clone()).expect("eps ok");
        let r = eval_name_independent(&si, &m, &naming, &pairs);
        rows.push(vec![
            eps.to_string(),
            r.scheme.into(),
            f2(r.max_stretch),
            f2(r.avg_stretch),
            "9+O(eps)".into(),
        ]);
        let sfni = ScaleFreeNameIndependent::new(&m, eps, naming.clone()).expect("eps ok");
        let r = eval_name_independent(&sfni, &m, &naming, &pairs);
        rows.push(vec![
            eps.to_string(),
            r.scheme.into(),
            f2(r.max_stretch),
            f2(r.avg_stretch),
            "9+O(eps)".into(),
        ]);
    }
    (headers, rows)
}

/// **E2** — max table bits vs log Δ at (almost) fixed n: the scale-free
/// crossover. Compares the simple vs scale-free name-independent schemes
/// on unit paths (Δ = n) vs exponential paths (Δ = 2^n).
pub fn run_sweep_scale(
    cache: &MetricCache,
    eps: Eps,
    seed: u64,
) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let headers = vec![
        "graph",
        "n",
        "log2(delta)",
        "simple-max-table(b)",
        "scale-free-max-table(b)",
        "ratio",
    ];
    let mut rows = Vec::new();
    let mut push = |name: &str, n: usize, build: fn(usize) -> doubling_metric::Graph| {
        let m = cache.get_or_build(name, n, 0, || build(n));
        let naming = Naming::random(m.n(), seed);
        let si = SimpleNameIndependent::new(&m, eps, naming.clone()).expect("eps ok");
        let sf = ScaleFreeNameIndependent::new(&m, eps, naming).expect("eps ok");
        let max_si = (0..m.n() as u32).map(|u| si.table_bits(u)).max().unwrap();
        let max_sf =
            (0..m.n() as u32).map(|u| NameIndependentScheme::table_bits(&sf, u)).max().unwrap();
        rows.push(vec![
            name.to_string(),
            m.n().to_string(),
            f2((m.diameter() as f64 / m.min_dist() as f64).log2()),
            max_si.to_string(),
            max_sf.to_string(),
            f2(max_si as f64 / max_sf as f64),
        ]);
    };
    for n in [16usize, 32, 48] {
        push("unit-path", n, gen::path);
        push("exp-path", n, gen::exp_weight_path);
    }
    (headers, rows)
}

/// **A1** — ring-table ablation: how many levels `R(u)` keeps vs the full
/// hierarchy, and the stretch cost of the pruning (NetLabeled stores all
/// levels; ScaleFreeLabeled prunes to R(u) + packing machinery).
pub fn run_ablation_rings(cache: &MetricCache, seed: u64) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let headers = vec![
        "graph",
        "levels-total",
        "avg|R(u)|",
        "max|R(u)|",
        "all-levels-max-stretch",
        "pruned-max-stretch",
        "all-levels-max-table(b)",
        "pruned-max-table(b)",
    ];
    let eps = Eps::one_over(8);
    let mut rows = Vec::new();
    for (name, m) in [
        ("grid-144", cache.family(gen::Family::Grid, 144, seed)),
        ("exp-path-40", cache.get_or_build("exp-path", 40, 0, || gen::exp_weight_path(40))),
    ] {
        let pairs = sample_pairs(m.n(), 300, seed);
        let nl = NetLabeled::new(&m, eps).expect("eps ok");
        let sf = ScaleFreeLabeled::new(&m, eps).expect("eps ok");
        let rn = eval_labeled(&nl, &m, &pairs);
        let rs = eval_labeled(&sf, &m, &pairs);
        let ring_counts: Vec<usize> = (0..m.n() as u32).map(|u| sf.ring_levels(u).len()).collect();
        rows.push(vec![
            name.to_string(),
            m.num_scales().to_string(),
            f2(ring_counts.iter().sum::<usize>() as f64 / ring_counts.len() as f64),
            ring_counts.iter().max().unwrap().to_string(),
            f2(rn.max_stretch),
            f2(rs.max_stretch),
            rn.max_table_bits.to_string(),
            rs.max_table_bits.to_string(),
        ]);
    }
    (headers, rows)
}

/// **A2** — packing-reuse ablation: the fraction of (round, net point)
/// facilities served by `H(u,i)` links instead of private search trees,
/// and per-node link counts (Claim 3.9's regime).
pub fn run_ablation_packing(
    cache: &MetricCache,
    seed: u64,
) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let headers =
        vec!["graph", "link-fraction", "avg-links/node", "max-links/node", "max-table(b)"];
    let eps = Eps::one_over(4);
    let mut rows = Vec::new();
    for (name, m) in [
        ("grid-100", cache.family(gen::Family::Grid, 100, seed)),
        ("geometric-100", cache.family(gen::Family::Geometric, 100, seed)),
        ("exp-path-32", cache.get_or_build("exp-path", 32, 0, || gen::exp_weight_path(32))),
    ] {
        let naming = Naming::random(m.n(), seed);
        let sf = ScaleFreeNameIndependent::new(&m, eps, naming).expect("eps ok");
        let links: Vec<usize> = (0..m.n() as u32).map(|u| sf.link_count(u)).collect();
        let max_table =
            (0..m.n() as u32).map(|u| NameIndependentScheme::table_bits(&sf, u)).max().unwrap();
        rows.push(vec![
            name.to_string(),
            f2(sf.link_fraction()),
            f2(links.iter().sum::<usize>() as f64 / links.len() as f64),
            links.iter().max().unwrap().to_string(),
            max_table.to_string(),
        ]);
    }
    (headers, rows)
}

/// **E3** — storage growth vs n on grids: compact (polylog) vs full-table
/// (`n·log n`) bits per node. Compactness is asymptotic; this measures the
/// growth-rate separation directly and lets the crossover be projected.
pub fn run_storage_growth(
    cache: &MetricCache,
    ns: &[usize],
    seed: u64,
) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let headers =
        vec!["n", "full-table(b)", "sf-labeled max(b)", "sf-NI max(b)", "sfNI/full", "sfNI-growth"];
    let eps = Eps::one_over(8);
    let mut rows = Vec::new();
    let mut prev_sf: Option<f64> = None;
    for &n in ns {
        let m = cache.family(gen::Family::Grid, n, seed);
        let naming = Naming::random(m.n(), seed);
        let full_bits = m.n() as u64 * netsim::bits::bits_for_count(m.n() as u64);
        let sfl = ScaleFreeLabeled::new(&m, eps).expect("eps ok");
        let sfl_max = (0..m.n() as u32).map(|u| sfl.table_bits(u)).max().unwrap();
        let sfni = ScaleFreeNameIndependent::new(&m, eps, naming).expect("eps ok");
        let sfni_max =
            (0..m.n() as u32).map(|u| NameIndependentScheme::table_bits(&sfni, u)).max().unwrap();
        let growth = prev_sf.map(|p| sfni_max as f64 / p);
        prev_sf = Some(sfni_max as f64);
        rows.push(vec![
            m.n().to_string(),
            full_bits.to_string(),
            sfl_max.to_string(),
            sfni_max.to_string(),
            f2(sfni_max as f64 / full_bits as f64),
            growth.map(f2).unwrap_or_else(|| "-".into()),
        ]);
    }
    (headers, rows)
}

/// **Q1 (open question)** — relaxed guarantees: the stretch *distribution*
/// of the name-independent schemes. The paper's conclusion asks whether
/// letting a small fraction of pairs exceed the bound buys better typical
/// stretch; the quantiles show how much headroom exists (p50 ≪ p99 ≪ max).
pub fn run_relaxed(
    cache: &MetricCache,
    n: usize,
    seed: u64,
) -> (Vec<&'static str>, Vec<Vec<String>>) {
    use netsim::stats::{stretch_samples_ni, StretchQuantiles};
    let headers = vec!["family", "scheme", "eps", "p50", "p90", "p99", "max"];
    let mut rows = Vec::new();
    for f in [gen::Family::Grid, gen::Family::Geometric] {
        let m = cache.family(f, n, seed);
        let naming = Naming::random(m.n(), seed ^ 9);
        let pairs = sample_pairs(m.n(), 500, seed ^ 5);
        for inv in [4u64, 8] {
            let eps = Eps::one_over(inv);
            let si = SimpleNameIndependent::new(&m, eps, naming.clone()).expect("eps ok");
            let q = StretchQuantiles::from_stretches(&stretch_samples_ni(&si, &m, &naming, &pairs));
            rows.push(vec![
                f.name().into(),
                "simple-NI".into(),
                eps.to_string(),
                f2(q.p50),
                f2(q.p90),
                f2(q.p99),
                f2(q.max),
            ]);
            let sf = ScaleFreeNameIndependent::new(&m, eps, naming.clone()).expect("eps ok");
            let q = StretchQuantiles::from_stretches(&stretch_samples_ni(&sf, &m, &naming, &pairs));
            rows.push(vec![
                f.name().into(),
                "scale-free-NI".into(),
                eps.to_string(),
                f2(q.p50),
                f2(q.p90),
                f2(q.p99),
                f2(q.max),
            ]);
        }
    }
    (headers, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> MetricCache {
        MetricCache::new(1)
    }

    #[test]
    fn table1_produces_rows_for_every_family_and_scheme() {
        let (h, rows) = run_table1(&cache(), 36, Eps::one_over(8), 30, 3);
        assert_eq!(h.len(), 8);
        assert_eq!(rows.len(), table_families().len() * 3);
        // No failure annotations.
        for r in &rows {
            assert!(!r.iter().any(|c| c.starts_with("FAILURES")), "row {r:?}");
        }
    }

    #[test]
    fn table2_produces_rows() {
        let (_, rows) = run_table2(&cache(), 36, Eps::one_over(8), 30, 3);
        assert_eq!(rows.len(), table_families().len() * 3);
        for r in &rows {
            assert!(!r.iter().any(|c| c.starts_with("FAILURES")), "row {r:?}");
        }
    }

    #[test]
    fn tables_gain_a_ci_column_above_the_wall() {
        // Force the CI path by dropping the wall below n = 36.
        let (h1, rows1) = run_table1_with_wall(&cache(), 36, Eps::one_over(8), 30, 3, 10);
        assert_eq!(*h1.last().unwrap(), "avg-ci95");
        let (h2, rows2) = run_table2_with_wall(&cache(), 36, Eps::one_over(8), 30, 3, 10);
        assert_eq!(*h2.last().unwrap(), "avg-ci95");
        for r in rows1.iter().chain(&rows2) {
            let ci: f64 = r.last().unwrap().parse().expect("ci cell is numeric");
            assert!((0.0..10.0).contains(&ci), "implausible ci in {r:?}");
        }
        // The full-table baseline routes optimally: its CI collapses to 0.
        let full1 = rows1.iter().find(|r| r[2] == "full-table").unwrap();
        assert_eq!(full1.last().unwrap(), "0.00");
    }

    #[test]
    fn fig3_rows_respect_theorem_bounds() {
        let (_, rows) = run_fig3(&cache(), 7);
        for r in &rows {
            let optimized: f64 = r[10].parse().unwrap();
            let bound: f64 = r[11].parse().unwrap();
            assert!(optimized >= bound, "game beat the lower bound: {r:?}");
            let alpha_est: f64 = r[5].parse().unwrap();
            let alpha_bound: f64 = r[6].parse().unwrap();
            // Greedy estimate may exceed the exact bound by a constant
            // factor in the exponent; must stay in the same ballpark.
            assert!(alpha_est <= alpha_bound + 2.0, "alpha off: {r:?}");
        }
    }

    #[test]
    fn experiments_share_metrics_through_the_cache() {
        let c = cache();
        run_table1(&c, 36, Eps::one_over(8), 10, 3);
        let builds_after_t1 = c.stats().builds;
        assert_eq!(builds_after_t1, table_families().len() as u64);
        // Table 2 on the same (n, seed) must be served entirely from cache.
        run_table2(&c, 36, Eps::one_over(8), 10, 3);
        assert_eq!(c.stats().builds, builds_after_t1);
        assert_eq!(c.stats().hits, table_families().len() as u64);
    }

    #[test]
    fn sweep_scale_shows_crossover() {
        let (_, rows) = run_sweep_scale(&cache(), Eps::one_over(4), 3);
        // On exp-paths, the simple/scale-free ratio must exceed 1 and grow
        // with n; on unit paths it stays near or below ~1.5.
        let exp_ratios: Vec<f64> =
            rows.iter().filter(|r| r[0] == "exp-path").map(|r| r[5].parse().unwrap()).collect();
        assert!(exp_ratios.iter().all(|&x| x > 1.0), "{exp_ratios:?}");
        assert!(exp_ratios.windows(2).all(|w| w[1] >= w[0] * 0.9), "{exp_ratios:?}");
    }
}
