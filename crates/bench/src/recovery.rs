//! Experiment R1: the stretch price of survival.
//!
//! For every (fault strategy × recovery policy × scheme) cell, the same
//! sampled pairs are delivered through a
//! [`netsim::recovery::ResilientRouter`] against the strategy's fault
//! schedule, measuring the delivered fraction, the stretch of survivors
//! (detour hops included in the cost), and the recovery effort. The
//! policy grid always contains [`RecoveryPolicy::Drop`] — today's
//! stale-table behavior — as the baseline every other policy is read
//! against.
//!
//! The `random` strategy is *dynamic*: a two-epoch [`FaultTimeline`]
//! (half the casualties at departure, the rest landing mid-route), built
//! on the prefix property of [`FaultPlan::random_nodes`] — the same seed
//! at a larger fraction kills a superset of nodes, so the epochs are
//! cumulative. The targeted strategies are static single-epoch schedules.
//!
//! The run ends with an adversarial **chaos campaign**
//! ([`netsim::recovery::greedy_chaos`]): for each policy, greedily build
//! the fault set (over high-degree candidates) that maximizes packet
//! loss, then prune it to a minimal set. The resulting plans are
//! serialized into the output via [`FaultPlan::to_json`], so each
//! worst case is reproducible from `results/recovery.json` alone.
//!
//! Output schema (`results/recovery.json`, `schema_version` 1):
//! strategies × policies × all four schemes, each cell a
//! [`RecoveryEvalResult`] plus milli-stretch ([`Log2Histogram`]) and
//! detour-hop histograms; per-strategy serialized fault timelines; the
//! chaos section per policy.

use doubling_metric::graph::NodeId;
use doubling_metric::{gen, Eps, MetricSpace};
use labeled_routing::{NetLabeled, ScaleFreeLabeled};
use name_independent::{ScaleFreeNameIndependent, SimpleNameIndependent};
use netsim::faults::{FaultPlan, FaultTimeline};
use netsim::json::Value;
use netsim::recovery::{greedy_chaos, DeliveryOutcome, RecoveryPolicy, ResilientRouter};
use netsim::scheme::{LabeledScheme, NameIndependentScheme};
use netsim::stats::{
    eval_labeled_resilient_observed, eval_name_independent_resilient_observed, sample_pairs,
    RecoveryEvalResult,
};
use netsim::Naming;
use obs::{FlightRecorder, Log2Histogram, MetricsRegistry, Tracer};

use crate::cache::MetricCache;
use crate::table::f2;

/// The policy grid every strategy × scheme cell is measured under.
/// `Drop` first — it is the baseline the other rows are read against.
pub fn policy_grid() -> Vec<RecoveryPolicy> {
    vec![
        RecoveryPolicy::Drop,
        RecoveryPolicy::LocalDetour { ttl: 8 },
        RecoveryPolicy::LevelFallback { max_climbs: 4 },
        RecoveryPolicy::Chained(vec![
            RecoveryPolicy::LocalDetour { ttl: 8 },
            RecoveryPolicy::LevelFallback { max_climbs: 4 },
        ]),
    ]
}

/// Stretch values enter the [`Log2Histogram`] as integer milli-stretch
/// (stretch × 1000), so quantiles come back at three-decimal resolution.
fn milli(stretch: f64) -> u64 {
    (stretch * 1000.0).round() as u64
}

/// One cell's histograms, filled by the delivery observer.
struct CellHists {
    milli_stretch: Log2Histogram,
    detour_hops: Log2Histogram,
}

impl CellHists {
    fn new() -> Self {
        CellHists { milli_stretch: Log2Histogram::new(), detour_hops: Log2Histogram::new() }
    }

    fn observe(&mut self, outcome: &DeliveryOutcome) {
        if let DeliveryOutcome::Delivered { stretch, detour_hops, .. } = outcome {
            self.milli_stretch.record(milli(*stretch));
            if *detour_hops > 0 {
                self.detour_hops.record(*detour_hops as u64);
            }
        }
    }

    /// Quantile helper: milli-stretch bucket bound back to a stretch.
    fn stretch_q(&self, q: impl Fn(&Log2Histogram) -> Option<u64>) -> f64 {
        q(&self.milli_stretch).map_or(1.0, |v| v as f64 / 1000.0)
    }
}

/// One (strategy, policy, scheme) cell of the grid.
struct Cell {
    eval: RecoveryEvalResult,
    hists: CellHists,
}

impl Cell {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("scheme".into(), self.eval.scheme.into()),
            ("eval".into(), self.eval.to_json()),
            (
                "stretch_quantiles".into(),
                Value::Object(vec![
                    ("p50".into(), self.hists.stretch_q(Log2Histogram::p50).into()),
                    ("p90".into(), self.hists.stretch_q(Log2Histogram::p90).into()),
                    ("p99".into(), self.hists.stretch_q(Log2Histogram::p99).into()),
                    ("max".into(), self.eval.max_stretch.into()),
                ]),
            ),
            ("milli_stretch_hist".into(), self.hists.milli_stretch.to_json()),
            ("detour_hops_hist".into(), self.hists.detour_hops.to_json()),
        ])
    }

    fn row(&self, strategy: &str, policy: &RecoveryPolicy) -> Vec<String> {
        vec![
            strategy.to_string(),
            policy.to_string(),
            self.eval.scheme.to_string(),
            f2(self.eval.delivered_fraction),
            f2(self.eval.avg_stretch),
            f2(self.hists.stretch_q(Log2Histogram::p90)),
            self.eval.recoveries.to_string(),
            self.eval.detour_hops.to_string(),
        ]
    }
}

/// Event context for attributable recovery trace events (same field
/// ordering as the churn loss events).
fn event_fields(
    strategy: &'static str,
    policy: &RecoveryPolicy,
    scheme: &'static str,
    u: NodeId,
    v: NodeId,
) -> Vec<(&'static str, Value)> {
    vec![
        ("strategy", strategy.into()),
        ("policy", policy.to_string().into()),
        ("scheme", scheme.into()),
        ("src", u.into()),
        ("dst", v.into()),
    ]
}

/// Counts a resilient delivery in the registry: `recovery.delivered` or
/// `recovery.lost`.
fn meter_outcome(registry: &MetricsRegistry, outcome: &DeliveryOutcome) {
    if registry.enabled() {
        let name = if outcome.is_delivered() { "recovery.delivered" } else { "recovery.lost" };
        registry.counter(name).inc();
    }
}

/// The node ids with the `k` highest degrees (ties to the smaller id) —
/// the chaos campaign's candidate pool: hubs are where a targeted
/// adversary gets the most loss per kill.
fn top_degree_candidates(m: &MetricSpace, k: usize) -> Vec<NodeId> {
    let g = m.graph();
    let mut nodes: Vec<NodeId> = (0..m.n() as NodeId).collect();
    nodes.sort_by_key(|&u| (std::cmp::Reverse(g.degree(u)), u));
    nodes.truncate(k);
    nodes
}

/// Runs the full R1 grid on a unit grid graph. Returns console table
/// headers/rows plus the JSON document (`schema_version` 1).
///
/// All randomness derives from `seed` (graph, naming, pairs, fault
/// plans), so two runs with the same arguments produce byte-identical
/// documents — the CI determinism check relies on this.
///
/// `registry` counts every recovery intervention by kind
/// (`recovery-detour` / `recovery-fallback` / `recovery-exhausted`) plus
/// delivered/lost totals; `flight` keeps per-hop forensics for the last
/// K deliveries, each loss flagged as an anomaly.
#[allow(clippy::too_many_arguments)]
pub fn run_recovery(
    cache: &MetricCache,
    n: usize,
    eps: Eps,
    pairs_count: usize,
    fraction: f64,
    seed: u64,
    tracer: &Tracer,
    registry: &MetricsRegistry,
    flight: &mut FlightRecorder,
) -> (Vec<&'static str>, Vec<Vec<String>>, Value) {
    // The event and outcome observers are separate closures but both feed
    // the ring, so it rides in a RefCell for the duration of the grid.
    let ring = std::cell::RefCell::new(std::mem::replace(flight, FlightRecorder::disabled()));
    let m = cache.family_traced(gen::Family::Grid, n, seed, tracer);
    let g = m.graph();
    let naming = Naming::random(m.n(), seed ^ 0xA5);
    let pairs = sample_pairs(m.n(), pairs_count, seed ^ 0x5A);
    let policies = policy_grid();

    let nl = NetLabeled::new(&m, eps).expect("eps within range");
    let sfl = ScaleFreeLabeled::new(&m, eps).expect("eps within range");
    let sni = SimpleNameIndependent::new(&m, eps, naming.clone()).expect("eps within range");
    let sfni = ScaleFreeNameIndependent::new(&m, eps, naming.clone()).expect("eps within range");

    // The random strategy is dynamic: half the casualties are live at
    // departure, the rest land after `hops_per_epoch` hops. random_nodes
    // has the prefix property (same seed, larger fraction ⊇ smaller), so
    // the two epochs are cumulative by construction.
    let nets = doubling_metric::nets::NetHierarchy::new(&m);
    let strategies: Vec<(&'static str, FaultTimeline)> = vec![
        (
            "random",
            FaultTimeline::new(
                vec![
                    FaultPlan::random_nodes(m.n(), fraction / 2.0, seed ^ 0xC0),
                    FaultPlan::random_nodes(m.n(), fraction, seed ^ 0xC0),
                ],
                8,
            )
            .expect("random_nodes prefixes are cumulative"),
        ),
        ("degree", FaultTimeline::from_plan(FaultPlan::targeted_by_degree(g, fraction))),
        (
            "netcenter",
            FaultTimeline::from_plan(FaultPlan::targeted_net_centers(&nets, m.n(), fraction)),
        ),
    ];

    let headers = vec![
        "strategy",
        "policy",
        "scheme",
        "delivered",
        "avg-stretch",
        "p90-stretch",
        "recoveries",
        "detour-hops",
    ];
    let mut rows = Vec::new();
    let mut strategy_docs = Vec::new();

    for (strategy, timeline) in &strategies {
        let mut policy_docs = Vec::new();
        for policy in &policies {
            // One cell per scheme: identical pairs, identical timeline,
            // only the delivery policy varies.
            let mut cells = Vec::new();
            {
                let mut h = CellHists::new();
                let eval = eval_labeled_resilient_observed(
                    &ResilientRouter::new(&m, &nl, policy.clone()),
                    timeline,
                    &pairs,
                    |u, v, ev| {
                        obs::eval::trace_recovery_event(
                            tracer,
                            || event_fields(strategy, policy, nl.scheme_name(), u, v),
                            ev,
                        );
                        obs::eval::meter_recovery_event(registry, ev);
                        ring.borrow_mut().note_recovery(ev);
                    },
                    |u, v, o| {
                        h.observe(o);
                        meter_outcome(registry, o);
                        ring.borrow_mut().record_outcome(u, v, o);
                    },
                );
                cells.push(Cell { eval, hists: h });
            }
            {
                let mut h = CellHists::new();
                let eval = eval_labeled_resilient_observed(
                    &ResilientRouter::new(&m, &sfl, policy.clone()),
                    timeline,
                    &pairs,
                    |u, v, ev| {
                        obs::eval::trace_recovery_event(
                            tracer,
                            || event_fields(strategy, policy, sfl.scheme_name(), u, v),
                            ev,
                        );
                        obs::eval::meter_recovery_event(registry, ev);
                        ring.borrow_mut().note_recovery(ev);
                    },
                    |u, v, o| {
                        h.observe(o);
                        meter_outcome(registry, o);
                        ring.borrow_mut().record_outcome(u, v, o);
                    },
                );
                cells.push(Cell { eval, hists: h });
            }
            {
                let mut h = CellHists::new();
                let eval = eval_name_independent_resilient_observed(
                    &ResilientRouter::new(&m, &sni, policy.clone()),
                    &naming,
                    timeline,
                    &pairs,
                    |u, v, ev| {
                        obs::eval::trace_recovery_event(
                            tracer,
                            || event_fields(strategy, policy, sni.scheme_name(), u, v),
                            ev,
                        );
                        obs::eval::meter_recovery_event(registry, ev);
                        ring.borrow_mut().note_recovery(ev);
                    },
                    |u, v, o| {
                        h.observe(o);
                        meter_outcome(registry, o);
                        ring.borrow_mut().record_outcome(u, v, o);
                    },
                );
                cells.push(Cell { eval, hists: h });
            }
            {
                let mut h = CellHists::new();
                let eval = eval_name_independent_resilient_observed(
                    &ResilientRouter::new(&m, &sfni, policy.clone()),
                    &naming,
                    timeline,
                    &pairs,
                    |u, v, ev| {
                        obs::eval::trace_recovery_event(
                            tracer,
                            || event_fields(strategy, policy, sfni.scheme_name(), u, v),
                            ev,
                        );
                        obs::eval::meter_recovery_event(registry, ev);
                        ring.borrow_mut().note_recovery(ev);
                    },
                    |u, v, o| {
                        h.observe(o);
                        meter_outcome(registry, o);
                        ring.borrow_mut().record_outcome(u, v, o);
                    },
                );
                cells.push(Cell { eval, hists: h });
            }

            for c in &cells {
                rows.push(c.row(strategy, policy));
            }
            policy_docs.push(Value::Object(vec![
                ("policy".into(), policy.to_string().into()),
                ("schemes".into(), Value::Array(cells.iter().map(Cell::to_json).collect())),
            ]));
        }
        strategy_docs.push(Value::Object(vec![
            ("strategy".into(), (*strategy).into()),
            ("dynamic".into(), (timeline.num_epochs() > 1).into()),
            ("dead_nodes_final".into(), timeline.final_plan().dead_node_count().into()),
            // The full schedule, so any cell is reproducible from this
            // document alone (FaultTimeline::from_json).
            ("timeline".into(), timeline.to_json()),
            ("policies".into(), Value::Array(policy_docs)),
        ]));
    }

    // Adversarial chaos campaign: per policy, the minimal high-damage
    // fault set over high-degree candidates, probed with the NetLabeled
    // scheme on a pair subsample (the campaign re-evaluates the grid once
    // per candidate per step — keep the oracle cheap and deterministic).
    let chaos_pairs = sample_pairs(m.n(), pairs_count.min(80), seed ^ 0x7C);
    let chaos_candidates = top_degree_candidates(&m, 16);
    let chaos_budget = 5;
    let mut chaos_docs = Vec::new();
    for policy in &policies {
        let outcome = greedy_chaos(m.n(), &chaos_candidates, chaos_budget, |plan| {
            let tl = FaultTimeline::from_plan(plan.clone());
            let router = ResilientRouter::new(&m, &nl, policy.clone());
            chaos_pairs
                .iter()
                .filter(|&&(u, v)| !plan.is_node_dead(u) && !plan.is_node_dead(v))
                .filter(|&&(u, v)| !router.deliver(u, v, &tl, &mut |_| {}).is_delivered())
                .count()
        });
        tracer.event_lazy("chaos-campaign", || {
            vec![
                ("policy", policy.to_string().into()),
                ("lost", outcome.lost.into()),
                ("kills", outcome.plan.dead_node_count().into()),
            ]
        });
        chaos_docs.push(Value::Object(vec![
            ("policy".into(), policy.to_string().into()),
            ("attempted_pairs".into(), chaos_pairs.len().into()),
            ("lost".into(), outcome.lost.into()),
            (
                "steps".into(),
                Value::Array(
                    outcome
                        .steps
                        .iter()
                        .map(|s| {
                            Value::Object(vec![
                                ("kill".into(), s.kill.into()),
                                ("lost".into(), s.lost.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            // The minimal worst-case fault set, reproducible via
            // FaultPlan::from_json.
            ("plan".into(), outcome.plan.to_json()),
        ]));
    }

    let doc = Value::Object(vec![
        ("schema_version".into(), 1u64.into()),
        ("family".into(), "grid".into()),
        ("n".into(), m.n().into()),
        ("eps".into(), eps.to_string().into()),
        ("pairs".into(), pairs.len().into()),
        ("fraction".into(), fraction.into()),
        ("seed".into(), seed.into()),
        ("policies".into(), Value::Array(policies.iter().map(|p| p.to_string().into()).collect())),
        ("metric_cache".into(), cache.stats().to_json()),
        ("strategies".into(), Value::Array(strategy_docs)),
        (
            "chaos".into(),
            Value::Object(vec![
                ("probe_scheme".into(), nl.scheme_name().into()),
                ("candidates".into(), chaos_candidates.len().into()),
                ("budget".into(), chaos_budget.into()),
                ("campaigns".into(), Value::Array(chaos_docs)),
            ]),
        ),
    ]);
    *flight = ring.into_inner();
    (headers, rows, doc)
}

/// Entry point shared by the root `recovery` binary and
/// `cargo run -p bench --bin recovery`: runs the grid, prints the table,
/// and writes `results/recovery.json`. With `--trace`, every recovery
/// decision is recorded to `results/recovery_trace.jsonl` and the
/// registry snapshot to `results/recovery_metrics.prom`; with
/// `--chrome-trace PATH`, the trace (with registry counters) is exported
/// as Chrome trace-event JSON. Losses dump the flight ring to
/// `results/recovery_flight.jsonl`.
///
/// Usage: `recovery [n] [1/eps] [pairs] [fraction%] [--seed N] [--trace]
/// [--chrome-trace PATH] [--json] [--threads N]`.
pub fn recovery_main() {
    let cli = crate::cli::Cli::parse_env(42);
    let n: usize = cli.pos(0, 196);
    let inv: u64 = cli.pos(1, 8);
    let pairs: usize = cli.pos(2, 300);
    let pct: u64 = cli.pos(3, 20);
    let fraction = pct as f64 / 100.0;
    let tracer = cli.tracer();
    let cache = MetricCache::new(cli.threads);
    let registry = MetricsRegistry::new();
    let mut flight = FlightRecorder::new(obs::flight::DEFAULT_CAPACITY);
    let (headers, rows, doc) = run_recovery(
        &cache,
        n,
        Eps::one_over(inv),
        pairs,
        fraction,
        cli.seed,
        &tracer,
        &registry,
        &mut flight,
    );
    crate::table::emit(
        &format!(
            "Recovery: delivery under {pct}% node faults by policy (n≈{n}, eps=1/{inv}, {pairs} pairs)"
        ),
        &headers,
        &rows,
    );
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/recovery.json", doc.to_string_pretty() + "\n")
        .expect("write results/recovery.json");
    if !cli.json {
        println!("\nwrote results/recovery.json");
    }
    let snapshot = registry.snapshot();
    let log = tracer.finish();
    if cli.trace {
        std::fs::write("results/recovery_trace.jsonl", log.to_jsonl())
            .expect("write results/recovery_trace.jsonl");
        std::fs::write("results/recovery_metrics.prom", obs::export::prometheus_text(&snapshot))
            .expect("write results/recovery_metrics.prom");
        if !cli.json {
            println!("wrote results/recovery_trace.jsonl");
            println!("wrote results/recovery_metrics.prom");
        }
    }
    if let Some(path) = cli.write_chrome_trace(&log, Some(&snapshot)) {
        if !cli.json {
            println!("wrote {path}");
        }
    }
    let dumped = flight
        .dump_if_anomalous("results/recovery_flight.jsonl")
        .expect("write results/recovery_flight.jsonl");
    if dumped && !cli.json {
        println!(
            "flight ring dumped to results/recovery_flight.jsonl ({} anomalies)",
            flight.anomalies()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_grid_policies_beat_drop_and_document_round_trips() {
        let tracer = Tracer::recording();
        let cache = MetricCache::new(1);
        let registry = MetricsRegistry::new();
        let mut flight = FlightRecorder::new(16);
        let (h, rows, doc) = run_recovery(
            &cache,
            64,
            Eps::one_over(8),
            150,
            0.2,
            7,
            &tracer,
            &registry,
            &mut flight,
        );
        assert_eq!(h.len(), 8);
        // 3 strategies × 4 policies × 4 schemes.
        assert_eq!(rows.len(), 3 * 4 * 4);
        assert_eq!(doc.get("schema_version").and_then(Value::as_u64), Some(1));

        let strategies = doc.get("strategies").and_then(Value::as_array).expect("strategies");
        assert_eq!(strategies.len(), 3);
        let mut detour_wins = 0usize;
        let mut cells_checked = 0usize;
        for s in strategies {
            let policies = s.get("policies").and_then(Value::as_array).unwrap();
            assert_eq!(policies.len(), 4);
            // Baseline first, keyed per scheme.
            let drop_block = &policies[0];
            assert_eq!(drop_block.get("policy").and_then(Value::as_str), Some("drop"));
            let drop_fracs: Vec<f64> = drop_block
                .get("schemes")
                .and_then(Value::as_array)
                .unwrap()
                .iter()
                .map(|c| {
                    c.get("eval")
                        .and_then(|e| e.get("delivered_fraction"))
                        .and_then(Value::as_f64)
                        .unwrap()
                })
                .collect();
            for p in &policies[1..] {
                for (i, c) in p.get("schemes").and_then(Value::as_array).unwrap().iter().enumerate()
                {
                    let frac = c
                        .get("eval")
                        .and_then(|e| e.get("delivered_fraction"))
                        .and_then(Value::as_f64)
                        .unwrap();
                    assert!(
                        frac >= drop_fracs[i] - 1e-12,
                        "recovery below Drop baseline: {frac} < {}",
                        drop_fracs[i]
                    );
                    cells_checked += 1;
                    if frac > drop_fracs[i] + 1e-12 {
                        detour_wins += 1;
                    }
                }
            }
            // The serialized timeline reproduces the schedule exactly.
            let tl = FaultTimeline::from_json(s.get("timeline").unwrap()).expect("round trip");
            assert_eq!(tl.to_json(), *s.get("timeline").unwrap());
        }
        assert!(cells_checked > 0);
        assert!(
            detour_wins * 2 > cells_checked,
            "recovery policies must beat Drop in most cells ({detour_wins}/{cells_checked})"
        );

        // Chaos campaigns: present per policy, plans round-trip, and the
        // recorded loss is consistent with a re-evaluation.
        let chaos = doc.get("chaos").expect("chaos section");
        let campaigns = chaos.get("campaigns").and_then(Value::as_array).unwrap();
        assert_eq!(campaigns.len(), 4);
        for c in campaigns {
            let plan = FaultPlan::from_json(c.get("plan").unwrap()).expect("plan round trip");
            assert_eq!(plan.to_json(), *c.get("plan").unwrap());
        }
        // The baseline (Drop) campaign must do at least as much damage as
        // any recovering policy's campaign — recovery can only reduce the
        // adversary's best case.
        let lost: Vec<u64> =
            campaigns.iter().map(|c| c.get("lost").and_then(Value::as_u64).unwrap()).collect();
        assert!(
            lost[1..].iter().all(|&l| l <= lost[0]),
            "chaos under recovery beat Drop: {lost:?}"
        );

        // Recovery decisions were traced.
        let log = tracer.finish();
        assert!(log.events.iter().any(|e| e.name == "recovery-detour"));
        assert!(log.events.iter().any(|e| e.name == "chaos-campaign"));

        // ... and metered: every intervention kind traced also has a
        // registry counter, and delivered + lost covers every *attempted*
        // pair of the grid (dead-endpoint pairs are skipped by the eval,
        // so the total is bounded by 3 strategies × 4 policies × 4
        // schemes × 150 pairs).
        let snap = registry.snapshot();
        assert!(snap.counter("recovery-detour").unwrap_or(0) > 0);
        let delivered = snap.counter("recovery.delivered").unwrap_or(0);
        let lost = snap.counter("recovery.lost").unwrap_or(0);
        assert!(delivered > 0 && lost > 0, "delivered={delivered} lost={lost}");
        assert!(delivered + lost <= 3 * 4 * 4 * 150);

        // The flight ring kept the last deliveries and flagged losses.
        assert_eq!(flight.len(), 16);
        assert!(flight.anomalies() > 0, "20% faults must lose something");
        assert!(flight.records().any(|r| !r.recoveries.is_empty()));
    }

    #[test]
    fn recovery_run_is_deterministic() {
        let run = || {
            let cache = MetricCache::new(1);
            let (_, _, doc) = run_recovery(
                &cache,
                36,
                Eps::one_over(8),
                60,
                0.2,
                7,
                &Tracer::noop(),
                &MetricsRegistry::disabled(),
                &mut FlightRecorder::disabled(),
            );
            doc.to_string()
        };
        assert_eq!(run(), run());
    }
}
