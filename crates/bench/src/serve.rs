//! Experiment T1: routing-as-a-service over the bit-packed forwarding
//! planes.
//!
//! Each of the four schemes is compiled into an immutable
//! [`ForwardingPlane`] (one contiguous bit arena), epoch-checked against a
//! [`Maintainer`], and then shared read-only across worker threads that
//! drain a seeded open-loop workload:
//!
//! * **Zipf popularity** over (source, destination) pairs — pair ranks
//!   are a seeded shuffle of all ordered pairs, sampled through an
//!   explicit Zipf(θ) CDF (hand-rolled; the vendored `rand` has no Zipf);
//! * **mixed ingress** — each query flips a fair seeded coin between the
//!   labeled ingress ([`ForwardingPlane::route`]) and the name-independent
//!   ingress ([`ForwardingPlane::route_named`]; the labeled planes carry a
//!   packed name directory so all four serve both);
//! * **burst phases** — configurable stream segments that restrict
//!   sampling to the hottest ranks (a popularity burst), so the plane is
//!   exercised under both broad and concentrated access patterns.
//!
//! Every scheme serves the *same* query stream at each worker count in
//! [`WORKER_GRID`]. Workers fold their slice into order-independent
//! aggregates — query/ingress counts, total hops, total route cost, and a
//! commutative route digest (wrapping sum of per-query fingerprints) — so
//! a cell's semantic output is identical at any worker count; the
//! `deterministic` flag certifies it. Latency is measured per query and
//! recorded into [`Log2Histogram`]s (p50/p99/p999) plus the shared
//! [`MetricsRegistry`]; throughput is reported as routed queries/s and
//! forwarded messages/s (one message per hop).
//!
//! After the timed cells, an untimed **differential pass** replays the
//! full stream once per scheme and compares every plane route against the
//! reference scheme hop by hop (`Route` equality); divergences feed the
//! `serve.divergences` registry counter and the binary asserts the count
//! is zero.
//!
//! The `serve` binary prints the table and writes the JSON document
//! (`schema_version` 1) to `results/serve.json`. With `--stable` the
//! volatile fields (wall times, throughput, latency quantiles, the
//! recorded thread count, and the `multi_faster_all` verdict) are pinned
//! so two same-seed runs — at any `--threads` — produce byte-identical
//! files; the digests, counts, and divergence fields are byte-identical
//! even without the flag.

use std::sync::Arc;
use std::time::Instant;

use doubling_metric::{gen, Eps, MetricSpace, NodeId};
use labeled_routing::{NetLabeled, NetLabeledPlane, ScaleFreeLabeled, ScaleFreeLabeledPlane};
use name_independent::{
    ScaleFreeNameIndependent, ScaleFreeNiPlane, SimpleNameIndependent, SimpleNiPlane,
};
use netsim::json::Value;
use netsim::maintain::{Maintainer, MaintainerConfig};
use netsim::plane::ForwardingPlane;
use netsim::route::{Route, RouteError};
use netsim::scheme::{Label, LabeledScheme, Name, NameIndependentScheme};
use netsim::Naming;
use obs::{Log2Histogram, MetricsRegistry};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, RngCore, SeedableRng};

use crate::table::f2;

/// Version of the `results/serve.json` document layout.
pub const SCHEMA_VERSION: u64 = 1;

/// Default requested instance size (grids round to squares).
pub const DEFAULT_N: usize = 256;

/// Default queries served per (scheme, workers) cell; with four schemes ×
/// [`WORKER_GRID`] this puts the default run past 10⁶ served routes.
pub const DEFAULT_QUERIES: usize = 90_000;

/// 1/ε for every scheme.
pub const EPS_INV: u64 = 8;

/// Worker counts every scheme serves under. The grid is intentionally
/// *internal* (not `--threads`): the artifact must exercise 1/2/8-way
/// concurrency regardless of the machine, and `--threads` keeps meaning
/// what it means everywhere else (metric preprocessing workers).
pub const WORKER_GRID: [usize; 3] = [1, 2, 8];

/// Zipf exponent θ of the popularity distribution over pair ranks.
pub const ZIPF_THETA: f64 = 1.0;

/// One segment of the open-loop stream.
#[derive(Debug, Clone, Copy)]
pub struct Phase {
    /// Fraction of the stream this phase covers (the last phase absorbs
    /// rounding remainder).
    pub fraction: f64,
    /// `Some(k)`: a burst phase sampling only the `k` hottest pair ranks;
    /// `None`: a steady phase sampling the full Zipf tail.
    pub hot: Option<usize>,
}

/// The default schedule: steady → hot burst → steady → wider burst.
pub fn default_phases() -> Vec<Phase> {
    vec![
        Phase { fraction: 0.4, hot: None },
        Phase { fraction: 0.2, hot: Some(64) },
        Phase { fraction: 0.2, hot: None },
        Phase { fraction: 0.2, hot: Some(256) },
    ]
}

/// How one query enters the plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ingress {
    /// Labeled ingress: the caller knows the destination's routing label.
    Label(Label),
    /// Name-independent ingress: the caller knows only the flat name.
    Name(Name),
}

/// One query of a scheme's resolved stream.
#[derive(Debug, Clone, Copy)]
struct Query {
    src: NodeId,
    ingress: Ingress,
}

/// 53-bit uniform draw in `[0, 1)`, exactly as `rand`'s `gen_bool` does
/// internally.
fn unit_f64(rng: &mut StdRng) -> f64 {
    ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
}

/// The seeded workload: `(src, dst, named)` triples drawn Zipf-style over
/// shuffled pair ranks, phase by phase. Scheme-independent — each scheme
/// resolves `dst` to its own label or to the flat name.
fn generate_workload(
    n: usize,
    queries: usize,
    seed: u64,
    phases: &[Phase],
) -> Vec<(NodeId, NodeId, bool)> {
    assert!(n >= 2, "need at least two nodes to route between");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5E27E);
    // Popularity ranks: a seeded shuffle of all ordered pairs.
    let mut pairs: Vec<(NodeId, NodeId)> = (0..n as NodeId)
        .flat_map(|u| (0..n as NodeId).filter(move |&v| v != u).map(move |v| (u, v)))
        .collect();
    pairs.shuffle(&mut rng);
    // Zipf(θ) cumulative weights over ranks (unnormalized).
    let mut cdf = Vec::with_capacity(pairs.len());
    let mut acc = 0.0f64;
    for r in 0..pairs.len() {
        acc += 1.0 / ((r + 1) as f64).powf(ZIPF_THETA);
        cdf.push(acc);
    }

    let mut out = Vec::with_capacity(queries);
    for (pi, phase) in phases.iter().enumerate() {
        let remaining = queries - out.len();
        let count = if pi + 1 == phases.len() {
            remaining
        } else {
            ((queries as f64 * phase.fraction) as usize).min(remaining)
        };
        let limit = phase.hot.map_or(pairs.len(), |h| h.clamp(1, pairs.len()));
        let total = cdf[limit - 1];
        for _ in 0..count {
            let u = unit_f64(&mut rng) * total;
            let rank = cdf[..limit].partition_point(|&c| c <= u).min(limit - 1);
            let (src, dst) = pairs[rank];
            out.push((src, dst, rng.gen_bool(0.5)));
        }
    }
    out
}

/// FNV-1a over the hop sequence, mixed with the query's stream index so
/// the digest detects a swapped pair of routes, not just a changed
/// multiset of hop values.
fn fingerprint(idx: u64, r: &Route) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &x in &r.hops {
        h = (h ^ x as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ idx.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Order-independent aggregates of one worker's slice (and, summed, of a
/// whole cell).
#[derive(Debug, Clone, Default)]
struct Aggregates {
    queries: u64,
    labeled: u64,
    named: u64,
    hops: u64,
    cost: u64,
    failures: u64,
    /// Wrapping sum of per-query fingerprints — commutative, so identical
    /// at any worker count and split.
    digest: u64,
}

impl Aggregates {
    fn absorb(&mut self, other: &Aggregates) {
        self.queries += other.queries;
        self.labeled += other.labeled;
        self.named += other.named;
        self.hops += other.hops;
        self.cost += other.cost;
        self.failures += other.failures;
        self.digest = self.digest.wrapping_add(other.digest);
    }
}

/// Serves `queries` on `plane` with `workers` threads; returns the summed
/// aggregates, the merged latency histogram, and the wall time.
fn serve_cell(
    m: &MetricSpace,
    plane: &dyn ForwardingPlane,
    queries: &[Query],
    workers: usize,
    registry: &MetricsRegistry,
    scheme: &'static str,
) -> (Aggregates, Log2Histogram, u64) {
    let chunk = queries.len().div_ceil(workers.max(1));
    let lat = registry.histogram(&format!("serve.latency_ns.{scheme}"));
    let t0 = Instant::now();
    let per_worker: Vec<(Aggregates, Log2Histogram)> = std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .chunks(chunk.max(1))
            .enumerate()
            .map(|(w, slice)| {
                let lat = lat.clone();
                let base = (w * chunk.max(1)) as u64;
                scope.spawn(move || {
                    let mut agg = Aggregates::default();
                    let mut hist = Log2Histogram::new();
                    for (off, q) in slice.iter().enumerate() {
                        let t = Instant::now();
                        let res = match q.ingress {
                            Ingress::Label(l) => plane.route(m, q.src, l),
                            Ingress::Name(name) => plane.route_named(m, q.src, name),
                        };
                        let ns = t.elapsed().as_nanos() as u64;
                        hist.record(ns);
                        lat.record(ns);
                        agg.queries += 1;
                        match q.ingress {
                            Ingress::Label(_) => agg.labeled += 1,
                            Ingress::Name(_) => agg.named += 1,
                        }
                        match res {
                            Ok(r) => {
                                agg.hops += (r.hops.len() - 1) as u64;
                                agg.cost += r.cost;
                                agg.digest =
                                    agg.digest.wrapping_add(fingerprint(base + off as u64, &r));
                            }
                            Err(_) => agg.failures += 1,
                        }
                    }
                    (agg, hist)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("serve worker panicked")).collect()
    });
    let wall_us = t0.elapsed().as_micros() as u64;
    let mut agg = Aggregates::default();
    let mut hist = Log2Histogram::new();
    for (a, h) in &per_worker {
        agg.absorb(a);
        hist.merge(h);
    }
    registry.counter(&format!("serve.queries.{scheme}")).add(agg.queries);
    (agg, hist, wall_us)
}

/// One scheme's serving setup: its plane, its resolved query stream, and
/// a reference closure producing the oracle route for any query.
struct ServeScheme<'a> {
    name: &'static str,
    plane: &'a dyn ForwardingPlane,
    queries: Vec<Query>,
    #[allow(clippy::type_complexity)]
    reference: Box<dyn Fn(NodeId, Ingress) -> Result<Route, RouteError> + 'a>,
}

/// One (scheme, workers) cell of the report.
struct ServeCell {
    scheme: &'static str,
    workers: usize,
    agg: Aggregates,
    wall_us: u64,
    qps: f64,
    msg_per_s: f64,
    p50_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
    plane_bits: u64,
    deterministic: bool,
}

impl ServeCell {
    fn to_json(&self, stable: bool) -> Value {
        let pin = |v: u64| if stable { 0 } else { v };
        let pinf = |v: f64| if stable { 0.0 } else { v };
        Value::Object(vec![
            ("scheme".into(), self.scheme.into()),
            ("workers".into(), self.workers.into()),
            ("queries".into(), self.agg.queries.into()),
            ("labeled_queries".into(), self.agg.labeled.into()),
            ("named_queries".into(), self.agg.named.into()),
            ("hops_total".into(), self.agg.hops.into()),
            ("cost_total".into(), self.agg.cost.into()),
            ("failures".into(), self.agg.failures.into()),
            ("digest".into(), format!("{:016x}", self.agg.digest).into()),
            ("plane_bits".into(), self.plane_bits.into()),
            ("wall_us".into(), pin(self.wall_us).into()),
            ("qps".into(), pinf(self.qps).into()),
            ("msg_per_s".into(), pinf(self.msg_per_s).into()),
            ("p50_ns".into(), pin(self.p50_ns).into()),
            ("p99_ns".into(), pin(self.p99_ns).into()),
            ("p999_ns".into(), pin(self.p999_ns).into()),
            ("deterministic".into(), self.deterministic.into()),
        ])
    }

    fn row(&self, stable: bool) -> Vec<String> {
        let pin = |v: u64| if stable { 0 } else { v };
        vec![
            self.scheme.to_string(),
            self.workers.to_string(),
            self.agg.queries.to_string(),
            f2(pin(self.wall_us) as f64 / 1e3),
            f2(if stable { 0.0 } else { self.qps } / 1e6),
            f2(if stable { 0.0 } else { self.msg_per_s } / 1e6),
            pin(self.p50_ns).to_string(),
            pin(self.p99_ns).to_string(),
            pin(self.p999_ns).to_string(),
            format!("{:016x}", self.agg.digest),
            if self.deterministic { "yes".into() } else { "NO".into() },
        ]
    }
}

/// Everything one serving run produces: console table plus the JSON
/// document for `results/serve.json`.
pub struct ServeReport {
    /// Table headers.
    pub headers: Vec<&'static str>,
    /// One row per (scheme, workers) cell.
    pub rows: Vec<Vec<String>>,
    /// The full document (`schema_version` 1).
    pub doc: Value,
    /// Route divergences between planes and reference schemes, summed
    /// over the differential pass (the run's hard invariant: zero).
    pub divergences: u64,
    /// Route errors across all timed cells (must be zero).
    pub failures: u64,
    /// Whether every scheme's aggregates were identical at every worker
    /// count.
    pub all_deterministic: bool,
    /// Whether, for every scheme, the widest cell measured strictly more
    /// queries/s than the 1-worker cell (meaningless under `--stable`
    /// test runs with tiny streams, and vacuous on single-core hosts;
    /// the golden test asserts it for multi-core artifacts).
    pub multi_faster_all: bool,
    /// Total queries served across all timed cells.
    pub total_queries: u64,
}

/// Runs the full experiment: builds the metric and all four schemes,
/// compiles + epoch-checks their planes, serves the workload at every
/// worker count, and differentially verifies every query against the
/// reference schemes. `stable` pins volatile fields for byte-identity.
pub fn run_serve(
    requested_n: usize,
    queries: usize,
    seed: u64,
    threads: usize,
    stable: bool,
    phases: &[Phase],
    registry: &MetricsRegistry,
) -> ServeReport {
    let headers = vec![
        "scheme",
        "workers",
        "queries",
        "wall(ms)",
        "Mq/s",
        "Mmsg/s",
        "p50(ns)",
        "p99(ns)",
        "p999(ns)",
        "digest",
        "identical",
    ];
    let eps = Eps::one_over(EPS_INV);
    let graph = Arc::new(gen::Family::Grid.build(requested_n, seed));
    let m = MetricSpace::from_shared(Arc::clone(&graph), threads);
    let n = m.n();
    let naming = Naming::random(n, seed ^ 0xA5);
    let workload = generate_workload(n, queries, seed, phases);

    // Build the schemes, wrap each in a maintainer, compile the planes at
    // the maintainer epoch, and gate serving on the epoch check — the
    // serving path must refuse stale planes (see `Maintainer::check_plane`).
    let mt_nl =
        Maintainer::new(n, NetLabeled::new(&m, eps).expect("eps ok"), MaintainerConfig::default());
    let nl_plane = NetLabeledPlane::compile(&m, mt_nl.scheme(), Some(&naming), mt_nl.epoch());
    mt_nl.check_plane(&nl_plane).expect("fresh plane serves");

    let mt_sfl = Maintainer::new(
        n,
        ScaleFreeLabeled::new(&m, eps).expect("eps ok"),
        MaintainerConfig::default(),
    );
    let sfl_plane =
        ScaleFreeLabeledPlane::compile(&m, mt_sfl.scheme(), Some(&naming), mt_sfl.epoch());
    mt_sfl.check_plane(&sfl_plane).expect("fresh plane serves");

    let mt_sni = Maintainer::new(
        n,
        SimpleNameIndependent::new(&m, eps, naming.clone()).expect("eps ok"),
        MaintainerConfig::default(),
    );
    let sni_plane = SimpleNiPlane::compile(&m, mt_sni.scheme(), mt_sni.epoch());
    mt_sni.check_plane(&sni_plane).expect("fresh plane serves");

    let mt_sfni = Maintainer::new(
        n,
        ScaleFreeNameIndependent::new(&m, eps, naming.clone()).expect("eps ok"),
        MaintainerConfig::default(),
    );
    let sfni_plane = ScaleFreeNiPlane::compile(&m, mt_sfni.scheme(), mt_sfni.epoch());
    mt_sfni.check_plane(&sfni_plane).expect("fresh plane serves");

    // Resolve the scheme-independent workload into per-scheme streams and
    // reference closures (the oracle the differential pass replays).
    let resolve = |label_of: &dyn Fn(NodeId) -> Label| -> Vec<Query> {
        workload
            .iter()
            .map(|&(src, dst, named)| Query {
                src,
                ingress: if named {
                    Ingress::Name(naming.name_of(dst))
                } else {
                    Ingress::Label(label_of(dst))
                },
            })
            .collect()
    };
    let (nl, sfl, sni, sfni) = (mt_nl.scheme(), mt_sfl.scheme(), mt_sni.scheme(), mt_sfni.scheme());
    let schemes: Vec<ServeScheme> = vec![
        ServeScheme {
            name: "net-labeled",
            plane: &nl_plane,
            queries: resolve(&|v| nl.label_of(v)),
            reference: Box::new(|src, ingress| match ingress {
                Ingress::Label(l) => nl.route(&m, src, l),
                Ingress::Name(name) => nl.route(&m, src, nl.label_of(naming.node_of(name))),
            }),
        },
        ServeScheme {
            name: "scale-free-labeled",
            plane: &sfl_plane,
            queries: resolve(&|v| sfl.label_of(v)),
            reference: Box::new(|src, ingress| match ingress {
                Ingress::Label(l) => sfl.route(&m, src, l),
                Ingress::Name(name) => sfl.route(&m, src, sfl.label_of(naming.node_of(name))),
            }),
        },
        ServeScheme {
            name: "simple-NI",
            plane: &sni_plane,
            queries: resolve(&|v| sni.underlying().label_of(v)),
            reference: Box::new(|src, ingress| match ingress {
                Ingress::Label(l) => sni.underlying().route(&m, src, l),
                Ingress::Name(name) => sni.route(&m, src, name),
            }),
        },
        ServeScheme {
            name: "scale-free-NI",
            plane: &sfni_plane,
            queries: resolve(&|v| sfni.underlying().label_of(v)),
            reference: Box::new(|src, ingress| match ingress {
                Ingress::Label(l) => sfni.underlying().route(&m, src, l),
                Ingress::Name(name) => sfni.route(&m, src, name),
            }),
        },
    ];

    let mut rows = Vec::new();
    let mut cells_json = Vec::new();
    let mut verify_json = Vec::new();
    let mut all_deterministic = true;
    let mut multi_faster_all = true;
    let mut divergences = 0u64;
    let mut failures = 0u64;
    let mut total_queries = 0u64;

    for s in &schemes {
        let mut baseline_digest = None;
        let mut single_qps = 0.0f64;
        for &workers in &WORKER_GRID {
            let (agg, hist, wall_us) =
                serve_cell(&m, s.plane, &s.queries, workers, registry, s.name);
            let wall_s = (wall_us.max(1) as f64) / 1e6;
            let qps = agg.queries as f64 / wall_s;
            let deterministic =
                *baseline_digest.get_or_insert((agg.digest, agg.hops)) == (agg.digest, agg.hops);
            if workers == 1 {
                single_qps = qps;
            } else if workers == *WORKER_GRID.iter().max().unwrap() {
                multi_faster_all &= qps > single_qps;
            }
            all_deterministic &= deterministic;
            failures += agg.failures;
            total_queries += agg.queries;
            let cell = ServeCell {
                scheme: s.name,
                workers,
                msg_per_s: agg.hops as f64 / wall_s,
                qps,
                wall_us,
                p50_ns: hist.p50().unwrap_or(0),
                p99_ns: hist.p99().unwrap_or(0),
                p999_ns: hist.p999().unwrap_or(0),
                plane_bits: s.plane.packed_bits(),
                deterministic,
                agg,
            };
            rows.push(cell.row(stable));
            cells_json.push(cell.to_json(stable));
        }

        // Untimed differential pass: every query, plane vs reference.
        let mut scheme_divergences = 0u64;
        for (idx, q) in s.queries.iter().enumerate() {
            let got = match q.ingress {
                Ingress::Label(l) => s.plane.route(&m, q.src, l),
                Ingress::Name(name) => s.plane.route_named(&m, q.src, name),
            };
            let want = (s.reference)(q.src, q.ingress);
            if got != want {
                scheme_divergences += 1;
                registry.counter("serve.divergences").inc();
                if scheme_divergences == 1 {
                    eprintln!("divergence: scheme={} query#{idx} {:?}", s.name, q);
                }
            }
        }
        divergences += scheme_divergences;
        verify_json.push(Value::Object(vec![
            ("scheme".into(), s.name.into()),
            ("queries".into(), s.queries.len().into()),
            ("divergences".into(), scheme_divergences.into()),
        ]));
    }

    let doc = Value::Object(vec![
        ("schema_version".into(), SCHEMA_VERSION.into()),
        ("experiment".into(), "serve".into()),
        ("family".into(), "grid".into()),
        ("n".into(), n.into()),
        ("requested_n".into(), requested_n.into()),
        ("seed".into(), seed.into()),
        ("eps".into(), format!("1/{EPS_INV}").into()),
        ("queries_per_cell".into(), queries.into()),
        ("zipf_theta".into(), ZIPF_THETA.into()),
        (
            "phases".into(),
            Value::Array(
                phases
                    .iter()
                    .map(|p| {
                        Value::Object(vec![
                            ("fraction".into(), p.fraction.into()),
                            ("hot".into(), p.hot.map_or(Value::Null, Value::from)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("worker_grid".into(), Value::Array(WORKER_GRID.iter().map(|&w| w.into()).collect())),
        ("threads".into(), if stable { 0usize } else { threads }.into()),
        // Cores available to the generating host: the multi-worker speedup
        // criterion is only meaningful (and only asserted by the golden
        // test) when the artifact was produced on a multi-core machine.
        (
            "host_parallelism".into(),
            if stable {
                0usize
            } else {
                std::thread::available_parallelism().map_or(1, |p| p.get())
            }
            .into(),
        ),
        ("stable".into(), stable.into()),
        ("total_queries".into(), total_queries.into()),
        ("divergences".into(), divergences.into()),
        ("failures".into(), failures.into()),
        ("all_deterministic".into(), all_deterministic.into()),
        // Volatile (a timing verdict): pinned to null under --stable.
        ("multi_faster_all".into(), if stable { Value::Null } else { multi_faster_all.into() }),
        ("cells".into(), Value::Array(cells_json)),
        ("verify".into(), Value::Array(verify_json)),
    ]);
    ServeReport {
        headers,
        rows,
        doc,
        divergences,
        failures,
        all_deterministic,
        multi_faster_all,
        total_queries,
    }
}

/// Entry point for `cargo run --release --bin serve`: runs the engine,
/// prints the table, and writes `results/serve.json`.
///
/// Usage: `serve [n] [--pairs QUERIES_PER_CELL] [--seed N] [--threads N]
/// [--stable] [--json]`. `--pairs` reuses the shared evaluation-size flag
/// as queries per (scheme, workers) cell; `--threads` controls metric
/// preprocessing only (the serving worker grid is fixed — see
/// [`WORKER_GRID`]); `--stable` pins wall times, throughput, latency
/// quantiles, the thread count, and the timing verdict so same-seed runs
/// are byte-identical at any `--threads`.
pub fn serve_main() {
    let cli = crate::cli::Cli::parse_env(42);
    let requested_n: usize = cli.pos(0, DEFAULT_N);
    let queries = cli.pairs.unwrap_or(DEFAULT_QUERIES);
    let registry = MetricsRegistry::new();
    let report = run_serve(
        requested_n,
        queries,
        cli.seed,
        cli.threads,
        cli.stable,
        &default_phases(),
        &registry,
    );
    crate::table::emit(
        &format!(
            "T1: forwarding-plane serving (grid n={requested_n}, eps=1/{EPS_INV}, {queries} \
             queries/cell, zipf {ZIPF_THETA}, seed {}{})",
            cli.seed,
            if cli.stable { ", stable" } else { "" }
        ),
        &report.headers,
        &report.rows,
    );
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/serve.json", report.doc.to_string_pretty() + "\n")
        .expect("write results/serve.json");
    if !cli.json {
        println!("\nwrote results/serve.json");
        println!("reading: every scheme serves the same seeded Zipf stream at 1/2/8");
        println!("workers; `digest` is the commutative route digest (identical across");
        println!("worker counts), and the differential pass compares every plane route");
        println!("hop-for-hop against the reference scheme.");
        if !report.multi_faster_all && !cli.stable {
            let host = std::thread::available_parallelism().map_or(1, |p| p.get());
            println!("note: multi-worker throughput did not beat single-worker on this");
            println!("machine ({host} available core(s)); the artifact records");
            println!("host_parallelism so downstream checks only assert the speedup");
            println!("for artifacts generated on multi-core hosts.");
        }
    }
    assert_eq!(report.failures, 0, "route errors while serving — see results/serve.json");
    assert_eq!(
        report.divergences, 0,
        "plane routes diverged from the reference schemes — see results/serve.json"
    );
    assert!(report.all_deterministic, "aggregates varied across worker counts");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_seeded_and_phase_shaped() {
        let a = generate_workload(36, 1000, 7, &default_phases());
        let b = generate_workload(36, 1000, 7, &default_phases());
        assert_eq!(a, b, "same seed must reproduce the stream");
        assert_ne!(a, generate_workload(36, 1000, 8, &default_phases()));
        assert_eq!(a.len(), 1000);
        assert!(a.iter().all(|&(u, v, _)| u != v));
        // Mixed ingress: both coin faces appear.
        assert!(a.iter().any(|&(_, _, named)| named));
        assert!(a.iter().any(|&(_, _, named)| !named));
        // A hot-64 burst phase concentrates on few distinct pairs.
        let burst: std::collections::BTreeSet<(u32, u32)> =
            a[400..600].iter().map(|&(u, v, _)| (u, v)).collect();
        assert!(burst.len() <= 64, "burst phase drew {} distinct pairs", burst.len());
        // Zipf: the hottest pair dominates a uniform share.
        let mut by_pair = std::collections::BTreeMap::new();
        for &(u, v, _) in &a {
            *by_pair.entry((u, v)).or_insert(0usize) += 1;
        }
        let max = by_pair.values().copied().max().unwrap();
        assert!(max > 1000 / (36 * 35), "no popularity skew: max {max}");
    }

    #[test]
    fn serve_report_is_deterministic_and_divergence_free() {
        let registry = MetricsRegistry::new();
        let report = run_serve(36, 400, 3, 1, false, &default_phases(), &registry);
        assert_eq!(report.divergences, 0);
        assert_eq!(report.failures, 0);
        assert!(report.all_deterministic);
        assert_eq!(report.total_queries, 4 * WORKER_GRID.len() as u64 * 400);
        assert_eq!(report.rows.len(), 4 * WORKER_GRID.len());
        assert_eq!(report.doc.get("schema_version").and_then(Value::as_u64), Some(SCHEMA_VERSION));
        let cells = report.doc.get("cells").and_then(Value::as_array).unwrap();
        assert_eq!(cells.len(), 4 * WORKER_GRID.len());
        for c in cells {
            assert_eq!(c.get("deterministic").and_then(Value::as_bool), Some(true));
            assert_eq!(c.get("failures").and_then(Value::as_u64), Some(0));
            assert!(c.get("plane_bits").and_then(Value::as_u64).unwrap() > 0);
        }
        let verify = report.doc.get("verify").and_then(Value::as_array).unwrap();
        assert_eq!(verify.len(), 4);
        for v in verify {
            assert_eq!(v.get("divergences").and_then(Value::as_u64), Some(0));
        }
        // Registry got the counters and latency histograms.
        let snap = registry.snapshot();
        assert_eq!(snap.counter("serve.divergences"), None);
        assert_eq!(snap.counter("serve.queries.net-labeled"), Some(3 * 400));
        assert!(
            snap.histogram("serve.latency_ns.net-labeled").map(Log2Histogram::count).unwrap_or(0)
                == 3 * 400
        );
        // Round-trips through the parser.
        assert_eq!(Value::parse(&report.doc.to_string_pretty()).unwrap(), report.doc);
    }

    #[test]
    fn stable_runs_are_byte_identical_at_any_thread_count() {
        let reg = MetricsRegistry::disabled();
        let a = run_serve(36, 200, 7, 1, true, &default_phases(), &reg).doc.to_string_pretty();
        let b = run_serve(36, 200, 7, 4, true, &default_phases(), &reg).doc.to_string_pretty();
        assert_eq!(a, b);
        assert!(a.contains("\"threads\": 0"), "thread count not pinned:\n{a}");
        assert!(a.contains("\"wall_us\": 0"), "volatile field not pinned:\n{a}");
        assert!(a.contains("\"multi_faster_all\": null"), "timing verdict not pinned:\n{a}");
    }

    #[test]
    fn digests_differ_between_seeds_but_not_runs() {
        let reg = MetricsRegistry::disabled();
        let digest_of = |seed: u64| {
            let doc = run_serve(36, 150, seed, 1, true, &default_phases(), &reg).doc;
            doc.get("cells").and_then(Value::as_array).unwrap()[0]
                .get("digest")
                .and_then(Value::as_str)
                .unwrap()
                .to_string()
        };
        assert_eq!(digest_of(5), digest_of(5));
        assert_ne!(digest_of(5), digest_of(6));
    }
}
