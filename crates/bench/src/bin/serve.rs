//! Experiment T1: routing-as-a-service — all four schemes compiled into
//! bit-packed forwarding planes, shared across 1/2/8 worker threads
//! draining a seeded Zipf workload with burst phases and mixed
//! labeled/name-independent ingress, differentially verified hop-for-hop
//! against the reference schemes; writes `results/serve.json`.
//!
//! Usage: `cargo run --release -p bench --bin serve [n]
//! [--pairs QUERIES_PER_CELL] [--seed N] [--threads N] [--stable]
//! [--json]`

fn main() {
    bench::serve::serve_main();
}
