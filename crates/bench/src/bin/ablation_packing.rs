//! Ablation A2: ball-packing reuse in the scale-free name-independent
//! scheme — link fractions and per-node link counts (Claims 3.6–3.9).
//!
//! Usage: `cargo run -p bench --bin ablation_packing [--seed N] [--json]`

use bench::cli::Cli;
use bench::experiments::run_ablation_packing;
use bench::table::emit;
use bench::MetricCache;

fn main() {
    let cli = Cli::parse_env(42);
    let cache = MetricCache::new(cli.threads);
    let (headers, rows) = run_ablation_packing(&cache, cli.seed);
    emit("A2: packing reuse (H(u,i) links vs private trees)", &headers, &rows);
}
