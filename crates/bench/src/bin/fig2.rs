//! Regenerates Figure 2: the anatomy of a scale-free labeled route —
//! greedy ring walk vs the ball-packing phases (to-center, tree-search,
//! to-target).
//!
//! Usage: `cargo run -p bench --bin fig2 [1/eps] [--seed N] [--json]`

use bench::cli::Cli;
use bench::experiments::run_fig2;
use bench::table::emit;
use bench::MetricCache;
use doubling_metric::Eps;

fn main() {
    let cli = Cli::parse_env(42);
    let inv: u64 = cli.pos(0, 8);
    let cache = MetricCache::new(cli.threads);
    let (headers, rows) = run_fig2(&cache, Eps::one_over(inv), cli.seed);
    emit(&format!("Figure 2: labeled route anatomy (eps=1/{inv})"), &headers, &rows);
    if !cli.json {
        println!("\nexpected shape: packing phases engage only in the huge-Δ regime");
        println!("(exp-path); stretch stays 1+O(eps) either way.");
    }
}
