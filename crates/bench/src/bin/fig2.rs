//! Regenerates Figure 2: the anatomy of a scale-free labeled route —
//! greedy ring walk vs the ball-packing phases (to-center, tree-search,
//! to-target).
//!
//! Usage: `cargo run -p bench --bin fig2 [1/eps]`

use bench::experiments::run_fig2;
use bench::table::emit;
use doubling_metric::Eps;

fn main() {
    let inv: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let (headers, rows) = run_fig2(Eps::one_over(inv), 42);
    emit(&format!("Figure 2: labeled route anatomy (eps=1/{inv})"), &headers, &rows);
    if !std::env::args().any(|a| a == "--json") {
        println!("\nexpected shape: packing phases engage only in the huge-Δ regime");
    }
    if !std::env::args().any(|a| a == "--json") {
        println!("(exp-path); stretch stays 1+O(eps) either way.");
    }
}
