//! Experiment Q1 (the paper's concluding open question): the stretch
//! *distribution* of the name-independent schemes — how much headroom a
//! relaxed per-pair guarantee would have.
//!
//! Usage: `cargo run -p bench --bin relaxed [n] [--seed N] [--json]`

use bench::cli::Cli;
use bench::experiments::run_relaxed;
use bench::table::emit;
use bench::MetricCache;

fn main() {
    let cli = Cli::parse_env(42);
    let n: usize = cli.pos(0, 144);
    let cache = MetricCache::new(cli.threads);
    let (headers, rows) = run_relaxed(&cache, n, cli.seed);
    emit(&format!("Q1: stretch quantiles (n≈{n})"), &headers, &rows);
    if !cli.json {
        println!("\nreading: the worst case sits far above p99 — a guarantee relaxed on");
        println!("1% of pairs would already look much better than 9+O(eps), the");
        println!("direction the paper's conclusion poses as an open question.");
    }
}
