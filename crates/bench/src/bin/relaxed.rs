//! Experiment R1 (the paper's concluding open question): the stretch
//! *distribution* of the name-independent schemes — how much headroom a
//! relaxed per-pair guarantee would have.
//!
//! Usage: `cargo run -p bench --bin relaxed [n]`

use bench::experiments::run_relaxed;
use bench::table::emit;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(144);
    let (headers, rows) = run_relaxed(n, 42);
    emit(&format!("R1: stretch quantiles (n≈{n})"), &headers, &rows);
    if !std::env::args().any(|a| a == "--json") {
        println!("\nreading: the worst case sits far above p99 — a guarantee relaxed on");
    }
    if !std::env::args().any(|a| a == "--json") {
        println!("1% of pairs would already look much better than 9+O(eps), the");
    }
    if !std::env::args().any(|a| a == "--json") {
        println!("direction the paper's conclusion poses as an open question.");
    }
}
