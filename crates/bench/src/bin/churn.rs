//! Churn experiment: fault injection and rebuild cost for all four
//! schemes; prints the grid and writes `results/churn.json`.
//!
//! Usage: `cargo run --release --bin churn [n] [1/eps] [pairs]`

fn main() {
    bench::churn::churn_main();
}
