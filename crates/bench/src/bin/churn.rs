//! Churn experiment: fault injection and rebuild cost for all four
//! schemes; prints the grid and writes `results/churn.json` (plus
//! `results/churn_trace.jsonl` under `--trace`).
//!
//! Usage: `cargo run --release --bin churn [n] [1/eps] [pairs] [--seed N] [--trace] [--json]`

fn main() {
    bench::churn::churn_main();
}
