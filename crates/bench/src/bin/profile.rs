//! Experiment P1: per-phase preprocessing breakdown (wall-clock and
//! allocation) plus route-metric histograms for all four schemes; prints
//! the two tables and writes `results/profile.json`.
//!
//! Usage: `cargo run --release -p bench --bin profile [n] [1/eps] [pairs] [--seed N] [--json]`

// Installing the counting allocator here (and only in binaries) is what
// makes the per-phase `alloc_bytes` columns nonzero.
#[global_allocator]
static GLOBAL: obs::alloc::CountingAlloc = obs::alloc::CountingAlloc::new();

fn main() {
    bench::profile::profile_main();
}
