//! Conformance experiment (V1): certifies every theorem bound against
//! measurements — exhaustive all-pairs stretch with a worst-pair witness,
//! double-entry per-node table audits, header/label audits, and the
//! Theorem 1.3 search game; prints the bound-vs-measured grid and writes
//! `results/conformance.json` (plus `results/conformance_trace.jsonl`
//! under `--trace`). Exits non-zero if any certificate fails.
//!
//! Usage: `cargo run --release --bin conformance [1/eps-list] [--n LIST]
//! [--seeds K] [--seed N] [--trace] [--json] [--threads N]`

fn main() {
    bench::conformance::conformance_main();
}
