//! Experiment E2: max table bits vs log Δ — the scale-free crossover
//! between Theorem 1.4 (log Δ factor) and Theorem 1.1 (log³ n, flat in Δ).
//!
//! Usage: `cargo run -p bench --bin sweep_scale [1/eps] [--seed N] [--json]`

use bench::cli::Cli;
use bench::experiments::run_sweep_scale;
use bench::table::emit;
use bench::MetricCache;
use doubling_metric::Eps;

fn main() {
    let cli = Cli::parse_env(42);
    let inv: u64 = cli.pos(0, 4);
    let cache = MetricCache::new(cli.threads);
    let (headers, rows) = run_sweep_scale(&cache, Eps::one_over(inv), cli.seed);
    emit(&format!("E2: storage vs log Δ (eps=1/{inv})"), &headers, &rows);
    if !cli.json {
        println!("\nexpected shape: on unit paths the schemes are comparable; on exp-paths");
        println!("the simple scheme's tables grow with log Δ = Θ(n) while the scale-free");
        println!("scheme stays polylog — the ratio column grows.");
    }
}
