//! Regenerates Figure 1: the anatomy of a name-independent route —
//! zooming-sequence cost, per-round search cost, and the final leg,
//! bucketed by the round at which the destination's label was found.
//!
//! Usage: `cargo run -p bench --bin fig1 [n] [1/eps] [--seed N] [--json]`

use bench::cli::Cli;
use bench::experiments::run_fig1;
use bench::table::emit;
use bench::MetricCache;
use doubling_metric::Eps;

fn main() {
    let cli = Cli::parse_env(42);
    let n: usize = cli.pos(0, 196);
    let inv: u64 = cli.pos(1, 8);
    let cache = MetricCache::new(cli.threads);
    let (headers, rows) = run_fig1(&cache, n, Eps::one_over(inv), cli.seed);
    emit(
        &format!("Figure 1: name-independent route anatomy (n≈{n}, eps=1/{inv})"),
        &headers,
        &rows,
    );
    if !cli.json {
        println!("\nexpected shape: found-round grows with d(u,v); search dominates cost;");
        println!("the stretch stays within 9+O(eps) at every round.");
    }
}
