//! Regenerates Figure 1: the anatomy of a name-independent route —
//! zooming-sequence cost, per-round search cost, and the final leg,
//! bucketed by the round at which the destination's label was found.
//!
//! Usage: `cargo run -p bench --bin fig1 [n] [1/eps]`

use bench::experiments::run_fig1;
use bench::table::emit;
use doubling_metric::Eps;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(196);
    let inv: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let (headers, rows) = run_fig1(n, Eps::one_over(inv), 42);
    emit(
        &format!("Figure 1: name-independent route anatomy (n≈{n}, eps=1/{inv})"),
        &headers,
        &rows,
    );
    if !std::env::args().any(|a| a == "--json") {
        println!("\nexpected shape: found-round grows with d(u,v); search dominates cost;");
    }
    if !std::env::args().any(|a| a == "--json") {
        println!("the stretch stays within 9+O(eps) at every round.");
    }
}
