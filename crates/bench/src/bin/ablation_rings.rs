//! Ablation A1: what the R(u) ring pruning saves and costs — all-level
//! rings (NetLabeled) vs R(u)-only rings plus packing machinery
//! (ScaleFreeLabeled).
//!
//! Usage: `cargo run -p bench --bin ablation_rings [--seed N] [--json]`

use bench::cli::Cli;
use bench::experiments::run_ablation_rings;
use bench::table::emit;
use bench::MetricCache;

fn main() {
    let cli = Cli::parse_env(42);
    let cache = MetricCache::new(cli.threads);
    let (headers, rows) = run_ablation_rings(&cache, cli.seed);
    emit("A1: ring-level pruning (all levels vs R(u))", &headers, &rows);
}
