//! Scale smoke test: builds and evaluates the scale-free NI scheme on a
//! larger instance to confirm preprocessing and routing remain tractable.
//!
//! Usage: `cargo run --release -p bench --bin scale_check [n] [--seed N] [--json]`

use std::time::Instant;

use bench::cli::Cli;
use std::sync::Arc;

use doubling_metric::{gen, Eps, MetricSpace};
use name_independent::ScaleFreeNameIndependent;
use netsim::stats::{eval_name_independent_par, sample_pairs};
use netsim::{NameIndependentScheme, Naming};

fn main() {
    let cli = Cli::parse_env(3);
    let n: usize = cli.pos(0, 400);
    let t0 = Instant::now();
    let g = gen::Family::Grid.build(n, cli.seed);
    let m = MetricSpace::from_shared(Arc::new(g), cli.threads);
    if !cli.json {
        println!("metric built: n={} in {:.1?}", m.n(), t0.elapsed());
    }

    let t1 = Instant::now();
    let naming = Naming::random(m.n(), cli.seed ^ 0xA5);
    let s = ScaleFreeNameIndependent::new(&m, Eps::one_over(8), naming.clone()).unwrap();
    if !cli.json {
        println!("scheme preprocessed in {:.1?}", t1.elapsed());
    }

    let t2 = Instant::now();
    let pairs = sample_pairs(m.n(), 500, cli.seed ^ 0x5A);
    let res = eval_name_independent_par(&s, &m, &naming, &pairs, 8);
    println!(
        "500 routes in {:.1?}: max stretch {:.2}, avg {:.2}, failures {}, max table {} b",
        t2.elapsed(),
        res.max_stretch,
        res.avg_stretch,
        res.failures,
        res.max_table_bits
    );
    let _ = s.table_bits(0);
}
