//! Experiment S1: end-to-end scaling of all four schemes to n = 10,000 —
//! per-phase preprocessing wall time, peak allocation, per-node storage,
//! and sampled stretch (mean ± 95% CI, p99, max) against the on-demand
//! Dijkstra oracle with a dense-matrix determinism cross-check; writes
//! `results/scale.json`.
//!
//! Usage: `cargo run --release -p bench --bin scale [max_n] [--n LIST]
//! [--pairs K] [--seed N] [--threads N] [--stable] [--json]`

// The counting allocator makes the peak(MiB) column nonzero.
#[global_allocator]
static GLOBAL: obs::alloc::CountingAlloc = obs::alloc::CountingAlloc::new();

fn main() {
    bench::scale::scale_main();
}
