//! The CI perf-regression gate: diffs `results/*.json` against the
//! committed `baselines/` copies and exits non-zero on regression; writes
//! `results/report.json`.
//!
//! Usage: `cargo run --release -p bench --bin report [results_dir]
//! [baselines_dir]`

fn main() {
    bench::report::report_main();
}
