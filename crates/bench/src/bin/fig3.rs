//! Regenerates Figure 3 / Theorem 1.3: the lower-bound tree's measured
//! properties (doubling dimension vs Lemma 5.8, Δ vs the envelope) and the
//! search game (oblivious vs optimized orders vs the 9−ε line), plus the
//! advice curve.
//!
//! Usage: `cargo run -p bench --bin fig3 [--seed N] [--json]`

use bench::cli::Cli;
use bench::experiments::{run_fig3, run_fig3_advice};
use bench::table::emit;
use bench::MetricCache;

fn main() {
    let cli = Cli::parse_env(42);
    let cache = MetricCache::new(cli.threads);
    let (headers, rows) = run_fig3(&cache, cli.seed);
    emit("Figure 3 / Theorem 1.3: lower-bound construction", &headers, &rows);
    let (h2, r2) = run_fig3_advice(4);
    emit("Theorem 1.3: stretch vs advice bits (eps=4)", &h2, &r2);
    if !cli.json {
        println!("\nexpected shape: optimized >= 9−eps always; advice curve decays toward 1.");
    }
}
