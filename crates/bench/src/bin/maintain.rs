//! M1 — incremental maintenance: seeded join/leave churn repaired in
//! place (with per-batch certification) vs the full-rebuild baseline;
//! prints the grid and writes `results/maintain.json` (plus
//! `results/maintain_trace.jsonl` under `--trace`).
//!
//! Usage: `cargo run --release --bin maintain [1/eps] [audit_pairs] [--n LIST] [--seed N] [--stable] [--trace] [--json]`

fn main() {
    bench::maintain::maintain_main();
}
