//! Recovery experiment (R1): delivered fraction and stretch of survivors
//! under node faults, per recovery policy, plus the adversarial chaos
//! campaign; prints the grid and writes `results/recovery.json` (plus
//! `results/recovery_trace.jsonl` under `--trace`).
//!
//! Usage: `cargo run --release --bin recovery [n] [1/eps] [pairs]
//! [fraction%] [--seed N] [--trace] [--json]`

fn main() {
    bench::recovery::recovery_main();
}
