//! Experiment E3: per-node storage growth on grids — compact polylog vs
//! full-table n·log n bits, and the projected crossover.
//!
//! Usage: `cargo run --release -p bench --bin storage_growth [--seed N] [--json]`

use bench::cli::Cli;
use bench::experiments::run_storage_growth;
use bench::table::emit;
use bench::MetricCache;

fn main() {
    let cli = Cli::parse_env(42);
    let cache = MetricCache::new(cli.threads);
    let (headers, rows) = run_storage_growth(&cache, &[144, 256, 484, 1024, 2025], cli.seed);
    emit("E3: storage growth vs n (grid, eps=1/8)", &headers, &rows);
    if !cli.json {
        println!("\nreading: full-table bits quadruple per 4x n (n·log n); the compact");
        println!("schemes' bits grow far slower (polylog) — the sfNI/full ratio falls");
        println!("toward the crossover the theory places at polylog < n.");
    }
}
