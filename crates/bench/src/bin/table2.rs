//! Regenerates Table 2 of the paper: (1+eps)-stretch labeled schemes —
//! measured stretch, table bits, label bits, header bits.
//!
//! Usage: `cargo run -p bench --bin table2 [n] [1/eps] [pairs]`

use bench::experiments::run_table2;
use bench::table::emit;
use doubling_metric::Eps;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(196);
    let inv: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let pairs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(300);
    let (headers, rows) = run_table2(n, Eps::one_over(inv), pairs, 42);
    emit(
        &format!("Table 2: labeled schemes (n≈{n}, eps=1/{inv}, {pairs} pairs/graph)"),
        &headers,
        &rows,
    );
    if !std::env::args().any(|a| a == "--json") {
        println!("\npaper bounds: Thm 1.2 stretch 1+O(eps), ceil(log n)-bit labels,");
    }
    if !std::env::args().any(|a| a == "--json") {
        println!("              (1/eps)^O(a)·log^3 n table bits (scale-free).");
    }
}
