//! Regenerates Table 2 of the paper: (1+eps)-stretch labeled schemes —
//! measured stretch, table bits, label bits, header bits.
//!
//! Usage: `cargo run -p bench --bin table2 [n] [1/eps] [pairs] [--seed N] [--json]`

use bench::cli::Cli;
use bench::experiments::run_table2;
use bench::table::emit;
use bench::MetricCache;
use doubling_metric::Eps;

fn main() {
    let cli = Cli::parse_env(42);
    let n: usize = cli.pos(0, 196);
    let inv: u64 = cli.pos(1, 8);
    let pairs: usize = cli.pos(2, 300);
    let cache = MetricCache::new(cli.threads);
    let (headers, rows) = run_table2(&cache, n, Eps::one_over(inv), pairs, cli.seed);
    emit(
        &format!("Table 2: labeled schemes (n≈{n}, eps=1/{inv}, {pairs} pairs/graph)"),
        &headers,
        &rows,
    );
    if !cli.json {
        println!("\npaper bounds: Thm 1.2 stretch 1+O(eps), ceil(log n)-bit labels,");
        println!("              (1/eps)^O(a)·log^3 n table bits (scale-free).");
    }
}
