//! Experiment B1: metric preprocessing build-time scaling — wall-clock
//! per phase, speedup vs 1 thread, per-source quantiles, allocation, and
//! the parallel-vs-sequential determinism check; writes
//! `results/bench_build.json`.
//!
//! Usage: `cargo run --release -p bench --bin bench_build [max_n] [--seed N] [--threads N] [--json]`

// The counting allocator makes the alloc(MiB) column nonzero.
#[global_allocator]
static GLOBAL: obs::alloc::CountingAlloc = obs::alloc::CountingAlloc::new();

fn main() {
    bench::build_bench::build_bench_main();
}
