//! Experiment E1: stretch vs eps for all four schemes — the 1+O(eps) vs
//! 9+O(eps) separation.
//!
//! Usage: `cargo run -p bench --bin sweep_eps [n] [--seed N] [--json]`

use bench::cli::Cli;
use bench::experiments::run_sweep_eps;
use bench::table::emit;
use bench::MetricCache;

fn main() {
    let cli = Cli::parse_env(42);
    let n: usize = cli.pos(0, 144);
    let cache = MetricCache::new(cli.threads);
    let (headers, rows) = run_sweep_eps(&cache, n, cli.seed);
    emit(&format!("E1: stretch vs eps (grid n≈{n})"), &headers, &rows);
}
