//! Experiment S1: stretch vs eps for all four schemes — the 1+O(eps) vs
//! 9+O(eps) separation.
//!
//! Usage: `cargo run -p bench --bin sweep_eps [n]`

use bench::experiments::run_sweep_eps;
use bench::table::emit;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(144);
    let (headers, rows) = run_sweep_eps(n, 42);
    emit(&format!("S1: stretch vs eps (grid n≈{n})"), &headers, &rows);
}
