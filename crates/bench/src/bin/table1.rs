//! Regenerates Table 1 of the paper: name-independent compact routing
//! schemes — measured stretch, per-node table bits, and header bits.
//!
//! Usage: `cargo run -p bench --bin table1 [n] [1/eps] [pairs]`

use bench::experiments::run_table1;
use bench::table::emit;
use doubling_metric::Eps;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(196);
    let inv: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let pairs: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(300);
    let (headers, rows) = run_table1(n, Eps::one_over(inv), pairs, 42);
    emit(
        &format!("Table 1: name-independent schemes (n≈{n}, eps=1/{inv}, {pairs} pairs/graph)"),
        &headers,
        &rows,
    );
    if !std::env::args().any(|a| a == "--json") {
        println!("\npaper bounds: Thm 1.4 stretch 9+O(eps), (1/eps)^O(a)·logΔ·log n bits;");
    }
    if !std::env::args().any(|a| a == "--json") {
        println!("              Thm 1.1 stretch 9+O(eps), (1/eps)^O(a)·log^3 n bits (scale-free).");
    }
}
