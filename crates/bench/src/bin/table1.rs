//! Regenerates Table 1 of the paper: name-independent compact routing
//! schemes — measured stretch, per-node table bits, and header bits.
//!
//! Usage: `cargo run -p bench --bin table1 [n] [1/eps] [pairs] [--seed N] [--json]`

use bench::cli::Cli;
use bench::experiments::run_table1;
use bench::table::emit;
use bench::MetricCache;
use doubling_metric::Eps;

fn main() {
    let cli = Cli::parse_env(42);
    let n: usize = cli.pos(0, 196);
    let inv: u64 = cli.pos(1, 8);
    let pairs: usize = cli.pos(2, 300);
    let cache = MetricCache::new(cli.threads);
    let (headers, rows) = run_table1(&cache, n, Eps::one_over(inv), pairs, cli.seed);
    emit(
        &format!("Table 1: name-independent schemes (n≈{n}, eps=1/{inv}, {pairs} pairs/graph)"),
        &headers,
        &rows,
    );
    if !cli.json {
        println!("\npaper bounds: Thm 1.4 stretch 9+O(eps), (1/eps)^O(a)·logΔ·log n bits;");
        println!("              Thm 1.1 stretch 9+O(eps), (1/eps)^O(a)·log^3 n bits (scale-free).");
    }
}
