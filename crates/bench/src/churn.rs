//! The churn experiment: all four routing schemes under fault injection.
//!
//! For every (removal strategy × removal fraction) cell, the experiment
//! measures each scheme twice:
//!
//! * **stale** — the scheme routes with the tables it built *before* the
//!   failures (see [`netsim::scheme::LabeledScheme::route_with_faults`]);
//!   reported as reachability, surviving-route stretch, and a loss
//!   breakdown ([`FaultEvalResult`]).
//! * **rebuilt** — preprocessing is re-run from scratch on the largest
//!   surviving component ([`SurvivingNetwork`]), wall-clock measured;
//!   reachability then counts exactly the sampled pairs that ended up in
//!   that component, and stretch is measured against the survivor metric.
//!
//! The gap between the two columns is the cost of *not* rebuilding; the
//! `rebuild(ms)` column is the cost of rebuilding.

use std::time::Instant;

use doubling_metric::graph::NodeId;
use doubling_metric::nets::NetHierarchy;
use doubling_metric::{gen, Eps, MetricSpace};
use labeled_routing::{NetLabeled, ScaleFreeLabeled};
use name_independent::{ScaleFreeNameIndependent, SimpleNameIndependent};
use netsim::faults::{FaultPlan, SurvivingNetwork};
use netsim::json::Value;
use netsim::route::Route;
use netsim::scheme::{LabeledScheme, NameIndependentScheme};
use netsim::stats::{
    eval_labeled_under_faults, eval_name_independent_under_faults, sample_pairs, FaultEvalResult,
};
use netsim::Naming;

use crate::table::f2;

/// Reachability and mean stretch after a full rebuild on the surviving
/// component, over the same sampled pairs as the stale evaluation.
fn rebuilt_on(
    sn: &SurvivingNetwork,
    plan: &FaultPlan,
    pairs: &[(NodeId, NodeId)],
    mut route: impl FnMut(NodeId, NodeId) -> Route,
) -> (f64, f64) {
    let mut attempted = 0usize;
    let mut delivered = 0usize;
    let mut stretch_sum = 0.0f64;
    for &(u, v) in pairs {
        if plan.is_node_dead(u) || plan.is_node_dead(v) {
            continue; // same denominator as the stale evaluation
        }
        attempted += 1;
        if let (Some(nu), Some(nv)) = (sn.new_id(u), sn.new_id(v)) {
            let r = route(nu, nv);
            r.verify(&sn.metric).expect("rebuilt route must verify");
            assert_eq!(r.dst, nv, "rebuilt route must reach the destination");
            delivered += 1;
            stretch_sum += r.stretch(&sn.metric);
        }
    }
    let reach = if attempted == 0 { 1.0 } else { delivered as f64 / attempted as f64 };
    let avg = if delivered == 0 { 1.0 } else { stretch_sum / delivered as f64 };
    (reach, avg)
}

/// One scheme's measurements in one (strategy, fraction) cell.
struct SchemeCell {
    stale: FaultEvalResult,
    /// `None` when every node failed (no component to rebuild on).
    rebuilt: Option<(f64, f64, f64)>, // (reachability, avg stretch, rebuild ms)
}

impl SchemeCell {
    fn to_json(&self) -> Value {
        let mut fields = vec![
            ("scheme".to_string(), self.stale.scheme.into()),
            ("stale".to_string(), self.stale.to_json()),
        ];
        match self.rebuilt {
            Some((reach, stretch, ms)) => {
                fields.push(("rebuilt_reachability".into(), reach.into()));
                fields.push(("rebuilt_avg_stretch".into(), stretch.into()));
                fields.push(("rebuild_ms".into(), ms.into()));
            }
            None => fields.push(("rebuilt_reachability".into(), Value::Null)),
        }
        Value::Object(fields)
    }

    fn row(&self, strategy: &str, fraction: f64) -> Vec<String> {
        let (rr, rs, ms) = match self.rebuilt {
            Some((r, s, m)) => (f2(r), f2(s), f2(m)),
            None => ("-".into(), "-".into(), "-".into()),
        };
        vec![
            strategy.to_string(),
            f2(fraction),
            self.stale.scheme.to_string(),
            f2(self.stale.reachability),
            rr,
            f2(self.stale.avg_stretch),
            rs,
            ms,
        ]
    }
}

/// Times `build` on the survivor metric, then evaluates it over `pairs`.
fn rebuild_and_eval<S>(
    sn: &SurvivingNetwork,
    plan: &FaultPlan,
    pairs: &[(NodeId, NodeId)],
    build: impl FnOnce(&MetricSpace) -> S,
    route: impl Fn(&S, &MetricSpace, NodeId, NodeId) -> Route,
) -> (f64, f64, f64) {
    let t0 = Instant::now();
    let scheme = build(&sn.metric);
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    let (reach, stretch) = rebuilt_on(sn, plan, pairs, |u, v| route(&scheme, &sn.metric, u, v));
    (reach, stretch, ms)
}

/// Runs the churn grid on a unit grid graph: every scheme × every removal
/// strategy × every removal fraction. Returns table headers/rows for the
/// console plus the full JSON document.
pub fn run_churn(
    n: usize,
    eps: Eps,
    pairs_count: usize,
    fractions: &[f64],
    seed: u64,
) -> (Vec<&'static str>, Vec<Vec<String>>, Value) {
    let g = gen::Family::Grid.build(n, seed);
    let m = MetricSpace::new(&g);
    let naming = Naming::random(m.n(), seed ^ 0xA5);
    let pairs = sample_pairs(m.n(), pairs_count, seed ^ 0x5A);
    let nets = NetHierarchy::new(&m);

    // Pre-failure ("stale") tables, built once on the intact network.
    let nl = NetLabeled::new(&m, eps).expect("eps within range");
    let sfl = ScaleFreeLabeled::new(&m, eps).expect("eps within range");
    let sni = SimpleNameIndependent::new(&m, eps, naming.clone()).expect("eps within range");
    let sfni = ScaleFreeNameIndependent::new(&m, eps, naming.clone()).expect("eps within range");

    let headers = vec![
        "strategy",
        "fraction",
        "scheme",
        "stale-reach",
        "rebuilt-reach",
        "stale-stretch",
        "rebuilt-stretch",
        "rebuild(ms)",
    ];
    let mut rows = Vec::new();
    let mut cells = Vec::new();

    for &fraction in fractions {
        let plans: Vec<(&'static str, FaultPlan)> = vec![
            ("random", FaultPlan::random_nodes(m.n(), fraction, seed ^ 0xC0)),
            ("degree", FaultPlan::targeted_by_degree(&g, fraction)),
            ("netcenter", FaultPlan::targeted_net_centers(&nets, m.n(), fraction)),
        ];
        for (strategy, plan) in plans {
            let sn = SurvivingNetwork::build(&g, &plan);
            let naming2 = sn.as_ref().map(|sn| Naming::random(sn.n(), seed ^ 0xA5));

            let scheme_cells = vec![
                SchemeCell {
                    stale: eval_labeled_under_faults(&nl, &m, &plan, &pairs),
                    rebuilt: sn.as_ref().map(|sn| {
                        rebuild_and_eval(
                            sn,
                            &plan,
                            &pairs,
                            |m2| NetLabeled::new(m2, eps).expect("eps within range"),
                            |s, m2, u, v| s.route_to_node(m2, u, v).expect("delivers"),
                        )
                    }),
                },
                SchemeCell {
                    stale: eval_labeled_under_faults(&sfl, &m, &plan, &pairs),
                    rebuilt: sn.as_ref().map(|sn| {
                        rebuild_and_eval(
                            sn,
                            &plan,
                            &pairs,
                            |m2| ScaleFreeLabeled::new(m2, eps).expect("eps within range"),
                            |s, m2, u, v| s.route_to_node(m2, u, v).expect("delivers"),
                        )
                    }),
                },
                SchemeCell {
                    stale: eval_name_independent_under_faults(&sni, &m, &naming, &plan, &pairs),
                    rebuilt: sn.as_ref().map(|sn| {
                        let nm = naming2.as_ref().unwrap();
                        rebuild_and_eval(
                            sn,
                            &plan,
                            &pairs,
                            |m2| {
                                SimpleNameIndependent::new(m2, eps, nm.clone())
                                    .expect("eps within range")
                            },
                            |s, m2, u, v| s.route(m2, u, nm.name_of(v)).expect("delivers"),
                        )
                    }),
                },
                SchemeCell {
                    stale: eval_name_independent_under_faults(&sfni, &m, &naming, &plan, &pairs),
                    rebuilt: sn.as_ref().map(|sn| {
                        let nm = naming2.as_ref().unwrap();
                        rebuild_and_eval(
                            sn,
                            &plan,
                            &pairs,
                            |m2| {
                                ScaleFreeNameIndependent::new(m2, eps, nm.clone())
                                    .expect("eps within range")
                            },
                            |s, m2, u, v| s.route(m2, u, nm.name_of(v)).expect("delivers"),
                        )
                    }),
                },
            ];

            for c in &scheme_cells {
                rows.push(c.row(strategy, fraction));
            }
            cells.push(Value::Object(vec![
                ("strategy".into(), strategy.into()),
                ("fraction".into(), fraction.into()),
                ("dead_nodes".into(), plan.dead_node_count().into()),
                (
                    "surviving_component".into(),
                    sn.as_ref().map_or(Value::from(0u32), |sn| sn.n().into()),
                ),
                (
                    "schemes".into(),
                    Value::Array(scheme_cells.iter().map(SchemeCell::to_json).collect()),
                ),
            ]));
        }
    }

    let doc = Value::Object(vec![
        ("family".into(), "grid".into()),
        ("n".into(), m.n().into()),
        ("eps".into(), eps.to_string().into()),
        ("pairs".into(), pairs.len().into()),
        ("seed".into(), seed.into()),
        ("cells".into(), Value::Array(cells)),
    ]);
    (headers, rows, doc)
}

/// Entry point shared by the root `churn` binary and
/// `cargo run -p bench --bin churn`: runs the grid, prints the table, and
/// writes `results/churn.json`.
///
/// Usage: `churn [n] [1/eps] [pairs]`.
pub fn churn_main() {
    let mut argv = std::env::args().skip(1);
    let n: usize = argv.next().and_then(|s| s.parse().ok()).unwrap_or(196);
    let inv: u64 = argv.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let pairs: usize = argv.next().and_then(|s| s.parse().ok()).unwrap_or(300);
    let fractions = [0.05, 0.10, 0.20, 0.30];
    let (headers, rows, doc) = run_churn(n, Eps::one_over(inv), pairs, &fractions, 42);
    crate::table::emit(
        &format!("Churn: reachability under node removal (n≈{n}, eps=1/{inv}, {pairs} pairs)"),
        &headers,
        &rows,
    );
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/churn.json", doc.to_string_pretty() + "\n")
        .expect("write results/churn.json");
    println!("\nwrote results/churn.json");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_grid_covers_all_cells_and_rebuild_beats_stale_under_targeting() {
        let fractions = [0.1, 0.2];
        let (h, rows, doc) = run_churn(64, Eps::one_over(8), 150, &fractions, 7);
        assert_eq!(h.len(), 8);
        // 4 schemes × 3 strategies × 2 fractions.
        assert_eq!(rows.len(), 4 * 3 * 2);

        let cells = doc.get("cells").and_then(Value::as_array).expect("cells");
        assert_eq!(cells.len(), 3 * 2);
        for cell in cells {
            let schemes = cell.get("schemes").and_then(Value::as_array).expect("schemes");
            assert_eq!(schemes.len(), 4);
            for s in schemes {
                let stale = s.get("stale").expect("stale block");
                let stale_reach = stale.get("reachability").and_then(Value::as_f64).expect("reach");
                let rebuilt = s
                    .get("rebuilt_reachability")
                    .and_then(Value::as_f64)
                    .expect("component survives at these fractions");
                assert!((0.0..=1.0).contains(&stale_reach));
                // Rebuilding can only help: stale routes die to any casualty
                // on the precomputed path, rebuilt routes only to actual
                // disconnection.
                assert!(stale_reach <= rebuilt + 1e-12, "stale {stale_reach} > rebuilt {rebuilt}");
                // The scheme itself must never be the cause of a loss.
                assert_eq!(
                    stale.get("lost_other").and_then(Value::as_u64),
                    Some(0),
                    "scheme error under faults"
                );
            }
            // At 20% targeted removal, stale tables must be strictly worse
            // than rebuilding (the headline acceptance criterion).
            let frac = cell.get("fraction").and_then(Value::as_f64).unwrap();
            let strategy = cell.get("strategy").and_then(Value::as_str).unwrap();
            if (frac - 0.2).abs() < 1e-9 && strategy != "random" {
                for s in schemes {
                    let stale_reach = s
                        .get("stale")
                        .and_then(|v| v.get("reachability"))
                        .and_then(Value::as_f64)
                        .unwrap();
                    let rebuilt = s.get("rebuilt_reachability").and_then(Value::as_f64).unwrap();
                    assert!(
                        stale_reach < rebuilt,
                        "{strategy}@{frac}: stale {stale_reach} not strictly below rebuilt {rebuilt}"
                    );
                }
            }
        }
    }
}
