//! The churn experiment: all four routing schemes under fault injection.
//!
//! For every (removal strategy × removal fraction) cell, the experiment
//! measures each scheme twice:
//!
//! * **stale** — the scheme routes with the tables it built *before* the
//!   failures (see [`netsim::scheme::LabeledScheme::route_with_faults`]);
//!   reported as reachability, surviving-route stretch, and a loss
//!   breakdown ([`FaultEvalResult`]).
//! * **rebuilt** — preprocessing is re-run from scratch on the largest
//!   surviving component ([`SurvivingNetwork`]), wall-clock measured;
//!   reachability then counts exactly the sampled pairs that ended up in
//!   that component, and stretch is measured against the survivor metric.
//!
//! The gap between the two columns is the cost of *not* rebuilding; the
//! `rebuild(ms)` column is the cost of rebuilding.

use std::time::Instant;

use doubling_metric::graph::NodeId;
use doubling_metric::nets::NetHierarchy;
use doubling_metric::{gen, Eps, MetricSpace};
use labeled_routing::{NetLabeled, ScaleFreeLabeled};
use name_independent::{ScaleFreeNameIndependent, SimpleNameIndependent};
use netsim::faults::{FaultPlan, FaultTimeline, SurvivingNetwork};
use netsim::json::Value;
use netsim::recovery::{RecoveryPolicy, ResilientRouter};
use netsim::route::{Route, RouteError};
use netsim::scheme::{LabeledScheme, NameIndependentScheme};
use netsim::stats::{
    eval_labeled_resilient_observed, eval_labeled_under_faults_observed,
    eval_name_independent_resilient_observed, eval_name_independent_under_faults_observed,
    sample_pairs, FaultEvalResult, RecoveryEvalResult,
};
use netsim::Naming;
use obs::{MetricsRegistry, Tracer};

use crate::cache::MetricCache;
use crate::table::f2;

/// Event context identifying one (strategy, fraction, scheme) cell, so a
/// trace consumer can attribute every individual loss.
#[derive(Clone, Copy)]
struct CellCtx<'t> {
    tracer: &'t Tracer,
    strategy: &'static str,
    fraction: f64,
    scheme: &'static str,
}

impl CellCtx<'_> {
    fn fields(&self, u: NodeId, v: NodeId) -> Vec<(&'static str, Value)> {
        vec![
            ("strategy", self.strategy.into()),
            ("fraction", self.fraction.into()),
            ("scheme", self.scheme.into()),
            ("src", u.into()),
            ("dst", v.into()),
        ]
    }
}

/// The trace-event `kind` for one stale-routing loss.
fn loss_kind(e: &RouteError) -> &'static str {
    match e {
        RouteError::NodeFailed { .. } => "node-failed",
        RouteError::EdgeFailed { .. } => "edge-failed",
        _ => "other",
    }
}

/// Reachability and mean stretch after a full rebuild on the surviving
/// component, over the same sampled pairs as the stale evaluation. Pairs
/// that fall outside the surviving component are emitted as
/// `"rebuilt-unreachable"` events when `ctx.tracer` is recording.
fn rebuilt_on(
    sn: &SurvivingNetwork,
    plan: &FaultPlan,
    pairs: &[(NodeId, NodeId)],
    ctx: CellCtx<'_>,
    mut route: impl FnMut(NodeId, NodeId) -> Route,
) -> (f64, f64) {
    let mut attempted = 0usize;
    let mut delivered = 0usize;
    let mut stretch_sum = 0.0f64;
    for &(u, v) in pairs {
        if plan.is_node_dead(u) || plan.is_node_dead(v) {
            continue; // same denominator as the stale evaluation
        }
        attempted += 1;
        if let (Some(nu), Some(nv)) = (sn.new_id(u), sn.new_id(v)) {
            let r = route(nu, nv);
            r.verify(&sn.metric).expect("rebuilt route must verify");
            assert_eq!(r.dst, nv, "rebuilt route must reach the destination");
            delivered += 1;
            stretch_sum += r.stretch(&sn.metric);
        } else {
            ctx.tracer.event_lazy("rebuilt-unreachable", || ctx.fields(u, v));
        }
    }
    let reach = if attempted == 0 { 1.0 } else { delivered as f64 / attempted as f64 };
    let avg = if delivered == 0 { 1.0 } else { stretch_sum / delivered as f64 };
    (reach, avg)
}

/// One scheme's measurements in one (strategy, fraction) cell.
struct SchemeCell {
    stale: FaultEvalResult,
    /// `None` when every node failed (no component to rebuild on).
    rebuilt: Option<(f64, f64, f64)>, // (reachability, avg stretch, rebuild ms)
    /// Resilient delivery under `--policy`, absent on the legacy path.
    recovery: Option<RecoveryEvalResult>,
}

impl SchemeCell {
    fn to_json(&self) -> Value {
        let mut fields = vec![
            ("scheme".to_string(), self.stale.scheme.into()),
            ("stale".to_string(), self.stale.to_json()),
        ];
        match self.rebuilt {
            Some((reach, stretch, ms)) => {
                fields.push(("rebuilt_reachability".into(), reach.into()));
                fields.push(("rebuilt_avg_stretch".into(), stretch.into()));
                fields.push(("rebuild_ms".into(), ms.into()));
            }
            None => fields.push(("rebuilt_reachability".into(), Value::Null)),
        }
        if let Some(r) = &self.recovery {
            fields.push(("recovery".into(), r.to_json()));
        }
        Value::Object(fields)
    }

    fn row(&self, strategy: &str, fraction: f64) -> Vec<String> {
        let (rr, rs, ms) = match self.rebuilt {
            Some((r, s, m)) => (f2(r), f2(s), f2(m)),
            None => ("-".into(), "-".into(), "-".into()),
        };
        let mut row = vec![
            strategy.to_string(),
            f2(fraction),
            self.stale.scheme.to_string(),
            f2(self.stale.reachability),
            rr,
            f2(self.stale.avg_stretch),
            rs,
            ms,
        ];
        if let Some(r) = &self.recovery {
            row.push(f2(r.delivered_fraction));
        }
        row
    }
}

/// Times `build` on the survivor metric, then evaluates it over `pairs`.
fn rebuild_and_eval<S>(
    sn: &SurvivingNetwork,
    plan: &FaultPlan,
    pairs: &[(NodeId, NodeId)],
    ctx: CellCtx<'_>,
    build: impl FnOnce(&MetricSpace) -> S,
    route: impl Fn(&S, &MetricSpace, NodeId, NodeId) -> Route,
) -> (f64, f64, f64) {
    let t0 = Instant::now();
    let scheme = build(&sn.metric);
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    let (reach, stretch) =
        rebuilt_on(sn, plan, pairs, ctx, |u, v| route(&scheme, &sn.metric, u, v));
    (reach, stretch, ms)
}

/// A per-pair observer emitting one `"stale-loss"` event (with the loss
/// kind) for every pair the stale tables failed to deliver.
fn stale_observer(ctx: CellCtx<'_>) -> impl FnMut(NodeId, NodeId, &Result<Route, RouteError>) + '_ {
    move |u, v, res| {
        if let Err(e) = res {
            ctx.tracer.event_lazy("stale-loss", || {
                let mut fields = ctx.fields(u, v);
                fields.push(("kind", loss_kind(e).into()));
                fields
            });
        }
    }
}

/// Version of the `results/churn.json` document layout.
pub const SCHEMA_VERSION: u64 = 1;

/// Runs the churn grid on a unit grid graph: every scheme × every removal
/// strategy × every removal fraction. Returns table headers/rows for the
/// console plus the full JSON document.
///
/// When `tracer` is recording, every individual loss becomes an
/// attributable event: `"stale-loss"` (strategy, fraction, scheme, pair,
/// loss kind) for stale-table losses and `"rebuilt-unreachable"` for
/// pairs outside the rebuilt component. With [`Tracer::noop`] the
/// per-pair overhead is one branch.
///
/// With `policy: Some(..)` (the `--policy` flag) every cell additionally
/// delivers the same pairs through a [`ResilientRouter`] applying that
/// policy: the table gains a `policy-reach` column, each scheme's JSON
/// gains a `recovery` block ([`RecoveryEvalResult`]), and — when tracing —
/// every recovery decision becomes a `recovery-detour` /
/// `recovery-fallback` / `recovery-exhausted` event with the same cell
/// context as the loss events. With `None`, output is byte-identical to
/// before the flag existed.
///
/// `registry` counts recovery interventions by kind
/// ([`obs::eval::meter_recovery_event`]) — pass
/// [`MetricsRegistry::disabled`] to opt out at one branch per event.
#[allow(clippy::too_many_arguments)] // experiment entry point: one knob per CLI flag
pub fn run_churn(
    cache: &MetricCache,
    n: usize,
    eps: Eps,
    pairs_count: usize,
    fractions: &[f64],
    seed: u64,
    tracer: &Tracer,
    registry: &MetricsRegistry,
    policy: Option<&RecoveryPolicy>,
) -> (Vec<&'static str>, Vec<Vec<String>>, Value) {
    let m = cache.family_traced(gen::Family::Grid, n, seed, tracer);
    let g = m.graph();
    let naming = Naming::random(m.n(), seed ^ 0xA5);
    let pairs = sample_pairs(m.n(), pairs_count, seed ^ 0x5A);
    let nets = NetHierarchy::new(&m);

    // Pre-failure ("stale") tables, built once on the intact network.
    let nl = NetLabeled::new(&m, eps).expect("eps within range");
    let sfl = ScaleFreeLabeled::new(&m, eps).expect("eps within range");
    let sni = SimpleNameIndependent::new(&m, eps, naming.clone()).expect("eps within range");
    let sfni = ScaleFreeNameIndependent::new(&m, eps, naming.clone()).expect("eps within range");

    let mut headers = vec![
        "strategy",
        "fraction",
        "scheme",
        "stale-reach",
        "rebuilt-reach",
        "stale-stretch",
        "rebuilt-stretch",
        "rebuild(ms)",
    ];
    if policy.is_some() {
        headers.push("policy-reach");
    }
    let mut rows = Vec::new();
    let mut cells = Vec::new();

    for &fraction in fractions {
        let plans: Vec<(&'static str, FaultPlan)> = vec![
            ("random", FaultPlan::random_nodes(m.n(), fraction, seed ^ 0xC0)),
            ("degree", FaultPlan::targeted_by_degree(g, fraction)),
            ("netcenter", FaultPlan::targeted_net_centers(&nets, m.n(), fraction)),
        ];
        for (strategy, plan) in plans {
            let sn = SurvivingNetwork::build(g, &plan);
            let naming2 = sn.as_ref().map(|sn| Naming::random(sn.n(), seed ^ 0xA5));
            let timeline = policy.map(|_| FaultTimeline::from_plan(plan.clone()));

            let ctx = |scheme: &'static str| CellCtx { tracer, strategy, fraction, scheme };
            // Resilient delivery of the same pairs, when --policy asked
            // for it; recovery decisions become trace events.
            let scheme_cells = vec![
                SchemeCell {
                    stale: eval_labeled_under_faults_observed(
                        &nl,
                        &m,
                        &plan,
                        &pairs,
                        stale_observer(ctx(nl.scheme_name())),
                    ),
                    rebuilt: sn.as_ref().map(|sn| {
                        rebuild_and_eval(
                            sn,
                            &plan,
                            &pairs,
                            ctx(nl.scheme_name()),
                            |m2| NetLabeled::new(m2, eps).expect("eps within range"),
                            |s, m2, u, v| s.route_to_node(m2, u, v).expect("delivers"),
                        )
                    }),
                    recovery: policy.map(|p| {
                        let c = ctx(nl.scheme_name());
                        eval_labeled_resilient_observed(
                            &ResilientRouter::new(&m, &nl, p.clone()),
                            timeline.as_ref().unwrap(),
                            &pairs,
                            |u, v, ev| {
                                obs::eval::trace_recovery_event(tracer, || c.fields(u, v), ev);
                                obs::eval::meter_recovery_event(registry, ev);
                            },
                            |_, _, _| {},
                        )
                    }),
                },
                SchemeCell {
                    stale: eval_labeled_under_faults_observed(
                        &sfl,
                        &m,
                        &plan,
                        &pairs,
                        stale_observer(ctx(sfl.scheme_name())),
                    ),
                    rebuilt: sn.as_ref().map(|sn| {
                        rebuild_and_eval(
                            sn,
                            &plan,
                            &pairs,
                            ctx(sfl.scheme_name()),
                            |m2| ScaleFreeLabeled::new(m2, eps).expect("eps within range"),
                            |s, m2, u, v| s.route_to_node(m2, u, v).expect("delivers"),
                        )
                    }),
                    recovery: policy.map(|p| {
                        let c = ctx(sfl.scheme_name());
                        eval_labeled_resilient_observed(
                            &ResilientRouter::new(&m, &sfl, p.clone()),
                            timeline.as_ref().unwrap(),
                            &pairs,
                            |u, v, ev| {
                                obs::eval::trace_recovery_event(tracer, || c.fields(u, v), ev);
                                obs::eval::meter_recovery_event(registry, ev);
                            },
                            |_, _, _| {},
                        )
                    }),
                },
                SchemeCell {
                    stale: eval_name_independent_under_faults_observed(
                        &sni,
                        &m,
                        &naming,
                        &plan,
                        &pairs,
                        stale_observer(ctx(sni.scheme_name())),
                    ),
                    rebuilt: sn.as_ref().map(|sn| {
                        let nm = naming2.as_ref().unwrap();
                        rebuild_and_eval(
                            sn,
                            &plan,
                            &pairs,
                            ctx(sni.scheme_name()),
                            |m2| {
                                SimpleNameIndependent::new(m2, eps, nm.clone())
                                    .expect("eps within range")
                            },
                            |s, m2, u, v| s.route(m2, u, nm.name_of(v)).expect("delivers"),
                        )
                    }),
                    recovery: policy.map(|p| {
                        let c = ctx(sni.scheme_name());
                        eval_name_independent_resilient_observed(
                            &ResilientRouter::new(&m, &sni, p.clone()),
                            &naming,
                            timeline.as_ref().unwrap(),
                            &pairs,
                            |u, v, ev| {
                                obs::eval::trace_recovery_event(tracer, || c.fields(u, v), ev);
                                obs::eval::meter_recovery_event(registry, ev);
                            },
                            |_, _, _| {},
                        )
                    }),
                },
                SchemeCell {
                    stale: eval_name_independent_under_faults_observed(
                        &sfni,
                        &m,
                        &naming,
                        &plan,
                        &pairs,
                        stale_observer(ctx(sfni.scheme_name())),
                    ),
                    rebuilt: sn.as_ref().map(|sn| {
                        let nm = naming2.as_ref().unwrap();
                        rebuild_and_eval(
                            sn,
                            &plan,
                            &pairs,
                            ctx(sfni.scheme_name()),
                            |m2| {
                                ScaleFreeNameIndependent::new(m2, eps, nm.clone())
                                    .expect("eps within range")
                            },
                            |s, m2, u, v| s.route(m2, u, nm.name_of(v)).expect("delivers"),
                        )
                    }),
                    recovery: policy.map(|p| {
                        let c = ctx(sfni.scheme_name());
                        eval_name_independent_resilient_observed(
                            &ResilientRouter::new(&m, &sfni, p.clone()),
                            &naming,
                            timeline.as_ref().unwrap(),
                            &pairs,
                            |u, v, ev| {
                                obs::eval::trace_recovery_event(tracer, || c.fields(u, v), ev);
                                obs::eval::meter_recovery_event(registry, ev);
                            },
                            |_, _, _| {},
                        )
                    }),
                },
            ];

            for c in &scheme_cells {
                rows.push(c.row(strategy, fraction));
            }
            cells.push(Value::Object(vec![
                ("strategy".into(), strategy.into()),
                ("fraction".into(), fraction.into()),
                ("dead_nodes".into(), plan.dead_node_count().into()),
                (
                    "surviving_component".into(),
                    sn.as_ref().map_or(Value::from(0u32), |sn| sn.n().into()),
                ),
                (
                    "schemes".into(),
                    Value::Array(scheme_cells.iter().map(SchemeCell::to_json).collect()),
                ),
            ]));
        }
    }

    let mut doc_fields = vec![
        ("schema_version".to_string(), Value::from(SCHEMA_VERSION)),
        ("family".into(), Value::from("grid")),
        ("n".into(), m.n().into()),
        ("eps".into(), eps.to_string().into()),
        ("pairs".into(), pairs.len().into()),
        ("seed".into(), seed.into()),
    ];
    if let Some(p) = policy {
        doc_fields.push(("policy".into(), p.to_string().into()));
    }
    doc_fields.push(("metric_cache".into(), cache.stats().to_json()));
    doc_fields.push(("cells".into(), Value::Array(cells)));
    (headers, rows, Value::Object(doc_fields))
}

/// The worst delivered fraction in a churn document: the minimum over
/// every (strategy, fraction, scheme) cell of the recovery
/// `delivered_fraction` when a `--policy` ran, falling back to the stale
/// reachability otherwise. `1.0` on a document without cells.
///
/// This is what the `--min-delivery` gate compares against its
/// threshold, so CI can fail a run whose delivery degrades.
pub fn worst_delivery(doc: &Value) -> f64 {
    let mut worst = 1.0f64;
    let cells = doc.get("cells").and_then(Value::as_array).unwrap_or(&[]);
    for cell in cells {
        for s in cell.get("schemes").and_then(Value::as_array).unwrap_or(&[]) {
            let frac = s
                .get("recovery")
                .and_then(|r| r.get("delivered_fraction"))
                .and_then(Value::as_f64)
                .or_else(|| {
                    s.get("stale").and_then(|v| v.get("reachability")).and_then(Value::as_f64)
                });
            if let Some(f) = frac {
                worst = worst.min(f);
            }
        }
    }
    worst
}

/// Entry point shared by the root `churn` binary and
/// `cargo run -p bench --bin churn`: runs the grid, prints the table, and
/// writes `results/churn.json`. With `--trace`, every individual loss is
/// recorded and the trace is written to `results/churn_trace.jsonl`.
///
/// Usage: `churn [n] [1/eps] [pairs] [--seed N] [--trace]
/// [--chrome-trace PATH] [--json] [--threads N] [--policy P]
/// [--min-delivery F]`. With `--policy`, each cell also delivers the
/// pairs through a [`ResilientRouter`] applying `P` (see [`run_churn`]).
/// With `--min-delivery F`, the process exits non-zero when
/// [`worst_delivery`] of the run falls below `F` — the artifacts are
/// still written first, so the failing run stays inspectable.
pub fn churn_main() {
    let cli = crate::cli::Cli::parse_env(42);
    let n: usize = cli.pos(0, 196);
    let inv: u64 = cli.pos(1, 8);
    let pairs: usize = cli.pos(2, 300);
    let fractions = [0.05, 0.10, 0.20, 0.30];
    let tracer = cli.tracer();
    let cache = MetricCache::new(cli.threads);
    let registry = MetricsRegistry::new();
    let (headers, rows, doc) = run_churn(
        &cache,
        n,
        Eps::one_over(inv),
        pairs,
        &fractions,
        cli.seed,
        &tracer,
        &registry,
        cli.policy.as_ref(),
    );
    crate::table::emit(
        &format!("Churn: reachability under node removal (n≈{n}, eps=1/{inv}, {pairs} pairs)"),
        &headers,
        &rows,
    );
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/churn.json", doc.to_string_pretty() + "\n")
        .expect("write results/churn.json");
    if !cli.json {
        println!("\nwrote results/churn.json");
    }
    let snapshot = registry.snapshot();
    let log = tracer.finish();
    if cli.trace {
        std::fs::write("results/churn_trace.jsonl", log.to_jsonl())
            .expect("write results/churn_trace.jsonl");
        if !cli.json {
            println!("wrote results/churn_trace.jsonl");
        }
    }
    if let Some(path) = cli.write_chrome_trace(&log, Some(&snapshot)) {
        if !cli.json {
            println!("wrote {path}");
        }
    }
    if let Some(threshold) = cli.min_delivery {
        let worst = worst_delivery(&doc);
        if worst < threshold {
            eprintln!(
                "churn: worst delivered fraction {worst:.4} below --min-delivery {threshold}"
            );
            std::process::exit(2);
        }
        if !cli.json {
            println!("min-delivery gate passed: worst {worst:.4} >= {threshold}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_grid_covers_all_cells_and_rebuild_beats_stale_under_targeting() {
        let fractions = [0.1, 0.2];
        let tracer = Tracer::recording();
        let cache = MetricCache::new(1);
        let (h, rows, doc) = run_churn(
            &cache,
            64,
            Eps::one_over(8),
            150,
            &fractions,
            7,
            &tracer,
            &MetricsRegistry::disabled(),
            None,
        );
        // One base metric build, no rebuild through the cache.
        assert_eq!(cache.stats().builds, 1);
        assert_eq!(h.len(), 8);
        // 4 schemes × 3 strategies × 2 fractions.
        assert_eq!(rows.len(), 4 * 3 * 2);

        let cells = doc.get("cells").and_then(Value::as_array).expect("cells");
        assert_eq!(cells.len(), 3 * 2);
        for cell in cells {
            let schemes = cell.get("schemes").and_then(Value::as_array).expect("schemes");
            assert_eq!(schemes.len(), 4);
            for s in schemes {
                let stale = s.get("stale").expect("stale block");
                let stale_reach = stale.get("reachability").and_then(Value::as_f64).expect("reach");
                let rebuilt = s
                    .get("rebuilt_reachability")
                    .and_then(Value::as_f64)
                    .expect("component survives at these fractions");
                assert!((0.0..=1.0).contains(&stale_reach));
                // Rebuilding can only help: stale routes die to any casualty
                // on the precomputed path, rebuilt routes only to actual
                // disconnection.
                assert!(stale_reach <= rebuilt + 1e-12, "stale {stale_reach} > rebuilt {rebuilt}");
                // The scheme itself must never be the cause of a loss.
                assert_eq!(
                    stale.get("lost_other").and_then(Value::as_u64),
                    Some(0),
                    "scheme error under faults"
                );
            }
            // At 20% targeted removal, stale tables must be strictly worse
            // than rebuilding (the headline acceptance criterion).
            let frac = cell.get("fraction").and_then(Value::as_f64).unwrap();
            let strategy = cell.get("strategy").and_then(Value::as_str).unwrap();
            if (frac - 0.2).abs() < 1e-9 && strategy != "random" {
                for s in schemes {
                    let stale_reach = s
                        .get("stale")
                        .and_then(|v| v.get("reachability"))
                        .and_then(Value::as_f64)
                        .unwrap();
                    let rebuilt = s.get("rebuilt_reachability").and_then(Value::as_f64).unwrap();
                    assert!(
                        stale_reach < rebuilt,
                        "{strategy}@{frac}: stale {stale_reach} not strictly below rebuilt {rebuilt}"
                    );
                }
            }
        }

        // Every individual stale loss is an attributable trace event: the
        // event count matches the aggregated loss counters exactly, and
        // each event carries the full (strategy, fraction, scheme, pair,
        // kind) context.
        let log = tracer.finish();
        let mut expected_losses = 0u64;
        for cell in cells {
            for s in cell.get("schemes").and_then(Value::as_array).unwrap() {
                let stale = s.get("stale").unwrap();
                for k in ["lost_to_node", "lost_to_edge", "lost_other"] {
                    expected_losses += stale.get(k).and_then(Value::as_u64).unwrap();
                }
            }
        }
        let stale_events: Vec<_> = log.events.iter().filter(|e| e.name == "stale-loss").collect();
        assert_eq!(stale_events.len() as u64, expected_losses, "one event per stale loss");
        assert!(expected_losses > 0, "targeted removal at 20% must lose something");
        for e in &stale_events {
            let keys: Vec<&str> = e.fields.iter().map(|(k, _)| *k).collect();
            assert_eq!(keys, ["strategy", "fraction", "scheme", "src", "dst", "kind"]);
        }

        // Likewise each pair outside the rebuilt component: the event
        // count is exactly Σ attempted·(1 − rebuilt reachability).
        let mut expected_unreachable = 0u64;
        for cell in cells {
            for s in cell.get("schemes").and_then(Value::as_array).unwrap() {
                let attempted = s
                    .get("stale")
                    .and_then(|v| v.get("attempted"))
                    .and_then(Value::as_u64)
                    .unwrap();
                let reach = s.get("rebuilt_reachability").and_then(Value::as_f64).unwrap();
                expected_unreachable += (attempted as f64 * (1.0 - reach)).round() as u64;
            }
        }
        let unreachable_events =
            log.events.iter().filter(|e| e.name == "rebuilt-unreachable").count() as u64;
        assert_eq!(unreachable_events, expected_unreachable);
    }

    #[test]
    fn churn_policy_adds_recovery_column_and_trace_events() {
        let fractions = [0.2];
        let tracer = Tracer::recording();
        let cache = MetricCache::new(1);
        let policy = RecoveryPolicy::parse("detour:8").unwrap();
        let registry = MetricsRegistry::new();
        let (h, rows, doc) = run_churn(
            &cache,
            64,
            Eps::one_over(8),
            120,
            &fractions,
            7,
            &tracer,
            &registry,
            Some(&policy),
        );
        assert_eq!(*h.last().unwrap(), "policy-reach");
        assert!(rows.iter().all(|r| r.len() == h.len()));
        assert_eq!(doc.get("policy").and_then(Value::as_str), Some("detour:8"));

        let cells = doc.get("cells").and_then(Value::as_array).expect("cells");
        let mut recoveries_total = 0u64;
        for cell in cells {
            for s in cell.get("schemes").and_then(Value::as_array).unwrap() {
                let stale_reach = s
                    .get("stale")
                    .and_then(|v| v.get("reachability"))
                    .and_then(Value::as_f64)
                    .unwrap();
                let rec = s.get("recovery").expect("recovery block under --policy");
                assert_eq!(rec.get("policy").and_then(Value::as_str), Some("detour:8"));
                let frac = rec.get("delivered_fraction").and_then(Value::as_f64).unwrap();
                assert!(
                    frac >= stale_reach - 1e-12,
                    "recovery must not deliver less than Drop: {frac} < {stale_reach}"
                );
                recoveries_total += rec.get("recoveries").and_then(Value::as_u64).unwrap();
            }
        }
        assert!(recoveries_total > 0, "20% removal must force recoveries");

        // Recovery decisions are attributable trace events carrying the
        // same cell context as the loss events.
        let log = tracer.finish();
        let detours: Vec<_> = log.events.iter().filter(|e| e.name == "recovery-detour").collect();
        assert!(!detours.is_empty());
        for e in &detours {
            let keys: Vec<&str> = e.fields.iter().map(|(k, _)| *k).collect();
            assert_eq!(
                keys,
                ["strategy", "fraction", "scheme", "src", "dst", "at", "rejoin", "detour_hops"]
            );
        }

        // The registry counted exactly the interventions that were traced.
        let snap = registry.snapshot();
        assert_eq!(snap.counter("recovery-detour"), Some(detours.len() as u64));
    }

    #[test]
    fn worst_delivery_prefers_recovery_and_takes_the_minimum() {
        let doc = Value::parse(
            r#"{"cells": [
                {"schemes": [
                    {"stale": {"reachability": 0.8},
                     "recovery": {"delivered_fraction": 0.95}},
                    {"stale": {"reachability": 0.9}}
                ]},
                {"schemes": [
                    {"stale": {"reachability": 0.4},
                     "recovery": {"delivered_fraction": 0.85}}
                ]}
            ]}"#,
        )
        .unwrap();
        // Recovery fractions (0.95, 0.85) replace their stale columns
        // (0.8, 0.4); the no-policy scheme contributes its stale 0.9.
        assert!((worst_delivery(&doc) - 0.85).abs() < 1e-12);
        // A document with no cells never trips the gate.
        assert_eq!(worst_delivery(&Value::parse(r#"{"cells": []}"#).unwrap()), 1.0);
        assert_eq!(worst_delivery(&Value::parse("{}").unwrap()), 1.0);
    }

    #[test]
    fn churn_without_policy_is_byte_identical_to_legacy() {
        // The --policy flag must not disturb existing output: no header,
        // no JSON field, same documents as before the flag existed.
        let fractions = [0.1];
        let cache = MetricCache::new(1);
        let (h, _, doc) = run_churn(
            &cache,
            36,
            Eps::one_over(8),
            60,
            &fractions,
            7,
            &Tracer::noop(),
            &MetricsRegistry::disabled(),
            None,
        );
        assert_eq!(h.len(), 8);
        assert!(doc.get("policy").is_none());
        let cells = doc.get("cells").and_then(Value::as_array).unwrap();
        for cell in cells {
            for s in cell.get("schemes").and_then(Value::as_array).unwrap() {
                assert!(s.get("recovery").is_none());
            }
        }
    }
}
