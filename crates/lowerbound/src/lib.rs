//! The stretch-9 lower bound for name-independent compact routing —
//! **Theorem 1.3**, Section 5 of the paper.
//!
//! The theorem: for any `ε ∈ (0, 8)` there is an `n`-node tree with
//! doubling dimension `α ≤ 6 − log ε` and normalized diameter
//! `Δ = O(2^{1/ε}·n)` on which *every* name-independent routing scheme
//! using `o(n^{(ε/60)²})`-bit tables has stretch at least `9 − ε`.
//!
//! This crate makes the proof's three ingredients executable:
//!
//! * [`tree::LowerBoundTree`] — the Figure-3 construction: paths `T_{i,j}`
//!   of geometrically sized populations hung off a root at weights
//!   `w_{i,j} = 2^i(q + j)`, with `p = ⌈72/ε⌉+6`, `q = ⌈48/ε⌉−4`. Its
//!   claimed doubling dimension and diameter are verified exactly by the
//!   test suite (Lemma 5.8), and it materializes as a real
//!   [`doubling_metric::Graph`] so the workspace's schemes can run on it.
//! * [`counting`] — the congruent-naming pigeonhole (Lemmas 5.4–5.5):
//!   log-domain bounds for paper-scale parameters, plus an *exact*
//!   brute-force verification on small instances: for any concrete
//!   table-assignment function, the largest family of namings that agree
//!   on a node set's tables is at least `n!/2^{β·|V'|}`.
//! * [`game`] — the search game the counting argument reduces routing to:
//!   a searcher at the root must visit subtrees until it finds the target
//!   (tables of congruent namings cannot reveal its location, Corollary
//!   5.7); the worst-case placement against *any* visit order costs at
//!   least `(9 − ε)·d` (Claims 5.9–5.11). The game module evaluates
//!   arbitrary visit orders, natural strategies, locally-optimized orders,
//!   and a `β`-bit-advice relaxation — the curve Figure 3's experiment
//!   (F3 in EXPERIMENTS.md) reports.

#![warn(missing_docs)]

pub mod claims;
pub mod counting;
pub mod game;
pub mod tree;

pub use tree::{LbParams, LowerBoundTree};
