//! The Figure-3 tree construction (Section 5.2).
//!
//! Given `ε ∈ (0, 8)`, set `p = ⌈72/ε⌉ + 6` and `q = ⌈48/ε⌉ − 4`. The
//! graph is a root `u` with `p·q` paths `T_{i,j}` hanging off it: path
//! `(i, j)` has `n^{(iq+j+1)/(pq)} − n^{(iq+j)/(pq)}` nodes, internal
//! edges of weight `1/n`, and is attached at its middle node by an edge of
//! weight `w_{i,j} = 2^i(q + j)`.
//!
//! To keep exact integer arithmetic we scale all weights by `n`: path
//! edges get weight 1 and the attachment edge of `T_{i,j}` gets
//! `n·w_{i,j}`. Normalized quantities (Δ, stretch) are invariant under
//! the scaling.

use doubling_metric::graph::{Dist, Graph, GraphBuilder, NodeId};

/// Parameters of the construction, derived from a rational `ε ∈ (0, 8)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LbParams {
    /// Numerator of `ε`.
    pub eps_num: u64,
    /// Denominator of `ε`.
    pub eps_den: u64,
    /// `p = ⌈72/ε⌉ + 6` — number of weight octaves.
    pub p: usize,
    /// `q = ⌈48/ε⌉ − 4` — subtrees per octave.
    pub q: usize,
}

impl LbParams {
    /// Derives `(p, q)` from `ε = num/den ∈ (0, 8)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ε < 8`.
    pub fn from_eps(eps_num: u64, eps_den: u64) -> Self {
        assert!(eps_den > 0 && eps_num > 0, "epsilon must be positive");
        assert!(eps_num < 8 * eps_den, "epsilon must be below 8");
        let ceil_div = |a: u64, num: u64, den: u64| (a * den).div_ceil(num);
        let p = ceil_div(72, eps_num, eps_den) as usize + 6;
        let q = (ceil_div(48, eps_num, eps_den) as usize).saturating_sub(4).max(1);
        LbParams { eps_num, eps_den, p, q }
    }

    /// `c = p·q`, the number of subtrees; Theorem 1.3 checks
    /// `c < (60/ε)²`.
    pub fn c(&self) -> usize {
        self.p * self.q
    }

    /// `ε` as a float (reporting only).
    pub fn eps_f64(&self) -> f64 {
        self.eps_num as f64 / self.eps_den as f64
    }

    /// The unscaled attachment weight `w_{i,j} = 2^i(q + j)`.
    ///
    /// # Panics
    ///
    /// Panics on shift overflow.
    pub fn w(&self, i: usize, j: usize) -> u64 {
        (1u64.checked_shl(i as u32).expect("weight overflow")) * (self.q + j) as u64
    }
}

/// One subtree `T_{i,j}` of the construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Subtree {
    /// Octave index `i ∈ [p]`.
    pub i: usize,
    /// Within-octave index `j ∈ [q]`.
    pub j: usize,
    /// Unscaled attachment weight `w_{i,j} = 2^i(q + j)`.
    pub w: u64,
    /// Number of path nodes (at least 1).
    pub len: usize,
}

/// The assembled lower-bound tree.
///
/// # Examples
///
/// ```rust
/// use lowerbound::{game, LbParams, LowerBoundTree};
///
/// let params = LbParams::from_eps(4, 1); // ε = 4 ⇒ floor 9 − ε = 5
/// let t = LowerBoundTree::new(params, 1 << 12);
/// let order = game::increasing_weight_order(&t);
/// let (stretch, _) = game::worst_case_stretch(&t, &order);
/// assert!(stretch >= 5.0);
/// ```
#[derive(Debug, Clone)]
pub struct LowerBoundTree {
    params: LbParams,
    n_scale: u64,
    subtrees: Vec<Subtree>,
    total_nodes: usize,
}

impl LowerBoundTree {
    /// Builds the construction targeting `n` nodes.
    ///
    /// Path populations follow the paper's `n^{(iq+j+1)/(pq)} −
    /// n^{(iq+j)/(pq)}` profile (computed in floating point and clamped to
    /// at least one node per path, so small `n` with large `p·q` still
    /// yields a well-formed tree); the population *profile*, not its exact
    /// rounding, is what the counting argument uses.
    pub fn new(params: LbParams, n: usize) -> Self {
        assert!(n >= 2, "need at least two nodes");
        let c = params.c() as f64;
        let nf = n as f64;
        let mut subtrees = Vec::with_capacity(params.c());
        let mut total = 1usize; // root
        for i in 0..params.p {
            for j in 0..params.q {
                let k = (i * params.q + j) as f64;
                let lo = nf.powf(k / c);
                let hi = nf.powf((k + 1.0) / c);
                let len = ((hi.round() - lo.round()) as isize).max(1) as usize;
                total += len;
                subtrees.push(Subtree { i, j, w: params.w(i, j), len });
            }
        }
        LowerBoundTree { params, n_scale: n as u64, subtrees, total_nodes: total }
    }

    /// The parameters.
    pub fn params(&self) -> &LbParams {
        &self.params
    }

    /// The subtrees in `(i, j)` lexicographic order (increasing weight
    /// within an octave).
    pub fn subtrees(&self) -> &[Subtree] {
        &self.subtrees
    }

    /// Total node count (root + all paths).
    pub fn total_nodes(&self) -> usize {
        self.total_nodes
    }

    /// The scaled attachment weight of a subtree (`n·w_{i,j}`).
    pub fn scaled_w(&self, s: &Subtree) -> Dist {
        self.n_scale * s.w
    }

    /// The normalized diameter `Δ` of the construction (in scaled units,
    /// `min weight = 1`): twice the largest root-to-leaf distance.
    pub fn normalized_diameter(&self) -> u128 {
        let mut max_depth: u128 = 0;
        for s in &self.subtrees {
            let depth = self.scaled_w(s) as u128 + (s.len as u128) / 2;
            max_depth = max_depth.max(depth);
        }
        2 * max_depth
    }

    /// Theorem 1.3's diameter envelope `2^{6+1/ε}·(96/ε)·n` (the explicit
    /// constant behind `O(2^{1/ε} n)`): `Δ ≤ 2·n·w_{p−1,q−1} + n ≤
    /// 2·n·2^{p−1}·(2q−1) + n`, with `p − 1 ≤ 72/ε + 6` and
    /// `2q − 1 ≤ 96/ε`.
    pub fn delta_envelope(&self) -> u128 {
        let wmax = self.params.w(self.params.p - 1, self.params.q - 1) as u128;
        2 * self.n_scale as u128 * wmax + self.n_scale as u128
    }

    /// Materializes the construction as a weighted graph. Node 0 is the
    /// root; each subtree's nodes are contiguous, attached at the middle.
    ///
    /// Only call for modest `total_nodes` (the metric layer is `Θ(n²)`).
    pub fn to_graph(&self) -> Graph {
        let mut b = GraphBuilder::new(self.total_nodes);
        let mut next: NodeId = 1;
        for s in &self.subtrees {
            let first = next;
            for k in 0..s.len.saturating_sub(1) {
                b.edge(first + k as NodeId, first + k as NodeId + 1, 1).expect("valid path edge");
            }
            let middle = first + (s.len / 2) as NodeId;
            b.edge(0, middle, self.scaled_w(s)).expect("valid attachment edge");
            next += s.len as NodeId;
        }
        b.build().expect("construction is a tree")
    }

    /// The node-id range of a subtree in [`Self::to_graph`]'s numbering.
    pub fn subtree_node_range(&self, index: usize) -> std::ops::Range<NodeId> {
        let mut start: NodeId = 1;
        for s in &self.subtrees[..index] {
            start += s.len as NodeId;
        }
        start..start + self.subtrees[index].len as NodeId
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doubling_metric::doubling;
    use doubling_metric::space::MetricSpace;

    #[test]
    fn params_match_paper_formulas() {
        // ε = 4: p = 18 + 6 = 24, q = 12 − 4 = 8.
        let p = LbParams::from_eps(4, 1);
        assert_eq!(p.p, 24);
        assert_eq!(p.q, 8);
        assert_eq!(p.c(), 192);
        // c < (60/ε)² = 225.
        assert!(p.c() < 225);
        // ε = 2: p = 42, q = 20.
        let p2 = LbParams::from_eps(2, 1);
        assert_eq!(p2.p, 42);
        assert_eq!(p2.q, 20);
        assert!(p2.c() < (60.0f64 / 2.0).powi(2) as usize);
    }

    #[test]
    fn weights_are_strictly_increasing_in_lex_order() {
        let params = LbParams::from_eps(4, 1);
        let t = LowerBoundTree::new(params, 512);
        let ws: Vec<u64> = t.subtrees().iter().map(|s| s.w).collect();
        for w in ws.windows(2) {
            assert!(w[0] < w[1], "weights must strictly increase: {} {}", w[0], w[1]);
        }
        // Octave boundary: w_{i+1,0} = 2^{i+1}·q vs w_{i,q−1} = 2^i(2q−1):
        // 2q > 2q−1 ✓ handled by the strict check above.
    }

    #[test]
    fn population_profile_is_nondecreasing_overall() {
        let params = LbParams::from_eps(6, 1);
        let t = LowerBoundTree::new(params, 4096);
        // Later subtrees hold (weakly) more nodes, and the last holds the
        // bulk (n − n^{(c−1)/c}).
        let lens: Vec<usize> = t.subtrees().iter().map(|s| s.len).collect();
        assert!(lens.last().unwrap() > &1);
        assert!(lens.iter().rev().take(3).sum::<usize>() > lens.len());
    }

    #[test]
    fn diameter_within_theorem_envelope() {
        for &(num, den) in &[(2u64, 1u64), (4, 1), (6, 1)] {
            let params = LbParams::from_eps(num, den);
            let t = LowerBoundTree::new(params, 1024);
            assert!(
                t.normalized_diameter() <= t.delta_envelope(),
                "Δ {} exceeds envelope {} at ε={num}/{den}",
                t.normalized_diameter(),
                t.delta_envelope()
            );
        }
    }

    #[test]
    fn graph_materialization_is_consistent() {
        let params = LbParams::from_eps(6, 1);
        let t = LowerBoundTree::new(params, 256);
        let g = t.to_graph();
        assert_eq!(g.node_count(), t.total_nodes());
        assert_eq!(g.edge_count(), t.total_nodes() - 1, "must be a tree");
        // Root degree equals the number of subtrees.
        assert_eq!(g.degree(0), t.subtrees().len());
        // Subtree ranges partition 1..n.
        let mut seen = vec![false; g.node_count()];
        seen[0] = true;
        for k in 0..t.subtrees().len() {
            for v in t.subtree_node_range(k) {
                assert!(!seen[v as usize]);
                seen[v as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn doubling_dimension_obeys_lemma_5_8() {
        // Lemma 5.8: α ≤ 6 − log ε, i.e. doubling constant ≤ 64/ε.
        // ε = 4 → constant ≤ 16; ε = 2 → ≤ 32. The greedy estimator
        // upper-bounds the true constant, so it must stay within a small
        // factor of the bound.
        for &(num, bound) in &[(4u64, 16.0f64), (2, 32.0)] {
            let params = LbParams::from_eps(num, 1);
            let t = LowerBoundTree::new(params, 192);
            let g = t.to_graph();
            let m = MetricSpace::new(&g);
            let est = doubling::estimate(&m, Some(20));
            assert!(
                (est.max_cover as f64) <= 2.0 * bound,
                "greedy cover {} far above Lemma 5.8 bound {bound} at ε={num}",
                est.max_cover
            );
        }
    }

    #[test]
    fn distances_match_construction() {
        let params = LbParams::from_eps(6, 1);
        let t = LowerBoundTree::new(params, 128);
        let g = t.to_graph();
        let m = MetricSpace::new(&g);
        // Root to a subtree's middle node = scaled attachment weight.
        for (k, s) in t.subtrees().iter().enumerate() {
            let range = t.subtree_node_range(k);
            let middle = range.start + (s.len / 2) as NodeId;
            assert_eq!(m.dist(0, middle), t.scaled_w(s));
        }
    }

    #[test]
    #[should_panic]
    fn rejects_eps_out_of_range() {
        LbParams::from_eps(8, 1);
    }
}
