//! The congruent-naming pigeonhole (Section 5.1).
//!
//! Lemma 5.4: for any routing-configuration function `f` (mapping a naming
//! and a node to the node's `β`-bit table) there is a table assignment `g`
//! such that the family of namings *congruent* on the prefix sets
//! `V_0 ∪ … ∪ V_i` has size at least `n!/2^{β·n^{i/c}}`. The proof is
//! pure pigeonhole, so it is directly executable:
//!
//! * [`log2_congruent_lower_bound`] evaluates the bound in the log domain
//!   for paper-scale parameters (where `n!` overflows everything);
//! * [`largest_congruent_family`] brute-forces the *exact* largest family
//!   for a concrete `f` on small `n`, which the tests check against the
//!   pigeonhole bound — Lemma 5.4 verified end-to-end, not just asserted.

use netsim::naming::Naming;

/// `log₂(n!)` via the exact sum of logs (adequate for `n ≤ 10^7`).
pub fn log2_factorial(n: u64) -> f64 {
    (2..=n).map(|k| (k as f64).log2()).sum()
}

/// Lemma 5.4's bound in the log domain: `log₂ |𝓛_i| ≥ log₂(n!) −
/// β·n^{i/c}`.
pub fn log2_congruent_lower_bound(n: u64, beta: f64, i: u32, c: u32) -> f64 {
    assert!(c > 0 && i <= c);
    log2_factorial(n) - beta * (n as f64).powf(i as f64 / c as f64)
}

/// All namings of `n` nodes (n! permutations; keep `n ≤ 8`).
pub fn all_namings(n: usize) -> Vec<Naming> {
    assert!(n <= 8, "factorial enumeration limited to n ≤ 8");
    let mut out = Vec::new();
    let mut perm: Vec<u32> = (0..n as u32).collect();
    permute(&mut perm, 0, &mut out);
    out
}

fn permute(perm: &mut Vec<u32>, k: usize, out: &mut Vec<Naming>) {
    if k == perm.len() {
        out.push(Naming::from_names(perm.clone()).expect("permutation"));
        return;
    }
    for i in k..perm.len() {
        perm.swap(k, i);
        permute(perm, k + 1, out);
        perm.swap(k, i);
    }
}

/// The exact size of the largest family of namings whose `f`-tables agree
/// on every node of `prefix` — the `max_g |𝓛'|` Lemma 5.4 lower-bounds by
/// `n!/2^{β·|prefix|}` when `f` produces `β`-bit tables.
///
/// `f(naming, v)` must return the table value configured at `v` under the
/// naming (any deterministic preprocessing counts).
pub fn largest_congruent_family<F>(n: usize, prefix: &[u32], f: F) -> usize
where
    F: Fn(&Naming, u32) -> u64,
{
    use std::collections::HashMap;
    let mut buckets: HashMap<Vec<u64>, usize> = HashMap::new();
    for naming in all_namings(n) {
        let key: Vec<u64> = prefix.iter().map(|&v| f(&naming, v)).collect();
        *buckets.entry(key).or_insert(0) += 1;
    }
    buckets.values().copied().max().unwrap_or(0)
}

/// Lemma 5.5's observation made executable for small instances: the set
/// of names that can appear on a given node set across a naming family.
/// Returns `(always_used, never_used)` — `Y_i` and `N_i` in the paper.
pub fn name_usage(namings: &[Naming], node_set: &[u32]) -> (Vec<u32>, Vec<u32>) {
    assert!(!namings.is_empty());
    let n = namings[0].n();
    let mut always = vec![true; n];
    let mut never = vec![true; n];
    for naming in namings {
        let used: std::collections::HashSet<u32> =
            node_set.iter().map(|&v| naming.name_of(v)).collect();
        for name in 0..n as u32 {
            if used.contains(&name) {
                never[name as usize] = false;
            } else {
                always[name as usize] = false;
            }
        }
    }
    let y = (0..n as u32).filter(|&x| always[x as usize]).collect();
    let nn = (0..n as u32).filter(|&x| never[x as usize]).collect();
    (y, nn)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_factorial_matches_small_values() {
        assert_eq!(log2_factorial(1), 0.0);
        assert!((log2_factorial(4) - (24.0f64).log2()).abs() < 1e-9);
        assert!((log2_factorial(6) - (720.0f64).log2()).abs() < 1e-9);
    }

    #[test]
    fn paper_scale_bound_is_positive() {
        // At n = 2^20, β = n^{(ε/60)²} with ε = 4 → β = n^{1/225} ≈ 1.06…
        // the congruent family at every prefix stays astronomically large.
        let n = 1u64 << 20;
        let beta = (n as f64).powf(1.0 / 225.0);
        let c = 192;
        for i in [1u32, 96, 191] {
            let lb = log2_congruent_lower_bound(n, beta, i, c);
            assert!(lb > 0.0, "bound must be positive at i={i}: {lb}");
        }
    }

    #[test]
    fn enumeration_counts_factorial() {
        assert_eq!(all_namings(1).len(), 1);
        assert_eq!(all_namings(3).len(), 6);
        assert_eq!(all_namings(5).len(), 120);
    }

    #[test]
    fn pigeonhole_holds_for_concrete_schemes_exactly() {
        // Lemma 5.4 verified end-to-end: for several concrete β-bit table
        // functions, the largest congruent family is ≥ n!/2^{β·|prefix|}.
        let n = 6usize;
        let fact = 720usize;
        type TableFn = Box<dyn Fn(&Naming, u32) -> u64>;
        let cases: Vec<(&str, u32, TableFn)> = vec![
            ("name-low-bit", 1, Box::new(|nm: &Naming, v: u32| (nm.name_of(v) & 1) as u64)),
            ("name-two-bits", 2, Box::new(|nm: &Naming, v: u32| (nm.name_of(v) & 3) as u64)),
            ("neighbor-of-zero", 2, Box::new(|nm: &Naming, _v: u32| (nm.node_of(0) & 3) as u64)),
        ];
        for (label, beta, f) in cases {
            for prefix_len in 1..=3usize {
                let prefix: Vec<u32> = (0..prefix_len as u32).collect();
                let family = largest_congruent_family(n, &prefix, &f);
                let bound = fact as f64 / 2f64.powi((beta as usize * prefix_len) as i32);
                assert!(
                    family as f64 >= bound,
                    "{label}: family {family} below pigeonhole bound {bound} at prefix {prefix_len}"
                );
            }
        }
    }

    #[test]
    fn name_usage_identifies_pinned_and_excluded_names() {
        // Family: all namings fixing name_of(0) = 0.
        let namings: Vec<Naming> =
            all_namings(4).into_iter().filter(|nm| nm.name_of(0) == 0).collect();
        assert_eq!(namings.len(), 6);
        let (always, never) = name_usage(&namings, &[0]);
        assert_eq!(always, vec![0], "name 0 is always on node 0");
        assert_eq!(never, vec![1, 2, 3], "other names never appear on node 0");
        // On the complement set {1,2,3}: names 1..3 always, 0 never.
        let (always2, never2) = name_usage(&namings, &[1, 2, 3]);
        assert_eq!(always2, vec![1, 2, 3]);
        assert_eq!(never2, vec![0]);
    }

    #[test]
    fn lemma_5_5_target_name_exists_on_small_instance() {
        // For an uninformative table function, some name is neither pinned
        // nor excluded on every prefix set — the "ambiguous target" Lemma
        // 5.5 needs.
        let n = 5usize;
        let f = |nm: &Naming, v: u32| (nm.name_of(v) & 1) as u64;
        // The largest congruent family for prefix {0,1}.
        use std::collections::HashMap;
        let mut buckets: HashMap<Vec<u64>, Vec<Naming>> = HashMap::new();
        for nm in all_namings(n) {
            let key = vec![f(&nm, 0), f(&nm, 1)];
            buckets.entry(key).or_default().push(nm);
        }
        let family = buckets.values().max_by_key(|v| v.len()).unwrap();
        // Check some name is ambiguous about membership in {2,3}: appears
        // there under one naming, elsewhere under another.
        let (always, never) = name_usage(family, &[2, 3]);
        let ambiguous = (0..n as u32).any(|x| !always.contains(&x) && !never.contains(&x));
        assert!(ambiguous, "no ambiguous target name found");
    }
}
