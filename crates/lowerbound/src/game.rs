//! The adversarial search game behind Theorem 1.3.
//!
//! Corollary 5.7 reduces name-independent routing on the Figure-3 tree to
//! a search game: the routing tables of already-visited subtrees cannot
//! reveal the target's location among congruent namings, so a scheme's
//! execution is, in the worst case, a fixed *visit order* over the
//! subtrees. Placing the target in subtree `T` charges
//!
//! `cost(T) = 2·Σ_{k before T} (attach_k + walk_k) + d(root, T)`,
//!
//! (enter-and-return for every earlier subtree, then the final descent),
//! against the optimum `d(root, T)`. Claims 5.9–5.11 show every order has
//! a placement with ratio at least `9 − ε`.
//!
//! This module evaluates that worst case exactly for arbitrary orders,
//! ships the natural strategies, a local-search order optimizer (to probe
//! how close to 9 a clever scheme can get), and a `β`-bit advice
//! relaxation: with `β` bits of location advice the searcher restricts its
//! sweep to a `2^{−β}` fraction of the subtrees, which is how the
//! stretch-vs-table-bits trade-off of Theorem 1.3 shows up empirically
//! (experiment F3).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tree::LowerBoundTree;

/// Exact cost of visiting subtree `k` (enter, sweep the path, return):
/// twice the attachment weight plus a full path walk out and back from the
/// middle (`≤ 2·len` in scaled units, negligible against `n·w` but
/// charged for honesty).
fn visit_cost(t: &LowerBoundTree, k: usize) -> u128 {
    let s = &t.subtrees()[k];
    2 * t.scaled_w(s) as u128 + 2 * s.len as u128
}

/// Distance from the root to the *nearest* node of subtree `k` — the
/// adversary places the target at the attachment middle, minimizing the
/// denominator.
fn target_dist(t: &LowerBoundTree, k: usize) -> u128 {
    t.scaled_w(&t.subtrees()[k]) as u128
}

/// The worst-case stretch of a visit `order` (a permutation of subtree
/// indices), and the index of the witnessing subtree.
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..subtrees.len()`.
pub fn worst_case_stretch(t: &LowerBoundTree, order: &[usize]) -> (f64, usize) {
    let m = t.subtrees().len();
    assert_eq!(order.len(), m, "order must cover all subtrees");
    let mut seen = vec![false; m];
    for &k in order {
        assert!(!seen[k], "order must be a permutation");
        seen[k] = true;
    }

    let mut prefix: u128 = 0;
    let mut worst = (0.0f64, order[0]);
    for &k in order {
        let d = target_dist(t, k);
        // The searcher finds the target upon entering its subtree: pay the
        // earlier sweeps plus the final descent d.
        let cost = prefix + d;
        let ratio = cost as f64 / d as f64;
        if ratio > worst.0 {
            worst = (ratio, k);
        }
        prefix += visit_cost(t, k);
    }
    worst
}

/// The increasing-weight order (cheapest subtree first) — the natural
/// strategy an uninformed scheme uses, and the shape Algorithm 3 takes on
/// this graph.
pub fn increasing_weight_order(t: &LowerBoundTree) -> Vec<usize> {
    let mut order: Vec<usize> = (0..t.subtrees().len()).collect();
    order.sort_by_key(|&k| (t.subtrees()[k].w, k));
    order
}

/// A seeded random order (baseline for the optimizer).
pub fn random_order(t: &LowerBoundTree, seed: u64) -> Vec<usize> {
    use rand::seq::SliceRandom;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..t.subtrees().len()).collect();
    order.shuffle(&mut rng);
    order
}

/// Local-search optimization of the visit order: random adjacent swaps and
/// random relocations, keeping improvements. Returns the best order found
/// — an upper bound on how well *any* scheme can do, used to show the gap
/// to 9 − ε is real.
pub fn optimize_order(t: &LowerBoundTree, iters: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best = increasing_weight_order(t);
    let mut best_score = worst_case_stretch(t, &best).0;
    let m = best.len();
    if m < 2 {
        return best;
    }
    let mut cur = best.clone();
    for _ in 0..iters {
        let mut cand = cur.clone();
        if rng.gen_bool(0.5) {
            let a = rng.gen_range(0..m);
            let b = rng.gen_range(0..m);
            cand.swap(a, b);
        } else {
            let a = rng.gen_range(0..m);
            let b = rng.gen_range(0..m);
            let v = cand.remove(a);
            cand.insert(b, v);
        }
        let score = worst_case_stretch(t, &cand).0;
        if score < best_score {
            best_score = score;
            best = cand.clone();
            cur = cand;
        } else if rng.gen_bool(0.1) {
            cur = cand; // occasional sideways move
        }
    }
    best
}

/// Exact minimum worst-case stretch over *all* visit orders, by bitmask
/// dynamic programming, restricted to the first `limit` subtrees (in
/// `(i, j)` order) as a self-contained sub-game.
///
/// Key fact making the DP valid: the prefix cost paid before visiting
/// subtree `k` depends only on the *set* of subtrees already visited, not
/// their order, so `f(S) = min_{k ∈ S} max(f(S∖{k}), (cost(S∖{k}) +
/// d_k)/d_k)` computes the optimum in `O(2^c · c)`.
///
/// Returns `(optimal stretch, optimal order)`.
///
/// # Panics
///
/// Panics if `limit` is 0 or above 22 (memory).
pub fn optimal_order_exact(t: &LowerBoundTree, limit: usize) -> (f64, Vec<usize>) {
    let c = limit.min(t.subtrees().len());
    assert!((1..=22).contains(&c), "bitmask DP limited to 1..=22 subtrees");
    let visit: Vec<u128> = (0..c).map(|k| visit_cost(t, k)).collect();
    let dist: Vec<u128> = (0..c).map(|k| target_dist(t, k)).collect();

    let full = 1usize << c;
    // cost(S) = Σ_{k∈S} visit_k, computed incrementally.
    let mut cost = vec![0u128; full];
    for s in 1..full {
        let k = s.trailing_zeros() as usize;
        cost[s] = cost[s & (s - 1)] + visit[k];
    }
    let mut f = vec![f64::INFINITY; full];
    let mut choice = vec![usize::MAX; full];
    f[0] = 1.0;
    for s in 1..full {
        let mut rest = s;
        while rest != 0 {
            let k = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            let prev = s & !(1 << k);
            let ratio = (cost[prev] + dist[k]) as f64 / dist[k] as f64;
            let val = f[prev].max(ratio);
            if val < f[s] {
                f[s] = val;
                choice[s] = k;
            }
        }
    }
    // Reconstruct the order (k chosen last in the recurrence is visited
    // last among S).
    let mut order = Vec::with_capacity(c);
    let mut s = full - 1;
    while s != 0 {
        let k = choice[s];
        order.push(k);
        s &= !(1 << k);
    }
    order.reverse();
    (f[full - 1], order)
}

/// The advice relaxation: the scheme's tables amount to `β` bits of
/// location information, modelled as the searcher knowing which of `2^β`
/// contiguous groups of subtrees holds the target; it sweeps only that
/// group (in the given order restricted to the group). Returns the
/// worst-case stretch over all groups and placements.
///
/// `β = 0` recovers [`worst_case_stretch`]; `β ≥ log₂(#subtrees)` gives
/// stretch 1 (direct descent).
pub fn advice_stretch(t: &LowerBoundTree, order: &[usize], beta: u32) -> f64 {
    let m = t.subtrees().len();
    let groups = (1usize << beta.min(31)).min(m);
    // Group subtrees by weight rank into `groups` contiguous classes.
    let by_weight = increasing_weight_order(t);
    let mut group_of = vec![0usize; m];
    for (rank, &k) in by_weight.iter().enumerate() {
        group_of[k] = rank * groups / m;
    }
    let mut worst = 1.0f64;
    for g in 0..groups {
        let sub_order: Vec<usize> = order.iter().copied().filter(|&k| group_of[k] == g).collect();
        if sub_order.is_empty() {
            continue;
        }
        let mut prefix: u128 = 0;
        for &k in &sub_order {
            let d = target_dist(t, k);
            let ratio = (prefix + d) as f64 / d as f64;
            worst = worst.max(ratio);
            prefix += visit_cost(t, k);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{LbParams, LowerBoundTree};

    fn tree(eps_num: u64, n: usize) -> LowerBoundTree {
        LowerBoundTree::new(LbParams::from_eps(eps_num, 1), n)
    }

    #[test]
    fn increasing_weight_order_exceeds_nine_minus_eps() {
        // Theorem 1.3: every order pays ≥ 9 − ε.
        for &eps in &[2u64, 4, 6] {
            let t = tree(eps, 1 << 16);
            let order = increasing_weight_order(&t);
            let (stretch, _) = worst_case_stretch(&t, &order);
            assert!(
                stretch >= 9.0 - eps as f64,
                "increasing-weight stretch {stretch} below 9−ε at ε={eps}"
            );
        }
    }

    #[test]
    fn random_orders_exceed_nine_minus_eps() {
        let t = tree(4, 1 << 14);
        for seed in 0..10 {
            let order = random_order(&t, seed);
            let (stretch, _) = worst_case_stretch(&t, &order);
            assert!(stretch >= 5.0, "random order stretch {stretch} below 9−ε=5");
        }
    }

    #[test]
    fn optimized_orders_cannot_beat_the_bound() {
        // The theorem's content: even the best order stays above 9 − ε.
        for &eps in &[4u64, 6] {
            let t = tree(eps, 1 << 14);
            let best = optimize_order(&t, 3000, 7);
            let (stretch, _) = worst_case_stretch(&t, &best);
            assert!(
                stretch >= 9.0 - eps as f64,
                "optimized stretch {stretch} beats 9−ε at ε={eps} — lower bound violated!"
            );
        }
    }

    #[test]
    fn optimization_narrows_but_cannot_close_the_gap() {
        // The oblivious sweep pays Θ(q) (the prefix sum of a dense
        // geometric sequence with ratio 2^{1/q}); clever orders skip
        // subtrees geometrically and get close to 9 — but Theorem 1.3 says
        // never below 9 − ε.
        let t = tree(4, 1 << 14);
        let (oblivious, _) = worst_case_stretch(&t, &increasing_weight_order(&t));
        let (optimized, _) = worst_case_stretch(&t, &optimize_order(&t, 4000, 11));
        assert!(optimized <= oblivious, "optimizer must not be worse: {optimized} vs {oblivious}");
        assert!(optimized >= 5.0, "optimized {optimized} violates 9 − ε = 5");
        assert!(oblivious > 9.0, "oblivious sweep should pay well above 9: {oblivious}");
    }

    #[test]
    fn advice_monotonically_helps() {
        let t = tree(4, 1 << 14);
        let order = increasing_weight_order(&t);
        let mut prev = f64::INFINITY;
        for beta in [0u32, 1, 2, 4, 8, 16] {
            let s = advice_stretch(&t, &order, beta);
            assert!(
                s <= prev + 1e-9,
                "advice must not hurt: beta={beta} gives {s}, previous {prev}"
            );
            prev = s;
        }
        // Full advice → direct descent.
        assert!(
            (advice_stretch(&t, &order, 30) - 1.0).abs() < 1e-9,
            "full advice must give stretch 1"
        );
    }

    #[test]
    fn zero_advice_matches_worst_case() {
        let t = tree(6, 4096);
        let order = increasing_weight_order(&t);
        let a = advice_stretch(&t, &order, 0);
        let (w, _) = worst_case_stretch(&t, &order);
        assert!((a - w).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn rejects_non_permutation() {
        let t = tree(4, 1024);
        let mut order = increasing_weight_order(&t);
        order[0] = order[1];
        worst_case_stretch(&t, &order);
    }

    /// A sub-game over the first `limit` subtrees, for comparing the exact
    /// DP against heuristics on the same instance.
    fn sub_worst(t: &LowerBoundTree, order: &[usize], limit: usize) -> f64 {
        // Evaluate the order restricted to indices < limit, as its own
        // full game (same formula as worst_case_stretch on the subset).
        let mut prefix: u128 = 0;
        let mut worst = 1.0f64;
        for &k in order.iter().filter(|&&k| k < limit) {
            let d = (t.scaled_w(&t.subtrees()[k])) as u128;
            worst = worst.max((prefix + d) as f64 / d as f64);
            prefix += 2 * t.scaled_w(&t.subtrees()[k]) as u128 + 2 * t.subtrees()[k].len as u128;
        }
        worst
    }

    #[test]
    fn exact_dp_is_a_lower_bound_for_heuristics() {
        let t = tree(4, 1 << 12);
        let limit = 14;
        let (opt, opt_order) = optimal_order_exact(&t, limit);
        // The returned order achieves the returned value.
        assert!((sub_worst(&t, &opt_order, limit) - opt).abs() < 1e-9);
        // No heuristic order beats the exact optimum on the sub-game.
        for order in [increasing_weight_order(&t), random_order(&t, 1), random_order(&t, 2)] {
            assert!(sub_worst(&t, &order, limit) >= opt - 1e-9);
        }
    }

    #[test]
    fn exact_dp_on_trivial_instances() {
        let t = tree(6, 256);
        let (opt1, order1) = optimal_order_exact(&t, 1);
        assert_eq!(order1, vec![0]);
        assert!((opt1 - 1.0).abs() < 1e-9, "single subtree is found directly: {opt1}");
        let (opt2, order2) = optimal_order_exact(&t, 2);
        assert_eq!(order2.len(), 2);
        assert!(opt2 >= 1.0);
    }

    #[test]
    fn exact_optimum_grows_with_instance_size() {
        // More subtrees → the adversary has more placements → the optimum
        // cannot improve.
        let t = tree(4, 1 << 12);
        let mut prev = 0.0;
        for limit in [2usize, 4, 8, 12, 16] {
            let (opt, _) = optimal_order_exact(&t, limit);
            assert!(opt >= prev - 1e-9, "optimum shrank: {opt} < {prev} at {limit}");
            prev = opt;
        }
        // With 16 of the subtrees the optimum is already well above 1:
        // the information-theoretic tension is real.
        assert!(prev > 3.0, "16-subtree optimum {prev}");
    }
}
