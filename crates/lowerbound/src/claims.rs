//! Executable versions of the proof steps of Theorem 1.3 (Claims
//! 5.9–5.11).
//!
//! The proof analyzes an arbitrary routing execution through the weights
//! of the subtrees it visits: let `σ = ⟨b_0 < b_1 < … < b_{m−1}⟩` be the
//! maximal increasing subsequence of visited attachment weights (each
//! `b_i` the first visited weight exceeding `b_{i−1}`), and
//! `A_i = Σ_{j≤i} b_j`. Then:
//!
//! * **Claim 5.9**: if the scheme's stretch is below `9−ε`, then
//!   `A_i ≤ (4−ε/3)·b_i` for `i ≤ m−3` (and the analogous bound at octave
//!   jumps) — the prefix sums must stay within 4× the current maximum;
//! * **Claim 5.10**: `σ` is long (`m ≥ p/2`) because consecutive `b`s can
//!   grow by at most 4×;
//! * **Claim 5.11**: some `k ≤ m−4` has `A_{k+1}/b_k > 4 − ε/4` — prefix
//!   sums *cannot* stay within the Claim 5.9 budget forever. The
//!   contradiction between 5.9 and 5.11 is the theorem.
//!
//! [`analyze`] computes `σ`, the `A_i`, and the Claim 5.11 witness for any
//! visit order, so the tension is observable on concrete executions: for
//! every order we can produce, the witness ratio exceeds `4 − ε/4`, which
//! forces the stretch bound `≥ 9 − ε` that `game::worst_case_stretch`
//! measures directly.

use crate::tree::LowerBoundTree;

/// The σ-sequence analysis of one visit order.
#[derive(Debug, Clone)]
pub struct SigmaAnalysis {
    /// The maximal increasing subsequence of visited weights (unscaled
    /// `w_{i,j}` values).
    pub sigma: Vec<u64>,
    /// Prefix sums `A_i = Σ_{j≤i} b_j`.
    pub prefix: Vec<u64>,
    /// The Claim 5.11 witness: `(k, A_{k+1}/b_k)` maximizing the ratio
    /// over `k < m−1`.
    pub witness: Option<(usize, f64)>,
    /// Maximum growth ratio `b_{i+1}/b_i` (Claim 5.10's step bound).
    pub max_step_ratio: f64,
}

/// Computes the σ-sequence machinery of Section 5.2 for a visit order.
///
/// # Panics
///
/// Panics if `order` is not a permutation of the subtree indices.
pub fn analyze(t: &LowerBoundTree, order: &[usize]) -> SigmaAnalysis {
    let m = t.subtrees().len();
    assert_eq!(order.len(), m, "order must cover all subtrees");
    let mut seen = vec![false; m];
    for &k in order {
        assert!(!seen[k], "order must be a permutation");
        seen[k] = true;
    }

    // σ: first-passage maxima of the weight sequence.
    let mut sigma: Vec<u64> = Vec::new();
    for &k in order {
        let w = t.subtrees()[k].w;
        if sigma.last().is_none_or(|&last| w > last) {
            sigma.push(w);
        }
    }
    let mut prefix = Vec::with_capacity(sigma.len());
    let mut acc = 0u64;
    for &b in &sigma {
        acc += b;
        prefix.push(acc);
    }
    let witness = (0..sigma.len().saturating_sub(1))
        .map(|k| (k, prefix[k + 1] as f64 / sigma[k] as f64))
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite ratios"));
    let max_step_ratio = sigma.windows(2).map(|w| w[1] as f64 / w[0] as f64).fold(1.0f64, f64::max);

    SigmaAnalysis { sigma, prefix, witness, max_step_ratio }
}

/// Claim 5.10's length bound `m ≥ p/2` — checks whether the σ-sequence of
/// an order that (like any correct scheme's execution) eventually visits
/// the heaviest subtree is at least `p/2` long, *given* that its steps
/// respect the `b_{i+1} ≤ 4·b_i` growth cap of the claim's proof.
pub fn sigma_length_bound_holds(t: &LowerBoundTree, a: &SigmaAnalysis) -> bool {
    let p = t.params().p;
    // The claim's hypothesis: step ratios ≤ 4 (true for schemes with
    // stretch < 9−ε by Claim 5.9(2); arbitrary orders may violate it, in
    // which case the length bound does not apply).
    if a.max_step_ratio > 4.0 + 1e-9 {
        return true; // hypothesis void — the implication holds vacuously
    }
    a.sigma.len() >= p / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game;
    use crate::tree::{LbParams, LowerBoundTree};

    fn tree(eps: u64) -> LowerBoundTree {
        LowerBoundTree::new(LbParams::from_eps(eps, 1), 1 << 14)
    }

    #[test]
    fn increasing_order_sigma_is_all_weights() {
        let t = tree(4);
        let order = game::increasing_weight_order(&t);
        let a = analyze(&t, &order);
        // Every weight is a new maximum in increasing order.
        assert_eq!(a.sigma.len(), t.subtrees().len());
        // And the step ratios stay ≤ 2 (consecutive w's within/between
        // octaves).
        assert!(a.max_step_ratio <= 2.0 + 1e-9);
        assert!(sigma_length_bound_holds(&t, &a));
    }

    #[test]
    fn claim_5_11_witness_exceeds_four_minus_eps_quarter() {
        // For every order we can produce, some prefix ratio A_{k+1}/b_k
        // exceeds 4 − ε/4 — the engine of the lower bound.
        for &eps in &[2u64, 4, 6] {
            let t = tree(eps);
            let threshold = 4.0 - eps as f64 / 4.0;
            for order in [
                game::increasing_weight_order(&t),
                game::random_order(&t, 3),
                game::random_order(&t, 9),
                game::optimize_order(&t, 1500, 5),
            ] {
                let a = analyze(&t, &order);
                let (_, ratio) = a.witness.expect("nontrivial sigma");
                assert!(ratio > threshold, "witness ratio {ratio} below {threshold} at eps {eps}");
            }
        }
    }

    #[test]
    fn witness_implies_the_stretch_floor() {
        // The Claim 5.11 witness k: placing the target just past b_k
        // costs ≥ 2·A_{k+1} + d against d ≈ b_k·(1+2/q) — reproducing the
        // final contradiction of the proof numerically.
        let t = tree(4);
        let q = t.params().q as f64;
        let order = game::increasing_weight_order(&t);
        let a = analyze(&t, &order);
        let (k, ratio) = a.witness.unwrap();
        // ratio = A_{k+1}/b_k > 4 − ε/4 ⇒ stretch ≥ 2·ratio/(1+2/q) + 1.
        let implied = 2.0 * ratio / (1.0 + 2.0 / q) + 1.0;
        assert!(implied >= 9.0 - 4.0, "implied stretch {implied} below 9−ε at witness {k}");
        // And the game measurement agrees (it maximizes over placements).
        let (measured, _) = game::worst_case_stretch(&t, &order);
        assert!(measured + 1e-6 >= implied * 0.8, "game {measured} vs implied {implied}");
    }

    #[test]
    fn prefix_sums_are_consistent() {
        let t = tree(6);
        let order = game::random_order(&t, 7);
        let a = analyze(&t, &order);
        assert_eq!(a.sigma.len(), a.prefix.len());
        let mut acc = 0;
        for (i, &b) in a.sigma.iter().enumerate() {
            acc += b;
            assert_eq!(a.prefix[i], acc);
            if i > 0 {
                assert!(a.sigma[i] > a.sigma[i - 1], "sigma must increase");
            }
        }
        // The last sigma element is the global maximum weight.
        let max_w = t.subtrees().iter().map(|s| s.w).max().unwrap();
        assert_eq!(*a.sigma.last().unwrap(), max_w);
    }

    #[test]
    #[should_panic]
    fn analyze_rejects_bad_orders() {
        let t = tree(4);
        let mut order = game::increasing_weight_order(&t);
        order.pop();
        analyze(&t, &order);
    }
}
