//! Route-level observability: segment span trees and route metrics.
//!
//! A delivered [`Route`] carries its Figure-1/2 phase decomposition as
//! [`netsim::Segment`]s; [`route_span_tree`] lifts it into a span tree
//! whose children partition the route's exact cost (see the crate docs for
//! the segment-label ↔ figure correspondence), and [`RouteMetrics`]
//! aggregates whole route populations into the histograms the `profile`
//! binary reports.

use std::collections::BTreeMap;

use netsim::json::Value;
use netsim::Route;

use crate::metrics::{Counter, Log2Histogram};

/// The cost-domain span tree of one route: a root span covering the whole
/// delivery whose children are the segments in travel order.
///
/// Invariant (enforced by `Route::verify` and asserted by this crate's
/// golden test): the children's `cost` values sum exactly to the root's
/// `cost`. Spans here measure *metric cost*, not wall-clock — the route
/// anatomy of Figures 1 and 2.
pub fn route_span_tree(route: &Route) -> Value {
    let children: Vec<Value> = route
        .segments
        .iter()
        .map(|s| {
            Value::Object(vec![
                ("name".into(), s.label.into()),
                ("level".into(), s.level.map_or(Value::Null, Value::from)),
                ("cost".into(), s.cost.into()),
                ("hops".into(), s.hops.into()),
            ])
        })
        .collect();
    Value::Object(vec![
        ("name".into(), "route".into()),
        ("src".into(), route.src.into()),
        ("dst".into(), route.dst.into()),
        ("cost".into(), route.cost.into()),
        ("hops".into(), route.hop_count().into()),
        ("header_bits".into(), route.max_header_bits.into()),
        ("spans".into(), Value::Array(children)),
    ])
}

/// Sum of the route's segment-span costs (equals `route.cost` whenever the
/// route has segments — the golden-test invariant).
pub fn segment_span_sum(route: &Route) -> u64 {
    route.segments.iter().map(|s| s.cost).sum()
}

/// Aggregated route-population metrics: cost, hop-count, and header-bit
/// histograms, plus per-level search-tree lookup tallies and the
/// under-stretch error counter.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RouteMetrics {
    /// Route costs (metric units).
    pub cost: Log2Histogram,
    /// Edge traversals per route.
    pub hops: Log2Histogram,
    /// Maximum header bits per route.
    pub header_bits: Log2Histogram,
    /// Search-tree lookups per hierarchy level: counts every `search` /
    /// `tree-search` segment, keyed by its level (round `k` for Figure 1,
    /// packing index `j` for Figure 2).
    pub search_lookups_by_level: BTreeMap<u32, u64>,
    /// Routes whose recorded stretch fell below 1 (impossible for a sound
    /// recorder; any nonzero value is an under-charging bug surfaced by
    /// the satellite fix in `EvalResult`).
    pub understretch: Counter,
}

impl RouteMetrics {
    /// An empty metric set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one delivered route into the histograms.
    pub fn record(&mut self, route: &Route) {
        self.cost.record(route.cost);
        self.hops.record(route.hop_count() as u64);
        self.header_bits.record(route.max_header_bits);
        for s in &route.segments {
            if matches!(s.label, "search" | "tree-search") {
                *self.search_lookups_by_level.entry(s.level.unwrap_or(0)).or_insert(0) += 1;
            }
        }
    }

    /// Records a route's measured stretch, counting under-stretch
    /// violations (stretch < 1 beyond float tolerance).
    pub fn record_stretch(&mut self, stretch: f64) {
        if stretch < 1.0 - 1e-9 {
            self.understretch.inc();
        }
    }

    /// These metrics as a JSON object.
    pub fn to_json(&self) -> Value {
        let lookups: Vec<(String, Value)> = self
            .search_lookups_by_level
            .iter()
            .map(|(lvl, n)| (lvl.to_string(), Value::from(*n)))
            .collect();
        Value::Object(vec![
            ("cost".into(), self.cost.to_json()),
            ("hops".into(), self.hops.to_json()),
            ("header_bits".into(), self.header_bits.to_json()),
            ("search_lookups_by_level".into(), Value::Object(lookups)),
            ("understretch".into(), self.understretch.get().into()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doubling_metric::{gen, MetricSpace};
    use netsim::RouteRecorder;

    fn two_segment_route() -> (MetricSpace, Route) {
        let m = MetricSpace::new(&gen::grid(4, 4));
        let mut rec = RouteRecorder::new(&m, 0);
        rec.begin_segment("zoom", Some(1));
        rec.walk_shortest(15).unwrap();
        rec.begin_segment("search", Some(2));
        rec.walk_shortest(3).unwrap();
        rec.note_header_bits(9);
        let route = rec.finish();
        (m, route)
    }

    #[test]
    fn span_tree_partitions_cost() {
        let (m, route) = two_segment_route();
        route.verify(&m).unwrap();
        assert_eq!(segment_span_sum(&route), route.cost);
        let tree = route_span_tree(&route);
        let spans = tree.get("spans").and_then(Value::as_array).unwrap();
        assert_eq!(spans.len(), 2);
        let child_sum: u64 =
            spans.iter().map(|s| s.get("cost").and_then(Value::as_u64).unwrap()).sum();
        assert_eq!(child_sum, tree.get("cost").and_then(Value::as_u64).unwrap());
        let child_hops: u64 =
            spans.iter().map(|s| s.get("hops").and_then(Value::as_u64).unwrap()).sum();
        assert_eq!(child_hops, route.hop_count() as u64);
    }

    #[test]
    fn metrics_aggregate_routes() {
        let (m, route) = two_segment_route();
        let mut rm = RouteMetrics::new();
        rm.record(&route);
        rm.record_stretch(route.stretch(&m));
        assert_eq!(rm.cost.count(), 1);
        assert_eq!(rm.hops.max(), Some(route.hop_count() as u64));
        assert_eq!(rm.header_bits.max(), Some(9));
        assert_eq!(rm.search_lookups_by_level.get(&2), Some(&1));
        assert_eq!(rm.understretch.get(), 0);
        rm.record_stretch(0.5);
        assert_eq!(rm.understretch.get(), 1);
        // JSON round-trips.
        let json = rm.to_json();
        assert_eq!(Value::parse(&json.to_string()).unwrap(), json);
    }
}
