//! Standard-format exporters: Chrome trace-event (Perfetto) JSON for
//! recorded [`TraceLog`]s and Prometheus text exposition for registry
//! [`Snapshot`]s.
//!
//! The bespoke JSONL dump from [`crate::trace`] is stable and diffable but
//! opens in nothing; this module renders the same data in formats real
//! viewers ingest:
//!
//! * [`chrome_trace`] — the Trace Event Format
//!   (`{"traceEvents": [...]}`) loadable in Perfetto or `chrome://tracing`.
//!   Spans become `"X"` (complete) events; worker spans (names ending in
//!   `-worker`) are fanned out onto per-`tid` tracks so parallel phases
//!   render as parallel lanes; trace events become `"i"` (instant) events;
//!   registry counters become `"C"` (counter) events.
//! * [`prometheus_text`] — the text exposition format scrapers parse:
//!   counters, gauges, and log₂ histograms with cumulative `_bucket{le=…}`
//!   lines plus `_sum` / `_count`.
//! * [`parse_prometheus_text`] — a minimal parser for the exposition
//!   produced here, used by the round-trip tests and any harness that
//!   wants to assert on scraped values.

use netsim::json::Value;

use crate::metrics::Log2Histogram;
use crate::registry::Snapshot;
use crate::trace::TraceLog;

/// Renders `log` as a Chrome trace-event JSON document. See the module
/// docs for the event mapping; use [`chrome_trace_with_metrics`] to append
/// registry counters as `"C"` events.
pub fn chrome_trace(log: &TraceLog) -> Value {
    chrome_trace_with_metrics(log, None)
}

/// [`chrome_trace`] plus one `"C"` (counter) event per registry counter
/// and gauge from `snapshot`, stamped at the trace's end time so the
/// counter track shows the run's final tallies.
pub fn chrome_trace_with_metrics(log: &TraceLog, snapshot: Option<&Snapshot>) -> Value {
    let mut events = Vec::new();
    // Worker spans with the same parent and name are laid out on tracks
    // tid = 1, 2, … (in recording order); everything else rides tid 0.
    let mut worker_lane: Vec<(Option<usize>, &'static str, u64)> = Vec::new();
    let mut end_ts = 0u64;
    for (i, s) in log.spans.iter().enumerate() {
        end_ts = end_ts.max(s.start_us + s.dur_us);
        let tid = if s.name.ends_with("-worker") {
            match worker_lane.iter_mut().find(|(p, n, _)| *p == s.parent && *n == s.name) {
                Some((_, _, lane)) => {
                    *lane += 1;
                    *lane
                }
                None => {
                    worker_lane.push((s.parent, s.name, 1));
                    1
                }
            }
        } else {
            0
        };
        events.push(Value::Object(vec![
            ("name".into(), s.name.into()),
            ("ph".into(), "X".into()),
            ("ts".into(), s.start_us.into()),
            ("dur".into(), s.dur_us.into()),
            ("pid".into(), 1u64.into()),
            ("tid".into(), tid.into()),
            (
                "args".into(),
                Value::Object(vec![
                    ("span".into(), i.into()),
                    ("parent".into(), s.parent.map_or(Value::Null, Value::from)),
                    ("alloc_bytes".into(), s.alloc_bytes.into()),
                ]),
            ),
        ]));
    }
    for e in &log.events {
        end_ts = end_ts.max(e.at_us);
        let args: Vec<(String, Value)> =
            e.fields.iter().map(|(k, v)| ((*k).to_string(), v.clone())).collect();
        events.push(Value::Object(vec![
            ("name".into(), e.name.into()),
            ("ph".into(), "i".into()),
            ("ts".into(), e.at_us.into()),
            ("pid".into(), 1u64.into()),
            ("tid".into(), 0u64.into()),
            ("s".into(), "t".into()),
            ("args".into(), Value::Object(args)),
        ]));
    }
    if let Some(snap) = snapshot {
        for (name, v) in &snap.counters {
            events.push(counter_event(name, Value::from(*v), end_ts));
        }
        for (name, v) in &snap.gauges {
            events.push(counter_event(name, Value::from(*v), end_ts));
        }
    }
    Value::Object(vec![
        ("traceEvents".into(), Value::Array(events)),
        ("displayTimeUnit".into(), "ms".into()),
    ])
}

fn counter_event(name: &str, value: Value, ts: u64) -> Value {
    Value::Object(vec![
        ("name".into(), name.into()),
        ("ph".into(), "C".into()),
        ("ts".into(), ts.into()),
        ("pid".into(), 1u64.into()),
        ("tid".into(), 0u64.into()),
        ("args".into(), Value::Object(vec![("value".into(), value)])),
    ])
}

/// Maps a metric name to the Prometheus name charset: `[a-zA-Z0-9_:]`,
/// with `.` / `-` / anything else becoming `_`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Renders `snapshot` in the Prometheus text exposition format. Histogram
/// buckets follow the convention: cumulative counts at each non-empty
/// log₂ bucket's inclusive upper bound, a final `+Inf` bucket equal to
/// `_count`, plus `_sum`. Metrics appear in snapshot (name) order, so the
/// exposition is deterministic.
pub fn prometheus_text(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snapshot.counters {
        let name = sanitize_metric_name(name);
        out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
    }
    for (name, v) in &snapshot.gauges {
        let name = sanitize_metric_name(name);
        out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
    }
    for (name, h) in &snapshot.histograms {
        let name = sanitize_metric_name(name);
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let mut cumulative = 0u64;
        for b in 0..=64 {
            let c = h.bucket_count(b);
            if c == 0 {
                continue;
            }
            cumulative += c;
            let le = Log2Histogram::bucket_bounds(b).1;
            out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
        out.push_str(&format!("{name}_sum {}\n", h.sum()));
        out.push_str(&format!("{name}_count {}\n", h.count()));
    }
    out
}

/// One histogram parsed back from exposition text: cumulative
/// `(le, count)` buckets (excluding `+Inf`), plus `_sum` / `_count`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PromHistogram {
    /// Cumulative bucket counts at each listed `le` bound.
    pub buckets: Vec<(u64, u64)>,
    /// Sum of all samples.
    pub sum: u64,
    /// Number of samples.
    pub count: u64,
}

/// Metrics parsed back from Prometheus exposition text.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PromMetrics {
    /// Counters, in exposition order.
    pub counters: Vec<(String, u64)>,
    /// Gauges, in exposition order.
    pub gauges: Vec<(String, f64)>,
    /// Histograms, in exposition order.
    pub histograms: Vec<(String, PromHistogram)>,
}

impl PromMetrics {
    /// Looks up a counter by (sanitized) name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Looks up a gauge by (sanitized) name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Looks up a histogram by (sanitized) name.
    pub fn histogram(&self, name: &str) -> Option<&PromHistogram> {
        self.histograms.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

/// Parses text in the subset of the Prometheus exposition format emitted
/// by [`prometheus_text`]. Returns an error on malformed lines or samples
/// for metrics with no preceding `# TYPE` declaration.
pub fn parse_prometheus_text(text: &str) -> Result<PromMetrics, String> {
    let mut out = PromMetrics::default();
    let mut kind: Option<(String, &'static str)> = None;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| format!("line {}: {} ({line:?})", lineno + 1, msg);
        if let Some(decl) = line.strip_prefix("# TYPE ") {
            let mut parts = decl.split_whitespace();
            let name = parts.next().ok_or_else(|| err("missing metric name"))?;
            let ty = match parts.next() {
                Some("counter") => "counter",
                Some("gauge") => "gauge",
                Some("histogram") => "histogram",
                other => return Err(err(&format!("unsupported type {other:?}"))),
            };
            kind = Some((name.to_string(), ty));
            if ty == "histogram" {
                out.histograms.push((name.to_string(), PromHistogram::default()));
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (metric, value) =
            line.rsplit_once(' ').ok_or_else(|| err("expected `name value` sample"))?;
        let (name, ty) = kind.as_ref().ok_or_else(|| err("sample before # TYPE"))?;
        match *ty {
            "counter" if metric == name => {
                let v = value.parse::<u64>().map_err(|e| err(&e.to_string()))?;
                out.counters.push((name.clone(), v));
            }
            "gauge" if metric == name => {
                let v = value.parse::<f64>().map_err(|e| err(&e.to_string()))?;
                out.gauges.push((name.clone(), v));
            }
            "histogram" => {
                let h = &mut out.histograms.last_mut().expect("pushed at # TYPE").1;
                let v = value.parse::<u64>().map_err(|e| err(&e.to_string()))?;
                if metric == format!("{name}_sum") {
                    h.sum = v;
                } else if metric == format!("{name}_count") {
                    h.count = v;
                } else if let Some(rest) = metric.strip_prefix(name.as_str()) {
                    let le = rest
                        .strip_prefix("_bucket{le=\"")
                        .and_then(|r| r.strip_suffix("\"}"))
                        .ok_or_else(|| err("unrecognized histogram sample"))?;
                    if le != "+Inf" {
                        let le = le.parse::<u64>().map_err(|e| err(&e.to_string()))?;
                        h.buckets.push((le, v));
                    }
                } else {
                    return Err(err("sample does not match declared metric"));
                }
            }
            _ => return Err(err("sample does not match declared metric")),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn sanitizer_maps_to_prometheus_charset() {
        assert_eq!(sanitize_metric_name("route.cost-us"), "route_cost_us");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name("ok_name:v1"), "ok_name:v1");
    }

    #[test]
    fn chrome_trace_of_empty_log_is_valid() {
        let doc = chrome_trace(&TraceLog::default());
        assert_eq!(doc.get("traceEvents").and_then(Value::as_array).map(<[Value]>::len), Some(0));
        assert_eq!(doc.get("displayTimeUnit").and_then(Value::as_str), Some("ms"));
    }

    #[test]
    fn counter_events_are_stamped_at_trace_end() {
        let registry = MetricsRegistry::new();
        registry.counter("routes").add(3);
        registry.gauge("load").set(0.5);
        let doc = chrome_trace_with_metrics(&TraceLog::default(), Some(&registry.snapshot()));
        let events = doc.get("traceEvents").and_then(Value::as_array).unwrap();
        assert_eq!(events.len(), 2);
        for e in events {
            assert_eq!(e.get("ph").and_then(Value::as_str), Some("C"));
        }
        assert_eq!(
            events[0].get("args").and_then(|a| a.get("value")).and_then(Value::as_u64),
            Some(3)
        );
    }
}
