//! Route flight recorder: a fixed-capacity ring buffer of per-hop
//! forensics for the last K route queries.
//!
//! Aggregate metrics say *that* something went wrong; the flight recorder
//! says *where*. Every recorded query keeps its full hop list — each hop
//! attributed to the Figure-1/2 segment (ring walk, search, tree descent…)
//! that produced it via [`netsim::Route::hop_labels`] — plus any recovery
//! interventions made mid-delivery. When an anomaly is observed (a lost
//! packet, an under-stretch route, a conformance clause failure) the
//! record is flagged, and the owning binary dumps the whole ring with
//! [`FlightRecorder::dump_if_anomalous`], so the anomaly ships with the
//! K queries of context that preceded it.
//!
//! The ring holds the **last** [`FlightRecorder::capacity`] queries:
//! recording query `cap + 1` evicts the oldest. A recorder built with
//! [`FlightRecorder::disabled`] (capacity 0) reduces every operation to a
//! branch — the hot-path cost when forensics are off.

use std::collections::VecDeque;
use std::io::Write as _;
use std::path::Path;

use doubling_metric::graph::NodeId;
use netsim::json::Value;
use netsim::recovery::{DeliveryOutcome, RecoveryEvent};
use netsim::route::{Route, RouteError};

/// Default ring capacity used by the experiment binaries.
pub const DEFAULT_CAPACITY: usize = 64;

/// Stretch below `1 − UNDERSTRETCH_TOL` flags an under-stretch anomaly
/// (same tolerance as [`netsim::stats`]).
const UNDERSTRETCH_TOL: f64 = 1e-9;

/// One edge traversal: the node arrived at and the segment (label, level)
/// that governed the hop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HopRecord {
    /// Node the hop arrived at.
    pub node: NodeId,
    /// Segment label (`"zoom"`, `"search"`, `"ring-walk"`, …; `"route"`
    /// for hops outside any recorded segment).
    pub label: &'static str,
    /// Segment level (round `k` / packing index `j`), when the segment
    /// has one.
    pub level: Option<u32>,
}

/// One recorded route query.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecord {
    /// Monotone sequence number (total queries recorded so far).
    pub seq: u64,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// `"delivered"`, or `"lost: <detail>"` for failures.
    pub outcome: String,
    /// Route cost, when delivered.
    pub cost: Option<u64>,
    /// Measured stretch, when known.
    pub stretch: Option<f64>,
    /// Per-hop records, in travel order.
    pub hops: Vec<HopRecord>,
    /// Recovery interventions made during this delivery, in order.
    pub recoveries: Vec<String>,
    /// Anomaly flag: `"loss"`, `"understretch"`, or
    /// `"conformance-failure"`.
    pub anomaly: Option<&'static str>,
}

impl FlightRecord {
    /// The record as a JSON object (one JSONL line in a dump).
    pub fn to_json(&self) -> Value {
        let hops: Vec<Value> = self
            .hops
            .iter()
            .map(|h| {
                Value::Object(vec![
                    ("node".into(), h.node.into()),
                    ("label".into(), h.label.into()),
                    ("level".into(), h.level.map_or(Value::Null, Value::from)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("seq".into(), self.seq.into()),
            ("src".into(), self.src.into()),
            ("dst".into(), self.dst.into()),
            ("outcome".into(), self.outcome.clone().into()),
            ("cost".into(), self.cost.map_or(Value::Null, Value::from)),
            ("stretch".into(), self.stretch.map_or(Value::Null, Value::from)),
            ("hops".into(), Value::Array(hops)),
            (
                "recoveries".into(),
                Value::Array(self.recoveries.iter().map(|r| r.clone().into()).collect()),
            ),
            ("anomaly".into(), self.anomaly.map_or(Value::Null, Value::from)),
        ])
    }
}

/// The ring buffer. See the module docs for semantics.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    cap: usize,
    next_seq: u64,
    ring: VecDeque<FlightRecord>,
    anomalies: u64,
    pending_recoveries: Vec<String>,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` queries.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder { cap: capacity, ..Default::default() }
    }

    /// A capacity-0 recorder: every operation is a branch and nothing is
    /// retained.
    pub fn disabled() -> Self {
        Self::new(0)
    }

    /// Whether this recorder retains anything.
    pub fn enabled(&self) -> bool {
        self.cap > 0
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Records currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Anomalous records seen so far (counted even after eviction).
    pub fn anomalies(&self) -> u64 {
        self.anomalies
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &FlightRecord> {
        self.ring.iter()
    }

    /// Notes a recovery intervention; it attaches to the next recorded
    /// query (recovery events fire mid-delivery, before the outcome).
    pub fn note_recovery(&mut self, ev: &RecoveryEvent) {
        if self.cap == 0 {
            return;
        }
        let line = match ev {
            RecoveryEvent::Detour { at, rejoin, detour_hops } => {
                format!("detour at={at} rejoin={rejoin} hops={detour_hops}")
            }
            RecoveryEvent::Fallback { at, landmark, level } => {
                format!("fallback at={at} landmark={landmark} level={level}")
            }
            RecoveryEvent::Exhausted { at, reason } => {
                format!("exhausted at={at} reason={reason}")
            }
        };
        self.pending_recoveries.push(line);
    }

    /// Records a delivered route; flags `"understretch"` when `stretch`
    /// falls below 1 beyond float tolerance.
    pub fn record_route(&mut self, src: NodeId, dst: NodeId, route: &Route, stretch: f64) {
        if self.cap == 0 {
            return;
        }
        let anomaly = (stretch < 1.0 - UNDERSTRETCH_TOL).then_some("understretch");
        let hops = route
            .hops
            .iter()
            .skip(1)
            .zip(route.hop_labels())
            .map(|(&node, (label, level))| HopRecord { node, label, level })
            .collect();
        self.push(FlightRecord {
            seq: 0,
            src,
            dst,
            outcome: "delivered".into(),
            cost: Some(route.cost),
            stretch: Some(stretch),
            hops,
            recoveries: Vec::new(),
            anomaly,
        });
    }

    /// Records a failed query, flagged `"loss"`.
    pub fn record_error(&mut self, src: NodeId, dst: NodeId, err: &RouteError) {
        if self.cap == 0 {
            return;
        }
        self.push(FlightRecord {
            seq: 0,
            src,
            dst,
            outcome: format!("lost: {err:?}"),
            cost: None,
            stretch: None,
            hops: Vec::new(),
            recoveries: Vec::new(),
            anomaly: Some("loss"),
        });
    }

    /// Records a resilient delivery outcome: delivered routes keep their
    /// hop list and realized stretch; losses are flagged `"loss"` with
    /// the [`netsim::recovery::LossReason`] kind.
    pub fn record_outcome(&mut self, src: NodeId, dst: NodeId, outcome: &DeliveryOutcome) {
        if self.cap == 0 {
            return;
        }
        match outcome {
            DeliveryOutcome::Delivered { stretch, route, .. } => {
                self.record_route(src, dst, route, *stretch);
            }
            DeliveryOutcome::Lost { reason, progress } => {
                self.push(FlightRecord {
                    seq: 0,
                    src,
                    dst,
                    outcome: format!(
                        "lost: {} at {} after {} hops",
                        reason.kind(),
                        progress.reached,
                        progress.hops
                    ),
                    cost: None,
                    stretch: None,
                    hops: Vec::new(),
                    recoveries: Vec::new(),
                    anomaly: Some("loss"),
                });
            }
        }
    }

    /// Flags an out-of-band anomaly (e.g. `"conformance-failure"`): the
    /// most recent record is marked if one exists, and the anomaly counts
    /// toward [`FlightRecorder::anomalies`] either way.
    pub fn note_anomaly(&mut self, kind: &'static str) {
        if self.cap == 0 {
            return;
        }
        self.anomalies += 1;
        if let Some(last) = self.ring.back_mut() {
            if last.anomaly.is_none() {
                last.anomaly = Some(kind);
            }
        }
    }

    fn push(&mut self, mut rec: FlightRecord) {
        rec.seq = self.next_seq;
        self.next_seq += 1;
        rec.recoveries = std::mem::take(&mut self.pending_recoveries);
        if rec.anomaly.is_some() {
            self.anomalies += 1;
        }
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back(rec);
    }

    /// The retained records as JSONL, oldest first.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for rec in &self.ring {
            out.push_str(&rec.to_json().to_string());
            out.push('\n');
        }
        out
    }

    /// Writes the ring to `path` as JSONL when any anomaly was seen;
    /// returns whether a dump was written.
    pub fn dump_if_anomalous(&self, path: impl AsRef<Path>) -> std::io::Result<bool> {
        if self.anomalies == 0 {
            return Ok(false);
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_jsonl().as_bytes())?;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doubling_metric::{gen, MetricSpace};
    use netsim::RouteRecorder;

    fn sample_route(m: &MetricSpace) -> Route {
        let mut rec = RouteRecorder::new(m, 0);
        rec.begin_segment("zoom", Some(1));
        rec.walk_shortest(15).unwrap();
        rec.begin_segment("search", Some(2));
        rec.walk_shortest(3).unwrap();
        rec.finish()
    }

    #[test]
    fn hops_carry_segment_attribution() {
        let m = MetricSpace::new(&gen::grid(4, 4));
        let route = sample_route(&m);
        let mut fr = FlightRecorder::new(8);
        fr.record_route(route.src, route.dst, &route, route.stretch(&m));
        assert_eq!(fr.len(), 1);
        let rec = fr.records().next().unwrap();
        assert_eq!(rec.hops.len(), route.hop_count());
        assert_eq!(rec.hops.last().unwrap().node, route.dst);
        assert!(rec.hops.iter().any(|h| h.label == "zoom"));
        assert!(rec.hops.iter().any(|h| h.label == "search" && h.level == Some(2)));
        assert_eq!(rec.anomaly, None);
        assert_eq!(fr.anomalies(), 0);
    }

    #[test]
    fn ring_keeps_the_last_k_and_seq_is_monotone() {
        let m = MetricSpace::new(&gen::grid(4, 4));
        let route = sample_route(&m);
        let mut fr = FlightRecorder::new(3);
        for _ in 0..5 {
            fr.record_route(route.src, route.dst, &route, 1.0);
        }
        assert_eq!(fr.len(), 3);
        let seqs: Vec<u64> = fr.records().map(|r| r.seq).collect();
        assert_eq!(seqs, [2, 3, 4]);
    }

    #[test]
    fn anomalies_are_flagged_and_counted() {
        let m = MetricSpace::new(&gen::grid(4, 4));
        let route = sample_route(&m);
        let mut fr = FlightRecorder::new(8);
        fr.record_route(route.src, route.dst, &route, 0.5);
        assert_eq!(fr.records().next().unwrap().anomaly, Some("understretch"));
        fr.record_error(0, 3, &RouteError::HopBudgetExceeded { budget: 7 });
        fr.note_anomaly("conformance-failure");
        // The loss record already carries an anomaly; note_anomaly still
        // counts the clause failure.
        assert_eq!(fr.anomalies(), 3);
        let jsonl = fr.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        for line in jsonl.lines() {
            Value::parse(line).expect("flight line parses");
        }
    }

    #[test]
    fn recoveries_attach_to_the_next_record() {
        let m = MetricSpace::new(&gen::grid(4, 4));
        let route = sample_route(&m);
        let mut fr = FlightRecorder::new(8);
        fr.note_recovery(&RecoveryEvent::Detour { at: 1, rejoin: 2, detour_hops: 3 });
        fr.record_route(route.src, route.dst, &route, 1.2);
        fr.record_route(route.src, route.dst, &route, 1.2);
        let recs: Vec<&FlightRecord> = fr.records().collect();
        assert_eq!(recs[0].recoveries, ["detour at=1 rejoin=2 hops=3"]);
        assert!(recs[1].recoveries.is_empty());
    }

    #[test]
    fn disabled_recorder_retains_nothing() {
        let m = MetricSpace::new(&gen::grid(4, 4));
        let route = sample_route(&m);
        let mut fr = FlightRecorder::disabled();
        fr.record_route(route.src, route.dst, &route, 0.5);
        fr.note_anomaly("loss");
        assert!(fr.is_empty());
        assert_eq!(fr.anomalies(), 0);
        assert!(!fr.enabled());
    }
}
