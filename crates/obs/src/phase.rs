//! Phase profiling: aggregating a recorded trace into a per-phase
//! time/allocation breakdown.
//!
//! The scheme constructors wrap each preprocessing stage (net-tree
//! construction, ring building, packing/Voronoi trees, search-tree
//! population, table assembly) in a [`crate::trace::Tracer`] span; this
//! module folds the resulting [`TraceLog`] into one row per distinct span
//! name — the table `cargo run --release --bin profile` prints.

use doubling_metric::build::{BuildProfile, PhaseProfile};
use netsim::json::Value;

use crate::trace::{TraceLog, Tracer};

/// One aggregated phase: every span with the same name, summed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phase {
    /// Span name.
    pub name: &'static str,
    /// Nesting depth of the first occurrence (0 = top level).
    pub depth: usize,
    /// Number of spans aggregated.
    pub calls: u64,
    /// Total wall-clock, microseconds.
    pub wall_us: u64,
    /// Total bytes allocated inside the spans (0 when the counting
    /// allocator is not installed).
    pub alloc_bytes: u64,
}

/// A per-phase breakdown of one recorded trace, in first-appearance order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// The aggregated phases.
    pub phases: Vec<Phase>,
}

impl PhaseBreakdown {
    /// Aggregates `log`'s spans by name. Nested spans keep their own rows
    /// (with `depth > 0`); a parent's wall time includes its children's,
    /// so only same-depth rows are disjoint.
    pub fn from_log(log: &TraceLog) -> Self {
        let mut depth_of = vec![0usize; log.spans.len()];
        let mut phases: Vec<Phase> = Vec::new();
        for (i, s) in log.spans.iter().enumerate() {
            let depth = s.parent.map_or(0, |p| depth_of[p] + 1);
            depth_of[i] = depth;
            match phases.iter_mut().find(|p| p.name == s.name) {
                Some(p) => {
                    p.calls += 1;
                    p.wall_us += s.dur_us;
                    p.alloc_bytes += s.alloc_bytes;
                }
                None => phases.push(Phase {
                    name: s.name,
                    depth,
                    calls: 1,
                    wall_us: s.dur_us,
                    alloc_bytes: s.alloc_bytes,
                }),
            }
        }
        PhaseBreakdown { phases }
    }

    /// Total wall-clock over top-level phases only (children are already
    /// included in their parents).
    pub fn top_level_wall_us(&self) -> u64 {
        self.phases.iter().filter(|p| p.depth == 0).map(|p| p.wall_us).sum()
    }

    /// The breakdown as a JSON array of phase objects.
    pub fn to_json(&self) -> Value {
        Value::Array(
            self.phases
                .iter()
                .map(|p| {
                    Value::Object(vec![
                        ("name".into(), p.name.into()),
                        ("depth".into(), p.depth.into()),
                        ("calls".into(), p.calls.into()),
                        ("wall_us".into(), p.wall_us.into()),
                        ("alloc_bytes".into(), p.alloc_bytes.into()),
                    ])
                })
                .collect(),
        )
    }
}

/// Merges a parallel metric build's [`BuildProfile`] into `tracer` as
/// completed spans: one `"apsp"` / `"sort-rows"` span per phase, with one
/// `"apsp-worker"` / `"sort-rows-worker"` child-less span per worker.
///
/// The metric crate cannot depend on this one, so its builders return the
/// profile as plain data; calling this while a parent span (e.g. the
/// cache's `"metric-build"`) is open nests everything under that span.
/// Workers are recorded in worker-index order — the profile collects them
/// that way regardless of thread completion order, so traces are
/// deterministic up to timing values.
pub fn record_build_profile(tracer: &Tracer, profile: &BuildProfile) {
    if !tracer.enabled() {
        return;
    }
    let phase = |name: &'static str, worker_name: &'static str, p: &PhaseProfile| {
        tracer.span_completed(name, p.wall_us, 0);
        for w in &p.workers {
            tracer.span_completed(worker_name, w.wall_us, 0);
        }
    };
    phase("apsp", "apsp-worker", &profile.apsp);
    phase("sort-rows", "sort-rows-worker", &profile.rows);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;
    use doubling_metric::gen;
    use doubling_metric::MetricSpace;
    use std::sync::Arc;

    #[test]
    fn build_profile_spans_nest_under_open_span() {
        let g = Arc::new(gen::grid(5, 5));
        let (_, profile) = MetricSpace::build_profiled(Arc::clone(&g), 2);
        let t = Tracer::recording();
        {
            let _build = t.span("metric-build");
            record_build_profile(&t, &profile);
        }
        let b = PhaseBreakdown::from_log(&t.finish());
        let names: Vec<&str> = b.phases.iter().map(|p| p.name).collect();
        assert_eq!(names, ["metric-build", "apsp", "apsp-worker", "sort-rows", "sort-rows-worker"]);
        let worker = b.phases.iter().find(|p| p.name == "apsp-worker").unwrap();
        assert_eq!(worker.calls, profile.apsp.workers.len() as u64);
        assert_eq!(worker.depth, 1);
    }

    #[test]
    fn aggregates_by_name_with_depth() {
        let t = Tracer::recording();
        {
            let _outer = t.span("build");
            for _ in 0..3 {
                let _inner = t.span("ring-build");
            }
        }
        let breakdown = PhaseBreakdown::from_log(&t.finish());
        assert_eq!(breakdown.phases.len(), 2);
        assert_eq!(breakdown.phases[0].name, "build");
        assert_eq!(breakdown.phases[0].depth, 0);
        assert_eq!(breakdown.phases[0].calls, 1);
        assert_eq!(breakdown.phases[1].name, "ring-build");
        assert_eq!(breakdown.phases[1].depth, 1);
        assert_eq!(breakdown.phases[1].calls, 3);
        // Children are nested inside the parent's wall time.
        assert!(breakdown.phases[1].wall_us <= breakdown.phases[0].wall_us);
        assert_eq!(breakdown.top_level_wall_us(), breakdown.phases[0].wall_us);
    }

    #[test]
    fn empty_log_is_empty() {
        let b = PhaseBreakdown::from_log(&TraceLog::default());
        assert!(b.phases.is_empty());
        assert_eq!(b.top_level_wall_us(), 0);
    }
}
