//! Metrics primitives: counters, gauges, and the log₂-bucketed histogram.
//!
//! All types are plain values (no interior mutability, no atomics): the
//! evaluation loops that feed them are single-threaded, and the parallel
//! harness merges per-shard histograms with [`Log2Histogram::merge`],
//! which is exact, commutative, and associative.

use netsim::json::Value;

/// A monotonic event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// A last-value-wins instantaneous measurement.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Gauge(f64);

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Gauge(0.0)
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&mut self, v: f64) {
        self.0 = v;
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        self.0
    }
}

/// Number of histogram buckets: one for 0, plus one per power of two.
const BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` samples.
///
/// Bucket 0 holds exactly the value 0; bucket `b ≥ 1` holds the half-open
/// dyadic range `[2^(b−1), 2^b)`. Alongside the buckets the histogram
/// tracks the exact count, sum, min, and max, so means are exact and only
/// quantiles are bucket-resolution approximations.
///
/// # Examples
///
/// ```rust
/// use obs::metrics::Log2Histogram;
///
/// let mut h = Log2Histogram::new();
/// for v in [0, 1, 3, 8, 9] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.sum(), 21);
/// assert_eq!(h.bucket_count(0), 1);        // the 0
/// assert_eq!(h.bucket_count(2), 1);        // 3 ∈ [2, 4)
/// assert_eq!(h.bucket_count(4), 2);        // 8, 9 ∈ [8, 16)
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The bucket index holding `v`.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Log2Histogram { buckets: [0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples (saturating at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, if any was recorded.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, if any was recorded.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Samples in bucket `b`; see the type docs for bucket semantics.
    pub fn bucket_count(&self, b: usize) -> u64 {
        self.buckets[b]
    }

    /// The inclusive value range `[lo, hi]` covered by bucket `b`.
    pub fn bucket_bounds(b: usize) -> (u64, u64) {
        match b {
            0 => (0, 0),
            64 => (1 << 63, u64::MAX),
            b => (1 << (b - 1), (1 << b) - 1),
        }
    }

    /// Folds `other` into `self`. Exact: the result equals the histogram
    /// of the concatenated sample streams, so merging is commutative and
    /// associative.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`0 ≤ q ≤ 1`), clamped to the observed max; `None` when empty.
    pub fn quantile_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((self.count - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen > rank {
                return Some(Self::bucket_bounds(b).1.min(self.max));
            }
        }
        Some(self.max)
    }

    /// [`Log2Histogram::quantile_bound`] at q = 0.5 — the median's bucket
    /// upper bound. The `bench_build` per-source timing columns use these
    /// three accessors.
    pub fn p50(&self) -> Option<u64> {
        self.quantile_bound(0.5)
    }

    /// [`Log2Histogram::quantile_bound`] at q = 0.9.
    pub fn p90(&self) -> Option<u64> {
        self.quantile_bound(0.9)
    }

    /// [`Log2Histogram::quantile_bound`] at q = 0.99.
    pub fn p99(&self) -> Option<u64> {
        self.quantile_bound(0.99)
    }

    /// [`Log2Histogram::quantile_bound`] at q = 0.999 — the tail quantile
    /// the serving-telemetry roadmap reports alongside p50/p99.
    pub fn p999(&self) -> Option<u64> {
        self.quantile_bound(0.999)
    }

    /// This histogram as a JSON object: exact stats plus the non-empty
    /// buckets as `[[lo, count], …]`.
    pub fn to_json(&self) -> Value {
        let buckets: Vec<Value> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(b, &c)| Value::Array(vec![Self::bucket_bounds(b).0.into(), c.into()]))
            .collect();
        Value::Object(vec![
            ("count".into(), self.count.into()),
            ("sum".into(), self.sum.into()),
            ("min".into(), self.min().map_or(Value::Null, Value::from)),
            ("max".into(), self.max().map_or(Value::Null, Value::from)),
            ("buckets".into(), Value::Array(buckets)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let mut g = Gauge::new();
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
    }

    #[test]
    fn bucket_boundaries_are_dyadic() {
        // Every power of two starts a new bucket; its predecessor ends one.
        for b in 1..64usize {
            let lo = 1u64 << (b - 1);
            assert_eq!(bucket_of(lo), b, "2^{} must open bucket {b}", b - 1);
            assert_eq!(bucket_of(lo + (lo - 1)), b, "2^{b}-1 must close bucket {b}");
            if b >= 2 {
                assert_eq!(bucket_of(lo - 1), b - 1);
            }
        }
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(u64::MAX), 64);
        for b in 0..BUCKETS {
            let (lo, hi) = Log2Histogram::bucket_bounds(b);
            assert_eq!(bucket_of(lo), b);
            assert_eq!(bucket_of(hi), b);
        }
    }

    #[test]
    fn merge_is_associative_and_matches_concatenation() {
        let streams: [&[u64]; 3] = [&[0, 1, 5, 17], &[2, 2, 1 << 40], &[u64::MAX, 3]];
        let hist = |vals: &[u64]| {
            let mut h = Log2Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let [a, b, c] = [hist(streams[0]), hist(streams[1]), hist(streams[2])];

        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);

        // Both equal the histogram of the concatenated stream.
        let all: Vec<u64> = streams.iter().flat_map(|s| s.iter().copied()).collect();
        assert_eq!(left, hist(&all));
        assert_eq!(left.count(), 9);
        assert_eq!(left.min(), Some(0));
        assert_eq!(left.max(), Some(u64::MAX));
    }

    #[test]
    fn quantiles_and_json() {
        let mut h = Log2Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        // p50 sample is 51, in bucket [32, 64); the bound is 63.
        assert_eq!(h.quantile_bound(0.5), Some(63));
        assert_eq!(h.quantile_bound(1.0), Some(100));
        assert_eq!(h.quantile_bound(0.0), Some(1));
        assert_eq!(Log2Histogram::new().quantile_bound(0.5), None);

        // The named accessors pin the bucket→quantile math: with samples
        // 1..=100, rank(0.9) = 89 → sample 90, bucket [64, 128) clamped to
        // the observed max 100; rank(0.99) = 98 → sample 99, same bucket.
        assert_eq!(h.p50(), Some(63));
        assert_eq!(h.p90(), Some(100));
        assert_eq!(h.p99(), Some(100));
        assert_eq!(Log2Histogram::new().p50(), None);
        // An un-clamped upper tail: powers of two land on exact bounds.
        let mut h2 = Log2Histogram::new();
        for v in [1u64, 2, 4, 1000] {
            h2.record(v);
        }
        assert_eq!(h2.p50(), Some(7)); // rank 1.5→2: sample 4, bucket [4,7]
        assert_eq!(h2.p90(), Some(1000));
        assert_eq!(h2.p99(), Some(1000));

        let json = h.to_json();
        assert_eq!(json.get("count").and_then(Value::as_u64), Some(100));
        assert_eq!(json.get("sum").and_then(Value::as_u64), Some(5050));
        // Round-trips through the parser.
        assert_eq!(Value::parse(&json.to_string()).unwrap(), json);
    }
}
