//! Observability layer for the compact-routing workspace: structured
//! tracing, metrics primitives, allocation counting, and phase profiling.
//!
//! Everything in this crate is dependency-free (standard library only) and
//! serializes through [`netsim::json`], so the build works in the same
//! offline environment as the rest of the workspace.
//!
//! # The three layers
//!
//! * [`trace`] — a structured **span/event tracer**. [`trace::Tracer`] has
//!   two modes: a *no-op* mode whose operations are a single branch on
//!   [`trace::Tracer::enabled`] (no allocation, no clock read — the
//!   assertion-free fast path the evaluation harness relies on), and a
//!   *recording* mode that captures nested [`trace::SpanRecord`]s (name,
//!   parent, wall-clock, allocation delta) and [`trace::EventRecord`]s,
//!   exported as JSONL.
//! * [`metrics`] — monotonic [`metrics::Counter`]s, [`metrics::Gauge`]s,
//!   and the log₂-bucketed [`metrics::Log2Histogram`] (with exact
//!   count/sum/min/max and lossless [`metrics::Log2Histogram::merge`]),
//!   used for route costs, hop counts, header bits, and search-tree
//!   lookup tallies.
//! * [`phase`] — aggregation of a recorded trace into a per-phase
//!   time/allocation breakdown ([`phase::PhaseBreakdown`]), the table the
//!   `profile` binary prints for every scheme's preprocessing.
//!
//! Three serving-grade layers sit on top:
//!
//! * [`registry`] — a `Send + Sync` [`registry::MetricsRegistry`]: atomic
//!   counters/gauges and per-thread-**sharded** histograms, merged
//!   exactly on read, with deterministic (name-ordered) snapshots and a
//!   single-branch disabled mode.
//! * [`export`] — standard formats: any [`TraceLog`] as Chrome
//!   trace-event / Perfetto JSON (the `--chrome-trace` flag in every
//!   experiment binary) and any registry snapshot as Prometheus text
//!   exposition.
//! * [`flight`] — a [`flight::FlightRecorder`] ring buffer keeping
//!   per-hop forensics for the last K route queries, dumped when a loss,
//!   under-stretch route, or conformance failure is observed.
//!
//! # Spans ↔ Figure 1/2 route anatomy
//!
//! A delivered [`netsim::Route`] already carries the paper's
//! figure-level decomposition as [`netsim::Segment`]s:
//!
//! * **Figure 1** (name-independent routes): `zoom[k]` → `search[k]` →
//!   `final[k]` segments, one group per search round `k` (Algorithm 3).
//! * **Figure 2** (scale-free labeled routes): `ring-walk[i]` segments for
//!   the greedy phase (Algorithm 5 lines 1–6), then `to-center[j]` /
//!   `tree-search[j]` / `to-target[j]` for the packing phase (lines 7–10).
//!
//! [`spans::route_span_tree`] lifts that decomposition into a span tree —
//! a root span covering the whole route whose children are the segments in
//! travel order — with the invariant (checked by `Route::verify` and this
//! crate's golden test) that **child span costs sum exactly to the root's
//! recorded cost**. The same segment labels appear in the figures, so a
//! traced route is a machine-readable row of Figure 1 or Figure 2.
//!
//! # Example
//!
//! ```rust
//! use obs::trace::Tracer;
//! use obs::metrics::Log2Histogram;
//!
//! let tracer = Tracer::recording();
//! {
//!     let _build = tracer.span("build");
//!     let _rings = tracer.span("ring-build"); // nested under "build"
//! }
//! let log = tracer.finish();
//! assert_eq!(log.spans.len(), 2);
//! assert_eq!(log.spans[1].parent, Some(0));
//!
//! let mut h = Log2Histogram::new();
//! h.record(5);
//! h.record(1000);
//! assert_eq!(h.count(), 2);
//! assert_eq!(h.max(), Some(1000));
//! ```

#![warn(missing_docs)]

pub mod alloc;
pub mod eval;
pub mod export;
pub mod flight;
pub mod metrics;
pub mod phase;
pub mod registry;
pub mod spans;
pub mod trace;

pub use flight::FlightRecorder;
pub use metrics::{Counter, Gauge, Log2Histogram};
pub use phase::PhaseBreakdown;
pub use registry::MetricsRegistry;
pub use spans::{route_span_tree, RouteMetrics};
pub use trace::{TraceLog, Tracer};
